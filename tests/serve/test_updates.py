"""``/v1/update``, stale cursors and batch updates, driven directly."""

from __future__ import annotations

import pytest

from repro.core.engine import build_index
from repro.graphs.generators import random_tree
from repro.graphs.io import dumps_edge_list
from repro.serve.service import BadRequest, QueryService, StaleCursor

QUERY = "E(x, y)"


@pytest.fixture(scope="module")
def graph():
    return random_tree(40, seed=3)


@pytest.fixture(scope="module")
def spec(graph):
    return {"edge_list": dumps_edge_list(graph), "query": QUERY}


@pytest.fixture(scope="module")
def non_edge(graph):
    for u in range(graph.n):
        for v in range(u + 1, graph.n):
            if not graph.has_edge(u, v):
                return u, v
    raise AssertionError("graph is complete")


@pytest.fixture
def service():
    return QueryService(max_page_size=50, default_page_size=10)


def test_update_bumps_version_and_changes_answers(service, spec, non_edge):
    u, v = non_edge
    before = service.handle_test({**spec, "tuple": [u, v]})
    assert before["value"] is False
    assert before["index"]["index_version"] == 0

    inserted = service.handle_update({**spec, "op": "insert", "edge": [u, v]})
    assert inserted["applied"] == "insert"
    assert inserted["edge"] == [u, v]
    assert inserted["version"] == 1
    assert inserted["index"]["index_version"] == 1

    after = service.handle_test({**spec, "tuple": [u, v]})
    assert after["value"] is True
    assert after["index"]["index_version"] == 1
    # the static identity survives the update; only the version moved
    assert after["index"]["fingerprint"] == before["index"]["fingerprint"]

    deleted = service.handle_update({**spec, "op": "delete", "edge": [u, v]})
    assert deleted["version"] == 2
    assert service.handle_test({**spec, "tuple": [u, v]})["value"] is False


def test_updated_index_matches_rebuild(service, spec, graph, non_edge):
    u, v = non_edge
    service.handle_update({**spec, "op": "insert", "edge": [u, v]})
    shadow = graph.with_edge(u, v)
    oracle = build_index(shadow, QUERY)
    everything, cursor = [], None
    while True:
        payload = dict(spec)
        if cursor is not None:
            payload["cursor"] = cursor
        reply = service.handle_enumerate(payload)
        everything.extend(tuple(item) for item in reply["items"])
        cursor = reply["next_cursor"]
        if cursor is None:
            break
    assert everything == list(oracle.enumerate())


def test_stale_cursor_is_a_typed_409(service, spec, non_edge):
    u, v = non_edge
    first = service.handle_enumerate({**spec, "limit": 5})
    pinned = first["index"]["index_version"]
    cursor = first["next_cursor"]
    assert pinned == 0 and cursor is not None

    service.handle_update({**spec, "op": "insert", "edge": [u, v]})

    with pytest.raises(StaleCursor, match="minted at index version 0"):
        service.handle_enumerate(
            {**spec, "cursor": cursor, "cursor_version": pinned}
        )
    assert StaleCursor.http_status == 409

    # a fresh cursor minted at the current version completes
    fresh = service.handle_enumerate({**spec, "limit": 5})
    reply = service.handle_enumerate(
        {
            **spec,
            "cursor": fresh["next_cursor"],
            "cursor_version": fresh["index"]["index_version"],
        }
    )
    assert reply["index"]["index_version"] == 1


def test_batch_updates_are_position_aligned(service, spec, non_edge):
    u, v = non_edge
    reply = service.handle_batch(
        {
            **spec,
            "calls": [
                {"op": "test", "tuple": [u, v]},
                {"op": "update", "action": "insert", "edge": [u, v]},
                {"op": "test", "tuple": [u, v]},
                {"op": "next", "tuple": [u, v]},
            ],
        }
    )
    results = reply["results"]
    assert results[0] is False
    assert results[1] == {"applied": "insert", "version": 1}
    assert results[2] is True  # probes after an update see the new generation
    assert tuple(results[3]) == (u, v)
    assert reply["index"]["index_version"] == 1


def test_update_validation_errors(service, spec, graph, non_edge):
    u, v = non_edge
    with pytest.raises(BadRequest, match="'op' must be"):
        service.handle_update({**spec, "op": "upsert", "edge": [u, v]})
    with pytest.raises(BadRequest, match="'edge'"):
        service.handle_update({**spec, "op": "insert", "edge": [u]})
    # deleting an absent edge / inserting a present one: 400, not 500
    with pytest.raises(BadRequest, match="cannot delete"):
        service.handle_update({**spec, "op": "delete", "edge": [u, v]})
    present = next(iter(graph.edges()))
    with pytest.raises(BadRequest, match="cannot insert"):
        service.handle_update({**spec, "op": "insert", "edge": list(present)})
    # a bad batch is rejected up front, before any call runs
    with pytest.raises(BadRequest, match="action"):
        service.handle_batch(
            {
                **spec,
                "calls": [
                    {"op": "update", "action": "toggle", "edge": [u, v]},
                ],
            }
        )
    assert service.handle_test({**spec, "tuple": [u, v]})["index"][
        "index_version"
    ] == 0


def test_updates_compound_across_requests(service, spec, graph):
    edges = list(graph.edges())[:3]
    for i, (u, v) in enumerate(edges):
        reply = service.handle_update({**spec, "op": "delete", "edge": [u, v]})
        assert reply["version"] == i + 1
    stats = service.cache.snapshot_stats()
    assert list(stats["versions"].values()) == [3]
