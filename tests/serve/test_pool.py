"""Pre-fork pool: routing determinism and a live worker-pool lifecycle."""

from __future__ import annotations

import json
import os
import signal
import threading
import time
import urllib.request

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import build_index
from repro.graphs.generators import FAMILIES
from repro.persist import cache_path, index_fingerprint, save_index
from repro.serve.client import ServiceClient, family_spec
from repro.serve.pool import routing_key, shard_for
from repro.serve.service import QueryService

QUERY = "E(x, y)"


# ----------------------------------------------------------------------
# routing (pure functions, no processes)


def test_routing_key_is_deterministic():
    payload = {"family": "grid", "n": 100, "seed": 1, "query": QUERY}
    assert routing_key(payload) == routing_key(dict(payload))
    assert routing_key(payload) == routing_key(
        {"query": QUERY, "seed": 1, "n": 100, "family": "grid"}  # order-free
    )


def test_routing_key_separates_graph_specs():
    keys = {
        routing_key({"family": "grid", "n": 100, "query": QUERY}),
        routing_key({"family": "grid", "n": 200, "query": QUERY}),
        routing_key({"family": "path", "n": 100, "query": QUERY}),
        routing_key({"edge_list": "0 1\n1 2\n", "query": QUERY}),
        routing_key({"graph_path": "g.el", "query": QUERY}),
        routing_key({"family": "grid", "n": 100, "query": "E(x, y) & E(y, x)"}),
    }
    assert len(keys) == 6


def test_routing_key_tolerates_garbage():
    # unroutable payloads still get a stable key (worker 0 renders the 400)
    assert routing_key(None) == routing_key(None)
    assert routing_key([1, 2]) == routing_key([1, 2])
    assert routing_key({"graph": {"a": object()}}) is not None


def test_shard_for_is_stable_and_in_range():
    for shards in (1, 2, 7, 64):
        for n in range(50):
            key = routing_key({"family": "grid", "n": n, "query": QUERY})
            shard = shard_for(key, shards)
            assert 0 <= shard < shards
            assert shard == shard_for(key, shards)


def test_shards_spread_across_workers():
    hits = {
        shard_for(
            routing_key({"family": "grid", "n": n, "query": QUERY}), 8
        ) % 4
        for n in range(64)
    }
    assert len(hits) > 1  # not everything lands on one worker


# ----------------------------------------------------------------------
# a live pool (fork + sockets); one heavier module-scoped fixture


pytestmark_pool = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="PoolServer needs os.fork"
)

N = 144
SEED = 5


@pytest.fixture(scope="module")
def pool():
    if not hasattr(os, "fork"):
        pytest.skip("PoolServer needs os.fork")
    import tempfile

    from repro.serve.pool import PoolServer

    with tempfile.TemporaryDirectory(prefix="repro-pool-test-") as tmp:
        graph = FAMILIES["grid"](N, seed=SEED)
        index = build_index(graph, QUERY, config=EngineConfig(layout="arena"))
        fingerprint = index_fingerprint(graph, QUERY)
        save_index(index, cache_path(tmp, fingerprint), fingerprint)

        service = QueryService(snapshot_dir=tmp)
        server = PoolServer(service, port=0, workers=2, shards=4)
        server.start()
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            yield server
        finally:
            server.shutdown()
            server.close()
            thread.join(timeout=10)


@pytest.fixture
def pool_client(pool):
    host, port = pool.address
    return ServiceClient(f"http://{host}:{port}", timeout=30.0)


ORACLE = None


def _oracle():
    global ORACLE
    if ORACLE is None:
        ORACLE = build_index(FAMILIES["grid"](N, seed=SEED), QUERY)
    return ORACLE


@pytestmark_pool
def test_pool_answers_match_oracle(pool_client):
    oracle = _oracle()
    spec = family_spec("grid", N, seed=SEED)
    hit = next(oracle.enumerate())
    assert pool_client.test(spec, QUERY, hit) is True
    assert pool_client.test(spec, QUERY, (0, 0)) is False
    assert pool_client.next_solution(spec, QUERY, (0, 0)) == (
        oracle.next_solution((0, 0))
    )
    results = pool_client.batch(
        spec, QUERY, [("test", hit), ("next", (0, 0))]
    )
    assert results == [True, oracle.next_solution((0, 0))]


@pytestmark_pool
def test_pool_preload_serves_warm(pool_client):
    """The preloaded snapshot means the very first request is a cache hit."""
    spec = family_spec("grid", N, seed=SEED)
    pool_client.test(spec, QUERY, (0, 0))
    assert pool_client.last_index_meta["status"] == "hit"


@pytestmark_pool
def test_pool_stats_aggregate(pool, pool_client):
    stats = pool_client.stats()
    assert stats["pool"]["workers"] == 2
    assert stats["pool"]["shards"] == 4
    assert stats["pool"]["preloaded"] == 1
    assert stats["pool"]["shared_arena_bytes"] > 0
    workers = stats["workers"]
    assert len(workers) == 2
    owned = sorted(tuple(w["worker"]["shards"]) for w in workers)
    assert owned == [(0, 2), (1, 3)]
    for w in workers:
        assert w["worker"]["pid"] != stats["pool"]["pid"]


@pytestmark_pool
def test_pool_worker_header_and_affinity(pool):
    """Same request spec -> same worker, reported via X-Repro-Worker."""
    host, port = pool.address
    body = json.dumps(
        {**family_spec("grid", N, seed=SEED), "query": QUERY, "tuple": [0, 0]}
    ).encode()
    seen = set()
    for _ in range(3):
        request = urllib.request.Request(
            f"http://{host}:{port}/v1/test", data=body,
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=30.0) as response:
            seen.add(response.headers["X-Repro-Worker"])
    assert len(seen) == 1


@pytestmark_pool
def test_pool_respawns_dead_worker(pool, pool_client):
    stats = pool_client.stats()
    victim = int(stats["workers"][0]["worker"]["pid"])
    os.kill(victim, signal.SIGKILL)
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        if pool.pool_stats()["respawns"] >= 1:
            break
        time.sleep(0.05)
    assert pool.pool_stats()["respawns"] >= 1
    # and the pool still answers — the router retries across the respawn
    spec = family_spec("grid", N, seed=SEED)
    assert pool_client.test(spec, QUERY, (0, 0)) is False
    pids = {
        w["worker"]["pid"]
        for w in pool_client.stats()["workers"]
        if "worker" in w
    }
    assert victim not in pids
