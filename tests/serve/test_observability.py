"""The pool observability plane over a live pre-fork pool.

One module-scoped pool (fork + sockets) exercises the whole tentpole:
merged Prometheus exposition with per-worker labels, cross-process
trace stitching via ``X-Trace-Id``/``X-Parent-Span``, the pool-wide
``guarantee`` block, and the fan-in sampling profiler.
"""

from __future__ import annotations

import json
import os
import re
import threading
import urllib.request

import pytest

from repro.graphs.generators import FAMILIES
from repro.serve.client import ServiceClient, family_spec
from repro.serve.service import QueryService
from repro.trace import new_trace_id

QUERY = "E(x, y)"
N = 100
SEED = 3

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="PoolServer needs os.fork"
)


@pytest.fixture(scope="module")
def pool():
    if not hasattr(os, "fork"):
        pytest.skip("PoolServer needs os.fork")
    from repro.serve.pool import PoolServer
    from repro.trace.watchdog import Watchdog

    server = PoolServer(
        QueryService(),
        port=0,
        workers=2,
        shards=4,
        watchdog_factory=lambda: Watchdog(budget_seconds=5.0),
    )
    server.start()
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.close()
        thread.join(timeout=10)


@pytest.fixture(scope="module")
def client(pool):
    host, port = pool.address
    client = ServiceClient(f"http://{host}:{port}", timeout=30.0)
    # traffic for both workers so every observability surface has data:
    # distinct graph specs hash to distinct shards
    for seed in range(6):
        spec = family_spec("grid", N, seed=seed)
        client.test(spec, QUERY, (0, 1))
        list(client.enumerate(spec, QUERY, page_size=50))
    return client


def _request(client, path, headers=None, data=None):
    request = urllib.request.Request(
        client.base_url + path, data=data, headers=headers or {}
    )
    with urllib.request.urlopen(request, timeout=30.0) as response:
        return response.status, dict(response.headers), response.read()


# ----------------------------------------------------------------------
# /metrics: negotiation + the merged exposition


def test_pool_metrics_defaults_to_json(client):
    payload = client.metrics()
    assert payload["ok"] is True
    assert payload["merged"]["version"] == 1
    assert len(payload["workers"]) == 2
    histograms = payload["merged"]["histograms"]
    assert any(name.startswith("serve.request_seconds.") for name in histograms)


def test_pool_metrics_negotiates_prometheus_via_accept(client):
    """Regression: the pooled /metrics used to ignore prom negotiation."""
    status, headers, body = _request(
        client, "/metrics", headers={"Accept": "text/plain"}
    )
    assert status == 200
    assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
    assert b"# TYPE" in body

    status, headers, _ = _request(client, "/metrics?format=prom")
    assert status == 200
    assert headers["Content-Type"].startswith("text/plain; version=0.0.4")

    # explicit JSON accept keeps JSON even with text/plain also listed
    status, headers, body = _request(
        client, "/metrics", headers={"Accept": "application/json, text/plain"}
    )
    assert headers["Content-Type"].startswith("application/json")
    assert json.loads(body)["ok"] is True


def test_pool_merged_histogram_count_is_sum_of_workers(client):
    text = client.prometheus()
    metric = "repro_serve_request_seconds__v1_test"
    merged = re.search(rf"^{metric}_count (\d+)$", text, re.M)
    assert merged is not None, text
    per_worker = re.findall(rf'^{metric}_count\{{worker="(\d+)"\}} (\d+)$', text, re.M)
    assert {wid for wid, _ in per_worker} == {"0", "1"}
    assert int(merged.group(1)) == sum(int(count) for _, count in per_worker)
    assert int(merged.group(1)) >= 6

    # real histogram type with cumulative le buckets ending at +Inf
    assert f"# TYPE {metric} histogram" in text
    buckets = re.findall(rf"^{metric}_bucket\{{le=\"([^\"]+)\"\}} (\d+)$", text, re.M)
    assert buckets and buckets[-1][0] == "+Inf"
    counts = [int(count) for _, count in buckets]
    assert counts == sorted(counts)  # cumulative
    assert counts[-1] == int(merged.group(1))

    # pool-level gauges are unlabeled; worker gauges carry the label
    assert re.search(r"^repro_pool_workers 2$", text, re.M)
    assert re.search(r'^repro_serve_cache_\w+\{worker="0"\}', text, re.M)


# ----------------------------------------------------------------------
# /v1/traces: worker filter, fan-in, stitching


def test_pool_traces_worker_filter_still_proxies(client):
    status, _, body = _request(client, "/v1/traces?worker=0&limit=5")
    payload = json.loads(body)
    assert payload["ok"] is True
    assert "capacity" in payload  # a single worker's local view


def test_pool_traces_fan_in_all_workers(client):
    trace_id = new_trace_id()
    spec = family_spec("grid", N, seed=1)
    body = json.dumps({**spec, "query": QUERY, "tuple": [0, 1]}).encode()
    _request(
        client,
        "/v1/test",
        headers={"Content-Type": "application/json", "X-Trace-Id": trace_id},
        data=body,
    )
    status, _, raw = _request(client, "/v1/traces?limit=10")
    payload = json.loads(raw)
    assert payload["ok"] is True
    assert payload["worker"] == "all"
    ours = [t for t in payload["traces"] if t["trace_id"] == trace_id]
    assert len(ours) == 1  # parent + worker folded into one summary
    assert ours[0]["name"] == "pool.route"
    assert set(ours[0]["sources"]) >= {"parent"}
    assert any(s.startswith("worker:") for s in ours[0]["sources"])


def test_pool_stitches_cross_process_tree(client):
    trace_id = new_trace_id()
    spec = family_spec("grid", N, seed=2)
    body = json.dumps({**spec, "query": QUERY, "tuple": [0, 1]}).encode()
    status, headers, _ = _request(
        client,
        "/v1/test",
        headers={"Content-Type": "application/json", "X-Trace-Id": trace_id},
        data=body,
    )
    assert headers["X-Trace-Id"] == trace_id  # round-trips through the proxy

    status, _, raw = _request(client, f"/v1/traces?trace_id={trace_id}")
    stitched = json.loads(raw)["trace"]
    assert stitched["stitched"] is True
    assert stitched["trace_id"] == trace_id
    assert "parent" in stitched["sources"]
    assert any(s.startswith("worker:") for s in stitched["sources"])

    # one tree: pool.route at the root, the worker's request span under it
    assert len(stitched["tree"]) == 1
    root = stitched["tree"][0]
    assert root["name"] == "pool.route"
    names = {child["name"] for child in root["children"]}
    assert "POST /v1/test" in names
    assert "pool.forward" in names
    request_span = next(
        child for child in root["children"] if child["name"] == "POST /v1/test"
    )
    assert request_span["source"].startswith("worker:")
    assert request_span["parent_id"] == root["span_id"]


def test_pool_untraced_requests_record_nothing(client, pool):
    before = len(pool.trace_buffer)
    spec = family_spec("grid", N, seed=1)
    client.test(spec, QUERY, (0, 1))  # no X-Trace-Id
    assert len(pool.trace_buffer) == before


def test_pool_traces_rejects_bad_trace_id(client):
    with pytest.raises(urllib.request.HTTPError) as err:
        _request(client, "/v1/traces?trace_id=not-hex!")
    assert err.value.code == 400


# ----------------------------------------------------------------------
# /v1/stats: the pool-wide guarantee block


def test_pool_stats_carries_guarantee_and_endpoints(client):
    stats = client.stats()
    guarantee = stats["guarantee"]
    assert guarantee["workers"] == 2
    assert guarantee["reporting"] == 2
    assert guarantee["held"] is True  # generous 5s budget: no violations
    assert guarantee["violations"] == {"delay": 0, "ops": 0}
    assert guarantee["burn_rate"] == {"delay": 0.0, "ops": 0.0}
    assert guarantee["budget_seconds"]["min"] == 5.0
    assert set(guarantee["per_worker"]) == {"0", "1"}

    endpoints = stats["endpoints"]
    assert "/v1/test" in endpoints
    assert endpoints["/v1/test"]["count"] >= 6
    assert 0.0 < endpoints["/v1/test"]["p95"] <= 2 * endpoints["/v1/test"]["max"]

    # the original shape is intact for existing consumers
    assert stats["pool"]["workers"] == 2
    assert len(stats["workers"]) == 2


# ----------------------------------------------------------------------
# /v1/profile: pool-wide sampling


def test_pool_profile_merges_all_workers(client):
    payload = client.profile(seconds=0.4, hz=500)
    assert payload["ok"] is True
    assert set(payload["workers"]) == {"0", "1"}
    profile = payload["profile"]
    assert profile["samples"] > 0
    assert profile["stacks"]
    assert all(count > 0 for count in profile["stacks"].values())


def test_pool_profile_rejects_out_of_range(client):
    with pytest.raises(urllib.request.HTTPError) as err:
        _request(client, "/v1/profile?seconds=99")
    assert err.value.code == 400
    with pytest.raises(urllib.request.HTTPError) as err:
        _request(client, "/v1/profile?seconds=0.2&hz=9999")
    assert err.value.code == 400
