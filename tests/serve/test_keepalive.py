"""Keep-alive correctness under malformed request framing.

HTTP/1.1 connection reuse only works when request boundaries stay in
sync.  Every body-read error path must therefore either consume the
declared body or close the connection — otherwise the unread bytes get
parsed as the *next* request line and the client sees garbage responses
for correct requests (the PR-8 bug class these tests pin down):

* oversized ``Content-Length`` — rejected without reading the body, so
  the connection MUST close;
* negative ``Content-Length`` — must be a 400, never ``read(-5)`` (which
  reads to EOF and stalls the connection until the client gives up);
* non-integer / missing ``Content-Length`` — 400 plus close;
* short bodies (client died mid-send) — 400 plus close.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading

import pytest

from repro.graphs.generators import random_tree
from repro.serve.client import inline_spec
from repro.serve.http import create_server
from repro.serve.service import QueryService

QUERY = "E(x, y)"
GRAPH = random_tree(30, seed=7)
MAX_BODY = 4096


@pytest.fixture(scope="module")
def addr():
    service = QueryService()
    server = create_server(service, port=0, max_body_bytes=MAX_BODY)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield host, port
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


def _body() -> bytes:
    return json.dumps(
        {**inline_spec(GRAPH), "query": QUERY, "tuple": [0, 1]}
    ).encode("utf-8")


def _raw_request(headers: str, payload: bytes = b"") -> bytes:
    """One hand-rolled POST; returns everything the server sends back."""
    return headers.encode("ascii") + payload


def _exchange(addr, raw: bytes, half_close: bool = False) -> tuple[bytes, bool]:
    """Send raw bytes, read to EOF; (response bytes, connection closed?).

    ``closed`` is True when the server hung up — reading hit EOF rather
    than a timeout.  All the error paths under test must close.
    """
    host, port = addr
    with socket.create_connection((host, port), timeout=5.0) as sock:
        sock.sendall(raw)
        if half_close:
            sock.shutdown(socket.SHUT_WR)
        chunks: list[bytes] = []
        closed = False
        try:
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    closed = True
                    break
                chunks.append(chunk)
        except TimeoutError:
            closed = False
    return b"".join(chunks), closed


def test_connection_reused_across_requests(addr):
    """The happy path: N requests, one TCP connection, same socket."""
    host, port = addr
    conn = http.client.HTTPConnection(host, port, timeout=10.0)
    try:
        first_sock = None
        for _ in range(3):
            conn.request(
                "POST", "/v1/test", body=_body(),
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            payload = json.loads(response.read().decode("utf-8"))
            assert response.status == 200
            assert payload["ok"] is True
            if first_sock is None:
                first_sock = conn.sock
            assert conn.sock is first_sock  # no silent reconnect
    finally:
        conn.close()


def test_oversized_body_rejected_and_connection_closed(addr):
    """A too-large declared body is refused *unread* — the connection must
    close, or the unread body would be parsed as the next request."""
    payload = b"x" * (MAX_BODY + 100)
    raw = _raw_request(
        "POST /v1/test HTTP/1.1\r\n"
        "Host: t\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(payload)}\r\n"
        "\r\n",
        payload,
    )
    response, closed = _exchange(addr, raw)
    assert b"400" in response.split(b"\r\n", 1)[0]
    assert closed, "server must close after refusing to read the body"


def test_oversized_body_does_not_poison_pipelined_request(addr):
    """The desync scenario itself: oversized request immediately followed
    by a valid one on the same socket.  The server must never interpret
    the unread body bytes as that second request."""
    junk = b"A" * (MAX_BODY + 50)
    good = _body()
    raw = (
        _raw_request(
            "POST /v1/test HTTP/1.1\r\n"
            "Host: t\r\n"
            f"Content-Length: {len(junk)}\r\n"
            "\r\n",
            junk,
        )
        + _raw_request(
            "POST /v1/test HTTP/1.1\r\n"
            "Host: t\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(good)}\r\n"
            "\r\n",
            good,
        )
    )
    response, closed = _exchange(addr, raw)
    assert closed
    # exactly one response came back, and it is the 400 for the first
    # request — the pipelined request died with the connection instead of
    # being answered from desynced bytes
    assert response.count(b"HTTP/1.1") == 1
    assert b"400" in response.split(b"\r\n", 1)[0]


def test_negative_content_length_rejected(addr):
    raw = _raw_request(
        "POST /v1/test HTTP/1.1\r\n"
        "Host: t\r\n"
        "Content-Length: -5\r\n"
        "\r\n",
    )
    response, closed = _exchange(addr, raw)
    assert b"400" in response.split(b"\r\n", 1)[0]
    assert closed


def test_non_integer_content_length_rejected(addr):
    raw = _raw_request(
        "POST /v1/test HTTP/1.1\r\n"
        "Host: t\r\n"
        "Content-Length: banana\r\n"
        "\r\n",
    )
    response, closed = _exchange(addr, raw)
    assert b"400" in response.split(b"\r\n", 1)[0]
    assert closed


def test_missing_content_length_rejected(addr):
    raw = _raw_request(
        "POST /v1/test HTTP/1.1\r\nHost: t\r\n\r\n",
    )
    response, closed = _exchange(addr, raw)
    assert b"400" in response.split(b"\r\n", 1)[0]
    assert closed


def test_short_body_rejected_and_closed(addr):
    """Client dies mid-body: declared 100 bytes, sent 10, half-closed."""
    raw = _raw_request(
        "POST /v1/test HTTP/1.1\r\n"
        "Host: t\r\n"
        "Content-Length: 100\r\n"
        "\r\n",
        b"0123456789",
    )
    response, closed = _exchange(addr, raw, half_close=True)
    assert b"400" in response.split(b"\r\n", 1)[0]
    assert closed
