"""End-to-end HTTP tests: in-process server, stdlib client, real sockets."""

from __future__ import annotations

import json
import threading
from concurrent.futures import ThreadPoolExecutor
from urllib.error import HTTPError
from urllib.request import Request, urlopen

import pytest

from repro import metrics
from repro.core.engine import build_index
from repro.graphs.generators import random_tree
from repro.serve.client import ServiceClient, ServiceClientError, inline_spec
from repro.serve.http import create_server
from repro.serve.service import QueryService

QUERY = "E(x, y)"
GRAPH = random_tree(40, seed=3)
ORACLE = build_index(GRAPH, QUERY)


@pytest.fixture(scope="module")
def server_url():
    service = QueryService(max_page_size=100, default_page_size=25)
    server = create_server(service, port=0)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://{host}:{port}"
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


@pytest.fixture
def client(server_url):
    return ServiceClient(server_url, timeout=30.0)


@pytest.fixture
def spec():
    return inline_spec(GRAPH)


def test_health_and_stats(client):
    assert client.health() is True
    stats = client.stats()
    assert stats["max_page_size"] == 100


def test_test_endpoint(client, spec):
    hit = next(ORACLE.enumerate())
    assert client.test(spec, QUERY, hit) is True
    assert client.test(spec, QUERY, (0, 0)) is False
    assert client.last_index_meta["method"] == "indexed"


def test_next_endpoint(client, spec):
    assert client.next_solution(spec, QUERY, (0, 0)) == ORACLE.next_solution((0, 0))
    assert client.next_solution(spec, QUERY, (10**6, 0)) is None


def test_enumerate_paginates_transparently(client, spec):
    got = list(client.enumerate(spec, QUERY, page_size=7))
    assert got == list(ORACLE.enumerate())


def test_enumerate_page_cursor_roundtrip(client, spec):
    oracle = list(ORACLE.enumerate())
    items, cursor = client.enumerate_page(spec, QUERY, limit=10)
    assert items == oracle[:10]
    assert cursor == oracle[10]
    rest, end = client.enumerate_page(spec, QUERY, cursor=cursor, limit=100)
    assert rest == oracle[10:]
    assert end is None


def test_count_endpoint(client, spec):
    assert client.count(spec, QUERY) == ORACLE.count()


def test_explain_endpoint(client):
    report = client.explain(QUERY)
    assert report["decomposable"] is True


def test_cold_miss_then_warm_hit(client):
    # a query text nobody else in this module uses -> a guaranteed cold key
    query = "E(x, y) & E(y, x)"
    spec = inline_spec(GRAPH)
    client.count(spec, query)
    first = client.last_index_meta["status"]
    client.count(spec, query)
    second = client.last_index_meta["status"]
    assert first == "built" and second == "hit"


def test_metrics_endpoint(client, spec):
    with metrics.collect(ops=False):
        client.count(spec, QUERY)
        dump = client.metrics()
    assert dump["collecting"] is True
    assert dump["cache"]["hits"] >= 1
    assert "serve.cache_hits" in dump["registry"]["counters"]


# ----------------------------------------------------------------------
# HTTP-level failure modes


def test_unknown_route_404(client, server_url):
    with pytest.raises(ServiceClientError) as err:
        client._get("/v1/nope")
    assert err.value.status == 404
    request = Request(server_url + "/v1/nope", data=b"{}", method="POST")
    with pytest.raises(HTTPError) as raw:
        urlopen(request, timeout=10)
    assert raw.value.code == 404


def test_invalid_json_body_400(server_url):
    request = Request(
        server_url + "/v1/test",
        data=b"this is not json",
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with pytest.raises(HTTPError) as err:
        urlopen(request, timeout=10)
    assert err.value.code == 400
    payload = json.loads(err.value.read())
    assert payload["ok"] is False and "JSON" in payload["error"]["message"]


def test_non_object_body_400(server_url):
    request = Request(
        server_url + "/v1/test", data=b"[1, 2, 3]", method="POST"
    )
    with pytest.raises(HTTPError) as err:
        urlopen(request, timeout=10)
    assert err.value.code == 400


def test_bad_query_400(client, spec):
    with pytest.raises(ServiceClientError) as err:
        client.count(spec, "E(x,")
    assert err.value.status == 400
    assert err.value.payload["error"]["type"] == "BadRequest"


def test_wrong_arity_400(client, spec):
    with pytest.raises(ServiceClientError) as err:
        client.test(spec, QUERY, (0, 1, 2))
    assert err.value.status == 400 and "arity" in str(err.value)


def test_oversized_page_400(client, spec):
    with pytest.raises(ServiceClientError) as err:
        client.enumerate_page(spec, QUERY, limit=101)
    assert err.value.status == 400 and "cap" in str(err.value)


def test_oversized_body_rejected():
    service = QueryService()
    server = create_server(service, port=0, max_body_bytes=64)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        body = json.dumps({"edge_list": "x" * 200, "query": QUERY}).encode()
        request = Request(f"http://{host}:{port}/v1/test", data=body, method="POST")
        with pytest.raises(HTTPError) as err:
            urlopen(request, timeout=10)
        assert err.value.code == 400
        assert b"cap" in err.value.read()
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


def test_connection_refused_is_client_error():
    client = ServiceClient("http://127.0.0.1:1", timeout=2.0)
    with pytest.raises(ServiceClientError) as err:
        client.count(inline_spec(GRAPH), QUERY)
    assert err.value.status == 0
    assert client.health() is False


# ----------------------------------------------------------------------
# concurrency through real sockets


def test_eight_concurrent_clients_agree_with_oracle(server_url):
    """The acceptance-criteria smoke: 8 clients, one shared index, no lies."""
    query = "exists z. E(x, z) & E(z, y)"  # cold key for this test
    oracle = build_index(GRAPH, query)
    solutions = list(oracle.enumerate())
    before = ServiceClient(server_url).stats()["cache"]["builds"]
    barrier = threading.Barrier(8)

    def hammer(worker: int) -> list[str]:
        client = ServiceClient(server_url, timeout=60.0)
        spec = inline_spec(GRAPH)
        barrier.wait()  # all 8 arrive at the cold cache together
        errors = []
        if client.count(spec, query) != len(solutions):
            errors.append("count disagreed")
        probe = solutions[worker % len(solutions)]
        if client.test(spec, query, probe) is not True:
            errors.append(f"test{probe} disagreed")
        if client.next_solution(spec, query, probe) != probe:
            errors.append(f"next{probe} disagreed")
        page, _ = client.enumerate_page(spec, query, limit=5)
        if page != solutions[:5]:
            errors.append("first page disagreed")
        return errors

    with ThreadPoolExecutor(max_workers=8) as pool:
        results = list(pool.map(hammer, range(8)))
    assert [msg for worker in results for msg in worker] == []

    # dedup held: the 8 simultaneous cold misses produced exactly one build
    after = ServiceClient(server_url).stats()["cache"]["builds"]
    assert after - before == 1
