"""IndexCache: LRU behavior, snapshot tier, and build deduplication."""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.engine import build_index
from repro.graphs.generators import random_tree
from repro.serve.cache import BuildWaitTimeout, IndexCache, TooManyBuilds


@pytest.fixture
def graph():
    return random_tree(30, seed=5)


class CountingBuild:
    """A build_fn wrapper that counts calls and can stall on an event."""

    def __init__(self, gate: threading.Event | None = None, error: Exception | None = None):
        self.calls = 0
        self.gate = gate
        self.error = error
        self._lock = threading.Lock()

    def __call__(self, graph, query, free_order=None, method="auto", config=None):
        with self._lock:
            self.calls += 1
        if self.gate is not None:
            assert self.gate.wait(10.0)
        if self.error is not None:
            raise self.error
        return build_index(graph, query, free_order, method=method)


def test_miss_then_hit(graph):
    cache = IndexCache(max_entries=4)
    ix1, status1 = cache.get(graph, "E(x, y)")
    ix2, status2 = cache.get(graph, "E(x, y)")
    assert status1 == "built" and status2 == "hit"
    assert ix1 is ix2
    assert cache.stats["builds"] == 1 and cache.stats["hits"] == 1


def test_distinct_queries_distinct_entries(graph):
    cache = IndexCache(max_entries=4)
    ix1, _ = cache.get(graph, "E(x, y)")
    ix2, _ = cache.get(graph, "dist(x, y) <= 2")
    assert ix1 is not ix2
    assert len(cache) == 2


def test_lru_eviction(graph):
    cache = IndexCache(max_entries=2)
    cache.get(graph, "E(x, y)")
    cache.get(graph, "dist(x, y) <= 2")
    cache.get(graph, "E(x, y) & E(y, x)")  # evicts the oldest
    assert len(cache) == 2
    assert cache.stats["evictions"] == 1
    # the evicted key rebuilds; the survivors still hit
    _, status = cache.get(graph, "E(x, y)")
    assert status == "built"


def test_concurrent_misses_build_exactly_once(graph):
    """The tentpole dedup guarantee: N cold misses, one build."""
    gate = threading.Event()
    builds = CountingBuild(gate=gate)
    cache = IndexCache(max_entries=4, build_fn=builds)
    started = threading.Barrier(8 + 1)

    def fetch(_):
        started.wait()
        return cache.get(graph, "E(x, y)")

    with ThreadPoolExecutor(max_workers=8) as pool:
        futures = [pool.submit(fetch, i) for i in range(8)]
        started.wait()  # all 8 requests are in flight before the build finishes
        gate.set()
        results = [f.result(timeout=30) for f in futures]

    assert builds.calls == 1
    statuses = sorted(status for _, status in results)
    assert statuses.count("built") == 1
    assert statuses.count("joined") + statuses.count("hit") == 7
    first = results[0][0]
    assert all(ix is first for ix, _ in results)


def test_snapshot_cold_start(graph, tmp_path):
    warm = IndexCache(max_entries=4, snapshot_dir=tmp_path)
    _, status = warm.get(graph, "E(x, y)")
    assert status == "built"
    assert list(tmp_path.glob("*.rpx"))  # the build wrote a snapshot
    # a fresh process (new cache) loads from disk instead of rebuilding
    cold = IndexCache(max_entries=4, snapshot_dir=tmp_path)
    ix, status = cold.get(graph, "E(x, y)")
    assert status == "snapshot"
    assert ix.count() == warm.get(graph, "E(x, y)")[0].count()
    assert cold.stats["snapshot_loads"] == 1 and cold.stats["builds"] == 0


def test_corrupt_snapshot_falls_back_to_build(graph, tmp_path):
    IndexCache(max_entries=4, snapshot_dir=tmp_path).get(graph, "E(x, y)")
    snapshot = next(tmp_path.glob("*.rpx"))
    snapshot.write_bytes(snapshot.read_bytes()[:-20])
    cold = IndexCache(max_entries=4, snapshot_dir=tmp_path)
    _, status = cold.get(graph, "E(x, y)")
    assert status == "built"


def test_too_many_builds_rejected(graph):
    gate = threading.Event()
    cache = IndexCache(
        max_entries=4, max_in_flight_builds=1, build_fn=CountingBuild(gate=gate)
    )
    blocked = threading.Thread(
        target=lambda: cache.get(graph, "E(x, y)"), daemon=True
    )
    blocked.start()
    # wait until the owner registered its in-flight ticket
    deadline = threading.Event()
    for _ in range(200):
        if cache.snapshot_stats()["in_flight_builds"] == 1:
            break
        deadline.wait(0.01)
    with pytest.raises(TooManyBuilds):
        cache.get(graph, "dist(x, y) <= 2")  # a *distinct* key must build
    assert cache.stats["busy_rejections"] == 1
    gate.set()
    blocked.join(timeout=10)


def test_waiter_timeout(graph):
    gate = threading.Event()
    cache = IndexCache(
        max_entries=4, build_wait_seconds=0.05, build_fn=CountingBuild(gate=gate)
    )
    owner = threading.Thread(target=lambda: cache.get(graph, "E(x, y)"), daemon=True)
    owner.start()
    for _ in range(200):
        if cache.snapshot_stats()["in_flight_builds"] == 1:
            break
        threading.Event().wait(0.01)
    with pytest.raises(BuildWaitTimeout):
        cache.get(graph, "E(x, y)")  # same key -> waiter path -> timeout
    assert cache.stats["wait_timeouts"] == 1
    gate.set()
    owner.join(timeout=10)


def test_build_error_propagates_and_is_not_cached(graph):
    boom = RuntimeError("kaboom")
    failing = CountingBuild(error=boom)
    cache = IndexCache(max_entries=4, build_fn=failing)
    with pytest.raises(RuntimeError, match="kaboom"):
        cache.get(graph, "E(x, y)")
    assert len(cache) == 0
    # the failed build released its ticket: a retry attempts a fresh build
    with pytest.raises(RuntimeError, match="kaboom"):
        cache.get(graph, "E(x, y)")
    assert failing.calls == 2


def test_waiters_share_the_owners_error(graph):
    """Errors are not cached, so only provably-joined waiters share them."""
    gate = threading.Event()
    failing = CountingBuild(gate=gate, error=RuntimeError("kaboom"))
    cache = IndexCache(max_entries=4, build_fn=failing)

    def fetch(_):
        cache.get(graph, "E(x, y)")

    with ThreadPoolExecutor(max_workers=4) as pool:
        owner = pool.submit(fetch, 0)
        for _ in range(500):  # the owner holds its ticket while stuck on the gate
            if cache.snapshot_stats()["in_flight_builds"] == 1:
                break
            threading.Event().wait(0.01)
        waiters = [pool.submit(fetch, i) for i in range(1, 4)]
        threading.Event().wait(0.2)  # let the waiters block on the ticket
        gate.set()
        outcomes = [f.exception(timeout=30) for f in [owner, *waiters]]
    assert failing.calls == 1
    assert all(isinstance(exc, RuntimeError) for exc in outcomes)


def test_drop_and_clear(graph):
    cache = IndexCache(max_entries=4)
    cache.get(graph, "E(x, y)")
    key = cache.fingerprint(graph, "E(x, y)")
    assert cache.drop(key) is True
    assert cache.drop(key) is False
    cache.get(graph, "E(x, y)")
    cache.clear()
    assert len(cache) == 0


def test_rejects_bad_max_entries():
    with pytest.raises(ValueError, match="max_entries"):
        IndexCache(max_entries=0)
