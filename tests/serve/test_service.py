"""QueryService handlers driven directly (no HTTP), checked vs the oracle."""

from __future__ import annotations

import pytest

from repro.core.engine import build_index
from repro.graphs.generators import random_tree
from repro.graphs.io import dumps_edge_list, write_edge_list, write_json
from repro.serve.service import BadRequest, QueryService

QUERY = "E(x, y)"


@pytest.fixture(scope="module")
def graph():
    return random_tree(40, seed=3)


@pytest.fixture(scope="module")
def oracle(graph):
    return build_index(graph, QUERY)


@pytest.fixture(scope="module")
def spec(graph):
    return {"edge_list": dumps_edge_list(graph)}


@pytest.fixture
def service():
    return QueryService(max_page_size=50, default_page_size=10)


def test_handle_test(service, spec, oracle):
    hit = next(oracle.enumerate())
    reply = service.handle_test({**spec, "query": QUERY, "tuple": list(hit)})
    assert reply["value"] is True
    assert reply["index"]["status"] == "built"
    assert reply["index"]["arity"] == 2
    miss = service.handle_test({**spec, "query": QUERY, "tuple": [0, 0]})
    assert miss["value"] is False
    assert miss["index"]["status"] == "hit"  # same fingerprint, warm now


def test_handle_next(service, spec, oracle):
    reply = service.handle_next({**spec, "query": QUERY, "tuple": [0, 0]})
    assert tuple(reply["solution"]) == oracle.next_solution((0, 0))
    past_end = service.handle_next({**spec, "query": QUERY, "tuple": [10**6, 0]})
    assert past_end["solution"] is None


def test_handle_enumerate_pages_cover_everything(service, spec, oracle):
    everything, cursor, pages = [], None, 0
    while True:
        payload = {**spec, "query": QUERY, "limit": 13}
        if cursor is not None:
            payload["cursor"] = cursor
        reply = service.handle_enumerate(payload)
        everything.extend(tuple(item) for item in reply["items"])
        pages += 1
        cursor = reply["next_cursor"]
        if cursor is None:
            break
    assert everything == list(oracle.enumerate())
    assert pages == -(-len(everything) // 13)


def test_handle_enumerate_default_and_capped_limits(service, spec):
    reply = service.handle_enumerate({**spec, "query": QUERY})
    assert len(reply["items"]) == 10  # default_page_size
    with pytest.raises(BadRequest, match="page-size cap"):
        service.handle_enumerate({**spec, "query": QUERY, "limit": 51})
    with pytest.raises(BadRequest, match="'limit' must be >= 1"):
        service.handle_enumerate({**spec, "query": QUERY, "limit": 0})


def test_handle_count(service, spec, oracle):
    reply = service.handle_count({**spec, "query": QUERY})
    assert reply["count"] == oracle.count() == 78


def test_handle_explain(service):
    good = service.handle_explain({"query": QUERY})
    assert good["decomposable"] is True and good["arity"] == 2
    bad = service.handle_explain({"query": "exists z. Blue(z) & dist(z, x) > 2"})
    assert bad["decomposable"] is False and bad["problems"]


def test_family_spec(service, oracle):
    reply = service.handle_count(
        {"family": "random_tree", "n": 40, "seed": 3, "query": QUERY}
    )
    assert reply["count"] == oracle.count()


def test_graph_json_spec(service, graph, oracle):
    from repro.graphs.io import graph_to_json

    reply = service.handle_count({"graph": graph_to_json(graph), "query": QUERY})
    assert reply["count"] == oracle.count()


def test_graph_path_spec(tmp_path, graph, oracle):
    write_edge_list(graph, tmp_path / "g.txt")
    write_json(graph, tmp_path / "g.json")
    service = QueryService(graph_root=tmp_path)
    for name in ("g.txt", "g.json"):
        reply = service.handle_count({"graph_path": name, "query": QUERY})
        assert reply["count"] == oracle.count()


# ----------------------------------------------------------------------
# 4xx paths


def test_missing_graph_spec(service):
    with pytest.raises(BadRequest, match="exactly one of"):
        service.handle_count({"query": QUERY})


def test_two_graph_specs(service, spec):
    with pytest.raises(BadRequest, match="exactly one of"):
        service.handle_count({**spec, "family": "grid", "n": 9, "query": QUERY})


def test_unknown_family(service):
    with pytest.raises(BadRequest, match="unknown family"):
        service.handle_count({"family": "clique", "n": 9, "query": QUERY})


def test_malformed_edge_list(service):
    with pytest.raises(BadRequest, match="malformed graph"):
        service.handle_count({"edge_list": "n 3\ne 0 banana\n", "query": QUERY})


def test_bad_query_text(service, spec):
    with pytest.raises(BadRequest, match="bad query"):
        service.handle_count({**spec, "query": "E(x,"})


def test_missing_query(service, spec):
    with pytest.raises(BadRequest, match="'query'"):
        service.handle_count(spec)


def test_unknown_method(service, spec):
    with pytest.raises(BadRequest, match="unknown method"):
        service.handle_count({**spec, "query": QUERY, "method": "magic"})


def test_undecomposable_query_with_indexed_method(service, spec):
    with pytest.raises(BadRequest, match="not decomposable"):
        service.handle_count(
            {**spec, "query": "exists z. Blue(z) & dist(z, x) > 2",
             "method": "indexed"}
        )


def test_wrong_arity_tuple(service, spec):
    with pytest.raises(BadRequest, match="arity"):
        service.handle_test({**spec, "query": QUERY, "tuple": [0, 1, 2]})


def test_non_integer_tuple(service, spec):
    with pytest.raises(BadRequest, match="only integers"):
        service.handle_test({**spec, "query": QUERY, "tuple": [0, "one"]})
    with pytest.raises(BadRequest, match="only integers"):
        service.handle_test({**spec, "query": QUERY, "tuple": [0, True]})


def test_graph_path_disabled_without_root(service):
    with pytest.raises(BadRequest, match="disabled"):
        service.handle_count({"graph_path": "g.txt", "query": QUERY})


def test_graph_path_escape_rejected(tmp_path):
    service = QueryService(graph_root=tmp_path)
    with pytest.raises(BadRequest, match="escapes"):
        service.handle_count({"graph_path": "../../etc/passwd", "query": QUERY})


def test_graph_path_missing_file(tmp_path):
    service = QueryService(graph_root=tmp_path)
    with pytest.raises(BadRequest, match="no such graph file"):
        service.handle_count({"graph_path": "nope.txt", "query": QUERY})


def test_json_database_file_rejected(tmp_path):
    from repro.db.database import Database, Schema

    write_json(Database(Schema({"R": 1}), domain_size=2), tmp_path / "db.json")
    service = QueryService(graph_root=tmp_path)
    with pytest.raises(BadRequest, match="database"):
        service.handle_count({"graph_path": "db.json", "query": QUERY})


# ----------------------------------------------------------------------
# observability


def test_stats_and_metrics_snapshot(service, spec):
    service.handle_count({**spec, "query": QUERY})
    stats = service.stats()
    assert stats["cache"]["builds"] == 1
    assert stats["max_page_size"] == 50
    snapshot = service.metrics_snapshot()
    assert snapshot["cache"]["entries"] == 1
    assert snapshot["collecting"] in (True, False)


def test_metrics_snapshot_with_active_registry(service, spec):
    from repro import metrics

    with metrics.collect(ops=False):
        service.handle_count({**spec, "query": QUERY})
        snapshot = service.metrics_snapshot()
    assert snapshot["collecting"] is True
    assert snapshot["registry"]["counters"]["serve.builds"] == 1
    registry = snapshot["registry"]
    engine_keys = [
        name
        for section in ("counters", "timers", "histograms")
        for name in registry[section]
        if name.startswith("engine.")
    ]
    assert engine_keys  # the engine's own instrumentation reached the registry
