"""``/v1/batch`` oracle tests plus client-side decode hardening."""

from __future__ import annotations

import json
import socket
import threading

import pytest

from repro.core.engine import build_index
from repro.graphs.generators import grid
from repro.serve.client import ServiceClient, ServiceClientError, inline_spec
from repro.serve.http import create_server
from repro.serve.service import BadRequest, QueryService

QUERY = "E(x, y)"
GRAPH = grid(6, 6, seed=2)
ORACLE = build_index(GRAPH, QUERY)


@pytest.fixture(scope="module")
def server_url():
    service = QueryService(max_batch_calls=16)
    server = create_server(service, port=0)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://{host}:{port}"
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


@pytest.fixture
def client(server_url):
    return ServiceClient(server_url, timeout=30.0)


@pytest.fixture
def spec():
    return inline_spec(GRAPH)


def test_batch_matches_oracle(client, spec):
    hit = next(ORACLE.enumerate())
    calls = [
        ("test", hit),
        ("test", (0, 0)),
        ("next", (0, 0)),
        ("next", hit),
        ("next", (10**6, 10**6)),
    ]
    results = client.batch(spec, QUERY, calls)
    assert results == [
        ORACLE.test(hit),
        ORACLE.test((0, 0)),
        ORACLE.next_solution((0, 0)),
        ORACLE.next_solution(hit),
        None,
    ]


def test_batch_resolves_index_once(client, spec):
    client.batch(spec, QUERY, [("test", (0, 1))] * 4)
    before = client.stats()["cache"]["hits"]
    client.batch(spec, QUERY, [("test", (0, 1))] * 4)
    # one more batch = exactly one more cache hit, not one per call
    assert client.stats()["cache"]["hits"] == before + 1


def test_batch_rejects_empty_calls(client, spec):
    with pytest.raises(ServiceClientError) as err:
        client.batch(spec, QUERY, [])
    assert err.value.status == 400


def test_batch_rejects_unknown_op(client, spec):
    with pytest.raises(ServiceClientError) as err:
        client.batch(spec, QUERY, [("count", (0, 1))])
    assert err.value.status == 400


def test_batch_enforces_call_cap(client, spec):
    with pytest.raises(ServiceClientError) as err:
        client.batch(spec, QUERY, [("test", (0, 1))] * 17)
    assert err.value.status == 400


def test_batch_rejects_wrong_arity(client, spec):
    with pytest.raises(ServiceClientError) as err:
        client.batch(spec, QUERY, [("test", (0, 1, 2))])
    assert err.value.status == 400


def test_service_validates_calls_shape():
    service = QueryService(max_batch_calls=4)
    payload = {**inline_spec(GRAPH), "query": QUERY, "calls": "nope"}
    with pytest.raises(BadRequest):
        service.handle_batch(payload)


# ----------------------------------------------------------------------
# client decode hardening: a 200 with a garbage body must surface as a
# typed client error, not an anonymous json.JSONDecodeError


def _one_shot_garbage_server() -> tuple[str, int, threading.Thread]:
    """A server that answers any request with 200 and a non-JSON body."""
    listener = socket.create_server(("127.0.0.1", 0))
    host, port = listener.getsockname()[:2]

    def serve() -> None:
        with listener:
            conn, _ = listener.accept()
            with conn:
                conn.settimeout(5.0)
                buffered = b""
                while b"\r\n\r\n" not in buffered:
                    chunk = conn.recv(65536)
                    if not chunk:
                        break
                    buffered += chunk
                body = b"<html>proxy error</html>"
                conn.sendall(
                    b"HTTP/1.1 200 OK\r\n"
                    b"Content-Type: text/html\r\n"
                    b"Content-Length: " + str(len(body)).encode() + b"\r\n"
                    b"Connection: close\r\n\r\n" + body
                )

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    return host, port, thread


def test_client_raises_on_non_json_200():
    host, port, thread = _one_shot_garbage_server()
    client = ServiceClient(f"http://{host}:{port}", timeout=5.0)
    with pytest.raises(ServiceClientError) as err:
        client.stats()
    thread.join(timeout=5)
    assert err.value.status == 200
    assert "not valid JSON" in str(err.value)
    # the offending payload rides along for debugging, capped
    assert b"proxy error" in err.value.payload
