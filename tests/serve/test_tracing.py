"""Request-tracing tests: X-Trace-Id, /v1/traces, Prometheus, slow log."""

from __future__ import annotations

import contextlib
import json
import logging
import threading
from urllib.error import HTTPError
from urllib.request import Request, urlopen

import pytest

from repro.graphs.generators import random_tree
from repro.serve.client import inline_spec
from repro.serve.http import create_server
from repro.serve.service import QueryService
from repro.trace import Watchdog

QUERY = "E(x, y)"
GRAPH = random_tree(30, seed=7)


@contextlib.contextmanager
def _server(**kwargs):
    service = QueryService(max_page_size=100)
    server = create_server(service, port=0, **kwargs)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://{host}:{port}"
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


def _post(url, path, payload, headers=None):
    body = json.dumps(payload).encode()
    request = Request(
        url + path,
        data=body,
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    with urlopen(request, timeout=30) as response:
        return response.status, dict(response.headers), json.load(response)


def _get(url, path, headers=None):
    with urlopen(Request(url + path, headers=headers or {}), timeout=30) as resp:
        return resp.status, dict(resp.headers), resp.read()


def _enumerate_payload(limit=5):
    return {**inline_spec(GRAPH), "query": QUERY, "limit": limit}


def test_x_trace_id_roundtrip_and_trace_lookup():
    with _server() as url:
        trace_id = "deadbeefcafe0001"
        status, headers, payload = _post(
            url, "/v1/enumerate", _enumerate_payload(),
            headers={"X-Trace-Id": trace_id},
        )
        assert status == 200 and payload["ok"] is True
        assert headers["X-Trace-Id"] == trace_id

        status, _, body = _get(url, f"/v1/traces?trace_id={trace_id}")
        trace = json.loads(body)["trace"]
        assert trace["trace_id"] == trace_id
        assert trace["spans"] >= 2  # root + at least cache.get
        (root,) = trace["tree"]
        assert root["name"] == "POST /v1/enumerate"
        assert root["attributes"]["endpoint"] == "/v1/enumerate"
        assert root["attributes"]["http_status"] == 200
        assert root["attributes"]["cache"] == "built"
        child_names = {c["name"] for c in root["children"]}
        assert "cache.get" in child_names
        assert "enumerate.step" in child_names


def test_invalid_inbound_trace_id_is_replaced():
    with _server() as url:
        _, headers, _ = _post(
            url, "/v1/count", {**inline_spec(GRAPH), "query": QUERY},
            headers={"X-Trace-Id": "not hex!"},
        )
        fresh = headers["X-Trace-Id"]
        assert fresh != "not hex!"
        assert len(fresh) == 32
        int(fresh, 16)


def test_unsampled_requests_are_not_recorded():
    with _server(trace_sample=0.0) as url:
        _, headers, _ = _post(url, "/v1/count",
                              {**inline_spec(GRAPH), "query": QUERY})
        trace_id = headers["X-Trace-Id"]  # id assigned, trace not recorded
        with pytest.raises(HTTPError) as err:
            _get(url, f"/v1/traces?trace_id={trace_id}")
        assert err.value.code == 404

        status, _, body = _get(url, "/v1/traces")
        listing = json.loads(body)
        assert listing["ok"] is True
        assert listing["sample_rate"] == 0.0
        assert listing["traces"] == []


def test_sampled_requests_land_in_the_buffer():
    with _server(trace_sample=1.0) as url:
        _post(url, "/v1/count", {**inline_spec(GRAPH), "query": QUERY})
        _, _, body = _get(url, "/v1/traces")
        listing = json.loads(body)
        assert len(listing["traces"]) == 1
        summary = listing["traces"][0]
        assert summary["name"] == "POST /v1/count"
        assert "tree" not in summary  # summaries stay small


def test_traces_endpoint_404_when_disabled():
    with _server(trace_capacity=0) as url:
        with pytest.raises(HTTPError) as err:
            _get(url, "/v1/traces")
        assert err.value.code == 404
        body = json.loads(err.value.read())
        assert body["error"]["type"] == "tracing_disabled"
        # requests still get trace ids even with recording disabled
        _, headers, _ = _post(url, "/v1/count",
                              {**inline_spec(GRAPH), "query": QUERY})
        assert "X-Trace-Id" in headers


def test_metrics_format_negotiation():
    with _server() as url:
        _, headers, body = _get(url, "/metrics")
        assert headers["Content-Type"].startswith("application/json")
        json.loads(body)

        _, headers, body = _get(url, "/metrics",
                                headers={"Accept": "text/plain"})
        assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
        text = body.decode()
        assert "# TYPE repro_serve_cache_entries gauge" in text

        _, headers, body = _get(url, "/metrics?format=prom")
        assert headers["Content-Type"].startswith("text/plain; version=0.0.4")

        # a JSON-preferring Accept keeps the JSON shape
        _, headers, _ = _get(url, "/metrics",
                             headers={"Accept": "application/json, text/plain"})
        assert headers["Content-Type"].startswith("application/json")


def test_watchdog_state_in_stats_and_prometheus():
    dog = Watchdog(budget_seconds=10.0, calibration_samples=2)
    with _server(watchdog=dog, trace_sample=1.0) as url:
        _post(url, "/v1/enumerate", _enumerate_payload())
        _, _, body = _get(url, "/v1/stats")
        stats = json.loads(body)
        assert stats["watchdog"]["steps_seen"] >= 1
        assert stats["watchdog"]["violations"] == {"delay": 0, "ops": 0}
        _, _, body = _get(url, "/metrics?format=prom")
        assert "repro_watchdog_steps_seen" in body.decode()


def test_slow_request_log_emits_structured_warning(caplog):
    with _server(slow_ms=0.0) as url:  # every request is "slow"
        with caplog.at_level(logging.WARNING, logger="repro.serve"):
            _, headers, _ = _post(url, "/v1/count",
                                  {**inline_spec(GRAPH), "query": QUERY})
    records = [r for r in caplog.records if r.message == "slow request"]
    assert records
    fields = records[-1].fields
    assert fields["endpoint"] == "/v1/count"
    assert fields["ms"] > 0
    assert fields["trace_id"] == headers["X-Trace-Id"]
    assert fields["status"] == 200
