"""Unit tests for bag kernels (Definition 5.6 / Lemma 5.7)."""

import pytest

from repro.covers.kernels import kernel_of_bag
from repro.covers.neighborhood_cover import build_cover
from repro.graphs.generators import grid, path, random_planar_like_graph
from repro.graphs.neighborhoods import bounded_bfs


def brute_force_kernel(graph, bag, p):
    members = set(bag)
    return {
        v for v in members if set(bounded_bfs(graph, [v], p)) <= members
    }


@pytest.mark.parametrize("p", [0, 1, 2, 3])
def test_kernel_matches_definition(sparse_graph, p):
    cover = build_cover(sparse_graph, 3)
    for bag in cover.bags:
        assert kernel_of_bag(sparse_graph, bag, p) == brute_force_kernel(
            sparse_graph, bag, p
        )


def test_kernel_of_whole_graph_is_everything():
    g = grid(5, 5)
    assert kernel_of_bag(g, list(g.vertices()), 3) == set(g.vertices())


def test_kernel_radius_zero_is_bag():
    g = path(8, palette=())
    bag = [2, 3, 4]
    assert kernel_of_bag(g, bag, 0) == {2, 3, 4}


def test_kernel_shrinks_with_radius():
    g = random_planar_like_graph(80, seed=3)
    cover = build_cover(g, 3)
    bag = max(cover.bags, key=len)
    sizes = [len(kernel_of_bag(g, bag, p)) for p in range(4)]
    assert sizes == sorted(sizes, reverse=True)


def test_path_kernel_is_interior():
    g = path(10, palette=())
    bag = [2, 3, 4, 5, 6]
    # boundary members 2 and 6 touch the outside; kernel at p=1 drops them
    assert kernel_of_bag(g, bag, 1) == {3, 4, 5}
    assert kernel_of_bag(g, bag, 2) == {4}


def test_negative_radius_rejected():
    g = path(3, palette=())
    with pytest.raises(ValueError):
        kernel_of_bag(g, [0], -1)
