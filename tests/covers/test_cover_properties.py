"""Property-based tests for covers, kernels and subgraph relabeling."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.covers.kernels import kernel_of_bag
from repro.covers.neighborhood_cover import build_cover
from repro.graphs.colored_graph import ColoredGraph
from repro.graphs.neighborhoods import bounded_bfs


@st.composite
def sparse_graph(draw):
    n = draw(st.integers(1, 60))
    rng = random.Random(draw(st.integers(0, 99999)))
    g = ColoredGraph(n)
    for v in range(1, n):
        if rng.random() < 0.8:
            g.add_edge(rng.randrange(v), v)
    for _ in range(n // 5):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v)
    return g


@given(sparse_graph(), st.integers(0, 3))
@settings(max_examples=60, deadline=None)
def test_cover_definition_holds(g, radius):
    cover = build_cover(g, radius)
    # Definition 4.3: every vertex's r-ball inside its canonical bag
    for a in g.vertices():
        ball = set(bounded_bfs(g, [a], radius))
        assert ball <= set(cover.bags[cover.bag_of(a)])
    # ... and every bag inside the 2r-ball of its center
    for bag_id, bag in enumerate(cover.bags):
        ball = set(bounded_bfs(g, [cover.center(bag_id)], 2 * radius))
        assert set(bag) <= ball


@given(sparse_graph(), st.integers(0, 3), st.integers(0, 3))
@settings(max_examples=60, deadline=None)
def test_kernel_matches_definition(g, radius, p):
    cover = build_cover(g, max(radius, p))
    for bag in cover.bags[:5]:
        kernel = kernel_of_bag(g, bag, p)
        members = set(bag)
        expected = {
            v for v in members if set(bounded_bfs(g, [v], p)) <= members
        }
        assert kernel == expected


@given(sparse_graph(), st.data())
@settings(max_examples=60, deadline=None)
def test_relabeled_subgraph_preserves_order_and_edges(g, data):
    if g.n == 0:
        return
    subset = data.draw(
        st.sets(st.integers(0, g.n - 1), min_size=1, max_size=min(g.n, 20))
    )
    sub, original = g.relabeled_subgraph(subset)
    assert original == sorted(subset)
    # order preservation: new ids sort exactly like originals
    for i in range(len(original) - 1):
        assert original[i] < original[i + 1]
    # edge faithfulness both ways
    index = {v: i for i, v in enumerate(original)}
    for u in subset:
        for w in g.neighbors(u):
            if w in subset:
                assert sub.has_edge(index[u], index[w])
    for a, b in sub.edges():
        assert g.has_edge(original[a], original[b])
