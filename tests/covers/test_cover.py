"""Unit tests for neighborhood covers (Definition 4.3 / Theorem 4.4)."""

import pytest

from repro.covers.neighborhood_cover import build_cover
from repro.graphs.colored_graph import ColoredGraph
from repro.graphs.generators import grid, path, random_tree
from repro.graphs.neighborhoods import bounded_bfs


@pytest.mark.parametrize("radius", [0, 1, 2, 3])
def test_cover_properties_hold(sparse_graph, radius):
    cover = build_cover(sparse_graph, radius)
    cover.check_properties()  # Definition 4.3, both directions


def test_every_vertex_has_a_canonical_bag():
    g = random_tree(50, seed=1)
    cover = build_cover(g, 2)
    for v in g.vertices():
        bag_id = cover.bag_of(v)
        assert cover.contains(bag_id, v)


def test_bag_inside_double_radius_ball_of_center():
    g = grid(7, 7)
    cover = build_cover(g, 2)
    for bag_id, bag in enumerate(cover.bags):
        ball = set(bounded_bfs(g, [cover.center(bag_id)], cover.bag_radius))
        assert set(bag) <= ball


def test_degree_small_on_sparse_families():
    for build in (lambda: random_tree(300, seed=2), lambda: grid(17, 17)):
        g = build()
        cover = build_cover(g, 2)
        # Theorem 4.4's bound is n^eps (up to the class's constants); the
        # greedy cover should stay within a small multiple of sqrt(n)
        assert cover.degree() <= 2 * g.n ** 0.5


def test_total_bag_size_pseudo_linear():
    g = grid(15, 15)
    cover = build_cover(g, 2)
    assert cover.total_bag_size() <= g.n ** 1.5


def test_assigned_lists_partition_vertices():
    g = random_tree(80, seed=5)
    cover = build_cover(g, 1)
    seen = []
    for bag_id, members in enumerate(cover.assigned):
        for v in members:
            assert cover.bag_of(v) == bag_id
            seen.append(v)
    assert sorted(seen) == list(g.vertices())


def test_next_member_successor_semantics():
    g = path(20, palette=())
    cover = build_cover(g, 2)
    for bag_id, bag in enumerate(cover.bags):
        assert cover.next_member(bag_id, 0) == bag[0]
        assert cover.next_member(bag_id, bag[-1], strict=True) is None
        for member in bag:
            assert cover.next_member(bag_id, member) == member


def test_radius_zero_cover_is_singletons():
    g = path(5, palette=())
    cover = build_cover(g, 0)
    assert all(len(bag) == 1 for bag in cover.bags)
    assert cover.num_bags == 5


def test_edgeless_graph():
    g = ColoredGraph(6)
    cover = build_cover(g, 3)
    cover.check_properties()
    assert cover.num_bags == 6


def test_negative_radius_rejected():
    with pytest.raises(ValueError):
        build_cover(ColoredGraph(2), -1)


# ----------------------------------------------------------------------
# custom scan orders (regression: partial orders silently corrupted bags)


def test_empty_order_on_nonempty_graph():
    """order=[] used to raise IndexError (assignment stayed -1)."""
    g = random_tree(40, seed=3)
    cover = build_cover(g, 1, order=[])
    cover.check_properties()
    assert all(0 <= cover.bag_of(v) < cover.num_bags for v in g.vertices())


def test_partial_order_completes_coverage():
    """A partial order used to leave assignment[a] == -1, silently
    appending the stragglers to the *last* bag via assigned[-1]."""
    g = random_tree(40, seed=3)
    cover = build_cover(g, 1, order=[5, 17])
    cover.check_properties()
    assert min(cover.assignment) >= 0
    # the explicitly listed vertices are scanned first, so they become
    # centers (nothing covered them before)
    assert cover.centers[0] == 5
    seen = [v for assigned in cover.assigned for v in assigned]
    assert sorted(seen) == list(g.vertices())


def test_full_custom_order_still_exact():
    g = path(12, palette=())
    natural = build_cover(g, 1, order=list(range(12)))
    partial = build_cover(g, 1, order=[0])  # completed with 1..11
    assert natural.bags == partial.bags
    assert natural.assignment == partial.assignment


def test_invalid_orders_rejected():
    g = random_tree(10, seed=1)
    with pytest.raises(ValueError, match="twice"):
        build_cover(g, 1, order=[3, 3])
    with pytest.raises(ValueError, match="not a vertex"):
        build_cover(g, 1, order=[10])
    with pytest.raises(ValueError, match="not a vertex"):
        build_cover(g, 1, order=[-1])


def test_constructor_rejects_unassigned_vertices():
    from repro.covers.neighborhood_cover import NeighborhoodCover

    g = path(3, palette=())
    with pytest.raises(ValueError, match="did not cover"):
        NeighborhoodCover(g, 1, 2, [[0, 1, 2]], [1], [0, 0, -1], 0.5)
