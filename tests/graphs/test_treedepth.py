"""Unit tests for treedepth (exact + greedy upper bound)."""

import math

import pytest

from repro.graphs.colored_graph import ColoredGraph
from repro.graphs.generators import cycle, path, random_tree, star
from repro.graphs.treedepth import treedepth, treedepth_decomposition


def test_edgeless_and_single():
    assert treedepth(ColoredGraph(0)) == 0
    assert treedepth(ColoredGraph(1)) == 1
    assert treedepth(ColoredGraph(5)) == 1


def test_path_treedepth_is_log():
    # td(P_n) = ceil(log2(n + 1))
    for n in (1, 2, 3, 4, 7, 8, 15):
        assert treedepth(path(n, palette=())) == math.ceil(math.log2(n + 1)), n


def test_star_treedepth_two():
    assert treedepth(star(9, palette=())) == 2


def test_cycle_treedepth():
    # td(C_n) = 1 + td(P_{n-1}) = 1 + ceil(log2(n))
    for n in (3, 4, 5, 8):
        assert treedepth(cycle(n, palette=())) == 1 + math.ceil(math.log2(n)), n


def test_clique_treedepth_is_n():
    g = ColoredGraph(5, [(i, j) for i in range(5) for j in range(i + 1, 5)])
    assert treedepth(g) == 5


def test_exact_refuses_large_graphs():
    with pytest.raises(ValueError):
        treedepth(ColoredGraph(100))


def test_decomposition_is_valid_forest_bound():
    for build in (
        lambda: path(20, palette=()),
        lambda: random_tree(30, seed=2, palette=()),
        lambda: cycle(12, palette=()),
    ):
        g = build()
        parent, bound = treedepth_decomposition(g)
        # every vertex appears exactly once
        assert sorted(parent) == list(g.vertices())
        # every edge is an ancestor/descendant pair in the forest
        def ancestors(v):
            seen = []
            while v is not None:
                seen.append(v)
                v = parent[v]
            return set(seen)

        for u, v in g.edges():
            assert u in ancestors(v) or v in ancestors(u), (u, v)
        # the bound is at least the true treedepth
        assert bound >= treedepth(g) if g.n <= 40 else True


def test_greedy_bound_close_on_paths():
    g = path(31, palette=())
    _, bound = treedepth_decomposition(g)
    assert bound <= 2 * math.ceil(math.log2(32))
