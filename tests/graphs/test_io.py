"""Unit tests for graph/database serialization."""

import pytest

from repro.db.database import Database, Schema
from repro.graphs.colored_graph import ColoredGraph
from repro.graphs.generators import random_planar_like_graph
from repro.graphs.io import (
    database_from_json,
    database_to_json,
    dumps_edge_list,
    graph_from_json,
    graph_to_json,
    loads_edge_list,
    read_edge_list,
    read_json,
    write_edge_list,
    write_json,
)


def sample_graph():
    return ColoredGraph(5, [(0, 1), (1, 2), (3, 4)], colors={"Blue": [2, 4], "Red": [0]})


def test_edge_list_roundtrip():
    g = sample_graph()
    assert loads_edge_list(dumps_edge_list(g)) == g


def test_edge_list_roundtrip_random():
    g = random_planar_like_graph(60, seed=9)
    assert loads_edge_list(dumps_edge_list(g)) == g


def test_edge_list_ignores_comments_and_blanks():
    text = "# a comment\n\nn 3\ne 0 1\n# another\nc Red 2\n"
    g = loads_edge_list(text)
    assert g.n == 3 and g.has_edge(0, 1) and g.has_color(2, "Red")


def test_edge_list_errors_carry_line_numbers():
    with pytest.raises(ValueError, match="line 2"):
        loads_edge_list("n 3\nz 0 1\n")
    with pytest.raises(ValueError, match="missing 'n"):
        loads_edge_list("e 0 1\n")


def test_edge_list_file_roundtrip(tmp_path):
    g = sample_graph()
    path = tmp_path / "graph.txt"
    write_edge_list(g, path)
    assert read_edge_list(path) == g


def test_graph_json_roundtrip():
    g = sample_graph()
    assert graph_from_json(graph_to_json(g)) == g


def test_graph_json_kind_checked():
    with pytest.raises(ValueError, match="kind"):
        graph_from_json({"kind": "nope"})


def test_database_json_roundtrip():
    db = Database(Schema({"Friend": 2, "Tag": 1}), domain_size=4)
    db.add("Friend", (0, 1))
    db.add("Tag", (3,))
    restored = database_from_json(database_to_json(db))
    assert restored.domain_size == 4
    assert restored.relation("Friend") == {(0, 1)}
    assert restored.relation("Tag") == {(3,)}


def test_json_file_dispatch(tmp_path):
    g = sample_graph()
    db = Database(Schema({"R": 1}), domain_size=2)
    db.add("R", (1,))
    gpath, dpath = tmp_path / "g.json", tmp_path / "d.json"
    write_json(g, gpath)
    write_json(db, dpath)
    assert read_json(gpath) == g
    assert isinstance(read_json(dpath), Database)


def test_write_json_rejects_other_types(tmp_path):
    with pytest.raises(TypeError):
        write_json(42, tmp_path / "x.json")
