"""Unit tests for sparsity measures (weak accessibility, degeneracy)."""

from repro.graphs.colored_graph import ColoredGraph
from repro.graphs.generators import (
    grid,
    path,
    random_tree,
    star,
    subdivided_clique,
)
from repro.graphs.sparsity import (
    average_degree,
    degeneracy,
    degeneracy_order,
    edge_density_exponent,
    is_edgeless,
    weak_coloring_number_upper_bound,
    weakly_accessible_counts,
)


def test_degeneracy_of_basic_graphs():
    assert degeneracy(path(10, palette=())) == 1
    assert degeneracy(random_tree(50, seed=1, palette=())) == 1
    assert degeneracy(grid(5, 5, palette=())) == 2
    assert degeneracy(star(10, palette=())) == 1


def test_degeneracy_order_is_permutation():
    g = grid(4, 4, palette=())
    order = degeneracy_order(g)
    assert sorted(order) == list(range(g.n))


def test_weakly_accessible_counts_bounded_on_trees():
    g = random_tree(100, seed=2, palette=())
    for r in (1, 2, 3):
        counts = weakly_accessible_counts(g, r)
        # trees have bounded expansion: counts stay small
        assert max(counts) <= 2 * r + 2


def test_weak_coloring_number_grows_on_dense_control():
    sparse = random_tree(60, seed=1, palette=())
    dense = subdivided_clique(10, subdivisions=1)
    assert weak_coloring_number_upper_bound(sparse, 2) < (
        weak_coloring_number_upper_bound(dense, 2)
    )


def test_edge_density_exponent_near_one_for_sparse():
    g = grid(20, 20, palette=())
    assert edge_density_exponent(g) < 1.2


def test_is_edgeless():
    assert is_edgeless(ColoredGraph(5))
    assert not is_edgeless(path(3, palette=()))


def test_average_degree():
    assert average_degree(path(5, palette=())) == 8 / 5
    assert average_degree(ColoredGraph(0)) == 0.0


def test_weak_accessibility_respects_given_order():
    # a path ordered left-to-right: each vertex weakly reaches only smaller
    # neighbors within r steps going "up" first
    g = path(6, palette=())
    counts = weakly_accessible_counts(g, 1, order=list(range(6)))
    assert counts[0] == 0
    assert all(c <= 1 for c in counts)
