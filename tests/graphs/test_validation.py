"""Unit tests for the locality validator."""

import pytest

from repro.graphs.colored_graph import ColoredGraph
from repro.graphs.generators import grid, random_tree, star, subdivided_clique
from repro.graphs.validation import locality_report


def test_grid_is_good():
    report = locality_report(grid(20, 20, palette=()), radius=2)
    assert report.verdict == "good"
    assert report.max_ball <= 13  # diamond of radius 2
    assert report.density_exponent < 1.2


def test_small_world_shortcuts_degrade():
    # a sparse ring plus random long chords: every 3-ball explodes
    import random

    rng = random.Random(1)
    n = 200
    g = ColoredGraph(n, [(i, (i + 1) % n) for i in range(n)])
    for _ in range(n):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v)
    report = locality_report(g, radius=4)
    assert report.verdict == "degraded"
    assert report.ball_fraction > 0.5


def test_clique_is_dense():
    n = 24
    g = ColoredGraph(n, [(i, j) for i in range(n) for j in range(i + 1, n)])
    report = locality_report(g, radius=1)
    assert report.verdict == "dense"


def test_star_is_good_but_shallow():
    # the star is sparse; its 2-balls are everything, but n is tiny-ish:
    # the verdict reflects the fraction honestly
    report = locality_report(star(300, palette=()), radius=2)
    assert report.verdict == "degraded"


def test_tree_is_good():
    report = locality_report(random_tree(400, seed=2, palette=()), radius=2)
    assert report.verdict == "good"


def test_render_and_edge_cases():
    text = locality_report(grid(6, 6, palette=()), radius=1).render()
    assert "verdict:" in text
    empty = locality_report(ColoredGraph(0))
    assert empty.verdict == "good"
    with pytest.raises(ValueError):
        locality_report(ColoredGraph(2), radius=-1)


def test_negative_control_subdivided_clique():
    # at depth-1 subdivision the balls are still modest — what betrays the
    # hidden clique is the weak-coloring bound growing with k
    dense_control = locality_report(subdivided_clique(25, subdivisions=1), radius=2)
    sparse = locality_report(random_tree(325, seed=1, palette=()), radius=2)
    assert dense_control.weak_coloring_bound >= 5 * sparse.weak_coloring_bound
