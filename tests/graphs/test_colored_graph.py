"""Unit tests for ColoredGraph."""

import pytest

from repro.graphs.colored_graph import ColoredGraph


def test_basic_construction():
    g = ColoredGraph(4, [(0, 1), (1, 2)], colors={"B": [2, 3]})
    assert g.n == 4
    assert g.num_edges == 2
    assert g.size == 6
    assert g.degree(1) == 2
    assert g.has_color(2, "B")
    assert not g.has_color(0, "B")


def test_duplicate_edges_stored_once():
    g = ColoredGraph(3)
    g.add_edge(0, 1)
    g.add_edge(1, 0)
    assert g.num_edges == 1


def test_self_loops_rejected():
    g = ColoredGraph(3)
    with pytest.raises(ValueError):
        g.add_edge(1, 1)


def test_vertex_bounds_checked():
    g = ColoredGraph(3)
    with pytest.raises(IndexError):
        g.add_edge(0, 3)
    with pytest.raises(IndexError):
        g.neighbors(-1)
    with pytest.raises(IndexError):
        g.has_color(5, "B")


def test_edges_iterates_each_once():
    g = ColoredGraph(4, [(0, 1), (2, 1), (3, 0)])
    assert sorted(g.edges()) == [(0, 1), (0, 3), (1, 2)]


def test_colors_of_vertex():
    g = ColoredGraph(3, colors={"A": [0, 1], "B": [1]})
    assert g.colors_of(1) == {"A", "B"}
    assert g.colors_of(2) == frozenset()
    assert g.color("missing") == frozenset()


def test_add_to_color():
    g = ColoredGraph(3)
    g.add_to_color("New", 2)
    assert g.has_color(2, "New")


def test_copy_is_independent():
    g = ColoredGraph(3, [(0, 1)], colors={"A": [0]})
    h = g.copy()
    h.add_edge(1, 2)
    h.add_to_color("A", 1)
    assert g.num_edges == 1
    assert not g.has_color(1, "A")
    assert h.num_edges == 2


def test_equality():
    g = ColoredGraph(3, [(0, 1)], colors={"A": [0]})
    h = ColoredGraph(3, [(1, 0)], colors={"A": [0]})
    assert g == h
    h.add_to_color("A", 2)
    assert g != h


def test_relabeled_subgraph_preserves_order_and_structure():
    g = ColoredGraph(6, [(0, 2), (2, 4), (4, 5), (1, 3)], colors={"C": [2, 3]})
    sub, original = g.relabeled_subgraph([4, 0, 2, 5])
    assert original == [0, 2, 4, 5]
    assert sub.n == 4
    assert sorted(sub.edges()) == [(0, 1), (1, 2), (2, 3)]
    assert sub.color("C") == {1}


def test_unhashable():
    g = ColoredGraph(1)
    with pytest.raises(TypeError):
        hash(g)


def test_len_and_repr():
    g = ColoredGraph(5, [(0, 1)], colors={"Z": [0]})
    assert len(g) == 5
    assert "ColoredGraph" in repr(g)
