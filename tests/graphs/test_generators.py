"""Unit tests for the nowhere dense family generators."""

import pytest

from repro.graphs.generators import (
    FAMILIES,
    binary_tree,
    bounded_degree_random_graph,
    caterpillar,
    cycle,
    grid,
    outerplanar_random_graph,
    path,
    random_forest,
    random_planar_like_graph,
    random_tree,
    star,
    subdivided_clique,
)
from repro.graphs.neighborhoods import connected_components


def test_path_shape():
    g = path(5)
    assert g.n == 5 and g.num_edges == 4
    assert g.degree(0) == 1 and g.degree(2) == 2


def test_cycle_shape():
    g = cycle(6)
    assert g.num_edges == 6
    assert all(g.degree(v) == 2 for v in g.vertices())
    with pytest.raises(ValueError):
        cycle(2)


def test_star_shape():
    g = star(7)
    assert g.degree(0) == 6
    assert all(g.degree(v) == 1 for v in range(1, 7))


def test_binary_tree_shape():
    g = binary_tree(3)
    assert g.n == 15
    assert g.num_edges == 14
    assert len(connected_components(g)) == 1


def test_random_tree_is_tree():
    g = random_tree(40, seed=3)
    assert g.num_edges == g.n - 1
    assert len(connected_components(g)) == 1


def test_random_forest_has_requested_components():
    g = random_forest(40, trees=4, seed=1)
    assert len(connected_components(g)) == 4
    assert g.num_edges == g.n - 4


def test_caterpillar_shape():
    g = caterpillar(spine=4, legs=2)
    assert g.n == 12
    assert g.num_edges == 3 + 8


def test_grid_shape():
    g = grid(3, 4)
    assert g.n == 12
    assert g.num_edges == 3 * 3 + 2 * 4  # vertical + horizontal


def test_bounded_degree_respects_bound():
    g = bounded_degree_random_graph(120, degree=3, seed=2)
    assert max(g.degree(v) for v in g.vertices()) <= 3


def test_outerplanar_stays_sparse():
    g = outerplanar_random_graph(50, seed=4)
    # outerplanar graphs have at most 2n - 3 edges
    assert g.num_edges <= 2 * g.n - 3


def test_planar_like_stays_sparse():
    g = random_planar_like_graph(100, seed=5)
    assert g.num_edges <= 2 * g.n


def test_subdivided_clique_negative_control():
    g = subdivided_clique(5, subdivisions=1)
    pairs = 10
    assert g.n == 5 + pairs
    assert g.num_edges == 2 * pairs
    # vertices 0..4 are clique branch vertices with degree k-1
    assert all(g.degree(v) == 4 for v in range(5))


def test_generators_are_deterministic():
    a = random_tree(30, seed=9)
    b = random_tree(30, seed=9)
    assert a == b
    c = random_tree(30, seed=10)
    assert a != c


def test_colors_are_sprinkled():
    g = random_tree(200, seed=0)
    assert g.color("Red")
    assert g.color("Blue")


def test_families_registry_builds_everything():
    for name, build in FAMILIES.items():
        g = build(64, seed=1)
        assert g.n > 0, name


def test_partial_k_tree_bounded_treewidth_proxy():
    from repro.graphs.generators import partial_k_tree
    from repro.graphs.sparsity import degeneracy

    for k in (1, 2, 3):
        g = partial_k_tree(80, k=k, edge_keep=1.0, seed=k)
        # full k-trees are k-degenerate
        assert degeneracy(g) <= k, k


def test_partial_k_tree_validates_arguments():
    from repro.graphs.generators import partial_k_tree

    with pytest.raises(ValueError):
        partial_k_tree(2, k=2)
    with pytest.raises(ValueError):
        partial_k_tree(10, k=0)
    with pytest.raises(ValueError):
        partial_k_tree(10, k=2, edge_keep=1.5)


def test_hex_grid_degree_three():
    from repro.graphs.generators import hex_grid

    g = hex_grid(10, 10)
    assert max(g.degree(v) for v in g.vertices()) <= 3
    assert len(connected_components(g)) >= 1


def test_long_cycle_with_chords_local():
    from repro.graphs.generators import long_cycle_with_chords

    n = 80
    g = long_cycle_with_chords(n, chord_span=5, seed=2)
    for u, v in g.edges():
        ring = min((u - v) % n, (v - u) % n)
        assert ring <= 5, (u, v)
