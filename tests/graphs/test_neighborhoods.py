"""Unit tests for distances, balls and induced subgraphs."""

from repro.graphs.colored_graph import ColoredGraph
from repro.graphs.generators import grid, path
from repro.graphs.neighborhoods import (
    INFINITY,
    ball,
    bfs_distances,
    bounded_bfs,
    connected_components,
    distance,
    eccentricity,
    induced_subgraph,
    tuple_ball,
)


def test_bfs_distances_on_path():
    g = path(5, palette=())
    dist = bfs_distances(g, 0)
    assert dist == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}


def test_bounded_bfs_respects_radius():
    g = path(10, palette=())
    dist = bounded_bfs(g, [0], 3)
    assert set(dist) == {0, 1, 2, 3}


def test_bounded_bfs_multi_source():
    g = path(10, palette=())
    dist = bounded_bfs(g, [0, 9], 2)
    assert dist[1] == 1 and dist[8] == 1
    assert 4 not in dist


def test_distance_disconnected_is_infinite():
    g = ColoredGraph(4, [(0, 1), (2, 3)])
    assert distance(g, 0, 3) == INFINITY
    assert distance(g, 0, 1) == 1
    assert distance(g, 2, 2) == 0


def test_distance_cutoff():
    g = path(10, palette=())
    assert distance(g, 0, 5, cutoff=3) == INFINITY
    assert distance(g, 0, 3, cutoff=3) == 3


def test_ball_and_tuple_ball():
    g = grid(5, 5, palette=())
    b = ball(g, 12, 1)  # center of the grid
    assert b == {12, 7, 11, 13, 17}
    tb = tuple_ball(g, [0, 24], 1)
    assert tb == {0, 1, 5, 24, 23, 19}


def test_induced_subgraph_keeps_ambient_ids():
    g = path(6, palette=())
    sub = induced_subgraph(g, [1, 2, 3])
    assert sub.n == g.n
    assert sorted(sub.edges()) == [(1, 2), (2, 3)]
    assert sub.degree(0) == 0


def test_induced_subgraph_keeps_colors_inside_only():
    g = ColoredGraph(4, [(0, 1)], colors={"A": [0, 3]})
    sub = induced_subgraph(g, [0, 1])
    assert sub.color("A") == {0}


def test_connected_components():
    g = ColoredGraph(5, [(0, 1), (2, 3)])
    comps = sorted(connected_components(g), key=min)
    assert comps == [{0, 1}, {2, 3}, {4}]


def test_eccentricity():
    g = path(5, palette=())
    assert eccentricity(g, 0) == 4
    assert eccentricity(g, 2) == 2
