"""Unit tests for relational databases."""

import pytest

from repro.db.database import Database, Schema


def test_schema_arities():
    schema = Schema({"Friend": 2, "Person": 1})
    assert schema.arity("Friend") == 2
    assert schema.max_arity == 2
    assert "Friend" in schema and "Enemy" not in schema


def test_schema_rejects_zero_arity():
    with pytest.raises(ValueError):
        Schema({"Nullary": 0})


def test_add_and_query():
    db = Database(Schema({"Friend": 2}), domain_size=4)
    db.add("Friend", (0, 1))
    assert (0, 1) in db.relation("Friend")
    assert (1, 0) not in db.relation("Friend")


def test_arity_validated():
    db = Database(Schema({"Friend": 2}), domain_size=4)
    with pytest.raises(ValueError):
        db.add("Friend", (0,))


def test_domain_validated():
    db = Database(Schema({"Friend": 2}), domain_size=4)
    with pytest.raises(ValueError):
        db.add("Friend", (0, 4))


def test_size_counts_entries():
    db = Database(Schema({"Friend": 2, "Tag": 1}), domain_size=5)
    db.add("Friend", (0, 1))
    db.add("Tag", (2,))
    assert db.size == 5 + 2 + 1


def test_all_tuples_deterministic_order():
    db = Database(Schema({"B": 1, "A": 1}), domain_size=3)
    db.add("B", (1,))
    db.add("A", (2,))
    db.add("A", (0,))
    assert list(db.all_tuples()) == [("A", (0,)), ("A", (2,)), ("B", (1,))]
