"""Unit tests for the colored adjacency graph A'(D)."""

from repro.db.adjacency import adjacency_graph, position_color, tuple_color
from repro.db.database import Database, Schema
from repro.graphs.neighborhoods import distance


def sample_db():
    db = Database(Schema({"Friend": 2, "Likes": 2}), domain_size=4)
    db.add("Friend", (0, 1))
    db.add("Friend", (1, 2))
    db.add("Likes", (2, 3))
    return db


def test_vertex_counts():
    enc = adjacency_graph(sample_db())
    # 4 domain + 3 tuple vertices + 6 position vertices
    assert enc.graph.n == 4 + 3 + 6
    assert enc.domain_size == 4


def test_domain_elements_keep_their_ids():
    enc = adjacency_graph(sample_db())
    assert enc.graph.color("Dom") == {0, 1, 2, 3}


def test_tuple_vertices_colored_by_relation():
    enc = adjacency_graph(sample_db())
    friends = enc.graph.color(tuple_color("Friend"))
    likes = enc.graph.color(tuple_color("Likes"))
    assert len(friends) == 2 and len(likes) == 1
    assert friends.isdisjoint(likes)


def test_one_subdivision_structure():
    """Element and tuple vertices sit at distance 2 through a C_i vertex."""
    enc = adjacency_graph(sample_db())
    t = enc.tuple_vertex[("Friend", (0, 1))]
    assert distance(enc.graph, 0, t) == 2
    assert distance(enc.graph, 1, t) == 2
    # the connecting vertices carry the right position colors
    middle0 = (set(enc.graph.neighbors(0)) & set(enc.graph.neighbors(t))).pop()
    assert enc.graph.has_color(middle0, position_color(1))


def test_elements_of_one_tuple_at_distance_four():
    enc = adjacency_graph(sample_db())
    assert distance(enc.graph, 0, 1) == 4  # via the Friend(0,1) tuple vertex
    assert distance(enc.graph, 0, 3) == 12  # three hops of tuples


def test_sparse_encoding_size():
    db = sample_db()
    enc = adjacency_graph(db)
    # ||A'(D)|| is linear in ||D||
    assert enc.graph.size <= 6 * db.size


def test_empty_database():
    db = Database(Schema({"R": 1}), domain_size=3)
    enc = adjacency_graph(db)
    assert enc.graph.n == 3
    assert enc.graph.num_edges == 0
