"""Unit tests for the Gaifman-graph reduction."""

import pytest

from repro.db.database import Database, Schema
from repro.db.gaifman import gaifman_density_witness, gaifman_graph


def test_binary_tuples_become_edges():
    db = Database(Schema({"R": 2}), domain_size=4)
    db.add("R", (0, 1))
    db.add("R", (2, 3))
    g = gaifman_graph(db)
    assert g.has_edge(0, 1) and g.has_edge(2, 3)
    assert not g.has_edge(1, 2)


def test_wide_tuple_becomes_clique():
    db = Database(Schema({"R": 4}), domain_size=4)
    db.add("R", (0, 1, 2, 3))
    g = gaifman_graph(db)
    assert g.num_edges == 6  # K_4


def test_repeated_elements_no_self_loop():
    db = Database(Schema({"R": 2}), domain_size=3)
    db.add("R", (1, 1))
    g = gaifman_graph(db)
    assert g.num_edges == 0


def test_unary_relations_become_colors():
    db = Database(Schema({"Person": 1, "R": 2}), domain_size=3)
    db.add("Person", (2,))
    db.add("R", (0, 1))
    g = gaifman_graph(db)
    assert g.has_color(2, "Person")


def test_density_witness_separates_reductions():
    """The paper's point: adjacency graphs stay sparser on wide schemas."""
    _, gaifman_exp, adjacency_exp = gaifman_density_witness(width=12, tuples=20)
    assert gaifman_exp > adjacency_exp


def test_density_witness_validates_width():
    with pytest.raises(ValueError):
        gaifman_density_witness(width=1, tuples=3)
