"""Unit tests for Lemma 2.2: relational query rewriting.

The lemma's statement — ``phi(D) = psi(A'(D))`` — is checked by comparing
naive relational evaluation with colored-graph evaluation of the
rewritten query, over random databases.
"""

import random
from itertools import product

import pytest

from repro.db.adjacency import adjacency_graph
from repro.db.database import Database, Schema
from repro.db.rewrite import RelationAtom, evaluate_db, rewrite_query
from repro.logic.semantics import evaluate, solutions
from repro.logic.syntax import And, EdgeAtom, Exists, Forall, Not, Or, Var

x, y, z = Var("x"), Var("y"), Var("z")


def random_db(seed, n=6, facts=8):
    rng = random.Random(seed)
    db = Database(Schema({"Friend": 2, "Likes": 2, "Person": 1}), domain_size=n)
    for _ in range(facts):
        db.add("Friend", (rng.randrange(n), rng.randrange(n)))
        db.add("Likes", (rng.randrange(n), rng.randrange(n)))
    for v in range(0, n, 2):
        db.add("Person", (v,))
    return db


RELATIONAL_QUERIES = [
    RelationAtom("Friend", (x, y)),
    And((RelationAtom("Friend", (x, y)), RelationAtom("Person", (x,)))),
    Exists(z, And((RelationAtom("Friend", (x, z)), RelationAtom("Likes", (z, y))))),
    Or((RelationAtom("Friend", (x, y)), RelationAtom("Likes", (x, y)))),
    Not(RelationAtom("Friend", (x, y))),
    Forall(z, Or((Not(RelationAtom("Friend", (x, z))), RelationAtom("Person", (z,))))),
]


@pytest.mark.parametrize("phi", RELATIONAL_QUERIES, ids=[repr(q) for q in RELATIONAL_QUERIES])
def test_lemma_2_2_equivalence(phi):
    for seed in (0, 1):
        db = random_db(seed)
        enc = adjacency_graph(db)
        psi = rewrite_query(phi)
        from repro.logic.transform import free_variables

        order = sorted(free_variables(psi), key=lambda v: v.name)
        for values in product(range(db.domain_size), repeat=len(order)):
            env = dict(zip(order, values))
            assert evaluate_db(db, phi, env) == evaluate(enc.graph, psi, env), (
                seed,
                values,
            )


def test_rewritten_solutions_project_to_db_answers():
    db = random_db(7)
    enc = adjacency_graph(db)
    phi = RelationAtom("Friend", (x, y))
    psi = rewrite_query(phi)
    graph_solutions = set(solutions(enc.graph, psi, [x, y]))
    # free variables are relativized to Dom: *all* solutions are db tuples
    assert graph_solutions == set(db.relation("Friend"))


def test_raw_edge_atoms_rejected():
    with pytest.raises(ValueError):
        rewrite_query(EdgeAtom(x, y))


def test_color_atom_has_no_db_semantics():
    from repro.logic.syntax import ColorAtom

    with pytest.raises(ValueError):
        evaluate_db(random_db(0), ColorAtom("Red", x), {x: 0})
