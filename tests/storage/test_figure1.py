"""Reproduction of the paper's Figure 1 (experiment E2).

Figure 1 illustrates the Storing-Theorem data structure for ``n = 27``,
``eps = 1/3`` (hence ``d = 3``, ``h = 3``), storing the identity function
on the domain ``{2, 4, 5, 19, 24, 25}``.

The paper's figure fixes one register layout; concrete register numbers
depend on the insertion order, which the paper leaves open.  We insert in
increasing key order and verify every layout-independent statement made
in the text, plus the full content of the resulting register file and the
removal example ("consider the case where 19 must be removed").
"""

from repro.storage.registers import CHILD, GAP, PARENT
from repro.storage.trie import HIT, MISS, TrieStore

DOMAIN = (2, 4, 5, 19, 24, 25)


def figure1_store() -> TrieStore:
    store = TrieStore(27, 1, 1 / 3)
    for x in DOMAIN:
        store.insert((x,), x)
    return store


def test_parameters_match_figure():
    store = figure1_store()
    assert (store.d, store.h) == (3, 3)


def test_base3_decompositions_match_text():
    # "the decomposition of 2 in base d = 3 is 002, while 4 is 011,
    #  5 is 012, 19 is 201 and so on"
    store = figure1_store()
    assert store._encode((2,)) == [0, 0, 2]
    assert store._encode((4,)) == [0, 1, 1]
    assert store._encode((5,)) == [0, 1, 2]
    assert store._encode((19,)) == [2, 0, 1]
    assert store._encode((24,)) == [2, 2, 0]
    assert store._encode((25,)) == [2, 2, 1]


def test_root_cells_match_text():
    store = figure1_store()
    # "R_1 ... content is (1, 5) because the first child of the root ...
    #  the first register representing it is R_5"
    assert store.registers.read(1) == (CHILD, 5)
    # "R_2 whose content is (0, 19) because the second child of the root is
    #  a leaf and 19 is the smallest element ... starting with [more than] 1"
    assert store.registers.read(2) == (GAP, (19,))
    # under increasing-order insertion the third root cell points at the
    # subtree of the 2xx keys
    delta, _ = store.registers.read(3)
    assert delta == CHILD


def test_child_parent_backpointers():
    store = figure1_store()
    # "(-1, 1) because R_1 is the first register encoding the root" — the
    # last register of the first child points back to the parent cell R_1.
    first_child = store.registers.read(1)[1]
    assert store.registers.read(first_child + store.d) == (PARENT, 1)
    # root's own parent pointer is Null
    assert store.registers.read(1 + store.d) == (PARENT, None)


def test_leaf_register_contents():
    store = figure1_store()
    # the cell representing 5 (= digits 012) holds (1, f(5)) = (1, 5)
    assert store.lookup((5,)) == (HIT, 5)
    node = store._node_on_path(store._encode((5,)), store.depth - 1)
    assert store.registers.read(node + 2) == (CHILD, 5)


def test_full_register_layout_under_increasing_insertion():
    """The complete register dump for in-order insertion.

    Arrays (base register, prefix): 1 root, 5 "0", 9 "00", 13 "01",
    17 "2", 21 "20", 25 "22"; R_0 = 29 — seven arrays of d+1 = 4
    registers, matching the figure's array count and R_0 = 29.
    """
    store = figure1_store()
    assert store.registers.next_free == 29
    expected = [
        (GAP, 29),  # R_0
        (CHILD, 5), (GAP, (19,)), (CHILD, 17), (PARENT, None),  # root
        (CHILD, 9), (CHILD, 13), (GAP, (19,)), (PARENT, 1),  # "0"
        (GAP, (2,)), (GAP, (2,)), (CHILD, 2), (PARENT, 5),  # "00"
        (GAP, (4,)), (CHILD, 4), (CHILD, 5), (PARENT, 6),  # "01"
        (CHILD, 21), (GAP, (24,)), (CHILD, 25), (PARENT, 3),  # "2"
        (GAP, (19,)), (CHILD, 19), (GAP, (24,)), (PARENT, 17),  # "20"
        (CHILD, 24), (CHILD, 25), (GAP, None), (PARENT, 19),  # "22"
    ]
    assert store.registers.dump() == expected


def test_removal_example_from_text():
    """"Consider the case where 19 must be removed from the domain ...
    the array [for prefix 20] is now irrelevant [and] we move the content
    of the [last] array in [its] place ... and update R_0."""
    store = figure1_store()
    before = store.registers.next_free
    store.remove((19,))
    # one array of d+1 = 4 registers was reclaimed
    assert store.registers.next_free == before - 4
    # "replace the value (0, 19) by (0, 24)" in the gap cells between 5 and 24
    assert store.lookup((6,)) == (MISS, (24,))
    assert store.lookup((19,)) == (MISS, (24,))
    assert store.lookup((3,)) == (MISS, (4,))
    # the moved array (prefix 22) is still reachable and correct
    assert store.lookup((24,)) == (HIT, 24)
    assert store.lookup((25,)) == (HIT, 25)
    store.check_invariants()


def test_lookups_cover_whole_universe():
    store = figure1_store()
    import bisect

    domain = sorted(DOMAIN)
    for probe in range(27):
        status, payload = store.lookup((probe,))
        if probe in DOMAIN:
            assert (status, payload) == (HIT, probe)
        else:
            index = bisect.bisect_right(domain, probe)
            expected = (domain[index],) if index < len(domain) else None
            assert (status, payload) == (MISS, expected)
