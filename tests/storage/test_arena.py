"""Differential and property tests for the flat-arena storage engine.

The arena layout's contract is *register-level identity* with the object
layout: after any op sequence the two register files hold the same
``(delta, payload)`` cells in the same order, so every Theorem 3.1
answer (lookup, successor, predecessor, iteration order) matches
bit-for-bit.  These tests hold both layouts to that — against each other
and against the obvious dict + sorted-list model — and pin down the
arena-specific machinery: payload tag encoding, side-table interning and
refcounts, compressed snapshots, and the layout-selection knob.
"""

from __future__ import annotations

import bisect
import gc
import pickle
import random
import weakref

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.arena import (
    DEFAULT_LAYOUT,
    LAYOUT_ENV_VAR,
    LAYOUTS,
    ArenaRegisterFile,
    ArenaTrieStore,
    make_trie_store,
    resolve_layout,
)
from repro.storage.function_store import StoredFunction
from repro.storage.registers import CHILD, GAP, PARENT, RegisterFile
from repro.storage.trie import HIT, MISS, TrieStore


class _Token:
    """Weakref-able payload for the release-last leak regressions."""


# ----------------------------------------------------------------------
# layout selection


def test_resolve_layout_defaults_and_env(monkeypatch):
    monkeypatch.delenv(LAYOUT_ENV_VAR, raising=False)
    assert resolve_layout() == DEFAULT_LAYOUT
    assert resolve_layout("auto") == DEFAULT_LAYOUT
    assert resolve_layout("arena") == "arena"
    monkeypatch.setenv(LAYOUT_ENV_VAR, "arena")
    assert resolve_layout() == "arena"
    assert resolve_layout("auto") == "arena"
    # an explicit layout beats the environment
    assert resolve_layout("object") == "object"


def test_resolve_layout_rejects_unknown_names():
    with pytest.raises(ValueError, match="unknown storage layout"):
        resolve_layout("rowwise")


def test_make_trie_store_picks_the_layout():
    assert type(make_trie_store(16, 1, 0.5, layout="object")) is TrieStore
    assert isinstance(make_trie_store(16, 1, 0.5, layout="arena"), ArenaTrieStore)


# ----------------------------------------------------------------------
# the register file: drop-in parity with the object layout


def test_register_file_parity_on_a_mixed_op_sequence():
    files = (RegisterFile(), ArenaRegisterFile())
    for registers in files:
        base = registers.allocate(5)
        registers.write(base, CHILD, 42)
        registers.write(base + 1, GAP, (1, 2))
        registers.write(base + 2, GAP, None)
        registers.write(base + 3, CHILD, None)
        registers.write(base + 4, PARENT, base)
        second = registers.allocate(3)
        registers.write(second, CHILD, "payload")
        registers.write(second + 1, GAP, (1, 2))
        registers.write(second + 2, PARENT, None)
        registers.release_last(3)
    obj, arena = files
    assert arena.dump() == obj.dump()
    assert arena.next_free == obj.next_free
    assert arena.used == obj.used


def test_payload_encoding_edge_cases():
    registers = ArenaRegisterFile()
    base = registers.allocate(5)
    big = 1 << 70  # beyond the inline-integer range: interned
    registers.write(base, CHILD, big)
    registers.write(base + 1, CHILD, -big)
    unhashable = [1, 2]
    registers.write(base + 2, CHILD, unhashable)
    registers.write(base + 3, CHILD, True)
    registers.write(base + 4, CHILD, None)
    assert registers.read(base) == (CHILD, big)
    assert registers.read(base + 1) == (CHILD, -big)
    assert registers.read(base + 2)[1] is unhashable
    assert registers.read(base + 3)[1] is True  # bool stays bool, not int
    assert registers.read(base + 4) == (CHILD, None)
    registers.check_intern_invariants(registers.used)


def test_gap_successors_are_interned_once():
    registers = ArenaRegisterFile()
    base = registers.allocate(4)
    for i in range(4):
        registers.write(base + i, GAP, (7, 7))
    assert registers._objects.count((7, 7)) == 1
    registers.check_intern_invariants(registers.used)
    for i in range(4):
        registers.write(base + i, GAP, (8, 8))
    registers.check_intern_invariants(registers.used)
    assert (7, 7) not in registers._objects  # fully released, slot reused
    assert registers._objects.count((8, 8)) == 1


@pytest.mark.parametrize("layout", LAYOUTS)
def test_release_last_does_not_leak_payloads(layout):
    registers = RegisterFile() if layout == "object" else ArenaRegisterFile()
    token = _Token()
    ref = weakref.ref(token)
    base = registers.allocate(2)
    registers.write(base, CHILD, token)
    registers.write(base + 1, GAP, (3,))
    registers.release_last(2)
    assert registers.next_free == base
    del token
    gc.collect()
    assert ref() is None, "released register kept its payload alive"


@pytest.mark.parametrize("layout", LAYOUTS)
def test_remove_releases_stored_values(layout):
    store = make_trie_store(16, 2, 0.5, layout=layout)
    token = _Token()
    ref = weakref.ref(token)
    store.insert((3, 4), token)
    store.insert((5, 6), 0)
    store.remove((3, 4))
    store.check_invariants()
    del token
    gc.collect()
    assert ref() is None, "removed key kept its value alive"


# ----------------------------------------------------------------------
# degenerate trie parameters (the n=1 / eps=1.0 / k=1 bugfix)


@pytest.mark.parametrize("layout", LAYOUTS)
@pytest.mark.parametrize(
    "n,k,eps",
    [(1, 1, 0.5), (1, 1, 1.0), (1, 2, 1.0), (2, 1, 1.0), (3, 2, 1.0)],
)
def test_degenerate_parameters(layout, n, k, eps):
    store = make_trie_store(n, k, eps, layout=layout)
    assert store.d >= 2  # the normalized branching factor
    keys = sorted({tuple((i + j) % n for j in range(k)) for i in range(n + 1)})
    for key in keys:
        store.insert(key, sum(key))
    store.check_invariants()
    assert list(store.keys()) == keys
    for key in keys:
        assert store.lookup(key) == (HIT, sum(key))
    assert store.successor(keys[0]) == keys[0]
    assert store.successor(keys[-1], strict=True) is None
    assert store.predecessor(keys[-1], strict=False) == keys[-1]
    for key in keys:
        store.remove(key)
    store.check_invariants()
    assert len(store) == 0


@pytest.mark.parametrize("layout", LAYOUTS)
def test_validation_parity_on_bad_keys(layout):
    store = make_trie_store(9, 2, 0.5, layout=layout)
    store.insert((1, 2), 5)
    for bad_arity in [(), (1,), (1, 2, 3)]:
        with pytest.raises(ValueError):
            store.lookup(bad_arity)
    for bad in [(9, 0), (0, 9), (0, -1), (-1, 0)]:
        with pytest.raises(ValueError):
            store.lookup(bad)
        with pytest.raises(ValueError):
            store.successor(bad)
        with pytest.raises(ValueError):
            store.successor(bad, strict=True)


# ----------------------------------------------------------------------
# the differential property suite: arena vs object vs the model


def keys_strategy(n: int, k: int):
    return st.tuples(*[st.integers(0, n - 1)] * k)


@st.composite
def scenario(draw):
    n = draw(st.sampled_from([1, 2, 4, 9, 16, 27, 50]))
    k = draw(st.sampled_from([1, 2, 3]))
    eps = draw(st.sampled_from([0.3, 0.5, 0.9, 1.0]))
    ops = draw(
        st.lists(
            st.tuples(st.sampled_from(["add", "del"]), keys_strategy(n, k)),
            min_size=1,
            max_size=50,
        )
    )
    probes = draw(st.lists(keys_strategy(n, k), min_size=1, max_size=10))
    return n, k, eps, ops, probes


@given(scenario())
@settings(max_examples=100, deadline=None)
def test_layouts_match_each_other_and_the_model(case):
    n, k, eps, ops, probes = case
    obj = make_trie_store(n, k, eps, layout="object")
    arena = make_trie_store(n, k, eps, layout="arena")
    model: dict[tuple[int, ...], int] = {}
    for op, key in ops:
        if op == "add":
            obj.insert(key, sum(key))
            arena.insert(key, sum(key))
            model[key] = sum(key)
        elif key in model:
            obj.remove(key)
            arena.remove(key)
            del model[key]
        obj.check_invariants()
        arena.check_invariants()
    # register-level identity: same cells, same order, same accounting
    assert arena.registers.dump() == obj.registers.dump()
    assert arena.registers_used == obj.registers_used
    ordered = sorted(model)
    assert list(arena.keys()) == list(obj.keys()) == ordered
    assert len(arena) == len(obj) == len(model)
    for probe in probes:
        assert arena.lookup(probe) == obj.lookup(probe)
        status, payload = arena.lookup(probe)
        if probe in model:
            assert (status, payload) == (HIT, model[probe])
        else:
            index = bisect.bisect_right(ordered, probe)
            expected = ordered[index] if index < len(ordered) else None
            assert (status, payload) == (MISS, expected)
        for strict in (False, True):
            assert arena.successor(probe, strict=strict) == obj.successor(
                probe, strict=strict
            )
            assert arena.predecessor(probe, strict=strict) == obj.predecessor(
                probe, strict=strict
            )


# ----------------------------------------------------------------------
# bulk loading and snapshots


@pytest.mark.parametrize("layout", LAYOUTS)
def test_bulk_load_matches_sorted_incremental_inserts(layout):
    rng = random.Random(5)
    keys = sorted({tuple(rng.randrange(27) for _ in range(2)) for _ in range(60)})
    pairs = [(key, i) for i, key in enumerate(keys)]
    bulk = make_trie_store(27, 2, 1 / 3, layout=layout)
    assert bulk.bulk_load(pairs) == len(pairs)
    bulk.check_invariants()
    incremental = make_trie_store(27, 2, 1 / 3, layout=layout)
    for key, value in pairs:
        incremental.insert(key, value)
    assert bulk.registers.dump() == incremental.registers.dump()
    assert list(bulk.keys()) == list(incremental.keys())


@pytest.mark.parametrize("layout", LAYOUTS)
def test_pickle_round_trip(layout):
    store = make_trie_store(27, 2, 1 / 3, layout=layout)
    for i in range(40):
        store.insert((i % 27, (i * 7) % 27), i)
    clone = pickle.loads(pickle.dumps(store))
    clone.check_invariants()
    assert clone.registers.dump() == store.registers.dump()
    assert list(clone.keys()) == list(store.keys())
    # the loaded store stays updatable
    clone.insert((26, 26), "post-load")
    assert clone.lookup((26, 26)) == (HIT, "post-load")


def test_arena_snapshot_is_smaller_than_object():
    snapshots = {}
    for layout in LAYOUTS:
        store = make_trie_store(256, 2, 0.5, layout=layout)
        for i in range(300):
            store.insert(((i * 17) % 256, (i * 31) % 256), True)
        snapshots[layout] = pickle.dumps(store, protocol=pickle.HIGHEST_PROTOCOL)
    assert len(snapshots["arena"]) < len(snapshots["object"])


def test_arena_nbytes_reports_the_flat_buffers():
    store = make_trie_store(64, 2, 0.5, layout="arena")
    for i in range(32):
        store.insert((i, i), i)
    # 1 delta byte + 8 payload bytes per allocated register
    assert store.arena_nbytes >= 9 * store.registers_used


# ----------------------------------------------------------------------
# one level up: StoredFunction and the query engine


def test_stored_function_layouts_agree():
    items = [((3, 4), "a"), ((1, 2), "b"), ((5, 5), None), ((1, 2), "b2")]
    funcs = {
        layout: StoredFunction(9, 2, eps=0.5, items=items, layout=layout)
        for layout in LAYOUTS
    }
    for layout, fn in funcs.items():
        assert fn.layout == layout
    obj, arena = funcs["object"], funcs["arena"]
    assert list(arena.items()) == list(obj.items())
    for probe in [(0, 0), (1, 2), (3, 4), (5, 5), (8, 8)]:
        assert arena.get(probe) == obj.get(probe)
        assert (probe in arena) == (probe in obj)
        assert arena.successor(probe) == obj.successor(probe)
        assert arena.predecessor(probe) == obj.predecessor(probe)


def test_engine_layouts_enumerate_identically():
    from repro.core.config import EngineConfig
    from repro.core.engine import build_index
    from repro.graphs.generators import grid

    graph = grid(5, 5, seed=3)
    results = {}
    for layout in LAYOUTS:
        index = build_index(
            graph,
            "dist(x, y) > 2 & Blue(y)",
            config=EngineConfig(layout=layout),
        )
        results[layout] = (list(index.enumerate()), index.count())
    assert results["arena"] == results["object"]
    assert results["arena"][1] > 0
