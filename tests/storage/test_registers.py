"""Unit tests for the register file (the RAM model of Section 3)."""

from repro.storage.registers import CHILD, GAP, PARENT, RegisterFile


def test_initial_state():
    registers = RegisterFile()
    assert registers.next_free == 1
    assert registers.used == 1


def test_allocate_returns_consecutive_blocks():
    registers = RegisterFile()
    first = registers.allocate(4)
    second = registers.allocate(4)
    assert first == 1
    assert second == 5
    assert registers.next_free == 9


def test_write_and_read_roundtrip():
    registers = RegisterFile()
    base = registers.allocate(3)
    registers.write(base, CHILD, 42)
    registers.write(base + 1, GAP, (1, 2))
    registers.write(base + 2, PARENT, None)
    assert registers.read(base) == (CHILD, 42)
    assert registers.read(base + 1) == (GAP, (1, 2))
    assert registers.read(base + 2) == (PARENT, None)


def test_release_last_reclaims_space():
    registers = RegisterFile()
    registers.allocate(4)
    registers.allocate(4)
    registers.release_last(4)
    assert registers.next_free == 5
    # the reclaimed block is handed out again
    assert registers.allocate(4) == 5


def test_release_last_clears_freed_cells():
    """Regression: released registers must drop their payloads.

    Before the fix, ``release_last`` only moved ``next_free`` back, so
    every value and successor tuple that ever sat at the high end of the
    file stayed alive through the free pool — a leak on remove-heavy
    workloads.
    """
    registers = RegisterFile()
    base = registers.allocate(2)
    registers.write(base, CHILD, "value")
    registers.write(base + 1, GAP, (1,))
    registers.release_last(2)
    assert registers.dump(base, base + 2) == [(GAP, None), (GAP, None)]


def test_dump_reflects_used_registers():
    registers = RegisterFile()
    base = registers.allocate(2)
    registers.write(base, GAP, "a")
    registers.write(base + 1, GAP, "b")
    snapshot = registers.dump(base)
    assert snapshot == [(GAP, "a"), (GAP, "b")]
