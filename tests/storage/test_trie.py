"""Unit tests for the Storing Theorem trie (Theorem 3.1)."""

import pytest

from repro.storage.trie import HIT, MISS, TrieStore


def make_store(n=27, k=1, eps=1 / 3):
    return TrieStore(n, k, eps)


class TestParameters:
    def test_branching_factor_matches_paper(self):
        # the paper's example: n=27, eps=1/3 -> d=3, h=3
        store = make_store()
        assert store.d == 3
        assert store.h == 3
        assert store.depth == 3

    def test_d_power_h_covers_n(self):
        for n in (2, 5, 10, 100, 1000):
            for eps in (0.25, 0.4, 0.51, 1.0):
                store = TrieStore(n, 1, eps)
                assert store.d ** store.h >= n

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            TrieStore(0, 1, 0.5)
        with pytest.raises(ValueError):
            TrieStore(5, 0, 0.5)
        with pytest.raises(ValueError):
            TrieStore(5, 1, 0.0)
        with pytest.raises(ValueError):
            TrieStore(5, 1, 1.5)


class TestLookup:
    def test_empty_store_misses_with_null(self):
        store = make_store()
        assert store.lookup((5,)) == (MISS, None)

    def test_hit_returns_value(self):
        store = make_store()
        store.insert((5,), "five")
        assert store.lookup((5,)) == (HIT, "five")

    def test_miss_returns_successor(self):
        store = make_store()
        for x in (2, 4, 5, 19, 24, 25):
            store.insert((x,), x)
        assert store.lookup((3,)) == (MISS, (4,))
        assert store.lookup((6,)) == (MISS, (19,))
        assert store.lookup((20,)) == (MISS, (24,))
        assert store.lookup((26,)) == (MISS, None)

    def test_out_of_range_key_rejected(self):
        store = make_store()
        with pytest.raises(ValueError):
            store.lookup((27,))
        with pytest.raises(ValueError):
            store.lookup((-1,))

    def test_wrong_arity_rejected(self):
        store = make_store()
        with pytest.raises(ValueError):
            store.lookup((1, 2))


class TestInsert:
    def test_insert_reports_newness(self):
        store = make_store()
        assert store.insert((3,), "a") is True
        assert store.insert((3,), "b") is False
        assert store.lookup((3,)) == (HIT, "b")

    def test_size_tracks_domain(self):
        store = make_store()
        for x in (1, 2, 3):
            store.insert((x,), x)
        store.insert((2,), 20)  # overwrite: no growth
        assert len(store) == 3

    def test_gap_cells_updated_on_insert(self):
        store = make_store()
        store.insert((20,), 20)
        assert store.lookup((0,)) == (MISS, (20,))
        store.insert((10,), 10)
        assert store.lookup((0,)) == (MISS, (10,))
        assert store.lookup((11,)) == (MISS, (20,))
        store.check_invariants()


class TestRemove:
    def test_remove_returns_value(self):
        store = make_store()
        store.insert((7,), "seven")
        assert store.remove((7,)) == "seven"
        assert store.lookup((7,)) == (MISS, None)

    def test_remove_missing_raises(self):
        store = make_store()
        with pytest.raises(KeyError):
            store.remove((7,))

    def test_remove_repairs_gap_cells(self):
        store = make_store()
        for x in (2, 4, 5, 19, 24, 25):
            store.insert((x,), x)
        store.remove((19,))
        assert store.lookup((6,)) == (MISS, (24,))
        assert store.lookup((19,)) == (MISS, (24,))
        store.check_invariants()

    def test_remove_compacts_registers(self):
        # the paper's removal example: dropping 19 frees one array
        store = make_store()
        for x in (2, 4, 5, 19, 24, 25):
            store.insert((x,), x)
        before = store.registers_used
        store.remove((19,))
        assert store.registers_used == before - (store.d + 1)
        store.check_invariants()

    def test_remove_everything_returns_to_root_only(self):
        store = make_store()
        keys = [(2,), (4,), (19,)]
        for key in keys:
            store.insert(key, 0)
        for key in keys:
            store.remove(key)
        # only the root array + R_0 remain
        assert store.registers_used == 1 + (store.d + 1)
        assert store.lookup((0,)) == (MISS, None)
        store.check_invariants()


class TestSuccessorPredecessor:
    def test_successor_strict_and_weak(self):
        store = make_store()
        for x in (2, 4, 19):
            store.insert((x,), x)
        assert store.successor((2,)) == (2,)
        assert store.successor((2,), strict=True) == (4,)
        assert store.successor((26,), strict=True) is None
        assert store.successor((0,)) == (2,)

    def test_predecessor(self):
        store = make_store()
        for x in (2, 4, 19):
            store.insert((x,), x)
        assert store.predecessor((4,)) == (2,)
        assert store.predecessor((4,), strict=False) == (4,)
        assert store.predecessor((2,)) is None
        assert store.predecessor((26,)) == (19,)

    def test_min_key(self):
        store = make_store()
        assert store.min_key() is None
        store.insert((9,), 1)
        assert store.min_key() == (9,)


class TestBinaryKeys:
    def test_lexicographic_order_of_pairs(self):
        store = TrieStore(10, 2, 0.5)
        keys = [(1, 9), (2, 0), (2, 5), (7, 1)]
        for key in keys:
            store.insert(key, str(key))
        assert store.successor((1, 9), strict=True) == (2, 0)
        assert store.successor((2, 1)) == (2, 5)
        assert store.lookup((0, 0)) == (MISS, (1, 9))
        assert list(store.keys()) == sorted(keys)
        store.check_invariants()

    def test_items_iterates_in_order(self):
        store = TrieStore(6, 2, 0.5)
        keys = [(5, 5), (0, 1), (3, 2)]
        for key in keys:
            store.insert(key, sum(key))
        assert list(store.items()) == [(k, sum(k)) for k in sorted(keys)]


class TestSpace:
    def test_space_linear_in_domain(self):
        # Theorem 3.1: at most c * |Dom| * n^eps registers
        n, eps = 256, 0.5
        store = TrieStore(n, 1, eps)
        for x in range(0, n, 7):
            store.insert((x,), x)
        domain = len(store)
        bound = 4 * (store.d + 1) * store.h * domain + store.d + 2
        assert store.registers_used <= bound
