"""Property-based tests: the trie against a dict + sorted-list model.

Hypothesis drives random insert/overwrite/remove sequences and checks
every Theorem 3.1 feature (lookup-or-successor, predecessor via the dual
structure, iteration order, register accounting) against the obvious
Python model.
"""

from __future__ import annotations

import bisect

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.function_store import StoredFunction
from repro.storage.trie import HIT, MISS, TrieStore


def keys_strategy(n: int, k: int):
    return st.tuples(*[st.integers(0, n - 1)] * k)


@st.composite
def scenario(draw):
    n = draw(st.sampled_from([4, 9, 16, 27, 50]))
    k = draw(st.sampled_from([1, 2, 3]))
    eps = draw(st.sampled_from([0.3, 0.5, 0.9]))
    ops = draw(
        st.lists(
            st.tuples(st.sampled_from(["add", "del"]), keys_strategy(n, k)),
            min_size=1,
            max_size=60,
        )
    )
    probes = draw(st.lists(keys_strategy(n, k), min_size=1, max_size=10))
    return n, k, eps, ops, probes


@given(scenario())
@settings(max_examples=120, deadline=None)
def test_trie_matches_model(case):
    n, k, eps, ops, probes = case
    store = TrieStore(n, k, eps)
    model: dict[tuple[int, ...], int] = {}
    for op, key in ops:
        if op == "add":
            store.insert(key, sum(key))
            model[key] = sum(key)
        elif key in model:
            store.remove(key)
            del model[key]
    store.check_invariants()
    ordered = sorted(model)
    assert list(store.keys()) == ordered
    assert len(store) == len(model)
    for probe in probes:
        status, payload = store.lookup(probe)
        if probe in model:
            assert (status, payload) == (HIT, model[probe])
        else:
            index = bisect.bisect_right(ordered, probe)
            expected = ordered[index] if index < len(ordered) else None
            assert (status, payload) == (MISS, expected)
        # strict successor
        index = bisect.bisect_right(ordered, probe)
        expected = ordered[index] if index < len(ordered) else None
        assert store.successor(probe, strict=True) == expected


@given(scenario())
@settings(max_examples=80, deadline=None)
def test_stored_function_predecessor_matches_model(case):
    n, k, eps, ops, probes = case
    store = StoredFunction(n, k, eps)
    model: dict[tuple[int, ...], int] = {}
    for op, key in ops:
        if op == "add":
            store[key] = sum(key)
            model[key] = sum(key)
        elif key in model:
            del store[key]
            del model[key]
    store.check_invariants()
    ordered = sorted(model)
    for probe in probes:
        index = bisect.bisect_left(ordered, probe)
        expected = ordered[index - 1] if index > 0 else None
        assert store.predecessor(probe) == expected
        weak = probe if probe in model else expected
        assert store.predecessor(probe, strict=False) == weak
    assert store.max_key() == (ordered[-1] if ordered else None)
    assert store.min_key() == (ordered[0] if ordered else None)


@given(scenario())
@settings(max_examples=60, deadline=None)
def test_register_space_bound(case):
    """Theorem 3.1's space bound: O(|Dom| * d * k * h) registers."""
    n, k, eps, ops, _ = case
    store = TrieStore(n, k, eps)
    model = set()
    for op, key in ops:
        if op == "add":
            store.insert(key, 0)
            model.add(key)
        elif key in model:
            store.remove(key)
            model.discard(key)
    width = store.d + 1
    # every key contributes at most depth arrays; the root is always there
    bound = 1 + width * (1 + store.depth * max(len(model), 1))
    assert store.registers_used <= bound
