"""mmap-shared arena re-homing (:mod:`repro.storage.shared`).

``share_index`` must move the register-file words into one shared
mapping without changing a single answer, leave the index structurally
sound, and make the buffers genuinely read-only.  On Linux the mapping
must also be *findable* — the named ``memfd:repro-arena`` entry in smaps
is what the pool's sharing evidence is built on.
"""

from __future__ import annotations

import mmap
import os

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import build_index
from repro.graphs.generators import grid
from repro.storage.arena import ArenaRegisterFile
from repro.storage.shared import (
    MEMFD_NAME,
    collect_arenas,
    share_index,
    shared_map_stats,
)

QUERY = "dist(x, y) > 2 & Blue(y)"


@pytest.fixture
def arena_index():
    return build_index(grid(9, 9, seed=4), QUERY, config=EngineConfig(layout="arena"))


def test_share_preserves_answers_and_invariants(arena_index):
    before = list(arena_index.enumerate())
    files, stores = collect_arenas(arena_index)
    assert files, "arena layout must expose register files"
    arena = share_index(arena_index, tag="test")
    try:
        assert arena is not None
        assert arena.registers == len(files)
        assert arena.nbytes > 0
        assert list(arena_index.enumerate()) == before
        for store in stores:
            store.check_invariants()
    finally:
        arena.close()


def test_shared_buffers_are_readonly(arena_index):
    arena = share_index(arena_index, tag="ro")
    try:
        files, _ = collect_arenas(arena_index)
        for rf in files:
            with pytest.raises(TypeError):
                rf._payload[0] = 1
            with pytest.raises(TypeError):
                rf._delta[0] = 1
    finally:
        arena.close()


def test_share_object_layout_is_noop():
    index = build_index(grid(6, 6, seed=4), QUERY, config=EngineConfig(layout="object"))
    assert share_index(index, tag="obj") is None


def test_collect_arenas_dedupes():
    index = build_index(grid(6, 6, seed=4), QUERY, config=EngineConfig(layout="arena"))
    files, stores = collect_arenas(index)
    assert len(files) == len({id(f) for f in files})
    assert len(stores) == len({id(s) for s in stores})
    assert all(isinstance(f, ArenaRegisterFile) for f in files)


def test_touch_pages_covers_whole_mapping(arena_index):
    arena = share_index(arena_index, tag="touch")
    try:
        pages = arena.touch_pages()
        assert pages == -(-arena.nbytes // mmap.PAGESIZE)
    finally:
        arena.close()


@pytest.mark.skipif(
    not hasattr(os, "memfd_create"), reason="memfd naming is Linux-only"
)
def test_shared_mapping_visible_in_smaps(arena_index):
    baseline = shared_map_stats()["maps"]
    arena = share_index(arena_index, tag="smaps")
    try:
        arena.touch_pages()
        stats = shared_map_stats()
        assert stats["maps"] == baseline + 1
        assert stats["rss_kb"] > 0
        assert arena.name.startswith(MEMFD_NAME)
    finally:
        arena.close()


def test_double_share_keeps_working(arena_index):
    """Sharing an already-shared index re-homes it again, answers intact
    (the pool never does this, but idempotence keeps it debuggable)."""
    before = list(arena_index.enumerate())
    first = share_index(arena_index, tag="a")
    second = share_index(arena_index, tag="b")
    try:
        assert list(arena_index.enumerate()) == before
    finally:
        second.close()
        first.close()
