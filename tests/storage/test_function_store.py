"""Unit tests for the StoredFunction facade (primary + dual trie)."""

import pytest

from repro.storage.function_store import StoredFunction
from repro.storage.trie import HIT, MISS


def test_docstring_example():
    f = StoredFunction(27, 1, eps=1 / 3)
    for x in (2, 4, 5, 19, 24, 25):
        f[x,] = x
    assert f.lookup((7,)) == (MISS, (19,))
    assert f.predecessor((7,)) == (5,)


def test_int_keys_are_accepted_for_unary_functions():
    f = StoredFunction(10, 1)
    f[3] = "three"
    assert f[3] == "three"
    assert 3 in f
    assert f.get(4) is None


def test_getitem_raises_on_missing():
    f = StoredFunction(10, 1)
    with pytest.raises(KeyError):
        f[(5,)]


def test_setitem_overwrites():
    f = StoredFunction(10, 2)
    f[(1, 2)] = "a"
    f[(1, 2)] = "b"
    assert f[(1, 2)] == "b"
    assert len(f) == 1


def test_delete_keeps_dual_in_sync():
    f = StoredFunction(10, 1)
    for x in (1, 5, 9):
        f[x] = x
    del f[(5,)]
    assert f.predecessor((9,)) == (1,)
    assert f.successor((2,)) == (9,)
    f.check_invariants()


def test_items_and_keys_in_order():
    f = StoredFunction(12, 2)
    keys = [(3, 3), (0, 7), (11, 0)]
    for key in keys:
        f[key] = sum(key)
    assert list(f.keys()) == sorted(keys)
    assert list(f.items()) == [(k, sum(k)) for k in sorted(keys)]


def test_initial_items_argument():
    f = StoredFunction(8, 1, items=[((2,), "a"), ((6,), "b")])
    assert len(f) == 2
    assert f[(6,)] == "b"


def test_registers_used_counts_both_tries():
    f = StoredFunction(16, 1)
    empty = f.registers_used
    f[3] = 1
    assert f.registers_used >= empty


def test_successor_weak_vs_strict():
    f = StoredFunction(10, 1, items=[((4,), 1)])
    assert f.successor((4,)) == (4,)
    assert f.successor((4,), strict=True) is None
    assert f.successor((0,)) == (4,)
