"""Unit tests for Splitter strategies."""

from repro.graphs.colored_graph import ColoredGraph
from repro.graphs.generators import grid, path, random_tree
from repro.splitter.game import play_game
from repro.splitter.strategies import (
    CentroidStrategy,
    GreedySeparatorStrategy,
    TopmostStrategy,
    _is_forest,
    default_strategy,
    forest_depths,
)


def test_is_forest_detection():
    assert _is_forest(path(10, palette=()))
    assert _is_forest(random_tree(30, seed=2, palette=()))
    assert _is_forest(ColoredGraph(4))
    cyclic = ColoredGraph(3, [(0, 1), (1, 2), (2, 0)])
    assert not _is_forest(cyclic)


def test_forest_depths_root_at_smallest():
    g = path(5, palette=())
    depths = forest_depths(g)
    assert depths == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}


def test_default_strategy_picks_topmost_on_forests():
    assert isinstance(default_strategy(random_tree(20, seed=1, palette=())), TopmostStrategy)
    assert isinstance(default_strategy(grid(4, 4, palette=())), CentroidStrategy)


def test_topmost_chooses_shallowest():
    g = path(7, palette=())
    strategy = TopmostStrategy(forest_depths(g))
    assert strategy.choose(g, range(7), [3, 4, 5], 4, 1) == 3


def test_greedy_picks_hub():
    g = ColoredGraph(5, [(0, 1), (0, 2), (0, 3), (3, 4)])
    strategy = GreedySeparatorStrategy()
    assert strategy.choose(g, range(5), [0, 1, 2, 3], 0, 1) == 0


def test_centroid_splits_path_in_middle():
    g = path(9, palette=())
    strategy = CentroidStrategy()
    ball = list(range(9))
    assert strategy.choose(g, ball, ball, 4, 4) == 4


def test_centroid_falls_back_above_limit():
    g = path(40, palette=())
    strategy = CentroidStrategy(exact_limit=10)
    ball = list(range(40))
    choice = strategy.choose(g, ball, ball, 20, 40)
    assert choice in ball


def test_topmost_beats_greedy_on_deep_trees():
    g = random_tree(300, seed=4, palette=())
    topmost = play_game(g, 2, TopmostStrategy(forest_depths(g)))
    greedy = play_game(g, 2, GreedySeparatorStrategy())
    assert topmost <= greedy + 3  # topmost is designed for trees
