"""Unit tests for the splitter game (Definition 4.5)."""

import pytest

from repro.graphs.colored_graph import ColoredGraph
from repro.graphs.generators import grid, path, random_tree, star
from repro.splitter.game import SplitterGame, play_game, rounds_to_win, splitter_move
from repro.splitter.strategies import GreedySeparatorStrategy


def test_game_rejects_radius_zero():
    with pytest.raises(ValueError):
        SplitterGame(path(3, palette=()), 0)


def test_ball_is_arena_restricted():
    g = path(10, palette=())
    game = SplitterGame(g, 2)
    game.play_round(5, 5)  # arena becomes {3,4,6,7}
    assert game.arena == {3, 4, 6, 7}
    # 4's ball inside the arena cannot cross the removed vertex 5
    assert game.ball(4) == {3, 4}


def test_moves_validated():
    g = path(10, palette=())
    game = SplitterGame(g, 2)
    with pytest.raises(ValueError):
        game.play_round(0, 9)  # splitter move outside the ball
    game.play_round(0, 0)
    with pytest.raises(ValueError):
        game.ball(9)  # connector move outside the arena


def test_splitter_always_wins_eventually():
    for build in (lambda: path(30, palette=()), lambda: random_tree(40, seed=1), lambda: grid(5, 5)):
        g = build()
        rounds = play_game(g, 2)
        assert 0 < rounds <= g.n


def test_edgeless_graph_is_one_round():
    g = ColoredGraph(5)
    assert play_game(g, 2) == 1  # any ball is a single vertex


def test_star_needs_two_rounds_at_most():
    g = star(20, palette=())
    assert rounds_to_win(g, 2, trials=3) <= 2


def test_rounds_to_win_monotone_in_radius_on_paths():
    g = path(200, palette=())
    r1 = rounds_to_win(g, 1, trials=3)
    r4 = rounds_to_win(g, 4, trials=3)
    assert r1 <= r4 + 1  # larger radius gives Connector more room


def test_rounds_bounded_for_trees():
    # trees are (very) nowhere dense: lambda(r) stays small
    g = random_tree(400, seed=7)
    assert rounds_to_win(g, 2, trials=4) <= 8


def test_splitter_move_stays_in_ball():
    g = grid(6, 6)
    bag = sorted(range(12))
    s = splitter_move(g, bag, 0, 2, GreedySeparatorStrategy())
    assert s in bag


def test_unknown_connector_policy_rejected():
    with pytest.raises(ValueError):
        play_game(path(5, palette=()), 1, connector="bogus")
