"""Unit tests for constant-delay enumeration (Corollary 2.5)."""

from repro.core.config import EngineConfig
from repro.core.enumeration import enumerate_solutions, enumerate_with_delays
from repro.core.next_solution import NextSolutionIndex
from repro.graphs.colored_graph import ColoredGraph
from repro.graphs.generators import path, random_tree
from repro.logic.parser import parse_formula
from repro.logic.syntax import Var

x, y = Var("x"), Var("y")
TINY = EngineConfig(dist_naive_threshold=12, bag_naive_threshold=8)


def test_enumerates_in_lexicographic_order():
    g = random_tree(30, seed=4)
    index = NextSolutionIndex(g, parse_formula("dist(x, y) <= 2"), (x, y), TINY)
    sols = list(enumerate_solutions(index))
    assert sols == sorted(sols)
    assert len(sols) == len(set(sols))  # no repetitions (paper's requirement)


def test_empty_result_set():
    g = path(5, palette=())
    index = NextSolutionIndex(g, parse_formula("Purple(x) & E(x, y)"), (x, y), TINY)
    assert list(enumerate_solutions(index)) == []


def test_sentence_enumeration():
    g = path(5, palette=())
    index = NextSolutionIndex(g, parse_formula("exists x, y. E(x, y)"), ())
    assert list(enumerate_solutions(index)) == [()]


def test_full_relation():
    g = ColoredGraph(3, [(0, 1), (1, 2), (0, 2)])
    index = NextSolutionIndex(g, parse_formula("x != y"), (x, y), TINY)
    sols = list(enumerate_solutions(index))
    assert sols == [(a, b) for a in range(3) for b in range(3) if a != b]


def test_solution_at_very_last_tuple():
    g = path(4, palette=())
    g.set_color("Red", [3])
    index = NextSolutionIndex(g, parse_formula("Red(x) & Red(y)"), (x, y), TINY)
    assert list(enumerate_solutions(index)) == [(3, 3)]


def test_enumerate_with_delays_returns_both():
    g = random_tree(25, seed=1)
    index = NextSolutionIndex(g, parse_formula("E(x, y)"), (x, y), TINY)
    sols, delays = enumerate_with_delays(index)
    assert len(sols) == len(delays) == 2 * g.num_edges
    assert all(d >= 0 for d in delays)


def test_enumeration_resumes_from_start():
    g = random_tree(30, seed=4)
    index = NextSolutionIndex(g, parse_formula("dist(x, y) <= 2"), (x, y), TINY)
    full = list(enumerate_solutions(index))
    middle = full[len(full) // 2]
    resumed = list(enumerate_solutions(index, start=middle))
    assert resumed == full[len(full) // 2:]
    # a start strictly past the last solution yields nothing
    bumped = (full[-1][0], full[-1][1] + 1)
    if bumped[1] < g.n:
        assert list(enumerate_solutions(index, start=bumped)) == []


def test_query_index_enumerate_start_matches_both_methods():
    from repro.core.engine import build_index

    g = random_tree(25, seed=9)
    indexed = build_index(g, "dist(x, y) <= 2", config=TINY)
    naive = build_index(g, "dist(x, y) <= 2", method="naive")
    start = (5, 0)
    assert list(indexed.enumerate(start=start)) == list(naive.enumerate(start=start))
