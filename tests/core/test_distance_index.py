"""Unit tests for the Prop 4.2 distance index."""

import random

import pytest

from repro.baselines.bfs_oracle import bfs_distance_at_most
from repro.core.distance_index import DistanceIndex
from repro.graphs.colored_graph import ColoredGraph
from repro.graphs.generators import grid, path, random_tree


@pytest.mark.parametrize("radius", [0, 1, 2, 3])
def test_matches_bfs_oracle(sparse_graph, radius):
    g = sparse_graph
    index = DistanceIndex(g, radius, naive_threshold=16)
    rng = random.Random(radius)
    for _ in range(250):
        a, b = rng.randrange(g.n), rng.randrange(g.n)
        assert index.test(a, b) == bfs_distance_at_most(g, a, b, radius)


def test_exhaustive_on_small_path():
    g = path(12, palette=())
    for r in (0, 1, 2, 4):
        index = DistanceIndex(g, r, naive_threshold=4)
        for a in g.vertices():
            for b in g.vertices():
                assert index.test(a, b) == (abs(a - b) <= r)


def test_reflexive_regardless_of_radius():
    g = grid(4, 4)
    index = DistanceIndex(g, 0)
    assert all(index.test(v, v) for v in g.vertices())


def test_disconnected_components_far():
    g = ColoredGraph(6, [(0, 1), (3, 4)])
    index = DistanceIndex(g, 3, naive_threshold=2)
    assert not index.test(0, 3)
    assert index.test(0, 1)


def test_edgeless_graph():
    g = ColoredGraph(5)
    index = DistanceIndex(g, 2)
    assert index.test(2, 2)
    assert not index.test(0, 1)


def test_small_graph_uses_naive_mode():
    g = path(10, palette=())
    index = DistanceIndex(g, 2, naive_threshold=50)
    assert index._mode == "naive"
    assert index.recursion_depth == 0


def test_large_graph_uses_cover_mode():
    g = grid(10, 10)
    index = DistanceIndex(g, 2, naive_threshold=16)
    assert index._mode == "cover"
    assert index.recursion_depth >= 1


def test_recursion_depth_capped():
    g = grid(12, 12)
    index = DistanceIndex(g, 2, naive_threshold=8, max_depth=2)
    assert index.recursion_depth <= 2


def test_negative_radius_rejected():
    with pytest.raises(ValueError):
        DistanceIndex(path(3, palette=()), -1)


def test_index_size_reported():
    g = random_tree(100, seed=1)
    index = DistanceIndex(g, 2, naive_threshold=16)
    assert index.index_size() > 0


@pytest.mark.parametrize("radius", [1, 2, 3, 4])
def test_graded_distance_matches_bfs(sparse_graph, radius):
    """The graded refinement: exact distances up to the radius."""
    from repro.graphs.neighborhoods import distance as bfs_distance

    g = sparse_graph
    index = DistanceIndex(g, radius, naive_threshold=16)
    rng = random.Random(radius + 100)
    for _ in range(200):
        a, b = rng.randrange(g.n), rng.randrange(g.n)
        truth = bfs_distance(g, a, b, cutoff=radius)
        expected = truth if truth <= radius else None
        assert index.distance(a, b) == expected, (a, b, radius)


def test_graded_distance_naive_mode():
    g = path(9, palette=())
    index = DistanceIndex(g, 3, naive_threshold=50)
    assert index.distance(0, 2) == 2
    assert index.distance(0, 3) == 3
    assert index.distance(0, 4) is None
    assert index.distance(5, 5) == 0
