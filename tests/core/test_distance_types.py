"""Unit tests for distance types."""

import pytest

from repro.core.distance_types import (
    DistanceType,
    all_types,
    prefix_consistent,
    type_of,
)


def edge_set(*pairs):
    return frozenset(frozenset(p) for p in pairs)


def test_all_types_count():
    assert len(list(all_types(1))) == 1
    assert len(list(all_types(2))) == 2
    assert len(list(all_types(3))) == 8
    assert len(list(all_types(4))) == 64


def test_all_types_rejects_large_arity():
    with pytest.raises(ValueError):
        list(all_types(7))


def test_components_of_empty_type():
    tau = DistanceType(3)
    assert tau.components() == [frozenset({0}), frozenset({1}), frozenset({2})]


def test_components_transitive():
    tau = DistanceType(3, edge_set((0, 1), (1, 2)))
    assert tau.components() == [frozenset({0, 1, 2})]


def test_component_of():
    tau = DistanceType(3, edge_set((0, 2)))
    assert tau.component_of(0) == frozenset({0, 2})
    assert tau.component_of(1) == frozenset({1})


def test_restrict():
    tau = DistanceType(3, edge_set((0, 2), (1, 2)))
    restricted = tau.restrict(frozenset({0, 1}))
    assert restricted == DistanceType(2)
    keeping = tau.restrict(frozenset({0, 2}))
    assert keeping == DistanceType(2, edge_set((0, 1)))


def test_type_of_uses_oracle():
    values = (10, 11, 50)
    close = lambda a, b: abs(a - b) <= 5
    tau = type_of(values, close)
    assert tau == DistanceType(3, edge_set((0, 1)))


def test_prefix_consistent():
    tau = DistanceType(3, edge_set((0, 1), (1, 2)))
    assert prefix_consistent(tau, DistanceType(2, edge_set((0, 1))))
    assert not prefix_consistent(tau, DistanceType(2))


def test_invalid_edges_rejected():
    with pytest.raises(ValueError):
        DistanceType(2, frozenset({frozenset({0, 5})}))
