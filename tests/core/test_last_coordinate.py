"""Unit tests for the Lemma 5.2 index, against brute force."""

import random

import pytest

from repro.core.config import EngineConfig
from repro.core.last_coordinate import LastCoordinateIndex
from repro.graphs.generators import grid, random_planar_like_graph, random_tree
from repro.logic.parser import parse_formula
from repro.logic.semantics import evaluate
from repro.logic.syntax import Var
from repro.logic.transform import free_variables

#: A config with tiny thresholds so the splitter machinery is exercised
TINY = EngineConfig(dist_naive_threshold=12, bag_naive_threshold=8)


def brute_first_last(graph, phi, order, prefix, lower):
    assignment = dict(zip(order[:-1], prefix))
    for b in range(lower, graph.n):
        assignment[order[-1]] = b
        if evaluate(graph, phi, assignment):
            return b
    return None


QUERIES_2 = [
    "E(x, y)",
    "dist(x, y) <= 2",
    "dist(x, y) > 2 & Blue(y)",
    "exists z. E(x, z) & E(z, y)",
    "Red(x) & Blue(y) & dist(x, y) > 1",
]


@pytest.mark.parametrize("text", QUERIES_2)
def test_first_last_matches_brute_force(text):
    g = random_planar_like_graph(45, seed=4)
    phi = parse_formula(text)
    order = tuple(sorted(free_variables(phi), key=lambda v: v.name))
    index = LastCoordinateIndex(g, phi, order, config=TINY)
    rng = random.Random(11)
    for _ in range(100):
        prefix = (rng.randrange(g.n),)
        lower = rng.randrange(g.n + 2) - 1
        expected = brute_first_last(g, phi, order, prefix, max(lower, 0))
        assert index.first_last(prefix, lower) == expected, (text, prefix, lower)


def test_test_is_exact():
    g = random_tree(40, seed=2)
    phi = parse_formula("dist(x, y) > 2 & Blue(y)")
    order = (Var("x"), Var("y"))
    index = LastCoordinateIndex(g, phi, order, config=TINY)
    rng = random.Random(3)
    for _ in range(150):
        t = (rng.randrange(g.n), rng.randrange(g.n))
        assert index.test(t) == evaluate(g, phi, dict(zip(order, t)))


def test_arity_3_far_query():
    g = random_planar_like_graph(30, seed=1)
    phi = parse_formula("dist(x, y) > 2 & dist(x, z) > 2 & dist(y, z) > 2 & Blue(z)")
    order = (Var("x"), Var("y"), Var("z"))
    index = LastCoordinateIndex(g, phi, order, config=TINY)
    rng = random.Random(5)
    for _ in range(60):
        prefix = (rng.randrange(g.n), rng.randrange(g.n))
        lower = rng.randrange(g.n)
        expected = brute_first_last(g, phi, order, prefix, lower)
        assert index.first_last(prefix, lower) == expected, (prefix, lower)


def test_arity_3_mixed_query():
    g = grid(6, 6)
    phi = parse_formula("E(x, y) & dist(x, z) > 2 & Blue(z)")
    order = (Var("x"), Var("y"), Var("z"))
    index = LastCoordinateIndex(g, phi, order, config=TINY)
    rng = random.Random(6)
    for _ in range(60):
        prefix = (rng.randrange(g.n), rng.randrange(g.n))
        lower = rng.randrange(g.n)
        expected = brute_first_last(g, phi, order, prefix, lower)
        assert index.first_last(prefix, lower) == expected, (prefix, lower)


def test_lower_beyond_domain_returns_none():
    g = random_tree(20, seed=1)
    phi = parse_formula("E(x, y)")
    index = LastCoordinateIndex(g, phi, (Var("x"), Var("y")), config=TINY)
    assert index.first_last((0,), g.n) is None


def test_wrong_prefix_arity_rejected():
    g = random_tree(20, seed=1)
    index = LastCoordinateIndex(
        g, parse_formula("E(x, y)"), (Var("x"), Var("y")), config=TINY
    )
    with pytest.raises(ValueError):
        index.first_last((0, 1), 0)
    with pytest.raises(ValueError):
        index.test((0,))


def test_arity_below_two_rejected():
    g = random_tree(10, seed=0)
    with pytest.raises(ValueError):
        LastCoordinateIndex(g, parse_formula("Red(x)"), (Var("x"),))
