"""Many threads, one ``QueryIndex``: readers must agree with the oracle.

The engine's documented thread-safety contract (see the QueryIndex
docstring) is that post-build state changes are idempotent memoizations,
so concurrent readers may duplicate work but never observe wrong
answers.  This stress test hammers ``test`` / ``next_solution`` /
``enumerate_page`` from many threads against a *cold* index (so the lazy
bag-solver caches are filled under contention) and compares every answer
with a single-threaded oracle computed up front.
"""

from __future__ import annotations

import random
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.engine import build_index
from repro.graphs.generators import random_planar_like_graph

QUERY = "exists z. E(x, z) & E(z, y)"
THREADS = 8
PROBES_PER_THREAD = 60


@pytest.fixture(scope="module")
def oracle():
    """Single-threaded ground truth on an identical but separate index."""
    graph = random_planar_like_graph(48, seed=9)
    ix = build_index(graph, QUERY)
    solutions = list(ix.enumerate())
    tests = {}
    nexts = {}
    rng = random.Random(4242)
    for _ in range(THREADS * PROBES_PER_THREAD):
        probe = (rng.randrange(-2, graph.n + 2), rng.randrange(-2, graph.n + 2))
        tests[probe] = ix.test(probe)
        nexts[probe] = ix.next_solution(probe)
    return graph, solutions, tests, nexts


def test_concurrent_readers_agree_with_oracle(oracle):
    graph, solutions, tests, nexts = oracle
    # a fresh, cold index: the interesting races are first-touch memoizations
    shared = build_index(graph, QUERY)
    barrier = threading.Barrier(THREADS)
    probes = list(tests)

    def hammer(worker: int) -> list[str]:
        rng = random.Random(worker)
        mine = probes[worker::THREADS]
        barrier.wait()  # maximize contention on the cold caches
        errors = []
        for probe in mine:
            if shared.test(probe) != tests[probe]:
                errors.append(f"test{probe} disagreed")
            if shared.next_solution(probe) != nexts[probe]:
                errors.append(f"next_solution{probe} disagreed")
        # each worker also pages through a random slice of the result set
        limit = rng.randrange(1, 9)
        start = rng.choice(solutions)
        page = shared.enumerate_page(start=start, limit=limit)
        expected = [s for s in solutions if s >= start][:limit]
        if page.items != expected:
            errors.append(f"enumerate_page(start={start}) disagreed")
        return errors

    with ThreadPoolExecutor(max_workers=THREADS) as pool:
        results = list(pool.map(hammer, range(THREADS)))
    problems = [msg for worker in results for msg in worker]
    assert problems == []


def test_concurrent_full_enumerations_identical(oracle):
    graph, solutions, _, _ = oracle
    shared = build_index(graph, QUERY)
    barrier = threading.Barrier(THREADS)

    def enumerate_all(_: int) -> list[tuple[int, ...]]:
        barrier.wait()
        return list(shared.enumerate())

    with ThreadPoolExecutor(max_workers=THREADS) as pool:
        runs = list(pool.map(enumerate_all, range(THREADS)))
    assert all(run == solutions for run in runs)
