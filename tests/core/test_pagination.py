"""Cursor pagination (``QueryIndex.enumerate_page``) against the oracle."""

from __future__ import annotations

import pytest

from repro.core.engine import Page, build_index
from repro.graphs.colored_graph import ColoredGraph
from repro.graphs.generators import random_tree

QUERY = "E(x, y)"


@pytest.fixture(params=["auto", "naive"])
def index(request):
    return build_index(random_tree(40, seed=3), QUERY, method=request.param)


def walk_pages(index, limit):
    """Everything enumerate_page yields, following next_cursor to the end."""
    out, cursor = [], None
    while True:
        page = index.enumerate_page(start=cursor, limit=limit)
        assert len(page.items) <= limit
        out.extend(page.items)
        if page.next_cursor is None:
            return out
        cursor = page.next_cursor


@pytest.mark.parametrize("limit", [1, 7, 78, 500])
def test_page_walk_equals_full_enumeration(index, limit):
    assert walk_pages(index, limit) == list(index.enumerate())


def test_mid_stream_resume_matches_suffix(index):
    oracle = list(index.enumerate())
    first = index.enumerate_page(limit=10)
    assert first.items == oracle[:10]
    assert first.next_cursor == oracle[10]
    rest = index.enumerate_page(start=first.next_cursor, limit=len(oracle))
    assert rest.items == oracle[10:]
    assert rest.next_cursor is None


def test_exhausted_page_has_no_cursor(index):
    oracle = list(index.enumerate())
    page = index.enumerate_page(limit=len(oracle))
    assert page.items == oracle
    assert page.next_cursor is None


def test_oversized_limit_is_fine(index):
    page = index.enumerate_page(limit=10_000)
    assert page.items == list(index.enumerate())
    assert page.next_cursor is None


@pytest.mark.parametrize("bad", [0, -1])
def test_nonpositive_limit_rejected(index, bad):
    with pytest.raises(ValueError, match="limit"):
        index.enumerate_page(limit=bad)


def test_page_is_iterable_and_sized(index):
    page = index.enumerate_page(limit=5)
    assert isinstance(page, Page)
    assert len(page) == 5
    assert list(page) == page.items


def test_arity_zero_query():
    ix = build_index(random_tree(12, seed=1), "exists x. exists y. E(x, y)")
    page = ix.enumerate_page(limit=3)
    assert page.items == [()]
    assert page.next_cursor is None


def test_empty_graph_yields_empty_page():
    ix = build_index(ColoredGraph(0), QUERY)
    page = ix.enumerate_page(limit=5)
    assert page.items == []
    assert page.next_cursor is None


def test_out_of_domain_start_clamps(index):
    oracle = list(index.enumerate())
    # negative coordinates round up to the first solution
    assert index.enumerate_page(start=(-5, -5), limit=3).items == oracle[:3]
    # a start past the domain is an empty final page
    n = index.graph.n
    page = index.enumerate_page(start=(n, 0), limit=3)
    assert page.items == [] and page.next_cursor is None
