"""Unit tests for independence-sentence evaluation (Section 5.1.2's ξ)."""

import random

from repro.core.independence import (
    has_scattered_witnesses,
    match_independence_sentence,
)
from repro.core.unary import model_check
from repro.graphs.colored_graph import ColoredGraph
from repro.graphs.generators import path, random_tree
from repro.graphs.neighborhoods import distance
from repro.logic.builders import independence_sentence
from repro.logic.parser import parse_formula
from repro.logic.semantics import evaluate
from repro.logic.syntax import ColorAtom, Var

z = Var("z")


def brute_scattered(graph, targets, count, separation):
    """Exponential reference implementation."""
    targets = sorted(targets)

    def search(chosen, start):
        if len(chosen) == count:
            return True
        for i in range(start, len(targets)):
            candidate = targets[i]
            if all(
                distance(graph, candidate, c, cutoff=separation) > separation
                for c in chosen
            ):
                if search(chosen + [candidate], i + 1):
                    return True
        return False

    return search([], 0)


class TestScatteredWitnesses:
    def test_on_path(self):
        g = path(10, palette=())
        targets = [0, 3, 6, 9]
        assert has_scattered_witnesses(g, targets, 4, 2)
        assert not has_scattered_witnesses(g, targets, 4, 3)
        assert has_scattered_witnesses(g, targets, 2, 5)

    def test_trivial_cases(self):
        g = path(5, palette=())
        assert has_scattered_witnesses(g, [], 0, 3)
        assert not has_scattered_witnesses(g, [], 1, 3)
        assert has_scattered_witnesses(g, [2], 1, 3)
        assert has_scattered_witnesses(g, [1, 2], 2, 0)

    def test_greedy_insufficient_but_exact_finds(self):
        # greedy picks 0 first, killing 1 and 2; the exact search must
        # still find the {1, 4} pair when asked for 2 at separation 2
        g = path(6, palette=())
        targets = [0, 1, 4]
        assert has_scattered_witnesses(g, targets, 2, 2)

    def test_matches_brute_force_randomized(self):
        rng = random.Random(5)
        for seed in range(8):
            g = random_tree(25, seed=seed, palette=())
            targets = [v for v in g.vertices() if rng.random() < 0.4]
            for count in (1, 2, 3):
                for separation in (1, 2, 4):
                    expected = brute_scattered(g, targets, count, separation)
                    got = has_scattered_witnesses(g, targets, count, separation)
                    assert got == expected, (seed, count, separation)


class TestPatternMatching:
    def test_matches_builder_output(self):
        phi = independence_sentence(3, 4, ColorAtom("Red", z), z)
        matched = match_independence_sentence(phi)
        assert matched is not None
        count, separation, psi, var = matched
        assert count == 3 and separation == 4
        assert psi == ColorAtom("Red", var)

    def test_matches_single_witness(self):
        phi = parse_formula("exists z. Red(z)")
        matched = match_independence_sentence(phi)
        assert matched is not None
        assert matched[0] == 1

    def test_rejects_mixed_witness_formulas(self):
        phi = parse_formula("exists u, v. dist(u, v) > 3 & Red(u) & Blue(v)")
        assert match_independence_sentence(phi) is None

    def test_rejects_missing_separation(self):
        phi = parse_formula("exists u, v. Red(u) & Red(v)")
        assert match_independence_sentence(phi) is None

    def test_rejects_cross_witness_conjuncts(self):
        phi = parse_formula("exists u, v. dist(u, v) > 3 & E(u, v)")
        assert match_independence_sentence(phi) is None


class TestModelCheckIntegration:
    def test_independence_sentences_evaluated_correctly(self):
        rng = random.Random(9)
        for seed in range(4):
            g = random_tree(30, seed=seed, palette=())
            g.set_color("Red", [v for v in g.vertices() if rng.random() < 0.3])
            for count in (2, 3):
                for separation in (2, 3):
                    phi = independence_sentence(count, separation, ColorAtom("Red", z), z)
                    assert model_check(g, phi) == evaluate(g, phi, {}), (
                        seed,
                        count,
                        separation,
                    )

    def test_large_graph_stays_fast(self):
        # naive evaluation would be n^3; the routine must finish instantly
        g = random_tree(400, seed=2)
        phi = independence_sentence(3, 2, ColorAtom("Red", z), z)
        assert isinstance(model_check(g, phi), bool)
