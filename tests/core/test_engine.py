"""Unit tests for the public facade (build_index / QueryIndex)."""

import pytest

from repro.core.engine import build_index
from repro.core.normal_form import DecompositionError
from repro.graphs.generators import path, random_tree
from repro.logic.parser import parse_formula
from repro.logic.syntax import Var


def test_accepts_text_and_formula():
    g = random_tree(30, seed=1)
    a = build_index(g, "E(x, y)")
    b = build_index(g, parse_formula("E(x, y)"))
    assert list(a.enumerate()) == list(b.enumerate())


def test_default_free_order_is_sorted_names():
    g = random_tree(20, seed=1)
    index = build_index(g, "E(b, a)")
    assert [v.name for v in index.free_order] == ["a", "b"]


def test_explicit_free_order_changes_tuples():
    g = path(5, palette=())
    forward = build_index(g, "E(x, y)", free_order=["x", "y"])
    backward = build_index(g, "E(x, y)", free_order=["y", "x"])
    assert list(forward.enumerate()) == list(backward.enumerate())  # symmetric query
    g.set_color("Red", [0])
    asym = build_index(g, "Red(x) & E(x, y)", free_order=["y", "x"])
    assert list(asym.enumerate()) == [(1, 0)]


def test_free_order_mismatch_rejected():
    g = path(4, palette=())
    with pytest.raises(ValueError):
        build_index(g, "E(x, y)", free_order=["x", "z"])
    with pytest.raises(ValueError):
        build_index(g, "E(x, y)", free_order=["x"])


def test_method_naive_forced():
    g = random_tree(25, seed=1)
    index = build_index(g, "E(x, y)", method="naive")
    assert index.method == "naive"


def test_method_indexed_raises_outside_fragment():
    g = random_tree(25, seed=1)
    with pytest.raises(DecompositionError):
        build_index(g, "exists z. Blue(z) & dist(z, x) > 2", method="indexed")


def test_auto_falls_back_to_naive():
    g = random_tree(25, seed=1)
    index = build_index(g, "exists z. Blue(z) & dist(z, x) > 2", method="auto")
    assert index.method == "naive"


def test_unknown_method_rejected():
    g = path(3, palette=())
    with pytest.raises(ValueError):
        build_index(g, "E(x, y)", method="quantum")


def test_count():
    g = path(5, palette=())
    index = build_index(g, "E(x, y)")
    assert index.count() == 8


def test_preprocessing_time_recorded():
    g = random_tree(40, seed=2)
    index = build_index(g, "dist(x, y) <= 2")
    assert index.preprocessing_seconds >= 0


def test_sentence_query():
    g = path(4, palette=())
    index = build_index(g, "exists x, y. E(x, y)")
    assert index.arity == 0
    assert index.test(())
    assert list(index.enumerate()) == [()]


def test_docstring_example():
    from repro.graphs import grid

    index = build_index(grid(8, 8), "exists z. E(x, z) & E(z, y)")
    assert index.test(next(index.enumerate()))


def test_stats_indexed():
    g = random_tree(40, seed=3)
    index = build_index(g, "dist(x, y) > 2 & Blue(y)")
    stats = index.stats()
    assert stats["method"] == "indexed"
    assert stats["arity"] == 2
    assert stats["exact_delay"] is True
    [level] = stats["levels"]
    assert level["radius"] == 2
    assert level["cover_bags"] >= 1
    assert set(level["bag_solver_modes"]) <= {"naive", "splitter"}


def test_stats_naive():
    g = random_tree(20, seed=3)
    index = build_index(g, "exists z. Blue(z) & dist(z, x) > 2")
    stats = index.stats()
    assert stats["method"] == "naive"
    assert "materialized_solutions" in stats


def test_stats_reports_nested_levels_for_arity3():
    from repro.graphs.generators import random_planar_like_graph

    g = random_planar_like_graph(24, seed=2)
    index = build_index(g, "E(x, y) & E(y, z)")
    stats = index.stats()
    assert [level["arity"] for level in stats["levels"]] == [3, 2]


def test_naive_enumerate_resumes_with_bisect():
    """enumerate(start) on the naive fallback returns the exact suffix."""
    g = random_tree(24, seed=5)
    index = build_index(g, "E(x, y)", method="naive")
    everything = list(index.enumerate())
    assert everything == sorted(set(everything))
    middle = everything[len(everything) // 2]
    assert list(index.enumerate(start=middle)) == everything[len(everything) // 2:]
    # a start between solutions resumes at the next one, not a copy scan
    assert list(index.enumerate(start=(everything[-1][0], everything[-1][1] + 1))) == []
    assert list(index.enumerate(start=(0, 0))) == everything


def test_naive_and_indexed_enumerate_agree_on_start():
    g = random_tree(24, seed=5)
    naive = build_index(g, "E(x, y)", method="naive")
    indexed = build_index(g, "E(x, y)", method="indexed")
    start = (5, 0)
    assert list(naive.enumerate(start=start)) == list(indexed.enumerate(start=start))


def test_naive_count_uses_materialized_length():
    g = random_tree(30, seed=7)
    index = build_index(g, "E(x, y)", method="naive")
    assert index.count() == len(index._impl)
    assert index.count() == len(list(index.enumerate()))
