"""Unit tests for the projection relaxation (the arity >= 3 fallback)."""

import pytest

from repro.core.distance_types import DistanceType
from repro.core.normal_form import decompose, relax_projection
from repro.logic.parser import parse_formula
from repro.logic.syntax import Top, Var

x, y, z = Var("x"), Var("y"), Var("z")


def test_relaxed_arity_drops_by_one():
    d = decompose(parse_formula("E(x, y) & dist(x, z) > 2 & Blue(z)"), (x, y, z))
    relaxed = relax_projection(d)
    assert relaxed.arity == 2
    assert relaxed.free_order == (x, y)
    assert relaxed.radius == d.radius


def test_last_position_locals_are_dropped():
    d = decompose(parse_formula("Red(x) & Blue(y)"), (x, y))
    relaxed = relax_projection(d)
    # every remaining local touches only position 0
    for alternatives in relaxed.per_type.values():
        for alt in alternatives:
            for positions, psi in alt.locals:
                assert positions == frozenset({0})
                assert "Red" in repr(psi)


def test_types_merge_under_restriction():
    d = decompose(parse_formula("E(x, y) & Blue(z)"), (x, y, z))
    relaxed = relax_projection(d)
    # 8 ternary types restrict onto the 2 binary types
    assert set(relaxed.per_type) == {
        DistanceType(2),
        DistanceType(2, frozenset({frozenset({0, 1})})),
    }


def test_relaxation_is_a_weakening():
    """Every alternative of the original decomposition leaves a (weaker)
    trace: its prefix locals appear in some relaxed alternative."""
    d = decompose(parse_formula("dist(x, y) > 2 & Blue(y)"), (x, y))
    relaxed = relax_projection(d)
    for tau, alternatives in d.per_type.items():
        restricted = tau.restrict(frozenset({0}))
        relaxed_alts = relaxed.per_type[restricted]
        for alt in alternatives:
            prefix_locals = tuple(
                (p, psi) for p, psi in alt.locals if 1 not in p
            )
            assert any(r.locals == prefix_locals for r in relaxed_alts), tau


def test_arity_one_rejected():
    d = decompose(parse_formula("Red(x)"), (x,))
    with pytest.raises(ValueError):
        relax_projection(d)


def test_sentences_survive():
    d = decompose(
        parse_formula("E(x, y) & (exists u, v. dist(u, v) > 3 & Red(u) & Red(v))"),
        (x, y),
    )
    relaxed = relax_projection(d)
    kept = [
        alt.sentence
        for alts in relaxed.per_type.values()
        for alt in alts
        if not isinstance(alt.sentence, Top)
    ]
    assert kept  # the independence sentence is still there
