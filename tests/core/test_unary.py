"""Unit tests for unary queries and sentences (Theorem 5.3's role)."""

from repro.core.unary import UnaryIndex, model_check, unary_solutions
from repro.graphs.colored_graph import ColoredGraph
from repro.graphs.generators import path, random_planar_like_graph, random_tree
from repro.logic.parser import parse_formula
from repro.logic.semantics import evaluate
from repro.logic.syntax import Var

x = Var("x")

UNARY_QUERIES = [
    "Red(x)",
    "exists y. E(x, y) & Blue(y)",
    "forall y. (E(x, y) -> Blue(y))",
    "exists y. dist(x, y) <= 2 & Red(y)",
    "~Red(x) & (exists y. E(x, y))",
]


def brute(graph, phi):
    return [v for v in graph.vertices() if evaluate(graph, phi, {x: v})]


def test_unary_solutions_match_brute_force():
    for seed in (0, 1):
        g = random_planar_like_graph(50, seed=seed)
        for text in UNARY_QUERIES:
            phi = parse_formula(text)
            assert unary_solutions(g, phi, x) == brute(g, phi), text


def test_unary_solutions_on_small_bags():
    g = random_tree(60, seed=2)
    phi = parse_formula("exists y. E(x, y) & Blue(y)")
    got = unary_solutions(g, phi, x, bag_threshold=4)
    assert got == brute(g, phi)


def test_unary_index_next_solution():
    g = path(10, palette=())
    g.set_color("Red", [2, 5, 9])
    index = UnaryIndex(g, parse_formula("Red(x)"), x)
    assert index.next_solution(0) == 2
    assert index.next_solution(3) == 5
    assert index.next_solution(9) == 9
    assert index.next_solution(10) is None
    assert len(index) == 3


def test_unary_index_test():
    g = path(6, palette=())
    g.set_color("Red", [1])
    index = UnaryIndex(g, parse_formula("Red(x)"), x)
    assert index.test(1)
    assert not index.test(2)


def test_model_check_quantifier_peeling():
    g = path(8, palette=())
    g.set_color("Red", [3])
    assert model_check(g, parse_formula("exists x. Red(x)"))
    assert not model_check(g, parse_formula("exists x. Green(x)"))
    assert model_check(g, parse_formula("forall x. dist(x, x) <= 0"))
    assert not model_check(g, parse_formula("forall x. Red(x)"))


def test_model_check_boolean_structure():
    g = path(4, palette=())
    g.set_color("Red", [0])
    assert model_check(g, parse_formula("(exists x. Red(x)) & ~(forall x. Red(x))"))
    assert model_check(g, parse_formula("(exists x. Green(x)) | (exists x. Red(x))"))


def test_model_check_rejects_free_variables():
    import pytest

    with pytest.raises(ValueError):
        model_check(path(3, palette=()), parse_formula("Red(x)"))


def test_empty_graph():
    g = ColoredGraph(0)
    assert unary_solutions(g, parse_formula("Red(x)"), x) == []
