"""Unit tests for the Theorem 5.1 nested-induction index."""

import pytest

from repro.core.config import EngineConfig
from repro.core.next_solution import NextSolutionIndex, increment_tuple
from repro.graphs.colored_graph import ColoredGraph
from repro.graphs.generators import path, random_planar_like_graph
from repro.logic.parser import parse_formula
from repro.logic.syntax import Var

x, y, z = Var("x"), Var("y"), Var("z")
TINY = EngineConfig(dist_naive_threshold=12, bag_naive_threshold=8)


class TestIncrementTuple:
    def test_basic(self):
        assert increment_tuple((0, 0), 3) == (0, 1)
        assert increment_tuple((0, 2), 3) == (1, 0)
        assert increment_tuple((2, 2), 3) is None

    def test_unary(self):
        assert increment_tuple((1,), 5) == (2,)
        assert increment_tuple((4,), 5) is None


def test_arity_zero_true_and_false():
    g = path(4, palette=())
    true_index = NextSolutionIndex(g, parse_formula("exists x, y. E(x, y)"), ())
    assert true_index.next_solution(()) == ()
    assert true_index.test(())
    false_index = NextSolutionIndex(g, parse_formula("forall x, y. E(x, y)"), ())
    assert false_index.next_solution(()) is None
    assert not false_index.test(())


def test_arity_one():
    g = path(8, palette=())
    g.set_color("Red", [1, 4, 6])
    index = NextSolutionIndex(g, parse_formula("Red(x)"), (x,))
    assert index.next_solution((0,)) == (1,)
    assert index.next_solution((2,)) == (4,)
    assert index.next_solution((7,)) is None
    assert index.test((4,)) and not index.test((5,))


def test_arity_two_walks_prefixes():
    g = path(6, palette=())
    index = NextSolutionIndex(g, parse_formula("E(x, y)"), (x, y), TINY)
    # after (0, 1) the next solution requires moving to prefix 1
    assert index.next_solution((0, 2)) == (1, 0)
    assert index.next_solution((5, 5)) is None
    assert index.next_solution((0, 0)) == (0, 1)


def test_empty_graph():
    g = ColoredGraph(0)
    index = NextSolutionIndex(g, parse_formula("E(x, y)"), (x, y), TINY)
    assert index.next_solution((0, 0)) is None


def test_wrong_arity_rejected():
    g = path(4, palette=())
    index = NextSolutionIndex(g, parse_formula("E(x, y)"), (x, y), TINY)
    with pytest.raises(ValueError):
        index.next_solution((0,))
    with pytest.raises(ValueError):
        index.test((0, 1, 2))


def test_exact_delay_flags():
    g = random_planar_like_graph(30, seed=1)
    two = NextSolutionIndex(g, parse_formula("E(x, y)"), (x, y), TINY)
    assert two.exact_delay
    far3 = NextSolutionIndex(
        g,
        parse_formula("dist(x, y) > 2 & dist(x, z) > 2 & dist(y, z) > 2"),
        (x, y, z),
        TINY,
    )
    assert not far3.exact_delay  # prefix scan fallback
    guarded3 = NextSolutionIndex(
        g, parse_formula("E(x, y) & E(y, z)"), (x, y, z), TINY
    )
    assert guarded3.exact_delay  # projection stays decomposable


def test_far_projection_uses_relaxed_prefix_index():
    from repro.core.next_solution import RelaxedPrefixIndex

    g = random_planar_like_graph(30, seed=1)
    index = NextSolutionIndex(
        g,
        parse_formula("dist(x, y) > 2 & dist(x, z) > 2 & dist(y, z) > 2"),
        (x, y, z),
        TINY,
    )
    assert isinstance(index._prefix, RelaxedPrefixIndex)
    assert not index.exact_delay
    # the relaxed stream must agree with brute force end to end
    from repro.baselines.naive import NaiveIndex
    from repro.core.enumeration import enumerate_solutions

    naive = NaiveIndex(
        g, parse_formula("dist(x, y) > 2 & dist(x, z) > 2 & dist(y, z) > 2"), (x, y, z)
    )
    assert list(enumerate_solutions(index)) == naive.solutions
