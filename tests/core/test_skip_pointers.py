"""Unit tests for skip pointers (Lemma 5.8) against brute force."""

import random

import pytest

from repro.core.skip_pointers import SkipPointers
from repro.covers.kernels import kernel_of_bag
from repro.covers.neighborhood_cover import build_cover
from repro.graphs.generators import grid, random_tree


def brute_skip(targets, kernels, b, bags):
    excluded = set()
    for bag in bags:
        excluded |= kernels[bag]
    for candidate in sorted(targets):
        if candidate >= b and candidate not in excluded:
            return candidate
    return None


def build_setup(graph, radius, seed, density=0.4):
    cover = build_cover(graph, radius)
    kernels = [kernel_of_bag(graph, bag, radius) for bag in cover.bags]
    rng = random.Random(seed)
    targets = [v for v in graph.vertices() if rng.random() < density]
    return cover, kernels, targets, rng


@pytest.mark.parametrize("k", [1, 2, 3])
def test_matches_brute_force(k):
    g = random_tree(120, seed=3)
    cover, kernels, targets, rng = build_setup(g, 2, seed=k)
    skips = SkipPointers(g.n, targets, kernels, k=k)
    kernel_sets = [set(K) for K in kernels]
    for _ in range(300):
        b = rng.randrange(g.n)
        bags = rng.sample(range(cover.num_bags), min(k, cover.num_bags))
        expected = brute_skip(targets, kernel_sets, b, bags)
        assert skips.skip(b, bags) == expected, (b, bags)


def test_empty_target_list():
    g = grid(6, 6)
    cover, kernels, _, _ = build_setup(g, 1, seed=0)
    skips = SkipPointers(g.n, [], kernels, k=2)
    assert skips.skip(0, [0]) is None


def test_all_vertices_targets():
    g = grid(6, 6)
    cover, kernels, _, rng = build_setup(g, 1, seed=1)
    targets = list(g.vertices())
    skips = SkipPointers(g.n, targets, kernels, k=2)
    kernel_sets = [set(K) for K in kernels]
    for _ in range(100):
        b = rng.randrange(g.n)
        bags = rng.sample(range(cover.num_bags), 2)
        assert skips.skip(b, bags) == brute_skip(targets, kernel_sets, b, bags)


def test_empty_bag_set_returns_next_target():
    g = grid(5, 5)
    cover, kernels, targets, _ = build_setup(g, 1, seed=2)
    skips = SkipPointers(g.n, targets, kernels, k=2)
    for b in range(g.n):
        expected = next((t for t in sorted(targets) if t >= b), None)
        assert skips.skip(b, []) == expected


def test_too_many_bags_rejected():
    g = grid(4, 4)
    cover, kernels, targets, _ = build_setup(g, 1, seed=3)
    skips = SkipPointers(g.n, targets, kernels, k=1)
    with pytest.raises(ValueError):
        skips.skip(0, [0, 1])


def test_out_of_range_vertex_rejected():
    g = grid(4, 4)
    cover, kernels, targets, _ = build_setup(g, 1, seed=4)
    skips = SkipPointers(g.n, targets, kernels, k=1)
    with pytest.raises(ValueError):
        skips.skip(g.n, [0])


def test_stored_pointer_count_is_bounded():
    g = random_tree(150, seed=5)
    cover, kernels, targets, _ = build_setup(g, 2, seed=5)
    skips = SkipPointers(g.n, targets, kernels, k=2)
    degree = max(1, cover.degree())
    # Claim 5.10: |SC(b)| = O(degree^k), so total pointers O(n * degree^k)
    assert skips.stored_pointers <= 4 * g.n * degree ** 2


def test_k_must_be_positive():
    with pytest.raises(ValueError):
        SkipPointers(5, [], [], k=0)
