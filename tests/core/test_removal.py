"""Unit tests for the Removal Lemma (Lemma 5.5)."""

import random

import pytest

from repro.core.removal import remove_vertex, removal_rewrite
from repro.graphs.colored_graph import ColoredGraph
from repro.graphs.generators import random_planar_like_graph
from repro.logic.parser import parse_formula
from repro.logic.ranks import quantifier_rank
from repro.logic.semantics import evaluate
from repro.logic.transform import free_variables

QUERIES = [
    "E(x, y)",
    "x = y",
    "Red(x) & Blue(y)",
    "exists z. E(x, z) & E(z, y)",
    "dist(x, y) <= 2",
    "dist(x, y) > 2 & Blue(y)",
    "forall z. (E(x, z) -> dist(z, y) <= 3)",
    "exists z. dist(z, x) <= 1 & Blue(z) & z != y",
]


def check_equivalence(graph, text, s, rng, samples=60):
    phi = parse_formula(text)
    fv = sorted(free_variables(phi), key=lambda v: v.name)
    for _ in range(samples):
        values = [rng.randrange(graph.n) for _ in fv]
        truth = evaluate(graph, phi, dict(zip(fv, values)))
        s_vars = frozenset(v for v, val in zip(fv, values) if val == s)
        rewritten, removal = removal_rewrite(phi, graph, s, s_vars)
        assignment = {
            v: removal.to_new[val] for v, val in zip(fv, values) if val != s
        }
        assert evaluate(removal.graph, rewritten, assignment) == truth, (
            text,
            s,
            values,
        )


@pytest.mark.parametrize("text", QUERIES)
def test_lemma_equivalence(text):
    rng = random.Random(hash(text) & 0xFFFF)
    for seed in range(3):
        graph = random_planar_like_graph(16, seed=seed)
        s = rng.randrange(graph.n)
        check_equivalence(graph, text, s, rng)


def test_rewritten_query_preserves_quantifier_rank():
    graph = random_planar_like_graph(12, seed=0)
    for text in QUERIES:
        phi = parse_formula(text)
        rewritten, _ = removal_rewrite(phi, graph, 3)
        assert quantifier_rank(rewritten) <= quantifier_rank(phi)


def test_removed_graph_shape():
    graph = ColoredGraph(4, [(0, 1), (1, 2), (2, 3)], colors={"A": [1, 3]})
    result = remove_vertex(graph, 1, max_bound=2)
    h = result.graph
    assert h.n == 3
    assert result.to_old == [0, 2, 3]
    # edges not through vertex 1 survive, relabeled
    assert sorted(h.edges()) == [(1, 2)]
    # distance colors: dist_G(0, 1) = 1, dist_G(2, 1) = 1, dist_G(3, 1) = 2
    prefix = result.color_prefix
    assert h.color(f"{prefix}:1") == {0, 1}
    assert h.color(f"{prefix}:2") == {0, 1, 2}
    # original colors survive minus the removed vertex
    assert h.color("A") == {2}


def test_order_preserving_relabeling():
    graph = random_planar_like_graph(20, seed=1)
    result = remove_vertex(graph, 7, max_bound=1)
    assert result.to_old == sorted(result.to_old)
    assert all(result.to_new[v] == i for i, v in enumerate(result.to_old))


def test_distance_atom_zero_with_s_variable_is_false():
    # dist(x, s) <= 0 means x = s, impossible for a live variable
    graph = ColoredGraph(3, [(0, 1), (1, 2)])
    phi = parse_formula("dist(x, y) <= 0")
    from repro.logic.syntax import Var

    rewritten, removal = removal_rewrite(phi, graph, 2, frozenset({Var("y")}))
    for v in range(2):
        assert not evaluate(removal.graph, rewritten, {Var("x"): v})
