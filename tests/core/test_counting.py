"""Unit tests for the counting index ([18]'s claim, reproduced for k <= 2)."""

import pytest

from repro.baselines.naive import NaiveIndex
from repro.core.config import EngineConfig
from repro.core.counting import CountingIndex, count_solutions
from repro.graphs.colored_graph import ColoredGraph
from repro.graphs.generators import grid, random_planar_like_graph, random_tree
from repro.logic.parser import parse_formula
from repro.logic.syntax import Var

x, y, z = Var("x"), Var("y"), Var("z")
TINY = EngineConfig(dist_naive_threshold=10, bag_naive_threshold=8)

BINARY_QUERIES = [
    "E(x, y)",
    "dist(x, y) <= 2",
    "dist(x, y) > 2 & Blue(y)",
    "Red(x) & Blue(y) & dist(x, y) > 1",
    "exists z. E(x, z) & E(z, y)",
    "x = y | E(x, y)",
]


@pytest.mark.parametrize("text", BINARY_QUERIES)
def test_binary_count_matches_naive(text):
    for maker in (lambda: random_tree(40, seed=5), lambda: grid(6, 6, seed=5)):
        g = maker()
        phi = parse_formula(text)
        counting = CountingIndex(g, phi, (x, y), TINY)
        assert counting.method == "closed-form"
        assert counting.count() == len(NaiveIndex(g, phi, (x, y)))


def test_per_prefix_counts():
    g = random_planar_like_graph(40, seed=7)
    phi = parse_formula("dist(x, y) > 2 & Blue(y)")
    counting = CountingIndex(g, phi, (x, y), TINY)
    naive = NaiveIndex(g, phi, (x, y))
    for a in g.vertices():
        expected = sum(1 for t in naive.solutions if t[0] == a)
        assert counting.count_suffixes(a) == expected, a


def test_unary_count():
    g = random_tree(30, seed=1)
    count = count_solutions(g, parse_formula("Red(x)"), (x,))
    assert count == len(g.color("Red"))


def test_sentence_count():
    g = random_tree(10, seed=1)
    assert count_solutions(g, parse_formula("exists x, y. E(x, y)"), ()) == 1
    assert count_solutions(g, parse_formula("forall x, y. E(x, y)"), ()) == 0


def test_arity3_falls_back_to_enumeration():
    g = random_planar_like_graph(24, seed=2)
    phi = parse_formula("E(x, y) & E(y, z)")
    counting = CountingIndex(g, phi, (x, y, z), TINY)
    assert counting.method == "enumerate"
    assert counting.count() == len(NaiveIndex(g, phi, (x, y, z)))


def test_count_suffixes_rejects_non_binary():
    g = random_tree(10, seed=1)
    counting = CountingIndex(g, parse_formula("Red(x)"), (x,), TINY)
    with pytest.raises(ValueError):
        counting.count_suffixes(0)


def test_empty_result():
    g = ColoredGraph(6, [(0, 1)])
    assert count_solutions(g, parse_formula("Purple(x) & E(x, y)"), (x, y), TINY) == 0
