"""Unit tests for the dynamic unary index (color updates)."""

import random

import pytest

from repro.core.dynamic import DynamicUnaryIndex
from repro.core.normal_form import DecompositionError
from repro.graphs.generators import grid, path, random_tree
from repro.logic.parser import parse_formula
from repro.logic.semantics import evaluate
from repro.logic.syntax import Var

x = Var("x")

QUERIES = [
    "Hot(x)",
    "exists y. E(x, y) & Hot(y)",
    "exists y. dist(x, y) <= 2 & Hot(y) & ~Cold(y)",
    "Hot(x) | (exists y. E(x, y) & Cold(y))",
]


def brute(graph, phi):
    return [v for v in graph.vertices() if evaluate(graph, phi, {x: v})]


def test_docstring_example():
    g = path(8, palette=())
    index = DynamicUnaryIndex(g, parse_formula("exists y. E(x, y) & Hot(y)"), x)
    assert index.solutions() == []
    index.add_color("Hot", 4)
    assert index.solutions() == [3, 5]
    index.remove_color("Hot", 4)
    assert index.solutions() == []


@pytest.mark.parametrize("text", QUERIES)
def test_random_update_sequences_match_brute_force(text):
    rng = random.Random(hash(text) & 0xFFFF)
    g = random_tree(40, seed=6, palette=())
    phi = parse_formula(text)
    index = DynamicUnaryIndex(g, phi, x)
    for _ in range(60):
        color = rng.choice(["Hot", "Cold"])
        v = rng.randrange(g.n)
        if rng.random() < 0.5:
            index.add_color(color, v)
        else:
            index.remove_color(color, v)
        assert index.solutions() == brute(g, phi), text


def test_queries_after_updates():
    g = grid(5, 5, palette=())
    index = DynamicUnaryIndex(g, parse_formula("exists y. E(x, y) & Hot(y)"), x)
    index.add_color("Hot", 12)  # grid center
    assert index.test(7) and index.test(11) and index.test(13) and index.test(17)
    assert not index.test(12)  # the center itself has no hot *neighbor*
    assert index.next_solution(0) == 7
    assert index.next_solution(14) == 17
    assert len(index) == 4


def test_unguarded_query_rejected():
    g = path(5, palette=())
    with pytest.raises(DecompositionError):
        DynamicUnaryIndex(g, parse_formula("exists y. Hot(y)"), x)


def test_idempotent_updates():
    g = path(6, palette=())
    index = DynamicUnaryIndex(g, parse_formula("Hot(x)"), x)
    index.add_color("Hot", 2)
    index.add_color("Hot", 2)
    assert index.solutions() == [2]
    index.remove_color("Hot", 2)
    index.remove_color("Hot", 2)
    assert index.solutions() == []
