"""Unit tests for the distance-type decomposition (Theorem 5.4 stand-in).

The key *semantic* test: for every distance type tau and every tuple of
that type, the decomposition's verdict (some alternative with its locals
evaluated on r-balls and its sentence evaluated globally) must agree with
direct evaluation of the query.
"""

import random
from itertools import combinations

import pytest

from repro.core.distance_types import type_of
from repro.core.normal_form import (
    DecompositionError,
    cross_requirement,
    decompose,
    locality_radius,
    normalize,
    push_quantifiers,
    simplify,
    specialize_for_type,
)
from repro.graphs.generators import random_planar_like_graph
from repro.graphs.neighborhoods import bounded_bfs, distance, induced_subgraph
from repro.logic.parser import parse_formula
from repro.logic.semantics import evaluate
from repro.logic.syntax import Bottom, Top, Var
from repro.logic.transform import free_variables

x, y, z = Var("x"), Var("y"), Var("z")


class TestLocalityRadius:
    def test_atoms(self):
        assert locality_radius(parse_formula("E(x, y)"), frozenset({x, y})) == 1
        assert locality_radius(parse_formula("x = y"), frozenset({x, y})) == 0
        assert locality_radius(parse_formula("dist(x, y) <= 4"), frozenset({x, y})) == 4
        assert locality_radius(parse_formula("Red(x)"), frozenset({x})) == 0

    def test_guarded_exists(self):
        phi = normalize(parse_formula("exists z. E(x, z) & Blue(z)"))
        assert locality_radius(phi, frozenset({x})) == 1

    def test_guarded_chain(self):
        phi = normalize(parse_formula("exists z. E(x, z) & (exists w. E(z, w) & Red(w))"))
        assert locality_radius(phi, frozenset({x})) == 2

    def test_guarded_forall(self):
        phi = normalize(parse_formula("forall z. (E(x, z) -> Red(z))"))
        assert locality_radius(phi, frozenset({x})) == 1

    def test_unguarded_exists_is_rejected(self):
        phi = normalize(parse_formula("exists z. Blue(z)"))
        assert locality_radius(phi, frozenset({x})) is None

    def test_unguarded_forall_is_rejected(self):
        phi = normalize(parse_formula("forall z. Red(z)"))
        assert locality_radius(phi, frozenset()) is None


class TestPushQuantifiers:
    def test_miniscoping_exists(self):
        phi = normalize(parse_formula("exists z. (E(x, z) & Blue(y))"))
        # the z-free conjunct Blue(y) must be pulled out
        assert "Blue" not in repr(_innermost_exists_body(phi))

    def test_distributes_exists_over_or(self):
        phi = push_quantifiers(
            normalize(parse_formula("exists z. (E(x, z) | E(y, z))"))
        )
        from repro.logic.syntax import Or

        assert isinstance(phi, Or)

    def test_semantics_preserved(self):
        rng = random.Random(1)
        g = random_planar_like_graph(18, seed=2)
        for text in [
            "exists z. (E(x, z) & Blue(y))",
            "exists z. (E(x, z) | E(y, z))",
            "forall z. (E(x, z) -> (Red(z) & Blue(y)))",
        ]:
            phi = parse_formula(text)
            transformed = normalize(phi)
            for _ in range(40):
                env = {x: rng.randrange(g.n), y: rng.randrange(g.n)}
                assert evaluate(g, phi, env) == evaluate(g, transformed, env), text


def _innermost_exists_body(phi):
    from repro.logic.syntax import And, Exists, Or

    if isinstance(phi, Exists):
        return phi.body
    if isinstance(phi, (And, Or)):
        for p in phi.parts:
            found = _innermost_exists_body(p)
            if found is not None:
                return found
    return Top()


class TestSimplify:
    def test_constants_propagate(self):
        phi = parse_formula("Red(x) & false")
        assert simplify(phi) == Bottom()
        assert simplify(parse_formula("Red(x) | true")) == Top()

    def test_vacuous_quantifier_dropped(self):
        from repro.logic.syntax import Exists

        phi = Exists(z, parse_formula("Red(x)"))
        assert simplify(phi) == parse_formula("Red(x)")


class TestCrossRequirement:
    def test_atom_bounds(self):
        assert cross_requirement(parse_formula("dist(x, y) <= 3"), frozenset({x, y})) == 3
        assert cross_requirement(parse_formula("E(x, y)"), frozenset({x, y})) == 1

    def test_chain_adds_offsets(self):
        phi = normalize(parse_formula("exists z. E(x, z) & E(z, y)"))
        # z at offset 1 from x; atom E(z, y): 1 + 0 + 1 = 2
        assert cross_requirement(phi, frozenset({x, y})) == 2


class TestDecompose:
    def test_radius_covers_connections(self):
        d = decompose(parse_formula("exists z. E(x, z) & E(z, y)"), (x, y))
        assert d.radius >= 2

    def test_far_type_of_local_query_is_empty(self):
        d = decompose(parse_formula("E(x, y)"), (x, y))
        far = next(t for t in d.per_type if not t.edges)
        assert d.per_type[far] == ()

    def test_close_type_of_far_query_is_empty(self):
        d = decompose(parse_formula("dist(x, y) > 2"), (x, y))
        close = next(t for t in d.per_type if t.edges)
        assert d.per_type[close] == ()

    def test_undecomposable_raises(self):
        # an unguarded quantifier: exists z far from everything
        with pytest.raises(DecompositionError):
            decompose(parse_formula("exists z. Blue(z) & dist(z, x) > 2"), (x,))

    def test_semantic_agreement_with_direct_evaluation(self):
        rng = random.Random(9)
        for text in [
            "E(x, y)",
            "dist(x, y) > 2 & Blue(y)",
            "exists z. E(x, z) & E(z, y)",
            "forall z. (E(x, z) -> dist(z, y) <= 2)",
            "(Red(x) & E(x, y)) | (Blue(x) & dist(x, y) > 1)",
        ]:
            phi = parse_formula(text)
            order = tuple(sorted(free_variables(phi), key=lambda v: v.name))
            d = decompose(phi, order)
            g = random_planar_like_graph(30, seed=13)
            for _ in range(120):
                values = tuple(rng.randrange(g.n) for _ in order)
                tau = type_of(values, lambda a, b: distance(g, a, b, cutoff=d.radius) <= d.radius)
                verdict = _decomposition_verdict(g, d, tau, values)
                assert verdict == evaluate(g, phi, dict(zip(order, values))), (
                    text,
                    values,
                    tau,
                )


def _decomposition_verdict(g, d, tau, values):
    """Evaluate via the decomposition: locals on r-balls, sentences globally."""
    for alt in d.per_type[tau]:
        if not evaluate(g, alt.sentence, {}):
            continue
        ok = True
        for positions, psi in alt.locals:
            anchors = [values[i] for i in sorted(positions)]
            ball = bounded_bfs(g, anchors, len(values) * d.radius)
            sub = induced_subgraph(g, ball)
            env = {d.free_order[i]: values[i] for i in sorted(positions)}
            if not evaluate(sub, psi, env):
                ok = False
                break
        if ok:
            return True
    return False
