"""Unit tests for the memoized bag-local evaluator."""

from repro.core.local_eval import LocalEvaluator
from repro.graphs.generators import path, random_planar_like_graph
from repro.logic.parser import parse_formula
from repro.logic.semantics import evaluate
from repro.logic.syntax import Var

x, y = Var("x"), Var("y")


def test_test_matches_semantics():
    g = random_planar_like_graph(20, seed=1)
    ev = LocalEvaluator(g)
    phi = parse_formula("exists z. E(x, z) & E(z, y)")
    for a in range(0, g.n, 3):
        for b in range(0, g.n, 4):
            expected = evaluate(g, phi, {x: a, y: b})
            assert ev.test(phi, (x, y), (a, b)) == expected


def test_column_is_sorted_and_complete():
    g = path(10, palette=())
    ev = LocalEvaluator(g)
    phi = parse_formula("E(x, y)")
    col = ev.column(phi, (x,), (4,), y)
    assert col == [3, 5]


def test_first_at_least():
    g = path(10, palette=())
    ev = LocalEvaluator(g)
    phi = parse_formula("E(x, y)")
    assert ev.first_at_least(phi, (x,), (4,), y, 0) == 3
    assert ev.first_at_least(phi, (x,), (4,), y, 4) == 5
    assert ev.first_at_least(phi, (x,), (4,), y, 6) is None


def test_memoization_returns_same_object():
    g = path(6, palette=())
    ev = LocalEvaluator(g)
    phi = parse_formula("E(x, y)")
    first = ev.column(phi, (x,), (2,), y)
    second = ev.column(phi, (x,), (2,), y)
    assert first is second
