"""Readers on generation k must be undisturbed by an in-flight update.

The update path is copy-on-write: ``insert_edge``/``delete_edge`` build
a *new* ``QueryIndex`` and never mutate the tower they started from, so
readers holding the old generation keep getting old-generation answers
with no locking.  This test hammers the old index from many threads
while the main thread applies a chain of updates under the paranoid
freeze tripwire (``repro serve --paranoid``'s guard): any stray write to
a frozen register by the repair would raise ``FrozenWriteError`` inside
the update, and any cross-generation leak would show up as a reader
disagreement.  Both storage layouts are exercised explicitly — the
arena's flat register files are the layout most sensitive to aliasing.
"""

from __future__ import annotations

import random
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.contracts.effects import freeze
from repro.core.config import EngineConfig
from repro.core.engine import build_index
from repro.graphs.generators import random_planar_like_graph

QUERY = "exists z. E(x, z) & E(z, y)"
THREADS = 8
PROBES_PER_THREAD = 40
UPDATES = 6


def _edits(graph, count, seed):
    """``count`` valid toggle edits against the evolving edge set."""
    rng = random.Random(seed)
    present = {tuple(sorted(e)) for e in graph.edges()}
    edits = []
    while len(edits) < count:
        u, v = rng.randrange(graph.n), rng.randrange(graph.n)
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if key in present:
            present.discard(key)
            edits.append((u, v, False))
        else:
            present.add(key)
            edits.append((u, v, True))
    return edits


@pytest.mark.parametrize("layout", ["object", "arena"])
def test_readers_stable_while_updates_in_flight(layout):
    graph = random_planar_like_graph(48, seed=9)
    config = EngineConfig(layout=layout)
    index = build_index(graph, QUERY, config=config)

    before = list(index.enumerate())
    rng = random.Random(4242)
    probes = [
        (rng.randrange(graph.n), rng.randrange(graph.n))
        for _ in range(THREADS * PROBES_PER_THREAD)
    ]
    expected = {p: (index.test(p), index.next_solution(p)) for p in probes}
    edits = _edits(graph, UPDATES, seed=17)

    barrier = threading.Barrier(THREADS + 1)
    stop = threading.Event()

    def hammer(worker: int) -> list[str]:
        mine = probes[worker::THREADS]
        barrier.wait()  # overlap the read storm with the update chain
        errors: list[str] = []
        while True:  # always >= 1 full pass, keep going while updating
            for probe in mine:
                if index.test(probe) != expected[probe][0]:
                    errors.append(f"test{probe} changed under reader")
                if index.next_solution(probe) != expected[probe][1]:
                    errors.append(f"next_solution{probe} changed under reader")
            if stop.is_set() or errors:
                return errors

    with freeze(), ThreadPoolExecutor(max_workers=THREADS) as pool:
        futures = [pool.submit(hammer, w) for w in range(THREADS)]
        barrier.wait()
        updated = index
        for u, v, inserted in edits:
            updated = (
                updated.insert_edge(u, v) if inserted
                else updated.delete_edge(u, v)
            )
        stop.set()
        problems = [msg for f in futures for msg in f.result()]

    assert problems == []
    # the old generation survived the whole chain untouched ...
    assert index.version == 0
    assert list(index.enumerate()) == before
    # ... and the new generation is exactly what a rebuild would produce
    assert updated.version == UPDATES
    rebuilt = build_index(updated.graph, QUERY, config=config)
    assert updated.registers() == rebuilt.registers()
    assert list(updated.enumerate()) == list(rebuilt.enumerate())
