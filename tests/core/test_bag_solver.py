"""Unit tests for the per-bag solver (Steps 8-11 machinery).

The splitter-removal mode must agree exactly with the naive mode on
every query, prefix, and lower bound — that equivalence *is* the content
of Steps 9-11.
"""

import random

import pytest

from repro.core.bag_solver import BagSolver
from repro.graphs.generators import grid, random_planar_like_graph
from repro.logic.parser import parse_formula
from repro.logic.syntax import Var
from repro.logic.transform import free_variables

x, y, z = Var("x"), Var("y"), Var("z")

QUERIES = [
    "E(x, y)",
    "dist(x, y) <= 2",
    "dist(x, y) > 2 & Blue(y)",
    "exists z. E(x, z) & E(z, y)",
    "Red(x) & x != y",
]


@pytest.fixture(params=[0, 1])
def bag_graph(request):
    return random_planar_like_graph(36, seed=request.param)


def test_modes(bag_graph):
    naive = BagSolver(bag_graph, max_bound=2, naive_threshold=100)
    recursive = BagSolver(bag_graph, max_bound=2, naive_threshold=6)
    assert naive.mode == "naive"
    assert recursive.mode == "splitter"
    assert recursive.removal_depth >= 1


@pytest.mark.parametrize("text", QUERIES)
def test_recursive_equals_naive_test(bag_graph, text):
    phi = parse_formula(text)
    order = tuple(sorted(free_variables(phi), key=lambda v: v.name))
    naive = BagSolver(bag_graph, max_bound=3, naive_threshold=100)
    recursive = BagSolver(bag_graph, max_bound=3, naive_threshold=6)
    rng = random.Random(42)
    for _ in range(120):
        values = tuple(rng.randrange(bag_graph.n) for _ in order)
        assert recursive.test(phi, order, values) == naive.test(phi, order, values), values


@pytest.mark.parametrize("text", QUERIES)
def test_recursive_equals_naive_first_at_least(bag_graph, text):
    phi = parse_formula(text)
    order = tuple(sorted(free_variables(phi), key=lambda v: v.name))
    prefix_order, last = order[:-1], order[-1]
    naive = BagSolver(bag_graph, max_bound=3, naive_threshold=100)
    recursive = BagSolver(bag_graph, max_bound=3, naive_threshold=6)
    rng = random.Random(7)
    for _ in range(80):
        prefix = tuple(rng.randrange(bag_graph.n) for _ in prefix_order)
        lower = rng.randrange(bag_graph.n)
        expected = naive.first_at_least(phi, prefix_order, prefix, last, lower)
        assert recursive.first_at_least(phi, prefix_order, prefix, last, lower) == expected


def test_column_equals_brute_force(bag_graph):
    phi = parse_formula("dist(x, y) <= 2")
    solver = BagSolver(bag_graph, max_bound=2, naive_threshold=6)
    from repro.logic.semantics import evaluate

    for a in range(0, bag_graph.n, 5):
        column = solver.column(phi, (x,), (a,), y)
        brute = [
            b
            for b in bag_graph.vertices()
            if evaluate(bag_graph, phi, {x: a, y: b})
        ]
        assert column == brute


def test_edgeless_graph_is_naive():
    from repro.graphs.colored_graph import ColoredGraph

    solver = BagSolver(ColoredGraph(30), max_bound=1, naive_threshold=5)
    assert solver.mode == "naive"


def test_depth_cap_forces_naive():
    g = grid(8, 8)
    solver = BagSolver(g, max_bound=2, naive_threshold=4, max_depth=2)
    assert solver.removal_depth <= 2
