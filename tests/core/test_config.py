"""Unit tests for EngineConfig."""

import dataclasses

import pytest

from repro.core.config import DEFAULT_CONFIG, EngineConfig


def test_defaults_are_sane():
    assert 0 < DEFAULT_CONFIG.eps <= 1
    assert DEFAULT_CONFIG.dist_naive_threshold >= 2
    assert DEFAULT_CONFIG.bag_naive_threshold >= 2
    assert DEFAULT_CONFIG.dist_max_depth >= 1
    assert DEFAULT_CONFIG.bag_max_depth >= 1
    assert DEFAULT_CONFIG.precompute_far is True


def test_frozen():
    with pytest.raises(dataclasses.FrozenInstanceError):
        DEFAULT_CONFIG.eps = 0.9


def test_replace_produces_new_config():
    tweaked = dataclasses.replace(DEFAULT_CONFIG, eps=0.25)
    assert tweaked.eps == 0.25
    assert DEFAULT_CONFIG.eps != 0.25
    assert tweaked.bag_naive_threshold == DEFAULT_CONFIG.bag_naive_threshold


def test_custom_config_flows_through_engine():
    from repro.core.engine import build_index
    from repro.graphs.generators import random_tree

    g = random_tree(25, seed=1)
    config = EngineConfig(bag_naive_threshold=5, dist_naive_threshold=5)
    index = build_index(g, "dist(x, y) <= 2", config=config)
    assert index._impl.config is config
