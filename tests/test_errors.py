"""The unified exception hierarchy (``repro.errors``)."""

from __future__ import annotations

import pytest

import repro.errors as errors
from repro.errors import GraphFormatError, ReproError, UsageError


def test_every_alias_resolves_and_derives_from_repro_error():
    for name in errors.__all__:
        cls = getattr(errors, name)
        assert isinstance(cls, type), name
        assert issubclass(cls, ReproError), name


def test_unknown_name_raises_attribute_error():
    with pytest.raises(AttributeError, match="NoSuchError"):
        errors.NoSuchError  # noqa: B018


def test_dir_lists_aliases():
    listing = dir(errors)
    assert "ParseError" in listing and "BadRequest" in listing


def test_aliases_are_the_defining_classes():
    from repro.core.normal_form import DecompositionError
    from repro.logic.parser import ParseError
    from repro.persist.snapshot import SnapshotError
    from repro.serve.service import BadRequest

    assert errors.ParseError is ParseError
    assert errors.DecompositionError is DecompositionError
    assert errors.SnapshotError is SnapshotError
    assert errors.BadRequest is BadRequest


def test_historical_value_error_bases_survive():
    """Pre-hierarchy ``except ValueError:`` call sites keep working."""
    assert issubclass(errors.ParseError, ValueError)
    assert issubclass(errors.DecompositionError, ValueError)
    assert issubclass(GraphFormatError, ValueError)


def test_exit_codes():
    assert ReproError.exit_code == 1
    assert UsageError.exit_code == 2
    assert GraphFormatError.exit_code == 2
    assert errors.ParseError.exit_code == 2
    assert errors.BadRequest.exit_code == 2
    assert errors.SnapshotError.exit_code == 1


def test_parse_error_is_catchable_as_repro_error():
    from repro.logic.parser import parse_formula

    with pytest.raises(ReproError):
        parse_formula("E(x,")


def test_graph_io_raises_graph_format_error():
    from repro.graphs.io import loads_edge_list

    with pytest.raises(GraphFormatError, match="line 2"):
        loads_edge_list("n 3\ne 0 banana\n")


def test_top_level_export():
    import repro

    assert repro.ReproError is ReproError
