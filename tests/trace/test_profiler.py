"""The sampling profiler: sampling, collapsed output, cross-process merge."""

from __future__ import annotations

import threading
import time

import pytest

from repro.trace.profiler import (
    DEFAULT_HZ,
    MAX_PROFILE_SECONDS,
    SamplingProfiler,
    flamegraph_text,
    merge_collapsed,
    merge_profiles,
    profile_for,
)


def _spin(stop: threading.Event) -> None:
    while not stop.is_set():
        sum(i * i for i in range(500))


def test_profiler_samples_a_busy_thread():
    stop = threading.Event()
    busy = threading.Thread(target=_spin, args=(stop,), name="busy")
    busy.start()
    try:
        with SamplingProfiler(hz=500) as prof:
            time.sleep(0.3)
    finally:
        stop.set()
        busy.join()
    assert prof.samples > 0
    stacks = prof.collapsed()
    assert stacks
    # the busy thread's workload frame shows up, root -> leaf
    assert any("_spin" in stack for stack in stacks)
    for stack, count in stacks.items():
        assert count > 0
        assert ";" in stack or stack  # collapsed convention
    # the sampler never records its own stack
    assert not any("SamplingProfiler._run" in stack for stack in stacks)


def test_profiler_restart_accumulates():
    prof = SamplingProfiler(hz=500)
    stop = threading.Event()
    busy = threading.Thread(target=_spin, args=(stop,))
    busy.start()
    try:
        with prof:
            time.sleep(0.2)
        first = prof.samples
        assert first > 0
        with prof:
            time.sleep(0.2)
    finally:
        stop.set()
        busy.join()
    assert prof.samples > first


def test_profiler_double_start_rejected():
    prof = SamplingProfiler(hz=10)
    prof.start()
    try:
        with pytest.raises(RuntimeError):
            prof.start()
    finally:
        prof.stop()
    prof.stop()  # idempotent


def test_profiler_rejects_bad_hz():
    with pytest.raises(ValueError):
        SamplingProfiler(hz=0)


def test_flamegraph_lines_heaviest_first():
    prof = SamplingProfiler()
    with prof._lock:
        prof._counts = {"a;b": 2, "a;c": 5, "a": 1}
        prof._samples = 8
    lines = prof.flamegraph_lines()
    assert lines == ["a;c 5", "a;b 2", "a 1"]
    assert flamegraph_text(prof.collapsed()).splitlines() == lines


def test_merge_collapsed_adds_counts():
    merged = merge_collapsed([{"a;b": 2, "a": 1}, {"a;b": 3, "c": 4}])
    assert merged == {"a;b": 5, "a": 1, "c": 4}


def test_merge_profiles_wire_payloads():
    one = {"hz": DEFAULT_HZ, "seconds": 1.0, "samples": 3, "stacks": {"a": 3}}
    two = {"hz": DEFAULT_HZ, "seconds": 1.0, "samples": 2, "stacks": {"a": 1, "b": 1}}
    merged = merge_profiles([one, two])
    assert merged["samples"] == 5
    assert merged["stacks"] == {"a": 4, "b": 1}


def test_profile_for_caps_duration_and_reports():
    stop = threading.Event()
    busy = threading.Thread(target=_spin, args=(stop,))
    busy.start()
    try:
        payload = profile_for(0.2, hz=500)
    finally:
        stop.set()
        busy.join()
    assert payload["hz"] == 500
    assert payload["seconds"] == 0.2
    assert payload["samples"] > 0
    assert payload["stacks"]
    assert MAX_PROFILE_SECONDS == 30.0
