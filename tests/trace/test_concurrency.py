"""Concurrency tests: context-var isolation across threads.

The tracing runtime must give each thread (and each request in the
threaded HTTP server) its own independent trace: spans recorded in one
thread's ``tracing()`` block must never leak into another's tracer, and
worker threads without an active trace must record nothing at all.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

from repro.trace import active_tracer, span, tracing

THREADS = 8
SPANS_PER_THREAD = 25


def _traced_job(worker: int):
    barrier_spans = []
    with tracing(f"job-{worker}", worker=worker) as tracer:
        for i in range(SPANS_PER_THREAD):
            with span("outer", worker=worker, i=i) as outer:
                with span("inner", worker=worker) as inner:
                    barrier_spans.append((outer, inner))
    return tracer


def test_threads_get_disjoint_well_nested_traces():
    with ThreadPoolExecutor(max_workers=THREADS) as pool:
        tracers = list(pool.map(_traced_job, range(THREADS)))

    assert len({t.trace_id for t in tracers}) == THREADS
    for worker, tracer in enumerate(tracers):
        spans = tracer.spans
        # root + (outer + inner) per iteration, nothing from other threads
        assert len(spans) == 1 + 2 * SPANS_PER_THREAD
        assert {s.trace_id for s in spans} == {tracer.trace_id}
        for s in spans:
            if s.name != f"job-{worker}":
                assert s.attributes["worker"] == worker
        # well-nested: every inner's parent is an outer, every outer's
        # parent is the root
        by_id = {s.span_id: s for s in spans}
        root = next(s for s in spans if s.parent_id is None)
        assert root.name == f"job-{worker}"
        for s in spans:
            if s.name == "outer":
                assert s.parent_id == root.span_id
            elif s.name == "inner":
                assert by_id[s.parent_id].name == "outer"


def test_no_context_leak_after_tracing():
    results = {}

    def job():
        with tracing("ephemeral"):
            pass
        results["after"] = active_tracer()

    thread = threading.Thread(target=job)
    thread.start()
    thread.join()
    assert results["after"] is None
    assert active_tracer() is None


def test_worker_threads_without_trace_record_nothing():
    """A pool fan-out from inside tracing(): workers see no active trace,
    so their spans vanish silently instead of mis-parenting."""
    recorded = []

    def worker(i):
        assert active_tracer() is None
        with span("worker.step", i=i) as sp:
            recorded.append(sp)
        return i

    with tracing("fan-out") as tracer:
        with ThreadPoolExecutor(max_workers=4) as pool:
            assert sorted(pool.map(worker, range(10))) == list(range(10))
    assert all(sp is None for sp in recorded)
    assert [s.name for s in tracer.spans] == ["fan-out"]


def test_one_tracer_accepts_spans_from_many_threads():
    """Tracer.add itself is thread-safe (the serve watchdog relies on it)."""
    from repro.trace import Span, Tracer, new_span_id

    tracer = Tracer(name="shared", max_spans=10_000)

    def add_some(base):
        for _ in range(100):
            s = Span(
                trace_id=tracer.trace_id,
                span_id=new_span_id(),
                parent_id=None,
                name=f"t{base}",
                start=0.0,
            )
            s.end = 1e-6
            tracer.add(s)

    threads = [threading.Thread(target=add_some, args=(i,)) for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(tracer.spans) == 800
    assert tracer.dropped == 0
