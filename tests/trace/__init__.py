"""Tests for the repro.trace span subsystem."""
