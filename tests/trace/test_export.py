"""Exporter tests: Chrome trace events, JSONL, and the text renderers."""

from __future__ import annotations

import json

from repro.trace import (
    render_stage_totals,
    render_tree,
    span,
    stage_totals,
    to_chrome_trace,
    to_jsonl,
    tracing,
    write_chrome_trace,
    write_jsonl,
)


def _sample_tracer():
    with tracing("root", job="sample") as tracer:
        with span("build", n=10):
            with span("cover"):
                pass
        with span("enumerate.step"):
            pass
        with span("enumerate.step"):
            pass
    return tracer


def test_chrome_trace_shape():
    tracer = _sample_tracer()
    doc = to_chrome_trace(tracer)
    events = doc["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    complete = [e for e in events if e["ph"] == "X"]
    assert len(meta) == 1 and meta[0]["name"] == "process_name"
    assert len(complete) == len(tracer.spans)
    names = {e["name"] for e in complete}
    assert {"root", "build", "cover", "enumerate.step"} <= names
    for event in complete:
        assert event["ts"] >= 0  # microseconds relative to trace origin
        assert event["dur"] >= 0
        assert event["args"]["span_id"]
    build = next(e for e in complete if e["name"] == "build")
    assert build["args"]["n"] == 10


def test_chrome_trace_roundtrips_through_json(tmp_path):
    tracer = _sample_tracer()
    out = tmp_path / "trace.json"
    write_chrome_trace(tracer, out)
    loaded = json.loads(out.read_text())
    assert loaded == to_chrome_trace(tracer)


def test_jsonl_one_object_per_span(tmp_path):
    tracer = _sample_tracer()
    lines = to_jsonl(tracer).strip().split("\n")
    assert len(lines) == len(tracer.spans)
    rows = [json.loads(line) for line in lines]
    assert all(row["trace_id"] == tracer.trace_id for row in rows)
    assert {row["name"] for row in rows} == {s.name for s in tracer.spans}
    out = tmp_path / "spans.jsonl"
    write_jsonl(tracer, out)
    assert out.read_text() == to_jsonl(tracer) + "\n"


def test_render_tree_is_indented_ascii():
    tracer = _sample_tracer()
    text = render_tree(tracer)
    assert "root" in text
    assert "|--" in text or "`--" in text
    # children are indented under the root
    root_line = next(line for line in text.splitlines() if "root" in line)
    build_line = next(line for line in text.splitlines() if "build" in line)
    assert len(build_line) - len(build_line.lstrip()) > len(root_line) - len(
        root_line.lstrip()
    )


def test_stage_totals_aggregate_by_name():
    tracer = _sample_tracer()
    totals = stage_totals(tracer.spans)
    assert totals["enumerate.step"]["count"] == 2
    assert totals["build"]["count"] == 1
    assert totals["build"]["total_seconds"] >= totals["cover"]["total_seconds"]
    text = render_stage_totals(tracer.spans)
    assert "enumerate.step" in text
    assert "count" in text
