"""Structured JSON logging tests: formatter fields and trace correlation."""

from __future__ import annotations

import io
import json
import logging

from repro.trace import current_span, log_event, span, tracing
from repro.trace.logging import JsonFormatter, configure


def _capture_logger(name: str) -> tuple[logging.Logger, io.StringIO]:
    stream = io.StringIO()
    logger = configure(stream=stream, logger_name=name)
    return logger, stream


def test_formatter_emits_one_json_object():
    record = logging.LogRecord(
        "repro.test", logging.INFO, __file__, 1, "hello %s", ("world",), None
    )
    payload = json.loads(JsonFormatter().format(record))
    assert payload["message"] == "hello world"
    assert payload["level"] == "info"
    assert payload["logger"] == "repro.test"
    assert payload["ts"].endswith("Z")
    assert "trace_id" not in payload  # no active trace


def test_log_event_merges_fields():
    logger, stream = _capture_logger("repro.test.fields")
    log_event(logger, "slow request", level=logging.WARNING, endpoint="/v1/x", ms=12.5)
    payload = json.loads(stream.getvalue())
    assert payload["message"] == "slow request"
    assert payload["level"] == "warning"
    assert payload["endpoint"] == "/v1/x"
    assert payload["ms"] == 12.5


def test_trace_ids_are_injected_when_tracing():
    logger, stream = _capture_logger("repro.test.corr")
    with tracing("job") as tracer:
        with span("work"):
            inner = current_span()
            log_event(logger, "inside")
    payload = json.loads(stream.getvalue())
    assert payload["trace_id"] == tracer.trace_id
    assert payload["span_id"] == inner.span_id


def test_exceptions_are_rendered():
    logger, stream = _capture_logger("repro.test.exc")
    try:
        raise RuntimeError("kaboom")
    except RuntimeError:
        logger.exception("it broke")
    payload = json.loads(stream.getvalue())
    assert payload["message"] == "it broke"
    assert "kaboom" in payload["exception"]


def test_configure_is_idempotent():
    logger, _ = _capture_logger("repro.test.idem")
    logger2, stream2 = _capture_logger("repro.test.idem")
    assert logger is logger2
    assert len(logger.handlers) == 1  # the old handler was replaced
    logger.info("once")
    assert len(stream2.getvalue().strip().splitlines()) == 1
