"""Unit tests for spans, tracers, and the context-var runtime."""

from __future__ import annotations

import pytest

from repro.trace import (
    Span,
    Tracer,
    active_tracer,
    current_span,
    current_trace_id,
    new_span_id,
    new_trace_id,
    span,
    tracing,
)


def test_ids_are_hex_and_distinct():
    a, b = new_trace_id(), new_trace_id()
    assert a != b
    assert len(a) == 32
    int(a, 16)  # must be hex
    s = new_span_id()
    assert len(s) == 16
    int(s, 16)


def test_hooks_are_noops_outside_tracing():
    assert active_tracer() is None
    assert current_span() is None
    assert current_trace_id() is None
    with span("anything", key=1) as sp:
        assert sp is None  # the shared no-op handle yields None


def test_tracing_records_a_root_span():
    with tracing("job", answer=42) as tracer:
        assert active_tracer() is tracer
        assert current_trace_id() == tracer.trace_id
        root = current_span()
        assert root is not None and root.name == "job"
        assert root.attributes["answer"] == 42
    assert active_tracer() is None
    spans = tracer.spans
    assert [s.name for s in spans] == ["job"]
    assert spans[0].parent_id is None
    assert spans[0].end is not None


def test_nesting_sets_parent_ids():
    with tracing("root") as tracer:
        with span("outer") as outer:
            with span("inner") as inner:
                assert inner.parent_id == outer.span_id
            assert current_span() is outer
    by_name = {s.name: s for s in tracer.spans}
    assert by_name["outer"].parent_id == by_name["root"].span_id
    assert by_name["inner"].parent_id == by_name["outer"].span_id
    assert by_name["inner"].trace_id == tracer.trace_id


def test_tree_is_well_nested():
    with tracing("root") as tracer:
        with span("a"):
            with span("a1"):
                pass
        with span("b"):
            pass
    (root,) = tracer.tree()
    assert root["name"] == "root"
    assert [n["name"] for n in root["children"]] == ["a", "b"]
    assert [n["name"] for n in root["children"][0]["children"]] == ["a1"]


def test_span_error_status_and_reraise():
    with pytest.raises(ValueError):
        with tracing("root") as tracer:
            with span("boom"):
                raise ValueError("nope")
    boom = next(s for s in tracer.spans if s.name == "boom")
    assert boom.status == "error"
    assert boom.attributes["error"] == "ValueError"
    assert boom.end is not None


def test_durations_are_monotone_and_contained():
    with tracing("root") as tracer:
        with span("child"):
            sum(range(1000))
    by_name = {s.name: s for s in tracer.spans}
    child, root = by_name["child"], by_name["root"]
    assert child.duration >= 0
    assert root.duration >= child.duration
    assert root.start <= child.start
    assert child.end <= root.end


def test_max_spans_cap_counts_drops():
    with tracing("root", max_spans=3) as tracer:
        for i in range(10):
            with span(f"s{i}"):
                pass
    assert len(tracer.spans) == 3
    # 7 overflow child spans plus the root (recorded last, over the cap)
    assert tracer.dropped == 8
    assert tracer.to_dict()["dropped"] == 8


def test_to_dict_shape():
    with tracing("root", tag="x") as tracer:
        with span("child"):
            pass
    payload = tracer.to_dict()
    assert payload["trace_id"] == tracer.trace_id
    assert payload["spans"] == 2
    assert payload["duration_seconds"] >= 0
    (root,) = payload["tree"]
    assert root["name"] == "root"
    assert root["attributes"] == {"tag": "x"}
    assert [c["name"] for c in root["children"]] == ["child"]


def test_explicit_trace_id_is_used():
    with tracing("root", trace_id="deadbeefdeadbeef") as tracer:
        pass
    assert tracer.trace_id == "deadbeefdeadbeef"
    assert tracer.spans[0].trace_id == "deadbeefdeadbeef"


def test_orphan_spans_are_rerooted():
    tracer = Tracer(name="manual")
    orphan = Span(
        trace_id=tracer.trace_id,
        span_id=new_span_id(),
        parent_id="feedfacefeedface",  # never recorded
        name="lost",
        start=0.0,
    )
    orphan.end = 1.0
    tracer.add(orphan)
    (root,) = tracer.tree()
    assert root["name"] == "lost"


def test_observers_see_spans_and_exceptions_are_swallowed():
    seen = []

    def good(sp):
        seen.append(sp.name)

    def bad(sp):
        raise RuntimeError("observer bug")

    with tracing("root", observers=(bad, good)):
        with span("child"):
            pass
    assert seen == ["child", "root"]
