"""Watchdog tests: calibration, delay violations, ops violations."""

from __future__ import annotations

import pytest

from repro import metrics
from repro.trace import Watchdog, span, tracing
from repro.trace.watchdog import DELAY_VIOLATION, OPS_VIOLATION


def test_rejects_bad_knobs():
    with pytest.raises(ValueError):
        Watchdog(multiple=0)
    with pytest.raises(ValueError):
        Watchdog(ops_multiple=-1)
    with pytest.raises(ValueError):
        Watchdog(calibration_samples=0)


def test_calibrates_then_flags_slow_steps():
    dog = Watchdog(multiple=10.0, calibration_samples=4, min_budget_seconds=1e-6)
    for _ in range(4):
        dog.observe_step(1e-3)
    assert dog.calibrated
    assert dog.budget_seconds == pytest.approx(1e-3)
    assert dog.violations == {"delay": 0, "ops": 0}
    dog.observe_step(5e-3)  # 5x the budget: within the 10x multiple
    assert dog.violations["delay"] == 0
    dog.observe_step(50e-3)  # 50x: violation
    assert dog.violations["delay"] == 1
    assert dog.steps_seen == 6


def test_calibration_steps_are_never_flagged():
    dog = Watchdog(multiple=2.0, calibration_samples=8)
    # wildly uneven calibration steps: still no violations
    for i in range(8):
        dog.observe_step(1e-6 if i % 2 else 1.0)
    assert dog.violations == {"delay": 0, "ops": 0}


def test_silent_on_uniform_steps():
    dog = Watchdog(multiple=20.0, calibration_samples=4)
    for _ in range(200):
        dog.observe_step(1e-4)
    assert dog.violations == {"delay": 0, "ops": 0}


def test_min_budget_floor_absorbs_timer_noise():
    dog = Watchdog(multiple=20.0, calibration_samples=4, min_budget_seconds=1e-4)
    for _ in range(4):
        dog.observe_step(1e-9)  # sub-microsecond steps
    assert dog.budget_seconds == pytest.approx(1e-4)
    dog.observe_step(1e-6)  # fast step, huge relative to the raw median
    assert dog.violations["delay"] == 0


def test_explicit_budget_skips_calibration():
    dog = Watchdog(budget_seconds=1e-3, multiple=5.0)
    assert dog.calibrated
    dog.observe_step(10e-3)
    assert dog.violations["delay"] == 1


def test_ops_budget_calibrates_and_flags():
    dog = Watchdog(
        budget_seconds=1.0,  # delay never violates here
        ops_budget=None,
        ops_multiple=2.0,
        calibration_samples=4,
    )
    for _ in range(4):
        dog.observe_step(1e-6, ops=10.0)
    assert dog.ops_budget == pytest.approx(10.0)
    dog.observe_step(1e-6, ops=15.0)  # 1.5x: fine
    assert dog.violations["ops"] == 0
    dog.observe_step(1e-6, ops=100.0)  # 10x: violation
    assert dog.violations["ops"] == 1


def test_explicit_ops_budget():
    dog = Watchdog(budget_seconds=1.0, ops_budget=20.0, ops_multiple=4.0)
    dog.observe_step(1e-6, ops=79.0)
    assert dog.violations["ops"] == 0
    dog.observe_step(1e-6, ops=81.0)
    assert dog.violations["ops"] == 1


def test_as_observer_flags_synthetic_slow_span():
    import time

    dog = Watchdog(
        budget_seconds=1e-4, multiple=2.0, span_name="enumerate.step"
    )
    with tracing("job", observers=(dog.on_span,)) as tracer:
        with span("enumerate.step"):
            pass  # fast step
        with span("enumerate.step"):
            time.sleep(0.01)  # 100x the budget
        with span("other.stage"):
            time.sleep(0.01)  # wrong name: ignored
    assert dog.steps_seen == 2
    assert dog.violations["delay"] == 1
    flagged = [
        s for s in tracer.spans
        if s.attributes.get("guarantee.violation") == "delay"
    ]
    assert len(flagged) == 1
    assert flagged[0].name == "enumerate.step"


def test_violations_bump_metrics_counters():
    dog = Watchdog(budget_seconds=1e-6, multiple=1.0, ops_budget=1.0,
                   ops_multiple=1.0)
    with metrics.collect(ops=False) as registry:
        dog.observe_step(1.0, ops=50.0)
    assert registry.counters[DELAY_VIOLATION].value == 1
    assert registry.counters[OPS_VIOLATION].value == 1


def test_snapshot_shape():
    dog = Watchdog(calibration_samples=2)
    dog.observe_step(1e-3)
    snap = dog.snapshot()
    assert snap["steps_seen"] == 1
    assert snap["calibrated"] is False
    assert snap["violations"] == {"delay": 0, "ops": 0}
