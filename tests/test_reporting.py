"""Unit tests for the benchmark report renderer."""

import json

import pytest

from repro.reporting import (
    ReportError,
    group_by_experiment,
    load_results,
    main,
    render_benchmarks,
    render_group,
    render_report,
)


def fake_results(tmp_path):
    payload = {
        "benchmarks": [
            {
                "fullname": "benchmarks/bench_storing.py::test_lookup[1024]",
                "name": "test_lookup[1024]",
                "stats": {"mean": 2.5e-6},
                "extra_info": {"per_lookup_batch": 512},
            },
            {
                "fullname": "benchmarks/bench_storing.py::test_lookup[262144]",
                "name": "test_lookup[262144]",
                "stats": {"mean": 3.1e-6},
                "extra_info": {},
            },
            {
                "fullname": "benchmarks/bench_delay.py::test_delay_profile[512]",
                "name": "test_delay_profile[512]",
                "stats": {"mean": 0.8},
                "extra_info": {"delay_max_us": 120.0},
            },
        ]
    }
    path = tmp_path / "bench.json"
    path.write_text(json.dumps(payload))
    return path


def test_load_and_group(tmp_path):
    path = fake_results(tmp_path)
    benchmarks = load_results(path)
    assert len(benchmarks) == 3
    groups = group_by_experiment(benchmarks)
    assert set(groups) == {"bench_storing", "bench_delay"}
    # numeric params sort numerically: 1024 before 262144
    names = [b["name"] for b in groups["bench_storing"]]
    assert names == ["test_lookup[1024]", "test_lookup[262144]"]


def test_render_group_formats_units(tmp_path):
    path = fake_results(tmp_path)
    groups = group_by_experiment(load_results(path))
    table = render_group("bench_storing", groups["bench_storing"])
    assert "E1" in table
    assert "2.5 us" in table
    assert "per_lookup_batch=512" in table
    delay = render_group("bench_delay", groups["bench_delay"])
    assert "800.0 ms" in delay


def test_render_report_orders_experiments(tmp_path):
    report = render_report(fake_results(tmp_path))
    assert report.index("E1") < report.index("E9")
    assert "3 measurements" in report


def test_main_cli(tmp_path, capsys):
    path = fake_results(tmp_path)
    assert main([str(path)]) == 0
    assert "Benchmark report" in capsys.readouterr().out
    assert main([]) == 2


def test_unknown_stem_renders_placeholder():
    benchmarks = [
        {
            "fullname": "benchmarks/bench_mystery.py::test_thing[8]",
            "name": "test_thing[8]",
            "stats": {"mean": 1e-3},
            "extra_info": {},
        }
    ]
    report = render_benchmarks(benchmarks)
    assert "? — bench_mystery" in report


def test_numeric_experiment_order():
    def entry(stem):
        return {
            "fullname": f"benchmarks/{stem}.py::test_x[8]",
            "name": "test_x[8]",
            "stats": {"mean": 1e-3},
            "extra_info": {},
        }

    report = render_benchmarks([entry("bench_sparsity"), entry("bench_distance")])
    assert report.index("E3") < report.index("E10")  # numeric, not lexicographic


# ----------------------------------------------------------------------
# hardened error handling: one-line ReportError, exit code 2, no traceback


def test_load_results_missing_file(tmp_path):
    with pytest.raises(ReportError, match="no such file"):
        load_results(tmp_path / "nope.json")


def test_load_results_empty_file(tmp_path):
    path = tmp_path / "bench.json"
    path.write_text("")
    with pytest.raises(ReportError, match="empty"):
        load_results(path)
    path.write_text("   \n")
    with pytest.raises(ReportError, match="empty"):
        load_results(path)


def test_load_results_truncated_json(tmp_path):
    path = tmp_path / "bench.json"
    path.write_text('{"benchmarks": [{"name": "test_x[8]"')
    with pytest.raises(ReportError, match="invalid JSON"):
        load_results(path)


def test_load_results_wrong_shape(tmp_path):
    path = tmp_path / "bench.json"
    path.write_text("[1, 2, 3]")
    with pytest.raises(ReportError, match="benchmarks"):
        load_results(path)
    path.write_text('{"benchmarks": 7}')
    with pytest.raises(ReportError, match="list"):
        load_results(path)


@pytest.mark.parametrize("content", ["", "{not json", '{"other": 1}'])
def test_main_exits_2_without_traceback(tmp_path, capsys, content):
    path = tmp_path / "bench.json"
    path.write_text(content)
    assert main([str(path)]) == 2
    captured = capsys.readouterr()
    assert "repro.reporting:" in captured.err
    assert "Traceback" not in captured.err


def test_main_exits_2_on_missing_file(tmp_path, capsys):
    assert main([str(tmp_path / "ghost.json")]) == 2
    assert "no such file" in capsys.readouterr().err
