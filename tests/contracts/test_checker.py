"""The static checker against seeded violations and the real tree."""

from __future__ import annotations

import json
from pathlib import Path

from repro.contracts.checker import (
    RULE_CALLEE,
    RULE_NESTED_SIZED,
    RULE_RECURSION,
    RULE_SIZED_LOOP,
    check_paths,
)

FIXTURE = Path(__file__).parent / "fixture_violations.py"
SRC = Path(__file__).parent.parent.parent / "src" / "repro"


def fixture_line(marker: str) -> int:
    """1-based line number of the (unique) marker comment in the fixture."""
    lines = FIXTURE.read_text().splitlines()
    matches = [i + 1 for i, line in enumerate(lines) if line.rstrip().endswith(marker)]
    assert len(matches) == 1, f"marker {marker!r} found {len(matches)} times"
    return matches[0]


class TestFixtureViolations:
    def setup_method(self):
        self.report = check_paths([FIXTURE])
        self.errors = self.report.errors

    def find(self, rule, line):
        hits = [
            f for f in self.report.findings if f.rule == rule and f.line == line
        ]
        assert hits, (
            f"no {rule} finding at line {line}; got "
            f"{[(f.rule, f.line) for f in self.report.findings]}"
        )
        return hits[0]

    def test_exit_code_nonzero(self):
        assert self.report.exit_code == 1
        assert len(self.errors) == 6

    def test_sized_loop_fires(self):
        line = fixture_line("# CTC001 fires here")
        finding = self.find(RULE_SIZED_LOOP, line)
        assert not finding.waived
        assert finding.function.endswith("sized_loop")
        assert "graph.vertices()" in finding.message

    def test_materializer_fires(self):
        hits = [f for f in self.errors if f.rule == RULE_SIZED_LOOP]
        assert any("sorted()" in f.message for f in hits)

    def test_sized_loop_fires_in_nonconstant_delay_too(self):
        line = fixture_line("# CTC001 fires here too")
        finding = self.find(RULE_SIZED_LOOP, line)
        assert "O(n^eps)" in finding.message

    def test_recursion_fires(self):
        line = fixture_line("# CTC002 fires here")
        finding = self.find(RULE_RECURSION, line)
        assert not finding.waived
        assert finding.function.endswith("recursive_helper")

    def test_unannotated_callee_fires(self):
        line = fixture_line("# CTC003 fires here")
        finding = self.find(RULE_CALLEE, line)
        assert "unannotated_callee" in finding.message
        assert "[unannotated]" in finding.message

    def test_nested_sized_loops_fire(self):
        line = fixture_line("# PLC004 fires here")
        finding = self.find(RULE_NESTED_SIZED, line)
        assert finding.function.endswith("nested_sized_loops")

    def test_waiver_demotes_to_note(self):
        line = fixture_line("# CTC001 fires here, but waived")
        finding = self.find(RULE_SIZED_LOOP, line)
        assert finding.waived
        assert finding.severity == "note"
        assert "pilot subset" in finding.waiver
        assert finding not in self.errors


class TestRealTree:
    def test_library_is_clean(self):
        report = check_paths([SRC])
        assert report.errors == [], report.render_text()
        assert report.exit_code == 0

    def test_library_waivers_are_visible(self):
        report = check_paths([SRC])
        waived = [f for f in report.findings if f.waived]
        assert waived, "expected the documented waivers to surface as notes"
        assert all(f.severity == "note" and f.waiver for f in waived)

    def test_checks_a_meaningful_share_of_the_tree(self):
        report = check_paths([SRC])
        payload = json.loads(report.to_json())
        assert payload["functions_checked"] >= 50
        assert payload["files_checked"] >= 30


class TestJsonReport:
    def test_shape(self):
        payload = json.loads(check_paths([FIXTURE]).to_json())
        assert payload["version"] == 2
        assert payload["errors"] == 6
        assert payload["waived"] == 1
        assert payload["rules"]["CTC001"]["errors"] >= 1
        total = sum(
            entry["errors"] + entry["waived"]
            for entry in payload["rules"].values()
        )
        assert total == len(payload["findings"])
        finding = payload["findings"][0]
        for key in ("file", "line", "col", "rule", "title", "function",
                    "message", "severity", "waived"):
            assert key in finding
        severities = {f["severity"] for f in payload["findings"]}
        assert severities == {"error", "note"}
