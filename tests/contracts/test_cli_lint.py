"""``repro lint`` and ``python -m repro.contracts`` entry points."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

from repro.cli import main as cli_main

FIXTURE = Path(__file__).parent / "fixture_violations.py"
CCY_FIXTURE = Path(__file__).parent / "fixture_concurrency.py"
SRC = Path(__file__).parent.parent.parent / "src" / "repro"


def test_lint_clean_tree_exits_zero(capsys):
    assert cli_main(["lint", str(SRC)]) == 0
    out = capsys.readouterr().out
    assert "0 error(s)" in out


def test_lint_fixture_exits_nonzero(capsys):
    assert cli_main(["lint", str(FIXTURE)]) == 1
    out = capsys.readouterr().out
    assert "CTC001" in out and "CTC002" in out and "CTC003" in out


def test_lint_json_format(capsys):
    exit_code = cli_main(["lint", "--format", "json", str(FIXTURE)])
    assert exit_code == 1
    payload = json.loads(capsys.readouterr().out)
    rules = {f["rule"] for f in payload["findings"]}
    assert {"CTC001", "CTC002", "CTC003", "PLC004"} <= rules
    assert payload["errors"] == 6


def test_lint_merges_both_passes(capsys):
    assert cli_main(["lint", str(FIXTURE), str(CCY_FIXTURE)]) == 1
    out = capsys.readouterr().out
    assert "CTC001" in out  # complexity pass
    assert "CCY101" in out and "CCY104" in out  # concurrency pass


def test_lint_json_has_per_rule_counts(capsys):
    exit_code = cli_main(["lint", "--format", "json", str(CCY_FIXTURE)])
    assert exit_code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == 2
    rules = payload["rules"]
    for rule in ("CCY101", "CCY102", "CCY103", "CCY104",
                 "CCY105", "CCY106", "CCY107"):
        assert rule in rules, rules
        assert rules[rule]["errors"] >= 1
    assert rules["CCY101"]["waived"] == 1


def test_lint_missing_path_is_an_error(capsys):
    assert cli_main(["lint", "/no/such/path"]) == 2
    assert "no such file or directory" in capsys.readouterr().err


def test_module_entry_point():
    result = subprocess.run(
        [sys.executable, "-m", "repro.contracts", str(FIXTURE)],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(SRC.parent), "PATH": "/usr/bin:/bin"},
    )
    assert result.returncode == 1
    assert "CTC001" in result.stdout


def test_check_contracts_script_github_mode():
    script = SRC.parent.parent / "scripts" / "check_contracts.py"
    result = subprocess.run(
        [sys.executable, str(script), "--github", str(FIXTURE)],
        capture_output=True,
        text=True,
        env={"PATH": "/usr/bin:/bin"},
    )
    assert result.returncode == 1
    assert "::error file=" in result.stdout
    result = subprocess.run(
        [sys.executable, str(script), "--github", str(SRC)],
        capture_output=True,
        text=True,
        env={"PATH": "/usr/bin:/bin"},
    )
    assert result.returncode == 0
    assert "::error" not in result.stdout
    assert "::notice" in result.stdout  # the documented waivers
