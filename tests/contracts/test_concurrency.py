"""The concurrency pass against seeded violations, the real tree, and
the runtime freeze tripwire."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.contracts import (
    FrozenMutationError,
    build_phase,
    effect_of,
    freeze,
    freeze_active,
    frozen_spec_of,
    read_only,
)
from repro.contracts.concurrency import (
    RULE_FROZEN_EXTERNAL,
    RULE_GUARDED_FIELD,
    RULE_LOCKED_CALL,
    RULE_READ_ONLY_CALL,
    RULE_READ_ONLY_WRITE,
    RULE_STALE,
    RULE_UNANNOTATED,
    check_concurrency,
)
from repro.contracts.lint import run_lint

FIXTURE = Path(__file__).parent / "fixture_concurrency.py"
SRC = Path(__file__).parent.parent.parent / "src" / "repro"


def fixture_line(marker: str) -> int:
    """1-based line number of the (unique) marker comment in the fixture."""
    lines = FIXTURE.read_text().splitlines()
    matches = [i + 1 for i, line in enumerate(lines) if line.rstrip().endswith(marker)]
    assert len(matches) == 1, f"marker {marker!r} found {len(matches)} times"
    return matches[0]


class TestFixtureViolations:
    def setup_method(self):
        self.report = check_concurrency([FIXTURE])
        self.errors = self.report.errors

    def find(self, rule, line):
        hits = [
            f for f in self.report.findings if f.rule == rule and f.line == line
        ]
        assert hits, (
            f"no {rule} finding at line {line}; got "
            f"{[(f.rule, f.line) for f in self.report.findings]}"
        )
        return hits[0]

    def test_exit_code_nonzero(self):
        assert self.report.exit_code == 1
        assert len(self.errors) == 10

    def test_read_only_setattr_fires(self):
        line = fixture_line("# CCY101 fires here (setattr)")
        finding = self.find(RULE_READ_ONLY_WRITE, line)
        assert not finding.waived
        assert "self._hits" in finding.message

    def test_read_only_inplace_mutation_fires(self):
        line = fixture_line("# CCY101 fires here (in-place)")
        finding = self.find(RULE_READ_ONLY_WRITE, line)
        assert "in place" in finding.message

    def test_unlocked_cell_fill_fires(self):
        line = fixture_line("# CCY101 fires here (cell, no lock)")
        finding = self.find(RULE_READ_ONLY_WRITE, line)
        assert "_memo_lock" in finding.message

    def test_read_only_call_into_builds_fires(self):
        line = fixture_line("# CCY102 fires here")
        finding = self.find(RULE_READ_ONLY_CALL, line)
        assert "rebuild" in finding.message
        assert "[builds]" in finding.message

    def test_external_setattr_fires(self):
        line = fixture_line("# CCY103 fires here (external setattr)")
        finding = self.find(RULE_FROZEN_EXTERNAL, line)
        assert "LeakyIndex" in finding.message

    def test_external_builds_call_fires(self):
        line = fixture_line("# CCY103 fires here (external builds call)")
        finding = self.find(RULE_FROZEN_EXTERNAL, line)
        assert "rebuild" in finding.message

    def test_unguarded_write_fires(self):
        line = fixture_line("# CCY104 fires here")
        finding = self.find(RULE_GUARDED_FIELD, line)
        assert "self.entries" in finding.message
        assert "_lock" in finding.message

    def test_unlocked_call_fires(self):
        line = fixture_line("# CCY105 fires here")
        finding = self.find(RULE_LOCKED_CALL, line)
        assert "_evict_one" in finding.message

    def test_stale_cell_fires(self):
        line = fixture_line("# CCY106 fires here")
        finding = self.find(RULE_STALE, line)
        assert "_gone" in finding.message

    def test_unannotated_method_fires(self):
        line = fixture_line("# CCY107 fires here")
        finding = self.find(RULE_UNANNOTATED, line)
        assert "forgot_the_effect" in finding.function

    def test_waiver_demotes_to_note(self):
        line = fixture_line("# CCY101 fires here, but waived")
        finding = self.find(RULE_READ_ONLY_WRITE, line)
        assert finding.waived
        assert finding.severity == "note"
        assert "single-writer" in finding.waiver
        assert finding not in self.errors

    def test_locked_cell_fill_is_legal(self):
        line = fixture_line("# legal fill")
        assert not any(f.line == line for f in self.report.findings)

    def test_fresh_receiver_is_legal(self):
        line = fixture_line("# legal: receiver is construction-fresh")
        assert not any(f.line == line for f in self.report.findings)


class TestRealTree:
    def test_library_is_clean(self):
        report = check_concurrency([SRC])
        assert report.errors == [], report.render_text()
        assert report.exit_code == 0

    def test_index_classes_are_annotated(self):
        report = check_concurrency([SRC])
        assert report.functions_checked >= 100

    def test_merged_lint_is_clean_and_counts_both_passes(self):
        report = run_lint([SRC])
        assert report.errors == [], report.render_text()
        payload = json.loads(report.to_json())
        assert payload["version"] == 2
        assert "CTC003" in payload["rules"]  # complexity waivers surface
        rules = {f.rule for f in report.findings}
        assert not any(r.startswith("CCY") and not report.findings for r in rules)


class TestEffectMetadata:
    def test_engine_entry_points_are_read_only(self):
        from repro.core.engine import QueryIndex

        assert frozen_spec_of(QueryIndex) is not None
        for name in ("test", "next_solution", "enumerate_page", "count"):
            effect = effect_of(getattr(QueryIndex, name))
            assert effect is not None and effect.kind == "read_only", name

    def test_memo_cells_are_declared(self):
        from repro.core.bag_solver import BagSolver
        from repro.core.last_coordinate import LastCoordinateIndex

        spec = frozen_spec_of(LastCoordinateIndex)
        assert ("_solvers", "_memo_lock") in spec.cells
        assert ("_test_cache", "_memo_lock") in frozen_spec_of(BagSolver).cells


class TestRuntimeFreeze:
    QUERY = "exists y. E(x, y) & Hot(y)"

    @pytest.fixture()
    def graph(self):
        from repro.graphs.generators import path

        g = path(40, palette=("Hot",))
        g.add_to_color("Hot", 7)
        g.add_to_color("Hot", 21)
        return g

    def test_frozen_index_raises_on_mutation_but_still_answers(self, graph):
        from repro.core.engine import build_index

        oracle = build_index(graph, self.QUERY)
        answers = list(oracle.enumerate())
        tests = {(v,): oracle.test((v,)) for v in range(-1, graph.n + 1)}

        cold = build_index(graph, self.QUERY)
        with freeze():
            assert freeze_active()
            with pytest.raises(FrozenMutationError):
                cold.graph = None
            # the read path (including its first-touch memo fills) is
            # unaffected by the tripwire
            assert list(cold.enumerate()) == answers
            for probe, expected in tests.items():
                assert cold.test(probe) == expected
            page = cold.enumerate_page(limit=5)
            assert page.items == answers[:5]
        # mutability restored once the guard is uninstalled
        cold.graph = graph
        assert not freeze_active()

    def test_build_phase_reopens_mutation(self, graph):
        from repro.core.engine import build_index

        index = build_index(graph, self.QUERY)
        with freeze():
            with pytest.raises(FrozenMutationError):
                index.graph = None
            with build_phase():
                index.graph = graph  # explicit build phases may mutate

    def test_dynamic_updates_survive_paranoid_mode(self, graph):
        from repro.core.dynamic import DynamicUnaryIndex
        from repro.logic.parser import parse_formula
        from repro.logic.syntax import Var

        index = DynamicUnaryIndex(
            graph, parse_formula("exists y. E(x, y) & Cold(y)"), Var("x")
        )
        with freeze():
            # the update path goes through the store's @builds methods,
            # which open a build phase — no tripwire
            index.add_color("Cold", 10)
            assert index.test(9) and index.test(11)
            index.remove_color("Cold", 10)
            assert not index.test(9)

    def test_snapshot_roundtrip_under_freeze(self, tmp_path, graph):
        from repro.core.engine import build_index
        from repro.persist.fingerprint import index_fingerprint
        from repro.persist.snapshot import load_index, save_index

        index = build_index(graph, self.QUERY)
        answers = list(index.enumerate())
        target = tmp_path / "index.rpx"
        save_index(index, target, index_fingerprint(graph, self.QUERY))
        with freeze():
            # unpickling restores slotted classes via setattr: must be
            # treated as build-phase work even in paranoid mode
            loaded = load_index(target)
            assert list(loaded.enumerate()) == answers

    def test_unfrozen_classes_are_untouched(self):
        class Plain:
            pass

        plain = Plain()
        with freeze():
            plain.attr = 1  # only @frozen_after_build classes guard
        assert plain.attr == 1


class TestReadOnlyDecoratorIsFree:
    def test_decorator_returns_function_unchanged(self):
        def probe(self):
            return 42

        assert read_only(probe) is probe
        assert effect_of(probe).kind == "read_only"
