"""Seeded contract violations — the checker's self-test subject.

Never imported by the library; ``tests/contracts/test_checker.py`` runs
the checker over this file and asserts each rule fires at the marked
line.  Keep the ``# line:`` markers in sync when editing.
"""

from __future__ import annotations

from repro.contracts import constant_time, delay, pseudo_linear
from repro.graphs.colored_graph import ColoredGraph


@constant_time(note="violation: loops over the whole vertex set")
def sized_loop(graph: ColoredGraph) -> int:
    total = 0
    for v in graph.vertices():  # CTC001 fires here
        total += v
    return total


@constant_time(note="violation: materializes the edge set")
def sized_materializer(graph: ColoredGraph) -> list:
    return sorted(graph.edges())  # CTC001 fires here (materializer)


@constant_time(note="violation: unbounded recursion")
def recursive_helper(graph: ColoredGraph, v: int) -> int:
    if v <= 0:
        return 0
    return 1 + recursive_helper(graph, v - 1)  # CTC002 fires here


def unannotated_callee(graph: ColoredGraph) -> int:
    return graph.n


@constant_time(note="violation: calls into unannotated code")
def calls_unannotated(graph: ColoredGraph) -> int:
    return unannotated_callee(graph)  # CTC003 fires here


@delay("O(n^eps)", note="violation even at non-constant delay")
def sized_loop_in_delay(graph: ColoredGraph) -> int:
    count = 0
    for _ in graph.vertices():  # CTC001 fires here too
        count += 1
    return count


@pseudo_linear(note="violation: quadratic, not pseudo-linear")
def nested_sized_loops(graph: ColoredGraph) -> int:
    pairs = 0
    for _ in graph.vertices():
        for _ in graph.vertices():  # PLC004 fires here
            pairs += 1
    return pairs


@constant_time(note="waived: loop is over a constant-size sample")
def waived_loop(graph: ColoredGraph) -> int:
    total = 0
    # contract: samples a fixed pilot subset, not the whole graph
    for v in graph.vertices():  # CTC001 fires here, but waived
        total += v
        break
    return total
