"""Seeded concurrency violations — the CCY pass's self-test subject.

Never imported by the library; ``tests/contracts/test_concurrency.py``
runs the checker over this file and asserts each rule fires at the
marked line.  Keep the ``# CCY...`` markers in sync when editing.
"""

from __future__ import annotations

import threading

from repro.contracts import (
    builds,
    frozen_after_build,
    guarded_by,
    locked,
    read_only,
)


@frozen_after_build
class LeakyIndex:
    """Frozen, but its read path writes."""

    def __init__(self, n: int) -> None:
        self._table = list(range(n))
        self._hits = 0

    @read_only
    def lookup(self, key: int) -> int:
        self._hits += 1  # CCY101 fires here (setattr)
        return self._table[key % len(self._table)]

    @read_only
    def lookup_and_log(self, key: int) -> int:
        self._table.append(key)  # CCY101 fires here (in-place)
        return key

    @builds
    def rebuild(self, n: int) -> None:
        self._table = list(range(n))

    @read_only
    def refreshing_lookup(self, key: int) -> int:
        self.rebuild(key)  # CCY102 fires here
        return self._table[0]

    @read_only
    def waived_lookup(self, key: int) -> int:
        # contract: single-writer phase before the server starts readers
        self._hits += 1  # CCY101 fires here, but waived
        return key


@frozen_after_build(cells={"_memo": "_memo_lock"})
class CellIndex:
    """Frozen with a declared memo cell — fills must hold the lock."""

    _memo_lock = threading.Lock()

    def __init__(self) -> None:
        self._memo: dict[int, int] = {}

    @read_only
    def cached_unlocked(self, key: int) -> int:
        value = self._memo.get(key)
        if value is None:
            value = key * key
            self._memo[key] = value  # CCY101 fires here (cell, no lock)
        return value

    @read_only
    def cached_locked(self, key: int) -> int:
        value = self._memo.get(key)
        if value is None:
            with self._memo_lock:
                value = self._memo.setdefault(key, key * key)  # legal fill
        return value

    @read_only
    def no_effect_sibling(self) -> int:
        return 0

    def forgot_the_effect(self) -> int:  # CCY107 fires here
        return 1


@frozen_after_build(cells={"_gone": "_memo_lock"})
class StaleIndex:  # CCY106 fires here
    """Declares a memo cell that no longer exists."""

    _memo_lock = threading.Lock()

    def __init__(self) -> None:
        self._present = 0

    @read_only
    def peek(self) -> int:
        return self._present


def poke(index: LeakyIndex, value: int) -> None:
    index._table = [value]  # CCY103 fires here (external setattr)


def rebuild_in_place(index: LeakyIndex, n: int) -> None:
    index.rebuild(n)  # CCY103 fires here (external builds call)


def build_fresh(n: int) -> LeakyIndex:
    fresh = LeakyIndex(n)
    fresh.rebuild(n * 2)  # legal: receiver is construction-fresh
    return fresh


@guarded_by("_lock", "entries", "hits")
class SharedTable:
    """Lock-guarded mutable state, one write outside the lock."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.entries: dict[str, int] = {}
        self.hits = 0

    def put(self, key: str, value: int) -> None:
        with self._lock:
            self.entries[key] = value

    def put_racy(self, key: str, value: int) -> None:
        self.entries[key] = value  # CCY104 fires here

    @locked("_lock")
    def _evict_one(self) -> None:
        if self.entries:
            self.entries.pop(next(iter(self.entries)))

    def trim(self) -> None:
        with self._lock:
            self._evict_one()

    def trim_racy(self) -> None:
        self._evict_one()  # CCY105 fires here
