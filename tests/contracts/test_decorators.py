"""The decorator vocabulary and the runtime counting mode."""

from __future__ import annotations

import pytest

from repro.analysis import fit_exponent, flatness
from repro.contracts import (
    amortized,
    constant_time,
    contract_of,
    delay,
    instrument,
    pseudo_linear,
    registered_contracts,
)
from repro.storage.registers import RegisterFile
from repro.storage.trie import TrieStore


class TestVocabulary:
    def test_constant_time_bare_and_called(self):
        @constant_time
        def bare():
            return 1

        @constant_time(note="with a note", sized=("xs",))
        def called(xs):
            return xs

        for fn in (bare, called):
            contract = contract_of(fn)
            assert contract is not None
            assert contract.kind == "constant_time"
            assert contract.bound == "O(1)"
            assert contract.constant
        assert contract_of(called).note == "with a note"
        assert contract_of(called).sized == ("xs",)
        assert bare() == 1 and called([2]) == [2]

    def test_delay_requires_bound(self):
        @delay("O(n^eps)")
        def update():
            pass

        contract = contract_of(update)
        assert contract.kind == "delay"
        assert contract.bound == "O(n^eps)"
        assert not contract.constant
        assert contract_of(delay("O(1)")(lambda: None)).constant

    def test_pseudo_linear_and_amortized(self):
        @pseudo_linear
        def build():
            pass

        @amortized("O(1)", note="cached")
        def helper():
            pass

        assert contract_of(build).kind == "pseudo_linear"
        assert not contract_of(build).constant
        assert contract_of(helper).kind == "amortized"

    def test_decorators_add_no_wrapper(self):
        def probe():
            return 42

        decorated = constant_time(probe)
        assert decorated is probe

    def test_contract_of_plain_function(self):
        assert contract_of(len) is None
        assert contract_of(lambda: None) is None

    def test_library_hot_paths_registered(self):
        names = {name for name, _ in registered_contracts()}
        assert "repro.storage.registers.RegisterFile.read" in names
        assert "repro.storage.trie.TrieStore.lookup" in names
        assert "repro.core.next_solution.NextSolutionIndex.next_solution" in names


class TestInstrument:
    def test_counts_register_reads(self):
        store = TrieStore(n=64, k=1, eps=0.5)
        for key in range(0, 64, 8):
            store.insert((key,), value=key)
        with instrument() as counts:
            store.lookup((16,))
        assert counts["repro.storage.registers.RegisterFile.read"] > 0
        assert counts["repro.storage.trie.TrieStore.lookup"] == 1

    def test_restores_functions_on_exit(self):
        before = TrieStore.lookup
        with instrument():
            assert TrieStore.lookup is not before
        assert TrieStore.lookup is before
        assert RegisterFile.read is RegisterFile.read

    def test_lookup_cost_flat_in_n(self):
        """The Theorem 3.1 claim, measured: register reads per lookup do
        not grow with n (the trie height is ceil(1/eps), a constant)."""
        reads = []
        for n in (64, 256, 1024, 4096):
            store = TrieStore(n=n, k=1, eps=0.5)
            for key in range(0, n, n // 8):
                store.insert((key,), value=key)
            with instrument() as counts:
                store.lookup((n // 2,))
            reads.append(counts["repro.storage.registers.RegisterFile.read"])
        assert flatness(reads) <= 4.0

    def test_insert_cost_grows_sublinearly(self):
        """Theorem 3.1's update bound: register writes per insert grow
        like n^eps (here eps = 0.5), decidedly sublinear."""
        sizes = (64, 256, 1024, 4096)
        writes = []
        for n in sizes:
            store = TrieStore(n=n, k=1, eps=0.5)
            with instrument() as counts:
                store.insert((n // 2,), value=True)
            writes.append(counts["repro.storage.registers.RegisterFile.write"])
        exponent, _ = fit_exponent(sizes, writes)
        assert exponent == pytest.approx(0.5, abs=0.35)
        assert exponent < 1.0
