"""Unit tests for the scaling-analysis helpers."""

import pytest

from repro.analysis import fit_exponent, flatness, is_pseudo_linear


def test_fit_exact_power_law():
    xs = [10, 100, 1000]
    ys = [3 * x ** 1.5 for x in xs]
    exponent, constant = fit_exponent(xs, ys)
    assert abs(exponent - 1.5) < 1e-9
    assert abs(constant - 3) < 1e-6


def test_fit_linear():
    xs = [2, 4, 8, 16]
    exponent, _ = fit_exponent(xs, [5 * x for x in xs])
    assert abs(exponent - 1.0) < 1e-9


def test_fit_constant_series():
    exponent, constant = fit_exponent([1, 10, 100], [7, 7, 7])
    assert abs(exponent) < 1e-9
    assert abs(constant - 7) < 1e-6


def test_fit_needs_two_distinct_points():
    with pytest.raises(ValueError):
        fit_exponent([5, 5], [1, 2])
    with pytest.raises(ValueError):
        fit_exponent([1], [1])
    with pytest.raises(ValueError):
        fit_exponent([1, 2], [1])


def test_fit_distinct_floats_with_equal_logs():
    # adjacent huge floats are distinct but share a log value; the fit is
    # degenerate and must fail loudly instead of dividing by zero
    import math

    xs = [1e300, math.nextafter(1e300, math.inf)]
    assert xs[0] != xs[1]
    with pytest.raises(ValueError, match="distinct positive x values"):
        fit_exponent(xs, [1.0, 2.0])


def test_flatness():
    assert flatness([3, 3, 3]) == 1.0
    assert flatness([2, 4]) == 2.0
    with pytest.raises(ValueError):
        flatness([])


def test_is_pseudo_linear():
    xs = [512, 2048, 8192]
    assert is_pseudo_linear(xs, [x ** 1.2 for x in xs])
    assert not is_pseudo_linear(xs, [x ** 2 for x in xs])
