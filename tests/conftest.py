"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.graphs import grid, random_planar_like_graph, random_tree


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xC0FFEE)


@pytest.fixture(params=["tree", "grid", "planar"])
def sparse_graph(request):
    """A small graph from each canonical nowhere dense family."""
    if request.param == "tree":
        return random_tree(60, seed=11)
    if request.param == "grid":
        return grid(8, 8, seed=11)
    return random_planar_like_graph(60, seed=11)
