"""Mergeable metrics: property tests for the pool's fan-in algebra.

The pool parent reconstructs one logical registry from N worker exports
(:func:`repro.metrics.merge_snapshots`).  The claims that make the merged
``/metrics`` exposition trustworthy:

* splitting a sample stream across processes and merging the snapshots
  loses nothing — bucket counts, counts, min and max come back *exactly*,
  totals up to float-summation reordering (~1 ulp);
* a percentile estimated from the merged log-2 buckets is within one
  bucket width of the true sample percentile (``estimate in [v, 2v)``);
* concurrent recording on one histogram is linearizable — 8 threads'
  worth of records all land, exactly.
"""

from __future__ import annotations

import math
import threading

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    Histogram,
    MetricsRegistry,
    bucket_exponent,
    bucket_upper_edge,
    merge_snapshots,
    percentile_from_buckets,
)

positive_samples = st.lists(
    st.floats(
        min_value=1e-9,
        max_value=1e9,
        allow_nan=False,
        allow_infinity=False,
    ),
    min_size=1,
    max_size=200,
)


def _split(samples: list[float], ways: int) -> list[list[float]]:
    return [samples[i::ways] for i in range(ways)]


# ----------------------------------------------------------------------
# bucket mapping basics


def test_bucket_exponent_brackets_value():
    for value in (1e-9, 0.1, 0.5, 1.0, 1.5, 2.0, 3.7, 1024.0, 1e9):
        exp = bucket_exponent(value)
        assert 2.0 ** (exp - 1) <= value <= bucket_upper_edge(exp)


def test_bucket_upper_edge_saturates_to_inf():
    assert bucket_upper_edge(1024) == math.inf
    assert bucket_upper_edge(2000) == math.inf


# ----------------------------------------------------------------------
# merge(split(samples)) == unsplit


@given(samples=positive_samples, ways=st.integers(1, 5))
@settings(max_examples=200, deadline=None)
def test_merge_of_split_equals_unsplit(samples, ways):
    whole = Histogram("h")
    for value in samples:
        whole.record(value)
    parts = []
    for chunk in _split(samples, ways):
        h = Histogram("h")
        for value in chunk:
            h.record(value)
        parts.append(h.to_mergeable())
    merged = Histogram.merge(parts)
    reference = whole.to_mergeable()
    # exact: the bucket counts, count, min and max are integer/compare
    # aggregates, immune to summation order
    assert merged["buckets"] == reference["buckets"]
    assert merged["count"] == reference["count"]
    assert merged["min"] == reference["min"]
    assert merged["max"] == reference["max"]
    # totals differ only by float-summation reordering (~1 ulp)
    assert math.isclose(merged["total"], reference["total"], rel_tol=1e-9)


@given(samples=positive_samples, ways=st.integers(1, 4))
@settings(max_examples=100, deadline=None)
def test_merge_is_associative(samples, ways):
    parts = []
    for chunk in _split(samples, ways):
        h = Histogram("h")
        for value in chunk:
            h.record(value)
        parts.append(h.to_mergeable())
    left_fold = parts[0]
    for part in parts[1:]:
        left_fold = Histogram.merge([left_fold, part])
    flat = Histogram.merge(parts)
    assert left_fold["buckets"] == flat["buckets"]
    assert left_fold["count"] == flat["count"]
    assert math.isclose(left_fold["total"], flat["total"], rel_tol=1e-9)


# ----------------------------------------------------------------------
# percentile error is bounded by one bucket width


@given(samples=positive_samples, q=st.sampled_from([50.0, 90.0, 95.0, 99.0]))
@settings(max_examples=200, deadline=None)
def test_bucket_percentile_within_one_bucket_width(samples, q):
    h = Histogram("h")
    for value in samples:
        h.record(value)
    snapshot = h.to_mergeable()
    estimate = percentile_from_buckets(snapshot, q)
    ordered = sorted(samples)
    rank = max(1, math.ceil(q / 100 * len(ordered)))
    exact = ordered[rank - 1]
    # the estimate is the inclusive upper edge of exact's bucket (clamped
    # to max), so it never undershoots and overshoots by <= one doubling
    # (== only when exact sits exactly on a power-of-two edge)
    assert exact <= estimate <= 2 * exact
    assert estimate <= snapshot["max"]


def test_percentile_from_empty_snapshot_is_zero():
    assert percentile_from_buckets(Histogram("h").to_mergeable(), 95) == 0.0


# ----------------------------------------------------------------------
# registry-level merge


def test_registry_merge_adds_everything():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("hits").inc(3)
    b.counter("hits").inc(4)
    b.counter("only_b").inc(1)
    for value in (0.5, 3.0):
        a.histogram("lat").record(value)
    b.histogram("lat").record(8.0)
    merged = merge_snapshots([a.export(), b.export()])
    assert merged["counters"] == {"hits": 7, "only_b": 1}
    lat = merged["histograms"]["lat"]
    assert lat["count"] == 3
    assert lat["min"] == 0.5
    assert lat["max"] == 8.0
    oracle = Histogram("lat")
    for value in (0.5, 3.0, 8.0):
        oracle.record(value)
    assert lat["buckets"] == oracle.to_mergeable()["buckets"]


def test_merge_snapshots_of_nothing_is_empty():
    merged = merge_snapshots([])
    assert merged["counters"] == {}
    assert merged["histograms"] == {}


# ----------------------------------------------------------------------
# concurrency: 8 threads hammering one histogram


def test_concurrent_records_all_land():
    h = Histogram("h", max_samples=64)  # reservoir mode, like the servers
    threads = 8
    per_thread = 2_000
    values = [1.0 + (i % 7) for i in range(per_thread)]

    barrier = threading.Barrier(threads)

    def hammer():
        barrier.wait()
        for value in values:
            h.record(value)

    workers = [threading.Thread(target=hammer) for _ in range(threads)]
    for w in workers:
        w.start()
    for w in workers:
        w.join()

    snapshot = h.to_mergeable()
    assert snapshot["count"] == threads * per_thread
    assert math.isclose(
        snapshot["total"], threads * sum(values), rel_tol=1e-9
    )
    assert snapshot["min"] == 1.0
    assert snapshot["max"] == 7.0
    oracle = Histogram("h")
    for value in values:
        oracle.record(value)
    expected = {
        exp: n * threads for exp, n in oracle.to_mergeable()["buckets"].items()
    }
    assert snapshot["buckets"] == expected
