"""Round-trip and graceful-rebuild tests for the persistence layer.

The property under test: for every (graph family, query) pair in the
tier-1 matrix, ``load(save(index))`` is observationally identical to the
index it snapshotted — same ``enumerate()`` stream, same ``test()``
verdicts, same ``stats()`` — and a snapshot that is corrupted, stale or
version-mismatched is *never served*: ``load_or_build`` logs a warning,
rebuilds, and still answers correctly.
"""

from __future__ import annotations

import json
import logging

import pytest

from repro.core.engine import build_index
from repro.graphs.generators import grid, random_planar_like_graph, random_tree
from repro.metrics.runtime import collect
from repro.persist import (
    FORMAT_VERSION,
    SnapshotCorrupted,
    SnapshotStale,
    SnapshotVersionMismatch,
    cache_path,
    index_fingerprint,
    load_index,
    load_or_build,
    read_header,
    save_index,
)

GRAPHS = {
    "tree": lambda: random_tree(60, seed=11),
    "grid": lambda: grid(8, 8, seed=11),
    "planar": lambda: random_planar_like_graph(60, seed=11),
}

#: The tier-1 query matrix: both answering-phase cases, a guard, an
#: arity-1 query and an undecomposable query (naive fallback).
QUERIES = [
    "E(x, y)",
    "exists z. E(x, z) & E(z, y)",
    "dist(x, y) > 2 & Blue(y)",
    "exists y. E(x, y) & Blue(y)",
]


def _probes(graph, arity):
    return [
        tuple((5 * i + j) % graph.n for j in range(arity)) for i in range(40)
    ]


@pytest.mark.parametrize("family", sorted(GRAPHS))
@pytest.mark.parametrize("query", QUERIES)
def test_roundtrip_is_observationally_identical(tmp_path, family, query):
    graph = GRAPHS[family]()
    built = build_index(graph, query)
    fingerprint = index_fingerprint(graph, query)
    path = tmp_path / "snap.rpx"
    save_index(built, path, fingerprint)
    loaded = load_index(path, expected_fingerprint=fingerprint)
    assert list(loaded.enumerate()) == list(built.enumerate())
    for probe in _probes(graph, built.arity):
        assert loaded.test(probe) == built.test(probe)
        assert loaded.next_solution(probe) == built.next_solution(probe)
    assert loaded.stats() == built.stats()


def test_roundtrip_preserves_naive_fallback(tmp_path):
    graph = random_tree(30, seed=2)
    built = build_index(graph, "exists z. Blue(z) & dist(z, x) > 2")
    assert built.method == "naive"
    path = tmp_path / "naive.rpx"
    save_index(built, path, index_fingerprint(graph, built.phi))
    loaded = load_index(path)
    assert loaded.method == "naive"
    assert list(loaded.enumerate()) == list(built.enumerate())
    assert loaded.count() == built.count()


def test_header_is_inspectable(tmp_path):
    graph = grid(6, 6, seed=1)
    built = build_index(graph, "E(x, y)")
    path = tmp_path / "snap.rpx"
    written = save_index(built, path, index_fingerprint(graph, "E(x, y)"))
    header = read_header(path)
    assert header == written
    assert header["format_version"] == FORMAT_VERSION
    assert header["method"] == "indexed"
    assert header["arity"] == 2
    assert header["graph_n"] == 36


def test_truncated_payload_is_rejected(tmp_path):
    graph = random_tree(25, seed=3)
    path = tmp_path / "snap.rpx"
    save_index(build_index(graph, "E(x, y)"), path, "fp")
    path.write_bytes(path.read_bytes()[:-7])
    with pytest.raises(SnapshotCorrupted, match="checksum"):
        load_index(path)


def test_garbage_file_is_rejected(tmp_path):
    path = tmp_path / "junk.rpx"
    path.write_bytes(b"\x00\x01 not a snapshot\n\xff")
    with pytest.raises(SnapshotCorrupted):
        load_index(path)


def test_version_mismatch_is_rejected(tmp_path):
    graph = random_tree(25, seed=3)
    path = tmp_path / "snap.rpx"
    save_index(build_index(graph, "E(x, y)"), path, "fp")
    head, _, payload = path.read_bytes().partition(b"\n")
    header = json.loads(head)
    header["format_version"] = FORMAT_VERSION + 1
    path.write_bytes(json.dumps(header).encode() + b"\n" + payload)
    with pytest.raises(SnapshotVersionMismatch):
        load_index(path)


def test_fingerprint_mismatch_is_stale(tmp_path):
    graph = random_tree(25, seed=3)
    other = random_tree(25, seed=4)
    path = tmp_path / "snap.rpx"
    save_index(build_index(graph, "E(x, y)"), path, index_fingerprint(graph, "E(x, y)"))
    with pytest.raises(SnapshotStale):
        load_index(path, expected_fingerprint=index_fingerprint(other, "E(x, y)"))


# ----------------------------------------------------------------------
# the cache front end


def test_load_or_build_miss_then_hit(tmp_path):
    graph = grid(7, 7, seed=1)
    query = "dist(x, y) > 2 & Blue(y)"
    with collect(ops=False) as registry:
        first, status1 = load_or_build(graph, query, cache_dir=tmp_path)
        second, status2 = load_or_build(graph, query, cache_dir=tmp_path)
    assert (status1, status2) == ("miss", "hit")
    assert list(first.enumerate()) == list(second.enumerate())
    counters = {name: c.value for name, c in registry.counters.items()}
    assert counters["persist.cache_misses"] == 1
    assert counters["persist.cache_hits"] == 1


def test_load_or_build_rebuilds_corrupted_snapshot(tmp_path, caplog):
    graph = grid(7, 7, seed=1)
    query = "E(x, y)"
    index, _ = load_or_build(graph, query, cache_dir=tmp_path)
    expected = list(index.enumerate())
    path = cache_path(tmp_path, index_fingerprint(graph, query))
    path.write_bytes(path.read_bytes()[:-20])
    with caplog.at_level(logging.WARNING, logger="repro.persist"):
        rebuilt, status = load_or_build(graph, query, cache_dir=tmp_path)
    assert status == "rebuilt"
    assert list(rebuilt.enumerate()) == expected
    assert any("snapshot rejected" in record.message for record in caplog.records)
    # the replacement snapshot is valid again
    _, status = load_or_build(graph, query, cache_dir=tmp_path)
    assert status == "hit"


def test_load_or_build_detects_graph_change(tmp_path, caplog):
    """A content change to the graph must miss, not serve stale answers."""
    graph = random_tree(40, seed=7)
    _, status1 = load_or_build(graph, "E(x, y)", cache_dir=tmp_path)
    changed = graph.copy()
    changed.add_edge(0, graph.n - 1)
    index, status2 = load_or_build(changed, "E(x, y)", cache_dir=tmp_path)
    assert (status1, status2) == ("miss", "miss")  # different fingerprint file
    assert index.test((0, graph.n - 1))


def test_fingerprint_sensitivity():
    graph = random_tree(30, seed=1)
    base = index_fingerprint(graph, "E(x, y)")
    # whitespace-insensitive, structure-sensitive
    assert index_fingerprint(graph, "E(x,   y)") == base
    assert index_fingerprint(graph, "E(y, x)") != base
    assert index_fingerprint(graph, "E(x, y)", method="naive") != base
    assert index_fingerprint(graph, "E(x, y)", free_order=["y", "x"]) != base
    changed = graph.copy()
    extra = next(
        v for v in range(2, graph.n) if not graph.has_edge(0, v)
    )
    changed.add_edge(0, extra)
    assert index_fingerprint(changed, "E(x, y)") != base


def test_fingerprint_ignores_workers():
    from repro.core.config import EngineConfig

    graph = random_tree(30, seed=1)
    assert index_fingerprint(
        graph, "E(x, y)", config=EngineConfig(workers=1)
    ) == index_fingerprint(graph, "E(x, y)", config=EngineConfig(workers=8))
    assert index_fingerprint(
        graph, "E(x, y)", config=EngineConfig(eps=0.25)
    ) != index_fingerprint(graph, "E(x, y)", config=EngineConfig(eps=0.5))
