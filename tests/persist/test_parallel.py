"""Parallel-vs-sequential build equivalence.

The ``workers`` knob is a build *strategy*, not a semantic input: for
every (graph family, query) pair in the tier-1 matrix the parallel build
must produce an index that is observationally identical to the
sequential oracle, and the parallel cover scan must reproduce the greedy
cover *exactly* (same bags, centers and canonical assignment).
"""

from __future__ import annotations

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import build_index
from repro.covers.neighborhood_cover import build_cover
from repro.graphs.generators import grid, random_planar_like_graph, random_tree

GRAPHS = {
    "tree": lambda: random_tree(60, seed=11),
    "grid": lambda: grid(8, 8, seed=11),
    "planar": lambda: random_planar_like_graph(60, seed=11),
}

QUERIES = [
    "E(x, y)",
    "exists z. E(x, z) & E(z, y)",
    "dist(x, y) > 2 & Blue(y)",
]


@pytest.mark.parametrize("family", sorted(GRAPHS))
@pytest.mark.parametrize("radius", [0, 1, 2])
def test_parallel_cover_is_bit_identical(family, radius):
    graph = GRAPHS[family]()
    sequential = build_cover(graph, radius)
    parallel = build_cover(graph, radius, workers=4)
    assert parallel.bags == sequential.bags
    assert parallel.centers == sequential.centers
    assert parallel.assignment == sequential.assignment
    parallel.check_properties()


@pytest.mark.parametrize("family", sorted(GRAPHS))
@pytest.mark.parametrize("query", QUERIES)
def test_parallel_index_matches_sequential_oracle(family, query):
    graph = GRAPHS[family]()
    sequential = build_index(graph, query)
    parallel = build_index(graph, query, config=EngineConfig(workers=4))
    assert parallel.method == sequential.method
    assert list(parallel.enumerate()) == list(sequential.enumerate())
    probes = [
        tuple((7 * i + j) % graph.n for j in range(sequential.arity))
        for i in range(50)
    ]
    for probe in probes:
        assert parallel.test(probe) == sequential.test(probe)
        assert parallel.next_solution(probe) == sequential.next_solution(probe)


def test_parallel_build_prebuilds_all_populated_bags():
    """workers > 1 moves the per-bag lazy work into preprocessing."""
    graph = grid(8, 8, seed=11)
    parallel = build_index(
        graph, "dist(x, y) > 2 & Blue(y)", config=EngineConfig(workers=2)
    )
    last = parallel._impl.last
    populated = sum(1 for assigned in last.cover.assigned if assigned)
    assert len(last._solvers) >= populated


def test_workers_validation():
    graph = random_tree(20, seed=1)
    with pytest.raises(ValueError, match="workers"):
        build_cover(graph, 1, workers=0)
