"""The workload registry's metadata must be truthful."""

import pytest

from repro.core.engine import build_index
from repro.core.config import EngineConfig
from repro.graphs.generators import random_planar_like_graph
from repro.logic.parser import parse_formula
from repro.logic.transform import free_variables
from repro.workloads import WORKLOADS, by_name, indexable

TINY = EngineConfig(dist_naive_threshold=10, bag_naive_threshold=8)


def test_names_unique():
    names = [w.name for w in WORKLOADS]
    assert len(names) == len(set(names))


@pytest.mark.parametrize("workload", WORKLOADS, ids=[w.name for w in WORKLOADS])
def test_arity_metadata_is_correct(workload):
    phi = parse_formula(workload.text)
    assert len(free_variables(phi)) == workload.arity


@pytest.mark.parametrize("workload", WORKLOADS, ids=[w.name for w in WORKLOADS])
def test_indexable_metadata_is_correct(workload):
    g = random_planar_like_graph(30, seed=1)
    index = build_index(g, workload.text, config=TINY)
    assert (index.method == "indexed") == workload.indexable


def test_by_name():
    assert by_name("edge").arity == 2
    with pytest.raises(KeyError):
        by_name("nope")


def test_indexable_filter():
    assert all(w.indexable for w in indexable())
    assert all(w.arity == 2 for w in indexable(arity=2))
    assert by_name("unguarded") not in indexable()
