"""Unit tests for the naive baseline index."""

from repro.baselines.bfs_oracle import bfs_distance_at_most
from repro.baselines.naive import NaiveIndex
from repro.graphs.generators import path, random_tree
from repro.logic.parser import parse_formula
from repro.logic.syntax import Var

x, y = Var("x"), Var("y")


def test_solutions_sorted():
    g = random_tree(25, seed=3)
    index = NaiveIndex(g, parse_formula("E(x, y)"), (x, y))
    assert index.solutions == sorted(index.solutions)


def test_next_solution_semantics():
    g = path(5, palette=())
    index = NaiveIndex(g, parse_formula("E(x, y)"), (x, y))
    assert index.next_solution((0, 0)) == (0, 1)
    assert index.next_solution((0, 1)) == (0, 1)
    assert index.next_solution((4, 4)) is None


def test_test_membership():
    g = path(5, palette=())
    index = NaiveIndex(g, parse_formula("E(x, y)"), (x, y))
    assert index.test((1, 2))
    assert not index.test((0, 2))


def test_len_and_enumerate_agree():
    g = random_tree(20, seed=1)
    index = NaiveIndex(g, parse_formula("dist(x, y) <= 2"), (x, y))
    assert len(index) == len(list(index.enumerate()))


def test_bfs_oracle():
    g = path(6, palette=())
    assert bfs_distance_at_most(g, 0, 3, 3)
    assert not bfs_distance_at_most(g, 0, 3, 2)
    assert bfs_distance_at_most(g, 2, 2, 0)
    assert not bfs_distance_at_most(g, 0, 1, 0)


def test_sorted_even_when_generator_is_shuffled(monkeypatch):
    """bisect-based answering must not depend on the generator's order."""
    import random

    import repro.baselines.naive as naive_module
    from repro.logic.semantics import solutions as real_solutions

    def shuffled_solutions(graph, phi, free_order):
        out = list(real_solutions(graph, phi, free_order))
        random.Random(99).shuffle(out)
        return iter(out)

    monkeypatch.setattr(naive_module, "naive_solutions", shuffled_solutions)
    g = random_tree(25, seed=3)
    index = NaiveIndex(g, parse_formula("dist(x, y) <= 2"), (x, y))
    reference = sorted(real_solutions(g, parse_formula("dist(x, y) <= 2"), [x, y]))
    assert index.solutions == reference
    # next_solution / enumerate(start) agree with the sorted reference
    for start in [(0, 0), (3, 7), (12, 24), (24, 24)]:
        expected = next((s for s in reference if s >= start), None)
        assert index.next_solution(start) == expected
        head = list(index.enumerate(start))[:3]
        assert head == [s for s in reference if s >= start][:3]
