"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.graphs.generators import random_tree
from repro.graphs.io import write_edge_list, write_json


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "g.txt"
    write_edge_list(random_tree(40, seed=3), path)
    return str(path)


def test_generate_and_info(tmp_path, capsys):
    out = tmp_path / "tree.json"
    assert main(["generate", "random_tree", "50", "-o", str(out), "--seed", "1"]) == 0
    assert out.exists()
    assert main(["info", str(out)]) == 0
    captured = capsys.readouterr().out
    assert "vertices:          50" in captured
    assert "density exponent" in captured


def test_generate_unknown_family(tmp_path, capsys):
    assert main(["generate", "clique", "10", "-o", str(tmp_path / "x.txt")]) == 2
    assert "unknown family" in capsys.readouterr().err


def test_info_on_edge_list(graph_file, capsys):
    assert main(["info", graph_file]) == 0
    assert "degeneracy:        1" in capsys.readouterr().out


def test_explain_exit_codes(capsys):
    assert main(["explain", "E(x, y)"]) == 0
    assert "decomposable" in capsys.readouterr().out
    assert main(["explain", "exists z. Blue(z) & dist(z, x) > 2"]) == 1
    assert "problems:" in capsys.readouterr().out


def test_query_command(graph_file, capsys):
    code = main(
        [
            "query",
            graph_file,
            "E(x, y)",
            "--count",
            "--test", "0,1",
            "--next", "0,0",
            "--enumerate", "3",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "index built: method=indexed" in out
    assert "count: 78" in out  # 2 * 39 directed edge pairs
    assert "test(0, 1):" in out
    assert "next(0, 0):" in out


def test_query_rejects_bad_tuple(graph_file, capsys):
    assert main(["query", graph_file, "E(x, y)", "--test", "zero,one"]) == 2
    assert "comma-separated tuple" in capsys.readouterr().err


def test_query_rejects_empty_tuple(graph_file, capsys):
    assert main(["query", graph_file, "E(x, y)", "--test", ""]) == 2
    assert "comma-separated tuple" in capsys.readouterr().err


def test_query_rejects_tuple_with_empty_part(graph_file, capsys):
    assert main(["query", graph_file, "E(x, y)", "--test", "1,,2"]) == 2
    assert "comma-separated tuple" in capsys.readouterr().err


def test_query_tuple_tolerates_spaces(graph_file, capsys):
    assert main(["query", graph_file, "E(x, y)", "--test", "0, 1"]) == 0
    assert "test(0, 1):" in capsys.readouterr().out


def test_query_enumerate_rejects_nonpositive_limit(graph_file, capsys):
    assert main(["query", graph_file, "E(x, y)", "--enumerate", "0"]) == 2
    assert "--enumerate must be >= 1" in capsys.readouterr().err
    assert main(["query", graph_file, "E(x, y)", "--enumerate", "-3"]) == 2
    assert "--enumerate must be >= 1" in capsys.readouterr().err


def test_query_bad_query_text_exits_2(graph_file, capsys):
    assert main(["query", graph_file, "E(x,"]) == 2
    assert "repro query:" in capsys.readouterr().err


def test_query_missing_graph_file_exits_2(capsys):
    assert main(["query", "/no/such/graph.txt", "E(x, y)"]) == 2
    assert "cannot read" in capsys.readouterr().err


def test_bench_command(graph_file, capsys):
    assert main(["bench", graph_file, "E(x, y)"]) == 0
    out = capsys.readouterr().out
    assert "build=" in out and "test=" in out


def test_query_on_json_database_rejected(tmp_path):
    from repro.db.database import Database, Schema

    db = Database(Schema({"R": 1}), domain_size=2)
    path = tmp_path / "db.json"
    write_json(db, path)
    assert main(["info", str(path)]) == 2


def test_query_stats_flag(graph_file, capsys):
    assert main(["query", graph_file, "E(x, y)", "--stats"]) == 0
    out = capsys.readouterr().out
    assert '"method": "indexed"' in out


def test_info_locality_flag(graph_file, capsys):
    assert main(["info", graph_file, "--locality", "--radius", "2"]) == 0
    out = capsys.readouterr().out
    assert "verdict:" in out


def test_bench_on_empty_graph(tmp_path, capsys):
    """No probes to run on an empty graph — report n/a, never divide by zero."""
    from repro.graphs.colored_graph import ColoredGraph

    path = tmp_path / "empty.json"
    write_json(ColoredGraph(0), path)
    assert main(["bench", str(path), "E(x, y)"]) == 0
    out = capsys.readouterr().out
    assert "n=0" in out and "test=n/a" in out


def test_bench_arity_zero_query(graph_file, capsys):
    """A boolean (arity-0) query still benches: the only probe is ()."""
    assert main(["bench", graph_file, "exists x. exists y. E(x, y)"]) == 0
    out = capsys.readouterr().out
    assert "test=" in out and "n/a" not in out


def test_bench_suite_command(tmp_path, capsys, monkeypatch):
    import repro.benchrunner as benchrunner
    from tests.test_benchrunner import TINY

    monkeypatch.setattr(benchrunner, "QUICK", TINY)
    results = tmp_path / "results.json"
    report = tmp_path / "report.md"
    assert main([
        "bench-suite", "--quick", "--experiments", "E11",
        "-o", str(results), "--report", str(report),
    ]) == 0
    out = capsys.readouterr().out
    assert "wrote" in out
    assert results.exists()
    assert "test_adjacency_graph_build" in report.read_text()


def test_bench_suite_rejects_unknown_experiment(tmp_path, capsys):
    assert main([
        "bench-suite", "--quick", "--experiments", "E99",
        "-o", str(tmp_path / "r.json"),
    ]) == 2
    assert "unknown experiment" in capsys.readouterr().err


# ----------------------------------------------------------------------
# wrong-arity probes (regression: raw ValueError traceback escaped)


def test_query_wrong_arity_test_exits_2(graph_file, capsys):
    code = main(["query", graph_file, "E(x, y)", "--test", "0,1,2"])
    assert code == 2
    captured = capsys.readouterr()
    assert "repro query:" in captured.err
    assert "2-tuple" in captured.err
    assert "Traceback" not in captured.err


def test_query_wrong_arity_next_exits_2(graph_file, capsys):
    code = main(["query", graph_file, "E(x, y)", "--next", "7"])
    assert code == 2
    assert "repro query:" in capsys.readouterr().err


# ----------------------------------------------------------------------
# snapshot cache / warm


def test_query_cache_miss_then_hit(graph_file, tmp_path, capsys):
    cache = str(tmp_path / "cache")
    assert main(["query", graph_file, "E(x, y)", "--cache", cache, "--count"]) == 0
    first = capsys.readouterr().out
    assert "index miss" in first and "count: 78" in first
    assert main(["query", graph_file, "E(x, y)", "--cache", cache, "--count"]) == 0
    second = capsys.readouterr().out
    assert "index hit" in second and "count: 78" in second


def test_query_cache_corrupted_snapshot_still_answers(graph_file, tmp_path, capsys):
    cache = tmp_path / "cache"
    assert main(["query", graph_file, "E(x, y)", "--cache", str(cache)]) == 0
    capsys.readouterr()
    snapshots = list(cache.glob("*.rpx"))
    assert len(snapshots) == 1
    snapshots[0].write_bytes(snapshots[0].read_bytes()[:-25])
    assert main(["query", graph_file, "E(x, y)", "--cache", str(cache), "--count"]) == 0
    out = capsys.readouterr().out
    assert "index rebuilt" in out and "count: 78" in out


def test_warm_then_query_cache_hits(graph_file, tmp_path, capsys):
    from repro.persist import SNAPSHOT_SUFFIX, load_index

    target = tmp_path / f"warm{SNAPSHOT_SUFFIX}"
    assert main(["warm", graph_file, "E(x, y)", "-o", str(target)]) == 0
    out = capsys.readouterr().out
    assert "warmed" in out and "fingerprint" in out
    assert target.exists()
    index = load_index(target)
    assert index.arity == 2
    assert index.count() == 78  # the snapshot answers without rebuilding


def test_query_workers_flag(graph_file, capsys):
    assert main(["query", graph_file, "E(x, y)", "--count", "--workers", "2"]) == 0
    assert "count: 78" in capsys.readouterr().out


def test_query_workers_invalid(graph_file, capsys):
    assert main(["query", graph_file, "E(x, y)", "--workers", "0"]) == 2
    assert "--workers must be >= 1" in capsys.readouterr().err


def test_serve_parser_wires_the_command():
    from repro.cli import build_parser

    args = build_parser().parse_args(["serve", "--port", "0", "--max-builds", "2"])
    assert args.command == "serve"
    assert args.port == 0 and args.max_builds == 2
    assert callable(args.func)


def test_serve_rejects_bad_knobs(capsys):
    assert main(["serve", "--port", "0", "--max-page-size", "0"]) == 2
    assert "--max-page-size" in capsys.readouterr().err
    assert main(["serve", "--port", "0", "--cache-entries", "0"]) == 2
    assert "--cache-entries" in capsys.readouterr().err


def test_trace_command_prints_span_tree(graph_file, capsys):
    code = main(["trace", graph_file, "E(x, y)", "--enumerate", "5", "--count"])
    assert code == 0
    out = capsys.readouterr().out
    assert "count: 78" in out
    assert "enumerated 5 solutions" in out
    assert "engine.build_index" in out
    assert "enumerate.step" in out
    assert "stage" in out  # the per-stage totals table


def test_trace_command_writes_chrome_trace(graph_file, tmp_path, capsys):
    import json

    out = tmp_path / "trace.json"
    code = main(["trace", graph_file, "E(x, y)", "--enumerate", "3",
                 "-o", str(out)])
    assert code == 0
    assert "wrote Chrome trace-event file" in capsys.readouterr().out
    doc = json.loads(out.read_text())
    names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
    assert "engine.build_index" in names
    assert "enumerate.step" in names


def test_trace_command_writes_jsonl(graph_file, tmp_path, capsys):
    import json

    out = tmp_path / "spans.jsonl"
    code = main(["trace", graph_file, "E(x, y)", "--test", "0,1",
                 "-o", str(out)])
    assert code == 0
    assert "wrote JSONL spans" in capsys.readouterr().out
    rows = [json.loads(line) for line in out.read_text().splitlines()]
    assert len({row["trace_id"] for row in rows}) == 1
    assert any(row["name"] == "engine.test" for row in rows)


def test_trace_command_rejects_bad_enumerate(graph_file, capsys):
    assert main(["trace", graph_file, "E(x, y)", "--enumerate", "0"]) == 2
    assert "--enumerate" in capsys.readouterr().err


def test_explain_graph_flag_shows_stage_timings(graph_file, capsys):
    assert main(["explain", "E(x, y)", "--graph", graph_file]) == 0
    out = capsys.readouterr().out
    assert "decomposable" in out
    assert "preprocessing=" in out
    assert "cover.build" in out


def test_serve_trace_flags_are_validated(capsys):
    assert main(["serve", "--trace-sample", "1.5"]) == 2
    assert "--trace-sample" in capsys.readouterr().err
    assert main(["serve", "--trace-buffer", "-1"]) == 2
    assert "--trace-buffer" in capsys.readouterr().err
    assert main(["serve", "--watchdog-multiple", "-2"]) == 2
    assert "--watchdog-multiple" in capsys.readouterr().err
