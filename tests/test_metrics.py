"""Unit tests for the repro.metrics observability subsystem."""

import pytest

from repro.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    Timer,
    active,
    collect,
    count,
    delay_recorder,
    observe,
    time_block,
)


# ----------------------------------------------------------------------
# core primitives


def test_counter_increments():
    counter = Counter("ops")
    counter.inc()
    counter.inc(5)
    assert counter.value == 6


def test_timer_accumulates_laps():
    timer = Timer("phase")
    with timer:
        pass
    with timer:
        pass
    assert timer.laps == 2
    assert timer.total >= 0
    assert timer.mean == pytest.approx(timer.total / 2)


def test_timer_rejects_unbalanced_stop():
    timer = Timer("phase")
    with pytest.raises(RuntimeError):
        timer.stop()


def test_histogram_percentiles():
    hist = Histogram("delay")
    for value in [1.0, 2.0, 3.0, 4.0, 100.0]:
        hist.record(value)
    assert hist.count == 5
    assert hist.max == 100.0
    assert hist.p50 == 3.0
    assert hist.percentile(0) == 1.0
    assert hist.percentile(100) == 100.0
    assert hist.mean == pytest.approx(22.0)


def test_histogram_record_after_percentile():
    hist = Histogram("delay")
    hist.record(2.0)
    assert hist.p50 == 2.0
    hist.record(1.0)  # invalidates the sorted cache
    assert hist.percentile(0) == 1.0


def test_empty_histogram():
    hist = Histogram("delay")
    assert hist.count == 0
    assert hist.p50 == 0.0  # empty histograms summarize as zero
    with pytest.raises(ValueError):
        hist.percentile(150)


def test_histogram_summary_keys():
    hist = Histogram("delay")
    hist.record(1.0)
    summary = hist.summary()
    assert {"count", "mean", "p50", "p95", "max"} <= set(summary)


def test_registry_creates_on_first_use():
    registry = MetricsRegistry()
    registry.counter("a").inc()
    registry.counter("a").inc()
    registry.histogram("h").record(1.0)
    assert registry.counters["a"].value == 2
    snapshot = registry.snapshot()
    assert snapshot["counters"]["a"] == 2
    assert snapshot["histograms"]["h"]["count"] == 1


# ----------------------------------------------------------------------
# runtime hooks


def test_hooks_are_noops_without_collect():
    assert active() is None
    count("x")  # must not raise
    observe("y", 1.0)
    assert delay_recorder("z") is None
    with time_block("w"):
        pass
    assert active() is None


def test_collect_gathers_counts_and_observations():
    with collect(ops=False) as registry:
        assert active() is registry
        count("calls")
        count("calls", 2)
        observe("delay", 0.5)
        recorder = delay_recorder("delay")
        assert recorder is not None
        recorder(1.5)
        with time_block("phase"):
            pass
    assert active() is None
    assert registry.counters["calls"].value == 3
    assert registry.histograms["delay"].count == 2
    assert registry.timers["phase"].laps


def test_collect_nests_and_restores():
    with collect(ops=False) as outer:
        count("op")
        with collect(ops=False) as inner:
            count("op")
        assert active() is outer
        count("op")
    assert outer.counters["op"].value == 2
    assert inner.counters["op"].value == 1


def test_collect_ops_counts_contracted_calls():
    from repro.storage.trie import TrieStore

    store = TrieStore(64, 1, eps=0.5)
    with collect(ops=True) as registry:
        store.insert((3,), 0)
        store.lookup((3,))
    assert any(".RegisterFile." in name for name in registry.op_counts)
    assert registry.counters["trie.insert"].value == 1
    assert registry.counters["trie.lookup"].value == 1


# ----------------------------------------------------------------------
# hot-path integration


def test_hot_paths_report_metrics():
    from repro.core.engine import build_index
    from repro.graphs.generators import random_planar_like_graph

    g = random_planar_like_graph(64, seed=1)
    with collect(ops=False) as registry:
        index = build_index(g, "dist(x, y) > 2 & Blue(y)")
        solutions = sum(1 for _ in index.enumerate())
        index.test((0, 1))
        index.next_solution((0, 0))
    assert registry.counters["cover.builds"].value >= 1
    assert registry.counters["engine.test"].value == 1
    assert registry.counters["engine.next_solution"].value == 1
    assert registry.counters["next_solution.calls"].value >= solutions
    delays = registry.histograms["enumeration.delay_seconds"]
    assert delays.count == solutions
    assert delays.p95 >= delays.p50
    prep = registry.histograms["engine.preprocessing_seconds"]
    assert prep.count == 1


def test_enumeration_unmetered_without_collect():
    """Outside collect() the enumeration takes the no-clock fast path."""
    from repro.core.engine import build_index
    from repro.graphs.generators import random_tree

    g = random_tree(48, seed=2)
    index = build_index(g, "E(x, y)")
    assert list(index.enumerate())  # no active registry, still correct
    assert active() is None


# ----------------------------------------------------------------------
# bounded (reservoir) histograms


def test_bounded_histogram_keeps_exact_aggregates():
    hist = Histogram("delay", max_samples=10)
    for i in range(1000):
        hist.record(float(i))
    assert hist.count == 1000
    assert hist.total == pytest.approx(sum(range(1000)))
    assert hist.mean == pytest.approx(499.5)
    assert hist.max == 999.0
    assert hist.stored == 10


def test_bounded_histogram_quantiles_are_plausible():
    hist = Histogram("delay", max_samples=100)
    for i in range(10_000):
        hist.record(float(i))
    # a uniform stream's reservoir median lands near the true median
    assert 1000 < hist.p50 < 9000
    assert hist.p95 >= hist.p50


def test_bounded_histogram_under_cap_is_exact():
    bounded = Histogram("delay", max_samples=100)
    exact = Histogram("delay")
    for value in [5.0, 1.0, 3.0, 2.0, 4.0]:
        bounded.record(value)
        exact.record(value)
    assert bounded.p50 == exact.p50
    assert bounded.summary() == exact.summary()


def test_histogram_rejects_bad_cap():
    with pytest.raises(ValueError):
        Histogram("delay", max_samples=0)


def test_unbounded_histogram_stores_everything():
    hist = Histogram("delay")
    for i in range(5000):
        hist.record(float(i))
    assert hist.stored == 5000
    assert hist.count == 5000


def test_registry_histogram_samples_knob():
    registry = MetricsRegistry(histogram_samples=4)
    hist = registry.histogram("x")
    for i in range(100):
        hist.record(float(i))
    assert hist.stored == 4
    assert hist.count == 100


def test_collect_histogram_samples_knob():
    with collect(ops=False, histogram_samples=8) as registry:
        hist = registry.histogram("y")
        for i in range(50):
            hist.record(float(i))
    assert hist.stored == 8
    assert hist.count == 50
