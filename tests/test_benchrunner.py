"""Unit tests for the self-contained bench-suite runner."""

import json
import re

import pytest

from repro.bench_schema import SCHEMA_NAME, SUITE_VERSION, validate_results
from repro.benchrunner import (
    FULL,
    QUICK,
    Profile,
    check_gate,
    run_suite,
    write_results,
)

#: A micro profile so suite tests stay fast (sub-second per experiment).
TINY = Profile(
    name="quick",
    sizes=(32, 64),
    small_sizes=(16, 32),
    trie_sizes=(32, 64),
    delay_sizes=(24, 48),
    splitter_sizes=(24, 48),
    counting_sizes=(16, 32),
    dynamic_sizes=(32, 64),
    db_sizes=(32, 64),
    probes=8,
    repeats=1,
    trie_keys=16,
    splitter_trials=1,
)

#: The parameter regex scripts/make_experiments.py extracts series with.
_PARAM_RE = re.compile(r"\[(?:[a-z0-9]+-)?(\d+)\]$")


def test_profiles_cover_the_same_fields():
    assert QUICK.name == "quick"
    assert FULL.name == "full"
    assert max(QUICK.sizes) < max(FULL.sizes)


def test_run_suite_e1_schema_and_naming():
    payload = run_suite(TINY, ["E1"])
    assert validate_results(payload) == []
    assert payload["schema"] == SCHEMA_NAME
    assert payload["suite_version"] == SUITE_VERSION
    assert payload["experiments"] == ["E1"]
    names = [record["name"] for record in payload["benchmarks"]]
    assert f"test_lookup[{TINY.trie_sizes[0]}]" in names
    assert f"test_init[1-{TINY.trie_sizes[0]}]" in names
    assert f"test_init[2-{TINY.trie_sizes[1]}]" in names
    # the arena layout runs the same sweep under suffixed names
    assert f"test_lookup_arena[{TINY.trie_sizes[0]}]" in names
    assert f"test_init_arena[1-{TINY.trie_sizes[0]}]" in names
    assert f"test_successor_arena[{TINY.trie_sizes[1]}]" in names
    assert f"test_update_cycle_arena[{TINY.trie_sizes[0]}]" in names
    arena_lookups = [
        record
        for record in payload["benchmarks"]
        if record["name"].startswith("test_lookup_arena[")
    ]
    assert len(arena_lookups) == len(TINY.trie_sizes)
    for record in arena_lookups:
        assert record["extra_info"]["speedup_vs_object"] > 0
        assert record["extra_info"]["register_ops_per_lookup"] > 0
    arena_inits = [
        record
        for record in payload["benchmarks"]
        if record["name"].startswith("test_init_arena[")
    ]
    for record in arena_inits:
        assert record["extra_info"]["snapshot_bytes"] > 0
        assert record["extra_info"]["snapshot_shrink_vs_object"] > 0
    for record in payload["benchmarks"]:
        # the EXPERIMENTS.md generator must be able to parse every id
        assert _PARAM_RE.search(record["name"]), record["name"]
        assert record["fullname"].startswith("benchmarks/bench_")
        assert record["stats"]["mean"] >= 0


def test_run_suite_e9_delay_histogram():
    payload = run_suite(TINY, ["E9"])
    assert validate_results(payload) == []
    profiles = [
        record
        for record in payload["benchmarks"]
        if record["name"].startswith("test_delay_profile[")
    ]
    assert len(profiles) == len(TINY.delay_sizes)
    for record in profiles:
        extra = record["extra_info"]
        assert extra["solutions"] > 0
        assert extra["delay_p50_us"] <= extra["delay_p95_us"] <= extra["delay_max_us"]


def test_run_suite_rejects_unknown_experiment():
    with pytest.raises(ValueError, match="E99"):
        run_suite(TINY, ["E99"])


def test_write_results_round_trips(tmp_path):
    payload = run_suite(TINY, ["E11"])
    out = tmp_path / "results.json"
    write_results(payload, out)
    loaded = json.loads(out.read_text())
    assert validate_results(loaded) == []
    assert loaded["benchmarks"] == payload["benchmarks"]


def test_renders_through_reporting_pipeline():
    from repro.reporting import render_benchmarks

    payload = run_suite(TINY, ["E1"])
    report = render_benchmarks(payload["benchmarks"])
    assert "E1" in report
    assert "test_lookup" in report


# ----------------------------------------------------------------------
# schema validation


def _fake_payload(benchmarks):
    return {
        "suite_version": SUITE_VERSION,
        "schema": SCHEMA_NAME,
        "created": "2026-01-01T00:00:00",
        "profile": "quick",
        "machine_info": {"python": "3.11"},
        "experiments": ["E1"],
        "benchmarks": benchmarks,
    }


def _fake_record(name="test_lookup[64]", n=64, mean=1e-6, extra=None):
    return {
        "experiment": "E1",
        "group": "bench_storing",
        "fullname": f"benchmarks/bench_storing.py::{name}",
        "name": name,
        "params": {"n": n},
        "stats": {"mean": mean, "min": mean, "max": mean, "stddev": 0.0, "rounds": 1},
        "extra_info": extra or {},
    }


def test_validate_accepts_conforming_payload():
    assert validate_results(_fake_payload([_fake_record()])) == []


def test_validate_rejects_non_dict():
    assert validate_results([]) != []
    assert validate_results(None) != []


def test_validate_flags_missing_keys():
    payload = _fake_payload([_fake_record()])
    del payload["machine_info"]
    assert any("machine_info" in p for p in validate_results(payload))


def test_validate_flags_bad_record():
    record = _fake_record()
    del record["stats"]["mean"]
    problems = validate_results(_fake_payload([record]))
    assert any("stats.mean" in p for p in problems)

    record = _fake_record(mean=-1.0)
    assert any("negative" in p for p in validate_results(_fake_payload([record])))

    record = _fake_record(extra={"bad": [1, 2]})
    assert any("extra_info.bad" in p for p in validate_results(_fake_payload([record])))


# ----------------------------------------------------------------------
# the O(1) regression gate


def _series(prefix_values, mean_of=None, extra_key=None):
    records = []
    for n, value in prefix_values:
        extra = {extra_key: value} if extra_key else {}
        records.append(
            _fake_record(
                name=f"test_lookup[{n}]", n=n,
                mean=value if mean_of is None else mean_of, extra=extra,
            )
        )
    return records


def test_gate_passes_flat_series():
    records = _series([(64, 1e-6), (256, 1.1e-6), (1024, 0.9e-6)])
    verdicts = check_gate(_fake_payload(records))
    lookups = [v for v in verdicts if v["metric"] == "time"]
    assert lookups and all(v["passed"] for v in lookups)


def test_gate_fails_growing_series():
    records = _series([(64, 1e-6), (256, 16e-6), (1024, 256e-6)])  # ~linear
    verdicts = check_gate(_fake_payload(records))
    lookups = [v for v in verdicts if v["metric"] == "time"]
    assert lookups and not any(v["passed"] for v in lookups)


def test_gate_tolerates_one_noisy_point():
    # exponent is high-ish but the spread stays within the flatness slack
    records = _series([(64, 1e-6), (256, 1.5e-6), (1024, 2.5e-6)])
    verdicts = check_gate(_fake_payload(records))
    lookups = [v for v in verdicts if v["metric"] == "time"]
    assert lookups and all(v["passed"] for v in lookups)


def test_gate_checks_register_ops_strictly():
    records = _series(
        [(64, 3.0), (256, 3.1), (1024, 3.2)],
        mean_of=1e-6, extra_key="register_ops_per_lookup",
    )
    verdicts = check_gate(_fake_payload(records))
    ops = [v for v in verdicts if v["metric"].startswith("extra:register")]
    assert ops and all(v["passed"] for v in ops)

    records = _series(
        [(64, 3.0), (256, 6.0), (1024, 9.0)],
        mean_of=1e-6, extra_key="register_ops_per_lookup",
    )
    verdicts = check_gate(_fake_payload(records))
    ops = [v for v in verdicts if v["metric"].startswith("extra:register")]
    assert ops and not any(v["passed"] for v in ops)


def test_gate_skips_single_point_series():
    verdicts = check_gate(_fake_payload(_series([(64, 1e-6)])))
    assert verdicts == []


# ----------------------------------------------------------------------
# E15: persistence + parallel preprocessing


def _warm_series(points):
    records = []
    for n, speedup in points:
        records.append(
            {
                "experiment": "E15",
                "group": "bench_persist",
                "fullname": f"benchmarks/bench_persist.py::test_warm_vs_cold[{n}]",
                "name": f"test_warm_vs_cold[{n}]",
                "params": {"n": n},
                "stats": {
                    "mean": 1e-3, "min": 1e-3, "max": 1e-3,
                    "stddev": 0.0, "rounds": 1,
                },
                "extra_info": {"warm_speedup_vs_cold": speedup},
            }
        )
    return records


def test_run_suite_e15_records_and_equivalence():
    payload = run_suite(TINY, ["E15"])
    assert validate_results(payload) == []
    names = [record["name"] for record in payload["benchmarks"]]
    assert f"test_warm_vs_cold[{TINY.small_sizes[0]}]" in names
    assert f"test_parallel_build[2-{TINY.small_sizes[0]}]" in names
    for record in payload["benchmarks"]:
        if record["name"].startswith("test_warm_vs_cold"):
            assert record["extra_info"]["answers_match"] is True
            assert record["extra_info"]["snapshot_bytes"] > 0
        if record["name"].startswith("test_parallel_build"):
            assert record["extra_info"]["matches_sequential"] is True
            assert record["params"]["workers"] == 2


def _arena_series(points):
    return [
        _fake_record(
            name=f"test_lookup_arena[{n}]", n=n,
            extra={"speedup_vs_object": speedup},
        )
        for n, speedup in points
    ]


def test_gate_arena_speedup_is_a_floor():
    verdicts = check_gate(_fake_payload(_arena_series([(64, 2.1), (128, 1.4)])))
    arena = [v for v in verdicts if v["metric"] == "extra:speedup_vs_object"]
    assert arena and all(v["passed"] for v in arena)

    verdicts = check_gate(_fake_payload(_arena_series([(64, 2.1), (128, 0.9)])))
    arena = [v for v in verdicts if v["metric"] == "extra:speedup_vs_object"]
    assert arena and not any(v["passed"] for v in arena)


def test_gate_warm_speedup_is_a_floor():
    verdicts = check_gate(_fake_payload(_warm_series([(64, 16.0), (128, 7.3)])))
    warm = [v for v in verdicts if v["metric"] == "extra:warm_speedup_vs_cold"]
    assert warm and all(v["passed"] for v in warm)

    verdicts = check_gate(_fake_payload(_warm_series([(64, 16.0), (128, 3.0)])))
    warm = [v for v in verdicts if v["metric"] == "extra:warm_speedup_vs_cold"]
    assert warm and not any(v["passed"] for v in warm)
