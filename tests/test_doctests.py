"""Run the doctests embedded in public docstrings."""

import doctest

import pytest

import repro.core.dynamic
import repro.graphs.colored_graph
import repro.logic.diagnostics
import repro.logic.parser
import repro.storage.function_store

MODULES = [
    repro.graphs.colored_graph,
    repro.logic.parser,
    repro.logic.diagnostics,
    repro.storage.function_store,
    repro.core.dynamic,
]


@pytest.mark.parametrize("module", MODULES, ids=[m.__name__ for m in MODULES])
def test_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0, f"{result.failed} doctest failures in {module.__name__}"
    assert result.attempted > 0, f"no doctests collected from {module.__name__}"
