"""Smoke tests: the example scripts must run end to end.

The slowest example (road_network, a 900-intersection city) is exercised
at reduced scale through its building blocks elsewhere; the other three
run verbatim.
"""

import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"
sys.path.insert(0, str(EXAMPLES))


def test_quickstart_runs(capsys):
    import quickstart

    quickstart.main()
    out = capsys.readouterr().out
    assert "total solutions:" in out
    assert "next_solution((10, 0))" in out


def test_social_network_runs(capsys):
    import social_network

    social_network.main()
    out = capsys.readouterr().out
    assert "suggestions for user" in out
    assert "method=indexed" in out


def test_sensor_coverage_runs(capsys):
    import sensor_coverage

    sensor_coverage.main()
    out = capsys.readouterr().out
    assert "total far (gateway, detector) pairs:" in out
    assert "closed-form" in out
