"""Unit tests for the stock formula builders."""

import pytest

from repro.graphs.generators import path, random_planar_like_graph
from repro.logic.builders import (
    dist_at_most,
    dist_greater,
    distance_type_formula,
    independence_sentence,
)
from repro.logic.semantics import evaluate
from repro.logic.syntax import ColorAtom, DistAtom, Not, Var

x, y, z = Var("x"), Var("y"), Var("z")


def test_dist_atom_form():
    assert dist_at_most(x, y, 3) == DistAtom(x, y, 3)
    assert dist_greater(x, y, 3) == Not(DistAtom(x, y, 3))


def test_pure_fo_distance_matches_atom_semantics():
    g = random_planar_like_graph(25, seed=2)
    for r in (0, 1, 2, 3):
        atom = dist_at_most(x, y, r)
        pure = dist_at_most(x, y, r, as_atom=False)
        for a in range(0, g.n, 3):
            for b in range(0, g.n, 5):
                env = {x: a, y: b}
                assert evaluate(g, atom, env) == evaluate(g, pure, env), (r, a, b)


def test_dist_at_most_rejects_negative():
    with pytest.raises(ValueError):
        dist_at_most(x, y, -1)


def test_independence_sentence_semantics():
    # "there are 2 Red vertices at distance > 2 from each other"
    g = path(9, palette=())
    g.set_color("Red", [0, 8])
    phi = independence_sentence(2, 2, ColorAtom("Red", z), z)
    assert evaluate(g, phi, {})
    g2 = path(9, palette=())
    g2.set_color("Red", [4, 5])
    assert not evaluate(g2, phi, {})


def test_independence_sentence_count_one_is_existence():
    g = path(3, palette=())
    g.set_color("Red", [1])
    phi = independence_sentence(1, 5, ColorAtom("Red", z), z)
    assert evaluate(g, phi, {})


def test_independence_sentence_rejects_zero_count():
    with pytest.raises(ValueError):
        independence_sentence(0, 2, ColorAtom("Red", z), z)


def test_distance_type_formula():
    g = path(6, palette=())
    variables = [x, y]
    close = distance_type_formula(variables, [(0, 1)], r=2)
    far = distance_type_formula(variables, [], r=2)
    assert evaluate(g, close, {x: 0, y: 2})
    assert not evaluate(g, close, {x: 0, y: 5})
    assert evaluate(g, far, {x: 0, y: 5})
    assert not evaluate(g, far, {x: 0, y: 2})


def test_distance_type_formula_validates_edges():
    with pytest.raises(ValueError):
        distance_type_formula([x, y], [(0, 2)], r=1)
