"""Unit tests for the decomposability diagnostics."""

from repro.logic.diagnostics import explain


def test_decomposable_query():
    report = explain("dist(x, y) > 2 & Blue(y)")
    assert report.decomposable
    assert report.arity == 2
    assert report.radius == 2
    assert all(block.local for block in report.blocks)


def test_unguarded_existential_is_named():
    report = explain("exists z. Blue(z) & dist(z, x) > 2")
    assert not report.decomposable
    assert any("existential 'z'" in problem for problem in report.problems)


def test_unguarded_universal_is_named():
    # counterexamples satisfy ~Red(z) & ~E(x, z): no distance bound at all
    report = explain("forall z. (Red(z) | E(x, z))")
    assert not report.decomposable
    assert any("universal 'z'" in problem for problem in report.problems)


def test_closed_universal_is_a_sentence_block():
    report = explain("Red(x) & forall z. Blue(z)")
    assert report.decomposable


def test_guarded_chain_is_fine():
    report = explain("exists z. E(x, z) & E(z, y)")
    assert report.decomposable
    assert report.radius == 2


def test_render_is_readable():
    text = explain("dist(x, y) > 2 & Blue(y)").render()
    assert "type scale" in text
    assert "verdict: decomposable" in text
    bad = explain("exists z. Blue(z) & dist(z, x) > 2").render()
    assert "problems:" in bad


def test_blocks_report_anchors():
    report = explain("Red(x) & E(x, y)")
    anchor_sets = {block.anchors for block in report.blocks}
    assert ("x",) in anchor_sets
    assert ("x", "y") in anchor_sets


def test_sentence_blocks_have_no_anchors():
    report = explain("(exists z. E(x, z)) | (exists w, v. E(w, v))")
    assert any(block.anchors == () for block in report.blocks)
