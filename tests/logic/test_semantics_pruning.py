"""The guard-aware evaluator must agree with an unpruned referee.

:func:`repro.logic.semantics.evaluate` restricts quantifier ranges using
guard analysis (direct atoms and certified connection chains).  These
tests compare it against a deliberately simple evaluator that always
scans the whole domain.
"""

import random

from repro.graphs.colored_graph import ColoredGraph
from repro.graphs.generators import random_planar_like_graph
from repro.graphs.neighborhoods import bounded_bfs
from repro.logic.parser import parse_formula
from repro.logic.semantics import DistanceCache, evaluate
from repro.logic.syntax import (
    And,
    Bottom,
    ColorAtom,
    DistAtom,
    EdgeAtom,
    EqAtom,
    Exists,
    Forall,
    Not,
    Or,
    Top,
)
from repro.logic.transform import free_variables


def referee(graph, phi, assignment):
    """Textbook semantics, no pruning whatsoever."""
    if isinstance(phi, Top):
        return True
    if isinstance(phi, Bottom):
        return False
    if isinstance(phi, EdgeAtom):
        return graph.has_edge(assignment[phi.left], assignment[phi.right])
    if isinstance(phi, ColorAtom):
        return graph.has_color(assignment[phi.var], phi.color)
    if isinstance(phi, EqAtom):
        return assignment[phi.left] == assignment[phi.right]
    if isinstance(phi, DistAtom):
        a, b = assignment[phi.left], assignment[phi.right]
        return a == b or b in bounded_bfs(graph, [a], phi.bound)
    if isinstance(phi, Not):
        return not referee(graph, phi.body, assignment)
    if isinstance(phi, And):
        return all(referee(graph, p, assignment) for p in phi.parts)
    if isinstance(phi, Or):
        return any(referee(graph, p, assignment) for p in phi.parts)
    if isinstance(phi, Exists):
        extended = dict(assignment)
        for value in graph.vertices():
            extended[phi.var] = value
            if referee(graph, phi.body, extended):
                return True
        return False
    if isinstance(phi, Forall):
        extended = dict(assignment)
        for value in graph.vertices():
            extended[phi.var] = value
            if not referee(graph, phi.body, extended):
                return False
        return True
    raise TypeError(phi)


QUERIES = [
    "exists z. E(x, z) & E(z, y)",
    "exists z. dist(z, x) <= 2 & Blue(z)",
    "exists z. Blue(z)",  # unguarded: full scan path
    "forall z. (E(x, z) -> Red(z))",
    "forall z. (dist(z, x) <= 2 -> dist(z, y) <= 4)",
    "forall z. Red(z) | Blue(z) | ~Red(x)",  # unguarded universal
    "exists z. z = x & Blue(z)",  # equality guard
    "exists t. P(t) & (exists w. C(w) & E(x, w) & E(w, t)) & (exists v. C(v) & E(y, v) & E(v, t))",
    "forall t. (P(t) -> forall w. (C(w) -> (E(x, w) -> ~E(w, t))))",
]


def test_pruned_evaluator_matches_referee():
    rng = random.Random(77)
    for seed in range(3):
        g = random_planar_like_graph(22, seed=seed)
        g.set_color("P", [v for v in g.vertices() if rng.random() < 0.3])
        g.set_color("C", [v for v in g.vertices() if rng.random() < 0.3])
        cache = DistanceCache(g)
        for text in QUERIES:
            phi = parse_formula(text)
            order = sorted(free_variables(phi), key=lambda v: v.name)
            for _ in range(40):
                env = {v: rng.randrange(g.n) for v in order}
                expected = referee(g, phi, env)
                assert evaluate(g, phi, env) == expected, (text, env)
                assert evaluate(g, phi, env, cache) == expected, (text, env)


def test_pruning_on_disconnected_graph():
    g = ColoredGraph(8, [(0, 1), (2, 3)], colors={"Blue": [3, 7]})
    cache = DistanceCache(g)
    phi = parse_formula("exists z. dist(z, x) <= 3 & Blue(z)")
    order = sorted(free_variables(phi), key=lambda v: v.name)
    for v in g.vertices():
        assert evaluate(g, phi, {order[0]: v}, cache) == referee(g, phi, {order[0]: v})
