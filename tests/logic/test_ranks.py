"""Unit tests for quantifier rank and q-rank (Section 5.1.2)."""

import pytest

from repro.logic.parser import parse_formula
from repro.logic.ranks import (
    check_q_rank,
    f_q,
    max_distance_bound,
    practical_radius,
    q_rank_bound,
    quantifier_rank,
)


def test_quantifier_rank():
    assert quantifier_rank(parse_formula("E(x, y)")) == 0
    assert quantifier_rank(parse_formula("exists z. E(x, z)")) == 1
    assert quantifier_rank(parse_formula("exists z. forall w. E(z, w)")) == 2
    assert quantifier_rank(
        parse_formula("(exists z. E(x, z)) & (exists w. E(x, w))")
    ) == 1


def test_f_q_matches_paper_formula():
    assert f_q(1, 0) == 4
    assert f_q(2, 1) == 8 ** 3
    with pytest.raises(ValueError):
        f_q(-1, 0)


def test_max_distance_bound():
    assert max_distance_bound(parse_formula("E(x, y)")) == 0
    assert max_distance_bound(parse_formula("dist(x, y) <= 7 | dist(x, y) > 3")) == 7


def test_check_q_rank_quantifier_depth():
    phi = parse_formula("exists z. forall w. E(z, w)")
    assert check_q_rank(phi, q=3, ell=2)
    assert not check_q_rank(phi, q=3, ell=1)


def test_check_q_rank_distance_discipline():
    # a dist atom under one quantifier must satisfy d <= (4q)^(q+l-1):
    # with q = 1, l = 1 the allowed bound at depth 1 is 4, so 5 fails ...
    phi = parse_formula("exists z. dist(z, x) <= 5")
    assert not check_q_rank(phi, q=1, ell=1)
    # ... while q = 2 allows (4*2)^(2+1-1) = 64 >= 5
    assert check_q_rank(phi, q=2, ell=1)


def test_q_rank_bound_returns_consistent_parameters():
    phi = parse_formula("exists z. E(x, z) & E(z, y)")
    q, ell, r = q_rank_bound(phi, arity=2)
    assert q >= 2 and ell >= quantifier_rank(phi)
    assert r == f_q(q, ell)
    assert check_q_rank(phi, q, ell)


def test_practical_radius_reflects_distance_bounds():
    assert practical_radius(parse_formula("dist(x, y) <= 9")) == 9
    assert practical_radius(parse_formula("E(x, y)")) == 1
    assert practical_radius(parse_formula("exists z. E(x, z)")) >= 3
