"""Unit tests for the formula parser."""

import pytest

from repro.logic.parser import ParseError, parse_formula
from repro.logic.syntax import (
    And,
    Bottom,
    ColorAtom,
    DistAtom,
    EdgeAtom,
    EqAtom,
    Exists,
    Forall,
    Not,
    Or,
    Top,
    Var,
)

x, y, z = Var("x"), Var("y"), Var("z")


def test_edge_atom():
    assert parse_formula("E(x, y)") == EdgeAtom(x, y)


def test_color_atom():
    assert parse_formula("Blue(x)") == ColorAtom("Blue", x)


def test_equality_and_inequality():
    assert parse_formula("x = y") == EqAtom(x, y)
    assert parse_formula("x != y") == Not(EqAtom(x, y))


def test_dist_atoms():
    assert parse_formula("dist(x, y) <= 3") == DistAtom(x, y, 3)
    assert parse_formula("dist(x, y) > 3") == Not(DistAtom(x, y, 3))


def test_constants():
    assert parse_formula("true") == Top()
    assert parse_formula("false") == Bottom()


def test_connective_precedence():
    # & binds tighter than |, which binds tighter than ->
    phi = parse_formula("Red(x) | Blue(x) & Green(x)")
    assert phi == Or((ColorAtom("Red", x), And((ColorAtom("Blue", x), ColorAtom("Green", x)))))
    arrow = parse_formula("Red(x) -> Blue(x)")
    assert arrow == Or((Not(ColorAtom("Red", x)), ColorAtom("Blue", x)))


def test_negation():
    assert parse_formula("~E(x, y)") == Not(EdgeAtom(x, y))
    assert parse_formula("~~Red(x)") == Not(Not(ColorAtom("Red", x)))


def test_quantifiers():
    phi = parse_formula("exists z. E(x, z)")
    assert phi == Exists(z, EdgeAtom(x, z))
    psi = parse_formula("forall z. E(x, z)")
    assert psi == Forall(z, EdgeAtom(x, z))


def test_multi_variable_quantifier():
    phi = parse_formula("exists y, z. E(y, z)")
    assert phi == Exists(y, Exists(z, EdgeAtom(y, z)))


def test_quantifier_scopes_to_the_right():
    phi = parse_formula("exists z. E(x, z) & E(z, y)")
    assert isinstance(phi, Exists)
    assert isinstance(phi.body, And)


def test_parentheses():
    phi = parse_formula("(Red(x) | Blue(x)) & Green(x)")
    assert isinstance(phi, And)


def test_roundtrip_through_repr():
    texts = [
        "E(x, y)",
        "exists z. (E(x, z) & E(z, y))",
        "dist(x, y) <= 2 | ~Blue(x)",
        "forall z. (~E(x, z) | Red(z))",
    ]
    for text in texts:
        phi = parse_formula(text)
        assert parse_formula(repr(phi)) == phi


@pytest.mark.parametrize(
    "bad",
    [
        "",
        "E(x)",
        "E(x, y",
        "dist(x, y) < 2",
        "exists . E(x, y)",
        "Red(x) &",
        "x ==",
        "E(x, y) Red(x)",
        "dist(x, y) <= ",
        "@weird",
    ],
)
def test_malformed_inputs_raise(bad):
    with pytest.raises(ParseError):
        parse_formula(bad)
