"""Unit tests for the guard/connection analysis."""

from repro.logic.guards import (
    deep_counterexample_guard,
    deep_guard,
    implied_connection,
)
from repro.logic.parser import parse_formula
from repro.logic.syntax import Var
from repro.logic.transform import negation_normal_form, standardize_apart

x, y, z, t = Var("x"), Var("y"), Var("z"), Var("t")


def nnf(text):
    return standardize_apart(negation_normal_form(parse_formula(text)))


def test_direct_edge_connection():
    phi = parse_formula("E(x, y)")
    assert implied_connection(phi, x, y) == 1
    assert implied_connection(phi, y, x) == 1


def test_chain_through_existential():
    phi = nnf("exists z. E(x, z) & E(z, y)")
    assert implied_connection(phi, x, y) == 2


def test_dist_atoms_weighted():
    phi = nnf("dist(x, z) <= 3 & dist(z, y) <= 2")
    assert implied_connection(phi, x, y) == 5


def test_equality_is_zero_weight():
    phi = nnf("x = z & E(z, y)")
    assert implied_connection(phi, x, y) == 1


def test_disjunction_contributes_nothing():
    phi = nnf("E(x, z) | E(z, y)")
    assert implied_connection(phi, x, y) is None


def test_unconnected_returns_none():
    phi = nnf("Red(x) & Blue(y)")
    assert implied_connection(phi, x, y) is None


def test_same_variable_is_zero():
    assert implied_connection(parse_formula("Red(x)"), x, x) == 0


def test_deep_guard_through_nested_existentials():
    # the adjacency-graph pattern: z tied to x through two nested levels
    phi = nnf("exists t. P(t) & (exists w. C(w) & E(x, w) & E(w, t)) & E(z, t)")
    guard = deep_guard(phi, z, {x: 0})
    assert guard == (x, 3)  # z - t - w - x


def test_deep_guard_picks_cheapest_anchor():
    phi = nnf("E(z, x) & dist(z, y) <= 5")
    assert deep_guard(phi, z, {x: 0, y: 0}) == (x, 1)
    assert deep_guard(phi, z, {y: 0}) == (y, 5)
    # anchored offsets shift the totals
    assert deep_guard(phi, z, {x: 2, y: 0}) == (x, 3)


def test_deep_guard_none_when_unguarded():
    phi = nnf("Blue(z)")
    assert deep_guard(phi, z, {x: 0}) is None


def test_counterexample_guard_through_negated_disjunct():
    # forall t (~P(t) | forall w (~C(w) | ~E(x,w) | ~E(w,t)))
    # a counterexample t satisfies P(t) AND exists w (C & E(x,w) & E(w,t))
    phi = nnf("forall t. (P(t) -> forall w. (C(w) -> (E(x, w) -> ~E(w, t))))")
    body = phi.body
    guard = deep_counterexample_guard(body, t, {x: 0})
    assert guard == (x, 2)


def test_counterexample_guard_simple_negated_atom():
    phi = nnf("forall z. (~E(x, z) | Red(z))")
    assert deep_counterexample_guard(phi.body, z, {x: 0}) == (x, 1)


def test_counterexample_guard_none_for_unbounded():
    phi = nnf("forall z. (Red(z) | Blue(z))")
    assert deep_counterexample_guard(phi.body, z, {x: 0}) is None
