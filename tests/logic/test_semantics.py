"""Unit tests for naive FO+ semantics."""

import pytest

from repro.graphs.colored_graph import ColoredGraph
from repro.graphs.generators import path
from repro.logic.parser import parse_formula
from repro.logic.semantics import count_solutions, evaluate, satisfies, solutions
from repro.logic.syntax import Var

x, y = Var("x"), Var("y")


@pytest.fixture
def triangle_plus_tail():
    # 0-1-2 triangle, 2-3 tail, colors
    return ColoredGraph(
        4,
        [(0, 1), (1, 2), (0, 2), (2, 3)],
        colors={"Red": [0], "Blue": [3]},
    )


def test_atoms(triangle_plus_tail):
    g = triangle_plus_tail
    assert evaluate(g, parse_formula("E(x, y)"), {x: 0, y: 1})
    assert not evaluate(g, parse_formula("E(x, y)"), {x: 0, y: 3})
    assert evaluate(g, parse_formula("Red(x)"), {x: 0})
    assert evaluate(g, parse_formula("x = y"), {x: 2, y: 2})
    assert evaluate(g, parse_formula("dist(x, y) <= 2"), {x: 0, y: 3})
    assert not evaluate(g, parse_formula("dist(x, y) <= 1"), {x: 0, y: 3})


def test_dist_zero_is_equality(triangle_plus_tail):
    g = triangle_plus_tail
    assert evaluate(g, parse_formula("dist(x, y) <= 0"), {x: 1, y: 1})
    assert not evaluate(g, parse_formula("dist(x, y) <= 0"), {x: 1, y: 2})


def test_connectives(triangle_plus_tail):
    g = triangle_plus_tail
    assert evaluate(g, parse_formula("Red(x) & ~Blue(x)"), {x: 0})
    assert evaluate(g, parse_formula("Red(x) | Blue(x)"), {x: 3})
    assert evaluate(g, parse_formula("Blue(x) -> Red(x)"), {x: 0})


def test_quantifiers(triangle_plus_tail):
    g = triangle_plus_tail
    assert evaluate(g, parse_formula("exists y. E(x, y) & Blue(y)"), {x: 2})
    assert not evaluate(g, parse_formula("exists y. E(x, y) & Blue(y)"), {x: 0})
    assert evaluate(g, parse_formula("forall y. (E(x, y) -> dist(y, x) <= 1)"), {x: 0})


def test_solutions_lexicographic(triangle_plus_tail):
    g = triangle_plus_tail
    sols = list(solutions(g, parse_formula("E(x, y)")))
    assert sols == sorted(sols)
    assert (0, 1) in sols and (1, 0) in sols
    assert len(sols) == 8  # 4 undirected edges


def test_solutions_of_sentence():
    g = path(3, palette=())
    assert list(solutions(g, parse_formula("exists x, y. E(x, y)"))) == [()]
    assert list(solutions(g, parse_formula("forall x, y. E(x, y)"))) == []


def test_satisfies_checks_arity(triangle_plus_tail):
    with pytest.raises(ValueError):
        satisfies(triangle_plus_tail, parse_formula("E(x, y)"), (0,), [x, y])


def test_solutions_free_order_validation(triangle_plus_tail):
    with pytest.raises(ValueError):
        list(solutions(triangle_plus_tail, parse_formula("E(x, y)"), [x]))


def test_count_solutions(triangle_plus_tail):
    assert count_solutions(triangle_plus_tail, parse_formula("Red(x)")) == 1
    assert count_solutions(triangle_plus_tail, parse_formula("E(x, y)")) == 8
