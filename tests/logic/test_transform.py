"""Unit tests for formula transformations."""

import random

from repro.graphs.generators import random_planar_like_graph
from repro.logic.parser import parse_formula
from repro.logic.semantics import evaluate
from repro.logic.syntax import (
    And,
    DistAtom,
    EdgeAtom,
    Exists,
    Forall,
    Not,
    Or,
    Var,
)
from repro.logic.transform import (
    all_variables,
    free_variables,
    fresh_variable,
    negation_normal_form,
    rename_variable,
    standardize_apart,
    substitute,
)

x, y, z, w = Var("x"), Var("y"), Var("z"), Var("w")


def test_free_variables():
    phi = parse_formula("exists z. E(x, z) & Blue(y)")
    assert free_variables(phi) == {x, y}
    assert free_variables(parse_formula("true")) == set()


def test_all_variables_includes_bound():
    phi = parse_formula("exists z. E(x, z)")
    assert all_variables(phi) == {x, z}


def test_fresh_variable_avoids_collisions():
    used = {Var("u"), Var("u1")}
    assert fresh_variable(used, "u") == Var("u2")
    assert fresh_variable(set(), "u") == Var("u")


def test_substitute_free_occurrences_only():
    phi = Exists(z, EdgeAtom(x, z))
    assert substitute(phi, {x: y}) == Exists(z, EdgeAtom(y, z))
    # the bound z is untouched even if mapped
    assert substitute(phi, {z: y}) == phi


def test_substitute_avoids_capture():
    phi = Exists(z, EdgeAtom(x, z))
    result = substitute(phi, {x: z})
    assert isinstance(result, Exists)
    assert result.var != z  # bound variable renamed
    assert free_variables(result) == {z}


def test_rename_variable():
    phi = EdgeAtom(x, y)
    assert rename_variable(phi, x, w) == EdgeAtom(w, y)


def test_nnf_pushes_negations():
    phi = Not(And((EdgeAtom(x, y), Exists(z, EdgeAtom(x, z)))))
    nnf = negation_normal_form(phi)
    assert isinstance(nnf, Or)
    assert isinstance(nnf.parts[1], Forall)


def test_nnf_semantics_preserved():
    rng = random.Random(5)
    g = random_planar_like_graph(20, seed=3)
    formulas = [
        "~(E(x, y) & Blue(y))",
        "~(exists z. E(x, z) & dist(z, y) <= 2)",
        "~forall z. (E(x, z) -> Red(z))",
        "~(~Red(x) | ~(x = y))",
    ]
    for text in formulas:
        phi = parse_formula(text)
        nnf = negation_normal_form(phi)
        for _ in range(40):
            a, b = rng.randrange(g.n), rng.randrange(g.n)
            env = {x: a, y: b}
            assert evaluate(g, phi, env) == evaluate(g, nnf, env), text


def test_standardize_apart_no_shadowing():
    phi = And((Exists(z, EdgeAtom(x, z)), Exists(z, EdgeAtom(y, z))))
    std = standardize_apart(phi)
    bound_names = []

    def collect(node):
        if isinstance(node, (Exists, Forall)):
            bound_names.append(node.var)
            collect(node.body)
        elif isinstance(node, (And, Or)):
            for p in node.parts:
                collect(p)
        elif isinstance(node, Not):
            collect(node.body)

    collect(std)
    assert len(bound_names) == len(set(bound_names))


def test_standardize_apart_semantics_preserved():
    rng = random.Random(6)
    g = random_planar_like_graph(18, seed=1)
    phi = parse_formula("(exists z. E(x, z)) & (exists z. dist(z, y) <= 2 & Blue(z))")
    std = standardize_apart(phi)
    for _ in range(40):
        env = {x: rng.randrange(g.n), y: rng.randrange(g.n)}
        assert evaluate(g, phi, env) == evaluate(g, std, env)


def test_substitute_in_dist_atom():
    phi = DistAtom(x, y, 3)
    assert substitute(phi, {x: z, y: w}) == DistAtom(z, w, 3)
