"""Integration: deep-guarded adjacency-graph patterns stay indexed.

The Lemma 2.2 rewriting produces blocks guarded only through *nested*
existential chains (element - position - tuple vertices).  These tests
pin down that the decomposer's connection analysis handles them and the
engine answers exactly.
"""

import random

from repro.baselines.naive import NaiveIndex
from repro.core.engine import build_index
from repro.core.normal_form import decompose
from repro.db.adjacency import adjacency_graph
from repro.db.database import Database, Schema
from repro.db.rewrite import RelationAtom, rewrite_query
from repro.logic.syntax import And, EqAtom, Exists, Not, Var

x, y, z = Var("x"), Var("y"), Var("z")


def network(people=24, seed=2):
    rng = random.Random(seed)
    db = Database(Schema({"Friend": 2}), domain_size=people)
    for p in range(1, people):
        buddy = rng.randrange(max(0, p - 3), p)
        db.add("Friend", (p, buddy))
        db.add("Friend", (buddy, p))
    return db


def friend_of_friend():
    return And(
        (
            Exists(
                z,
                And(
                    (
                        RelationAtom("Friend", (x, z)),
                        RelationAtom("Friend", (z, y)),
                    )
                ),
            ),
            Not(RelationAtom("Friend", (x, y))),
            Not(EqAtom(x, y)),
        )
    )


def test_fof_query_decomposes():
    psi = rewrite_query(friend_of_friend())
    decomposition = decompose(psi, (x, y))
    # two Friend hops = graph distance 8 in A'(D)
    assert decomposition.radius == 8


def test_fof_query_indexed_and_exact():
    db = network()
    enc = adjacency_graph(db)
    psi = rewrite_query(friend_of_friend())
    index = build_index(enc.graph, psi, free_order=(x, y))
    assert index.method == "indexed"
    naive = NaiveIndex(enc.graph, psi, (x, y))
    assert list(index.enumerate()) == naive.solutions
    # sanity: suggestions are exactly distance-8 non-friend distinct pairs
    friends = db.relation("Friend")
    for a, b in naive.solutions:
        assert a != b and (a, b) not in friends


def test_negated_relation_alone():
    db = network(people=12)
    enc = adjacency_graph(db)
    psi = rewrite_query(Not(RelationAtom("Friend", (x, y))))
    index = build_index(enc.graph, psi, free_order=(x, y))
    naive = NaiveIndex(enc.graph, psi, (x, y))
    assert list(index.enumerate()) == naive.solutions
    assert index.method == "indexed"
