"""Property-based integration tests (hypothesis).

Random sparse graphs + queries from the supported fragment: the engine
must agree with brute force on enumeration, testing and next-solution —
the Theorem 2.3 contract, fuzzed.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.naive import NaiveIndex
from repro.core.config import EngineConfig
from repro.core.engine import build_index
from repro.graphs.colored_graph import ColoredGraph
from repro.logic.parser import parse_formula

TINY = EngineConfig(dist_naive_threshold=10, bag_naive_threshold=8)

QUERY_POOL = [
    "E(x, y)",
    "dist(x, y) <= 2",
    "dist(x, y) > 1 & Blue(y)",
    "exists z. E(x, z) & E(z, y)",
    "Red(x) & ~E(x, y)",
    "x = y | dist(x, y) > 2",
    "forall z. (E(x, z) -> dist(z, y) <= 2)",
]


@st.composite
def sparse_colored_graph(draw):
    """A random graph of bounded degeneracy with random colors."""
    n = draw(st.integers(2, 36))
    rng = random.Random(draw(st.integers(0, 2 ** 16)))
    g = ColoredGraph(n)
    # random forest backbone + a few short chords: bounded expansion
    for v in range(1, n):
        if rng.random() < 0.9:
            g.add_edge(rng.randrange(v), v)
    for _ in range(n // 4):
        u = rng.randrange(n)
        candidates = [w for w in g.neighbors(u) for w2 in [w]]
        if candidates:
            w = rng.choice(candidates)
            far = [t for t in g.neighbors(w) if t != u]
            if far and not g.has_edge(u, far[0]):
                g.add_edge(u, far[0])
    for name in ("Red", "Blue"):
        g.set_color(name, [v for v in range(n) if rng.random() < 0.35])
    return g


@given(sparse_colored_graph(), st.sampled_from(QUERY_POOL), st.integers(0, 999))
@settings(max_examples=40, deadline=None)
def test_engine_matches_naive_on_random_graphs(g, text, probe_seed):
    phi = parse_formula(text)
    index = build_index(g, phi, config=TINY)
    naive = NaiveIndex(g, phi, index.free_order)
    assert list(index.enumerate()) == naive.solutions
    rng = random.Random(probe_seed)
    for _ in range(10):
        t = tuple(rng.randrange(g.n) for _ in range(index.arity))
        assert index.test(t) == naive.test(t)
        assert index.next_solution(t) == naive.next_solution(t)


@given(sparse_colored_graph())
@settings(max_examples=30, deadline=None)
def test_enumeration_is_strictly_increasing_and_complete(g):
    index = build_index(g, "dist(x, y) <= 2", config=TINY)
    previous = None
    count = 0
    for solution in index.enumerate():
        if previous is not None:
            assert solution > previous
        previous = solution
        count += 1
    assert count == index.count()
