"""Differential fuzzing of live edge updates (hypothesis).

Random sparse graphs, random queries, random insert/delete sequences:
after every sequence the ball-locally repaired index must answer
``test`` / ``next_solution`` / ``enumerate_page`` exactly like a
from-scratch build on the final graph — and, stronger, its
Storing-Theorem registers must be *identical* to the rebuild's
(``QueryIndex.registers()``), so the repair is indistinguishable from
re-running the whole Theorem 2.3 preprocessing.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import EngineConfig
from repro.core.engine import build_index
from repro.graphs.colored_graph import ColoredGraph
from repro.logic.parser import parse_formula

TINY = EngineConfig(dist_naive_threshold=10, bag_naive_threshold=8)

#: binary and unary queries: the k >= 2 tower repair (cover / kernels /
#: skip pointers / prefix) and the k = 1 overlay repair are distinct paths
QUERY_POOL = [
    "E(x, y)",
    "dist(x, y) <= 2",
    "dist(x, y) > 1 & Blue(y)",
    "exists z. E(x, z) & E(z, y)",
    "Red(x) & ~E(x, y)",
    "x = y | dist(x, y) > 2",
    "exists y. E(x, y) & Blue(y)",
    "Red(x) & ~Blue(x)",
]


@st.composite
def sparse_colored_graph(draw):
    """A random graph of bounded degeneracy with random colors."""
    n = draw(st.integers(2, 36))
    rng = random.Random(draw(st.integers(0, 2 ** 16)))
    g = ColoredGraph(n)
    for v in range(1, n):
        if rng.random() < 0.9:
            g.add_edge(rng.randrange(v), v)
    for _ in range(n // 4):
        u = rng.randrange(n)
        candidates = list(g.neighbors(u))
        if candidates:
            w = rng.choice(candidates)
            far = [t for t in g.neighbors(w) if t != u]
            if far and not g.has_edge(u, far[0]):
                g.add_edge(u, far[0])
    for name in ("Red", "Blue"):
        g.set_color(name, [v for v in range(n) if rng.random() < 0.35])
    return g


def _apply(index, pairs):
    """Toggle each pair against the index's *current* graph; skip loops."""
    for u, v in pairs:
        u, v = u % index.graph.n, v % index.graph.n
        if u == v:
            continue
        if index.graph.has_edge(u, v):
            index = index.delete_edge(u, v)
        else:
            index = index.insert_edge(u, v)
    return index


@given(
    sparse_colored_graph(),
    st.sampled_from(QUERY_POOL),
    st.lists(
        st.tuples(st.integers(0, 35), st.integers(0, 35)),
        min_size=1, max_size=6,
    ),
    st.integers(0, 999),
)
@settings(max_examples=30, deadline=None)
def test_repaired_index_matches_rebuild(g, text, pairs, probe_seed):
    phi = parse_formula(text)
    index = build_index(g, phi, config=TINY)
    updated = _apply(index, pairs)
    rebuilt = build_index(updated.graph, phi, config=TINY)

    assert updated.registers() == rebuilt.registers()
    assert list(updated.enumerate()) == list(rebuilt.enumerate())
    rng = random.Random(probe_seed)
    for _ in range(10):
        t = tuple(rng.randrange(g.n) for _ in range(updated.arity))
        assert updated.test(t) == rebuilt.test(t)
        assert updated.next_solution(t) == rebuilt.next_solution(t)
    page = updated.enumerate_page(limit=5)
    assert page.items == rebuilt.enumerate_page(limit=5).items


@given(sparse_colored_graph(), st.sampled_from(QUERY_POOL))
@settings(max_examples=20, deadline=None)
def test_updates_are_persistent_and_versioned(g, text):
    """Old generations never change; versions count updates monotonically."""
    index = build_index(g, text, config=TINY)
    before = list(index.enumerate())
    fingerprint = index.fingerprint
    assert index.version == 0 and fingerprint[1] == 0

    u = 0
    v = g.n - 1 if g.n > 1 else 0
    if u == v:
        return
    op = index.delete_edge if g.has_edge(u, v) else index.insert_edge
    updated = op(u, v)

    assert updated.version == 1
    # versioned identity: same static component, bumped version
    assert updated.fingerprint == (fingerprint[0], 1)
    # the old generation is copy-on-write, not patched in place
    assert list(index.enumerate()) == before
    assert index.version == 0
    assert index.graph.num_edges != updated.graph.num_edges
