"""Integration: the full pipeline vs the naive baseline.

This is the repository's main correctness battery: for each sparse
family and each query in the supported fragment, the indexed engine's
*test*, *next-solution* and *enumeration* answers must coincide exactly
with brute force — including with deliberately tiny thresholds so the
splitter/removal recursion (not just the naive cutoffs) is exercised.
"""

import random

import pytest

from repro.baselines.naive import NaiveIndex
from repro.core.config import EngineConfig
from repro.core.engine import build_index
from repro.graphs.generators import grid, random_planar_like_graph, random_tree
from repro.logic.parser import parse_formula

QUERIES_ARITY2 = [
    "E(x, y)",
    "exists z. E(x, z) & E(z, y)",
    "dist(x, y) <= 2",
    "dist(x, y) > 2 & Blue(y)",
    "Red(x) & Blue(y) & dist(x, y) > 1",
    "exists z. (dist(z, x) <= 1 & Blue(z)) & dist(x, y) > 2",
    "forall z. (E(x, z) -> dist(z, y) <= 2)",
    "~E(x, y) & dist(x, y) <= 2",
    "(Red(x) & E(x, y)) | (Blue(x) & dist(x, y) > 1)",
    "x = y | E(x, y)",
]

TINY = EngineConfig(dist_naive_threshold=10, bag_naive_threshold=8, dist_max_depth=2)


@pytest.fixture(params=["tree", "grid", "planar"])
def graph(request):
    if request.param == "tree":
        return random_tree(48, seed=21)
    if request.param == "grid":
        return grid(7, 7, seed=21)
    return random_planar_like_graph(48, seed=21)


@pytest.mark.parametrize("text", QUERIES_ARITY2)
def test_indexed_equals_naive(graph, text):
    phi = parse_formula(text)
    index = build_index(graph, phi, config=TINY)
    assert index.method == "indexed", text
    naive = NaiveIndex(graph, phi, index.free_order)
    assert list(index.enumerate()) == naive.solutions
    rng = random.Random(hash(text) & 0xFFFF)
    for _ in range(50):
        t = tuple(rng.randrange(graph.n) for _ in range(index.arity))
        assert index.test(t) == naive.test(t), t
        assert index.next_solution(t) == naive.next_solution(t), t


def test_relational_database_pipeline():
    """Database -> A'(D) -> rewritten query -> index (Lemma 2.2 end to end)."""
    from repro.db.adjacency import adjacency_graph
    from repro.db.database import Database, Schema
    from repro.db.rewrite import RelationAtom, evaluate_db, rewrite_query
    from repro.logic.syntax import Var

    rng = random.Random(5)
    db = Database(Schema({"Friend": 2}), domain_size=8)
    for _ in range(10):
        db.add("Friend", (rng.randrange(8), rng.randrange(8)))
    enc = adjacency_graph(db)
    x, y = Var("x"), Var("y")
    psi = rewrite_query(RelationAtom("Friend", (x, y)))
    index = build_index(enc.graph, psi, free_order=(x, y))
    answers = {t for t in index.enumerate()}
    expected = set(db.relation("Friend"))
    assert answers == expected
    for a in range(8):
        for b in range(8):
            assert index.test((a, b)) == ((a, b) in expected)


def test_disconnected_graph():
    from repro.graphs.colored_graph import ColoredGraph

    g = ColoredGraph(20)
    for i in range(0, 18, 2):
        g.add_edge(i, i + 1)
    g.set_color("Blue", range(0, 20, 3))
    index = build_index(g, "dist(x, y) > 2 & Blue(y)", config=TINY)
    naive = NaiveIndex(g, parse_formula("dist(x, y) > 2 & Blue(y)"), index.free_order)
    assert list(index.enumerate()) == naive.solutions


def test_single_vertex_graph():
    from repro.graphs.colored_graph import ColoredGraph

    g = ColoredGraph(1, colors={"Red": [0]})
    index = build_index(g, "Red(x) & Red(y)")
    assert list(index.enumerate()) == [(0, 0)]
