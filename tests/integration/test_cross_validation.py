"""Cross-validation between independent implementations of the same facts.

Different modules compute the same quantities through different
algorithms (enumeration vs closed-form counting; distance index vs BFS vs
naive semantics; unary index vs dynamic index).  Agreement across them is
a strong end-to-end invariant.
"""

import random

import pytest

from repro.core.config import EngineConfig
from repro.core.counting import CountingIndex
from repro.core.distance_index import DistanceIndex
from repro.core.dynamic import DynamicUnaryIndex
from repro.core.engine import build_index
from repro.core.unary import unary_solutions
from repro.graphs.generators import random_planar_like_graph, random_tree
from repro.logic.parser import parse_formula
from repro.logic.semantics import evaluate
from repro.logic.syntax import Var

x, y = Var("x"), Var("y")
TINY = EngineConfig(dist_naive_threshold=10, bag_naive_threshold=8)


@pytest.mark.parametrize(
    "text",
    ["E(x, y)", "dist(x, y) <= 2", "dist(x, y) > 2 & Blue(y)"],
)
def test_enumerated_count_equals_closed_form(text):
    g = random_planar_like_graph(36, seed=4)
    phi = parse_formula(text)
    index = build_index(g, phi, config=TINY)
    counting = CountingIndex(g, phi, index.free_order, TINY)
    assert index.count() == counting.count()


def test_distance_index_agrees_with_query_engine():
    g = random_tree(40, seed=6)
    r = 2
    dist_index = DistanceIndex(g, r, naive_threshold=12)
    query_index = build_index(g, f"dist(x, y) <= {r}", config=TINY)
    rng = random.Random(2)
    for _ in range(200):
        a, b = rng.randrange(g.n), rng.randrange(g.n)
        assert dist_index.test(a, b) == query_index.test((a, b)), (a, b)


def test_unary_paths_agree():
    g = random_tree(35, seed=8)
    g.set_color("Hot", [3, 7, 20])
    phi = parse_formula("exists y. E(x, y) & Hot(y)")
    static = unary_solutions(g, phi, x)
    dynamic = DynamicUnaryIndex(g, phi, x)
    naive = [v for v in g.vertices() if evaluate(g, phi, {x: v})]
    assert static == dynamic.solutions() == naive


def test_dynamic_converges_to_static_after_updates():
    g = random_tree(30, seed=10, palette=())
    phi = parse_formula("exists y. E(x, y) & Hot(y)")
    dynamic = DynamicUnaryIndex(g, phi, x)
    rng = random.Random(3)
    for _ in range(25):
        v = rng.randrange(g.n)
        if rng.random() < 0.6:
            dynamic.add_color("Hot", v)
        else:
            dynamic.remove_color("Hot", v)
    # rebuild statically on the mutated graph: must agree
    assert dynamic.solutions() == unary_solutions(g, phi, x)
