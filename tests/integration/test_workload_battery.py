"""The full workload registry against the full family registry.

The widest correctness sweep in the suite: every indexable arity-2
workload on a member of every generated family (including the newer
hex-grid / partial-k-tree / chord-cycle families), indexed answers vs
brute force.
"""

import random

import pytest

from repro.baselines.naive import NaiveIndex
from repro.core.config import EngineConfig
from repro.core.engine import build_index
from repro.graphs.generators import (
    caterpillar,
    hex_grid,
    long_cycle_with_chords,
    outerplanar_random_graph,
    partial_k_tree,
    random_forest,
)
from repro.logic.parser import parse_formula
from repro.workloads import indexable

TINY = EngineConfig(dist_naive_threshold=10, bag_naive_threshold=12)

FAMILY_SAMPLES = {
    "hex": lambda: hex_grid(6, 7, seed=3),
    "k-tree": lambda: partial_k_tree(42, k=2, seed=3),
    "chords": lambda: long_cycle_with_chords(42, chord_span=4, seed=3),
    "outerplanar": lambda: outerplanar_random_graph(42, seed=3),
    "forest": lambda: random_forest(42, trees=3, seed=3),
    "caterpillar": lambda: caterpillar(spine=12, legs=2, seed=3),
}


@pytest.mark.parametrize("family", sorted(FAMILY_SAMPLES), ids=sorted(FAMILY_SAMPLES))
@pytest.mark.parametrize(
    "workload", indexable(arity=2), ids=[w.name for w in indexable(arity=2)]
)
def test_workloads_on_all_families(family, workload):
    g = FAMILY_SAMPLES[family]()
    phi = parse_formula(workload.text)
    index = build_index(g, phi, config=TINY)
    assert index.method == "indexed", (family, workload.name)
    naive = NaiveIndex(g, phi, index.free_order)
    assert list(index.enumerate()) == naive.solutions, (family, workload.name)
    rng = random.Random(hash((family, workload.name)) & 0xFFFF)
    for _ in range(15):
        t = tuple(rng.randrange(g.n) for _ in range(2))
        assert index.test(t) == naive.test(t)
        assert index.next_solution(t) == naive.next_solution(t)
