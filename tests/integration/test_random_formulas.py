"""Property test: random guarded formulas, engine vs brute force.

A hypothesis strategy generates formulas inside the guarded fragment
(atoms over two free variables, Boolean combinations, guarded ∃/∀), so
``build_index`` should almost always choose the indexed path — and must
*always* agree with the naive baseline either way.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.naive import NaiveIndex
from repro.core.config import EngineConfig
from repro.core.engine import build_index
from repro.graphs.colored_graph import ColoredGraph
from repro.logic.syntax import (
    And,
    ColorAtom,
    DistAtom,
    EdgeAtom,
    EqAtom,
    Exists,
    Forall,
    Not,
    Or,
    Var,
)

x, y, z = Var("x"), Var("y"), Var("z")
TINY = EngineConfig(dist_naive_threshold=10, bag_naive_threshold=8)


def atoms(u: Var, v: Var):
    return st.sampled_from(
        [
            EdgeAtom(u, v),
            DistAtom(u, v, 1),
            DistAtom(u, v, 2),
            EqAtom(u, v),
            ColorAtom("Red", u),
            ColorAtom("Blue", v),
        ]
    )


def literals(u: Var, v: Var):
    return atoms(u, v).flatmap(lambda a: st.sampled_from([a, Not(a)]))


def guarded_quantified(u: Var):
    """∃z (guard(u, z) ∧ α(z)) or ∀z (¬guard(u, z) ∨ α(z))."""
    guard = st.sampled_from([EdgeAtom(u, z), DistAtom(u, z, 2)])
    payload = st.sampled_from(
        [ColorAtom("Red", z), ColorAtom("Blue", z), Not(ColorAtom("Red", z))]
    )

    def build(pair):
        g, p = pair
        return st.sampled_from(
            [Exists(z, And((g, p))), Forall(z, Or((Not(g), p)))]
        )

    return st.tuples(guard, payload).flatmap(build)


def formulas():
    base = st.one_of(literals(x, y), guarded_quantified(x), guarded_quantified(y))

    def combine(children):
        return st.one_of(
            st.builds(lambda a, b: And((a, b)), children, children),
            st.builds(lambda a, b: Or((a, b)), children, children),
            st.builds(Not, children),
        )

    return st.recursive(base, combine, max_leaves=5)


@st.composite
def sparse_graph(draw):
    n = draw(st.integers(2, 28))
    rng = random.Random(draw(st.integers(0, 9999)))
    g = ColoredGraph(n)
    for v in range(1, n):
        if rng.random() < 0.85:
            g.add_edge(rng.randrange(v), v)
    for name in ("Red", "Blue"):
        g.set_color(name, [v for v in range(n) if rng.random() < 0.4])
    return g


@given(sparse_graph(), formulas(), st.integers(0, 999))
@settings(max_examples=60, deadline=None)
def test_random_guarded_formulas(g, phi, probe_seed):
    from repro.logic.transform import free_variables

    order = tuple(sorted(free_variables(phi), key=lambda v: v.name))
    index = build_index(g, phi, free_order=order, config=TINY)
    naive = NaiveIndex(g, phi, order)
    assert list(index.enumerate()) == naive.solutions
    rng = random.Random(probe_seed)
    for _ in range(6):
        t = tuple(rng.randrange(g.n) for _ in order)
        assert index.test(t) == naive.test(t), (t, index.method)
        assert index.next_solution(t) == naive.next_solution(t), (t, index.method)
