"""Failure injection: the invariant checkers must catch corruption.

The Storing-Theorem structure carries strong internal invariants (gap
cells point at true successors, parent pointers are consistent, the
register count matches the array count).  These tests corrupt the
structure deliberately and assert the checker notices — guarding the
guards.
"""

import pytest

from repro.storage.registers import CHILD, GAP, PARENT
from repro.storage.trie import TrieStore


def populated_store():
    store = TrieStore(27, 1, 1 / 3)
    for x in (2, 4, 5, 19, 24, 25):
        store.insert((x,), x)
    return store


def test_clean_store_passes():
    populated_store().check_invariants()


def test_corrupted_gap_payload_detected():
    store = populated_store()
    # root cell 1 is a gap pointing at (19,); forge it
    store.registers.write(2, GAP, (24,))
    with pytest.raises(AssertionError, match="gap cell"):
        store.check_invariants()


def test_corrupted_parent_pointer_detected():
    store = populated_store()
    first_child = store.registers.read(1)[1]
    store.registers.write(first_child + store.d, PARENT, 2)
    with pytest.raises(AssertionError, match="parent pointer"):
        store.check_invariants()


def test_register_leak_detected():
    store = populated_store()
    store.registers.allocate(store.d + 1)  # leak a block
    with pytest.raises(AssertionError, match="register leak"):
        store.check_invariants()


def test_size_mismatch_detected():
    store = populated_store()
    store._size += 1
    with pytest.raises(AssertionError, match="size mismatch"):
        store.check_invariants()


def test_dual_desync_detected():
    from repro.storage.function_store import StoredFunction

    f = StoredFunction(16, 1)
    f[3] = 1
    f[9] = 2
    # remove from the primary only, bypassing the facade
    f._primary.remove((3,))
    with pytest.raises(AssertionError, match="disagree"):
        f.check_invariants()


def test_cover_property_violation_detected():
    from repro.covers.neighborhood_cover import build_cover
    from repro.graphs.generators import grid

    g = grid(6, 6)
    cover = build_cover(g, 2)
    # shrink a bag behind the cover's back
    victim = cover.bags[0]
    removed = victim.pop()
    cover._member_sets[0].discard(removed)
    with pytest.raises(AssertionError):
        cover.check_properties()


def test_forged_child_tag_detected():
    store = populated_store()
    # turn a leaf-level gap cell into a bogus child pointer
    node = store._node_on_path(store._encode((2,)), store.depth - 1)
    for j in range(store.d):
        delta, _ = store.registers.read(node + j)
        if delta == GAP:
            store.registers.write(node + j, CHILD, 99)
            break
    with pytest.raises(AssertionError):
        store.check_invariants()
