"""Arity-4 smoke tests: the nested induction three levels deep.

Kept tiny — the naive oracle is O(n^4) — but exercising both the
all-guarded path (exact delay end to end) and a far component (prefix
scan at some level).
"""

import random

from repro.baselines.naive import NaiveIndex
from repro.core.config import EngineConfig
from repro.core.engine import build_index
from repro.graphs.generators import random_planar_like_graph
from repro.logic.parser import parse_formula

TINY = EngineConfig(dist_naive_threshold=8, bag_naive_threshold=8)


def test_guarded_path_query():
    g = random_planar_like_graph(14, seed=8)
    phi = parse_formula("E(w, x) & E(x, y) & E(y, z)")
    index = build_index(g, phi, free_order=("w", "x", "y", "z"), config=TINY)
    assert index.method == "indexed"
    naive = NaiveIndex(g, phi, index.free_order)
    assert list(index.enumerate()) == naive.solutions
    rng = random.Random(0)
    for _ in range(25):
        t = tuple(rng.randrange(g.n) for _ in range(4))
        assert index.test(t) == naive.test(t)
        assert index.next_solution(t) == naive.next_solution(t)


def test_mixed_far_query():
    g = random_planar_like_graph(12, seed=3)
    phi = parse_formula("E(w, x) & E(y, z) & dist(x, y) > 2")
    index = build_index(g, phi, free_order=("w", "x", "y", "z"), config=TINY)
    assert index.method == "indexed"
    naive = NaiveIndex(g, phi, index.free_order)
    assert list(index.enumerate()) == naive.solutions
    rng = random.Random(1)
    for _ in range(20):
        t = tuple(rng.randrange(g.n) for _ in range(4))
        assert index.test(t) == naive.test(t)
