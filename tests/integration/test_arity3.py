"""Integration tests for arity-3 queries (nested induction, Case I/II)."""

import random

import pytest

from repro.baselines.naive import NaiveIndex
from repro.core.config import EngineConfig
from repro.core.engine import build_index
from repro.graphs.generators import random_planar_like_graph
from repro.logic.parser import parse_formula

TINY = EngineConfig(dist_naive_threshold=10, bag_naive_threshold=8)

QUERIES_ARITY3 = [
    # guarded chains: projection stays decomposable, full constant delay
    ("E(x, y) & E(y, z)", True),
    ("dist(x, y) <= 1 & dist(y, z) <= 1 & Red(z)", True),
    # far components: exact answers, prefix-scan fallback for the delay
    ("E(x, y) & dist(x, z) > 2 & Blue(z)", False),
    ("dist(x, y) > 2 & dist(y, z) > 2 & dist(x, z) > 2 & Red(x) & Blue(y) & Green(z)", False),
]


@pytest.mark.parametrize("text,exact", QUERIES_ARITY3, ids=[q for q, _ in QUERIES_ARITY3])
def test_arity3_indexed_equals_naive(text, exact):
    g = random_planar_like_graph(32, seed=9)
    phi = parse_formula(text)
    index = build_index(g, phi, config=TINY)
    assert index.method == "indexed"
    assert index.exact_delay == exact
    naive = NaiveIndex(g, phi, index.free_order)
    assert list(index.enumerate()) == naive.solutions
    rng = random.Random(1)
    for _ in range(40):
        t = tuple(rng.randrange(g.n) for _ in range(3))
        assert index.test(t) == naive.test(t), t
        assert index.next_solution(t) == naive.next_solution(t), t


def test_repeated_values_in_tuples():
    g = random_planar_like_graph(24, seed=3)
    index = build_index(g, "dist(x, y) <= 1 & dist(y, z) <= 1", config=TINY)
    naive = NaiveIndex(
        g, parse_formula("dist(x, y) <= 1 & dist(y, z) <= 1"), index.free_order
    )
    got = list(index.enumerate())
    assert got == naive.solutions
    assert any(t[0] == t[1] == t[2] for t in got)  # diagonal tuples included
