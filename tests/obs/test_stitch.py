"""Stitching per-process trace payloads into one cross-process tree."""

from __future__ import annotations

from repro.obs import stitch_traces, stitched_to_chrome_trace
from repro.trace import new_trace_id, span, tracing

TID = new_trace_id()


def _parent_and_worker_payloads():
    """Simulate the pool hop: a pool.route trace + a worker request trace."""
    with tracing("pool.route", trace_id=TID, endpoint="/v1/test") as parent:
        with span("pool.forward", worker=1):
            pass
    parent_payload = parent.to_dict()
    parent_payload["source"] = "parent"
    route_span_id = parent_payload["tree"][0]["span_id"]

    with tracing(
        "POST /v1/test", trace_id=TID, parent_span_id=route_span_id
    ) as worker:
        with span("enumerate.step"):
            pass
    worker_payload = worker.to_dict()
    worker_payload["source"] = "worker:1"
    return parent_payload, worker_payload, route_span_id


def test_stitch_builds_one_tree_across_processes():
    parent_payload, worker_payload, route_span_id = _parent_and_worker_payloads()
    stitched = stitch_traces([parent_payload, worker_payload])

    assert stitched["stitched"] is True
    assert stitched["trace_id"] == TID
    assert stitched["spans"] == 4  # route + forward + request + step
    assert stitched["sources"] == ["parent", "worker:1"]
    # the root-process payload (no remote parent) labels the trace
    assert stitched["name"] == "pool.route"

    # one root: the pool.route span; the worker's request span nests
    # under it via the propagated span id, keeping its own subtree
    assert len(stitched["tree"]) == 1
    root = stitched["tree"][0]
    assert root["name"] == "pool.route"
    assert root["source"] == "parent"
    children = {child["name"]: child for child in root["children"]}
    assert set(children) == {"pool.forward", "POST /v1/test"}
    request = children["POST /v1/test"]
    assert request["source"] == "worker:1"
    assert request["parent_id"] == route_span_id
    assert [c["name"] for c in request["children"]] == ["enumerate.step"]


def test_stitch_rebases_onto_shared_wall_clock():
    parent_payload, worker_payload, _ = _parent_and_worker_payloads()
    # pretend the worker's process started 5 wall-clock seconds later
    worker_payload["started_at"] = parent_payload["started_at"] + 5.0
    stitched = stitch_traces([parent_payload, worker_payload])
    flat: dict[str, dict] = {}

    def walk(nodes):
        for node in nodes:
            flat[node["name"]] = node
            walk(node["children"])

    walk(stitched["tree"])
    assert flat["POST /v1/test"]["start_seconds"] >= 5.0
    assert flat["pool.route"]["start_seconds"] < 1.0
    assert stitched["duration_seconds"] >= 5.0


def test_stitch_reroots_orphans_instead_of_dropping():
    with tracing("POST /v1/test", trace_id=TID, parent_span_id="feed" * 4) as t:
        pass
    payload = t.to_dict()
    stitched = stitch_traces([payload])
    assert stitched["spans"] == 1
    assert len(stitched["tree"]) == 1  # unknown remote parent -> re-rooted
    assert stitched["tree"][0]["name"] == "POST /v1/test"


def test_stitch_ignores_other_trace_ids_and_dedupes():
    parent_payload, worker_payload, _ = _parent_and_worker_payloads()
    with tracing("unrelated", trace_id=new_trace_id()) as other:
        pass
    other_payload = other.to_dict()
    stitched = stitch_traces(
        [parent_payload, worker_payload, other_payload, dict(worker_payload)]
    )
    assert stitched["spans"] == 4  # resent worker payload deduped by span id
    assert stitched["sources"] == ["parent", "worker:1"]


def test_stitch_empty_input():
    stitched = stitch_traces([])
    assert stitched["stitched"] is True
    assert stitched["spans"] == 0
    assert stitched["tree"] == []


def test_chrome_export_one_row_per_source():
    parent_payload, worker_payload, _ = _parent_and_worker_payloads()
    stitched = stitch_traces([parent_payload, worker_payload])
    chrome = stitched_to_chrome_trace(stitched)
    events = chrome["traceEvents"]
    metadata = [e for e in events if e["ph"] == "M"]
    spans = [e for e in events if e["ph"] == "X"]
    assert len(metadata) == 2  # one process row per source
    assert len(spans) == stitched["spans"]
    pid_by_source = {
        e["args"]["name"].removeprefix("repro "): e["pid"] for e in metadata
    }
    for event in spans:
        assert event["ts"] >= 0.0
        assert event["dur"] >= 0.0
    route = next(e for e in spans if e["name"] == "pool.route")
    request = next(e for e in spans if e["name"] == "POST /v1/test")
    assert route["pid"] == pid_by_source["parent"]
    assert request["pid"] == pid_by_source["worker:1"]
