"""Tests for the pool-wide observability plane (repro.obs)."""
