"""The pool-wide guarantee block and per-endpoint latency summaries."""

from __future__ import annotations

import pytest

from repro.metrics import MetricsRegistry, merge_snapshots
from repro.obs import aggregate_guarantee, endpoint_latency_summary
from repro.obs.slo import ENDPOINT_PREFIX


def _snapshot(steps=100, delay=0, ops=0, budget=0.01, calibrated=True):
    return {
        "steps_seen": steps,
        "budget_seconds": budget,
        "ops_budget": 500,
        "calibrated": calibrated,
        "violations": {"delay": delay, "ops": ops},
    }


def test_guarantee_holds_when_no_violations():
    verdict = aggregate_guarantee({"0": _snapshot(), "1": _snapshot(steps=50)})
    assert verdict["held"] is True
    assert verdict["workers"] == 2
    assert verdict["reporting"] == 2
    assert verdict["calibrated"] == 2
    assert verdict["steps_seen"] == 150
    assert verdict["violations"] == {"delay": 0, "ops": 0}
    assert verdict["burn_rate"] == {"delay": 0.0, "ops": 0.0}


def test_guarantee_burns_on_any_worker_violation():
    verdict = aggregate_guarantee(
        {"0": _snapshot(), "1": _snapshot(steps=100, delay=3, ops=1)}
    )
    assert verdict["held"] is False
    assert verdict["violations"] == {"delay": 3, "ops": 1}
    assert verdict["burn_rate"]["delay"] == pytest.approx(3 / 200)
    assert verdict["burn_rate"]["ops"] == pytest.approx(1 / 200)
    # the offending worker is attributable
    assert verdict["per_worker"]["1"]["violations"]["delay"] == 3


def test_guarantee_never_held_without_reports():
    verdict = aggregate_guarantee({"0": None, "1": None})
    assert verdict["held"] is False
    assert verdict["workers"] == 2
    assert verdict["reporting"] == 0
    assert aggregate_guarantee({})["held"] is False


def test_guarantee_budget_spread():
    verdict = aggregate_guarantee(
        {"0": _snapshot(budget=0.01), "1": _snapshot(budget=0.04)}
    )
    assert verdict["budget_seconds"] == {"min": 0.01, "max": 0.04}


def test_endpoint_latency_summary_from_merged_export():
    a, b = MetricsRegistry(), MetricsRegistry()
    for value in (0.001, 0.002, 0.004):
        a.histogram(f"{ENDPOINT_PREFIX}/v1/test").record(value)
    b.histogram(f"{ENDPOINT_PREFIX}/v1/test").record(0.008)
    b.histogram(f"{ENDPOINT_PREFIX}/v1/next").record(0.5)
    a.histogram("unrelated.histogram").record(1.0)
    merged = merge_snapshots([a.export(), b.export()])

    summary = endpoint_latency_summary(merged)
    assert set(summary) == {"/v1/test", "/v1/next"}
    test_ep = summary["/v1/test"]
    assert test_ep["count"] == 4.0
    assert test_ep["mean"] == pytest.approx(0.015 / 4)
    assert test_ep["max"] == 0.008
    # bucket-estimate bounds: p50 covers the 2nd smallest sample (0.002)
    assert 0.002 <= test_ep["p50"] <= 0.004
    assert 0.008 <= test_ep["p99"] <= 0.016
    # the single-sample endpoint degenerates to that sample's bucket
    assert 0.5 <= summary["/v1/next"]["p95"] <= 1.0


def test_endpoint_latency_summary_empty_export():
    assert endpoint_latency_summary(merge_snapshots([])) == {}
