"""Legacy setup shim: lets ``pip install -e .`` work without the ``wheel``
package on offline machines (PEP 660 editable builds need bdist_wheel)."""

from setuptools import setup

setup()
