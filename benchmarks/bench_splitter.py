"""E5 — the splitter game (Theorem 4.6).

Claim under test: over a fixed nowhere dense family, Splitter wins in a
number of rounds ``λ(r)`` independent of ``|G|`` (and mildly growing in
``r``).  The benchmark measures rounds-to-win against adversarial
Connectors; ``extra_info["rounds"]`` is the experiment's subject, the
timing merely documents the cost of playing.
"""

import pytest

from benchmarks.conftest import make_graph


@pytest.mark.parametrize("n", (256, 1024, 2048))
@pytest.mark.parametrize("family", ["tree", "grid"])
def test_rounds_vs_n(benchmark, family, n):
    from repro.splitter.game import rounds_to_win

    g = make_graph(family, n)
    rounds = benchmark.pedantic(
        rounds_to_win, args=(g, 2), kwargs={"trials": 2}, rounds=1, iterations=1
    )
    benchmark.extra_info["rounds"] = rounds  # should be flat in n


@pytest.mark.parametrize("radius", [1, 2, 4])
def test_rounds_vs_radius(benchmark, radius):
    from repro.splitter.game import rounds_to_win

    g = make_graph("tree", 1024)
    rounds = benchmark.pedantic(
        rounds_to_win, args=(g, radius), kwargs={"trials": 2}, rounds=1, iterations=1
    )
    benchmark.extra_info["rounds"] = rounds


def test_negative_control_subdivided_clique(benchmark):
    """On the somewhere dense control, Splitter needs *more* rounds."""
    from repro.graphs.generators import subdivided_clique
    from repro.splitter.game import rounds_to_win

    g = subdivided_clique(24, subdivisions=1)
    rounds = benchmark.pedantic(
        rounds_to_win, args=(g, 2), kwargs={"trials": 3}, rounds=1, iterations=1
    )
    benchmark.extra_info["rounds"] = rounds
