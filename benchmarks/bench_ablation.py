"""Ablations — the engineering knobs that substitute for the paper's
constants (see DESIGN.md, "Substitutions").

* ``eps`` — the Storing-Theorem exponent trades lookup depth against
  branching: smaller eps = deeper/narrower tries (cheaper updates on big
  universes), larger eps = shallower/wider.
* ``bag_naive_threshold`` — Step 1's "naive algorithm" cutoff: 0 forces
  the splitter/removal recursion everywhere, large values solve bags by
  memoized scans.  Both must give identical answers; the timing shows
  why the paper's cutoff exists.
* ``dist_max_depth`` — the λ stand-in for the distance index.
"""

import random

import pytest

from benchmarks.conftest import make_graph

QUERY = "dist(x, y) > 2 & Blue(y)"


@pytest.mark.parametrize("eps", [0.25, 0.5, 0.75])
def test_trie_eps(benchmark, eps):
    from repro.storage.trie import TrieStore

    n = 2 ** 14
    rng = random.Random(0)
    keys = [(rng.randrange(n),) for _ in range(3000)]

    def build_and_probe():
        store = TrieStore(n, 1, eps=eps)
        for key in keys:
            store.insert(key, 0)
        for key in keys:
            store.lookup(key)
        return store

    store = benchmark.pedantic(build_and_probe, rounds=1, iterations=1)
    benchmark.extra_info["d"] = store.d
    benchmark.extra_info["h"] = store.h
    benchmark.extra_info["registers"] = store.registers_used


@pytest.mark.parametrize("threshold", [16, 64, 220])
def test_bag_threshold(benchmark, threshold):
    from repro.core.config import EngineConfig
    from repro.core.engine import build_index

    g = make_graph("planar", 512)
    config = EngineConfig(bag_naive_threshold=threshold)
    index = benchmark.pedantic(
        build_index, args=(g, QUERY), kwargs={"config": config}, rounds=1, iterations=1
    )
    # identical answers regardless of the knob
    assert index.test((0, 1)) in (True, False)
    benchmark.extra_info["threshold"] = threshold


@pytest.mark.parametrize("depth", [1, 3])
def test_distance_recursion_depth(benchmark, depth):
    from repro.core.distance_index import DistanceIndex

    g = make_graph("grid", 2048)
    index = benchmark.pedantic(
        DistanceIndex, args=(g, 2), kwargs={"max_depth": depth}, rounds=1, iterations=1
    )
    benchmark.extra_info["measured_depth"] = index.recursion_depth


def test_answers_invariant_under_knobs():
    """The knobs change cost, never answers (asserted, not timed)."""
    from repro.core.config import EngineConfig
    from repro.core.engine import build_index

    g = make_graph("planar", 160)
    reference = None
    for threshold in (8, 64, 500):
        config = EngineConfig(bag_naive_threshold=threshold, dist_naive_threshold=16)
        index = build_index(g, QUERY, config=config)
        solutions = list(index.enumerate())
        if reference is None:
            reference = solutions
        assert solutions == reference
