"""E6 — skip pointers (Lemma 5.8).

Claims under test:

* preprocessing ``O(n^{1+k eps})`` — the build series tracks ``n`` with
  the stored-pointer count reported;
* ``SKIP(b, S)`` queries are constant time — the query group is flat.
"""

import random

import pytest

from benchmarks.conftest import SIZES, make_graph


def _setup(n, k, seed=0):
    from repro.covers.kernels import kernel_of_bag
    from repro.covers.neighborhood_cover import build_cover

    g = make_graph("planar", n, seed=seed)
    cover = build_cover(g, 2)
    kernels = [kernel_of_bag(g, bag, 2) for bag in cover.bags]
    rng = random.Random(seed)
    targets = [v for v in g.vertices() if rng.random() < 0.4]
    return g, cover, kernels, targets


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("k", [1, 2])
def test_build(benchmark, n, k):
    from repro.core.skip_pointers import SkipPointers

    g, cover, kernels, targets = _setup(n, k)
    skips = benchmark.pedantic(
        SkipPointers, args=(g.n, targets, kernels, k), rounds=1, iterations=1
    )
    benchmark.extra_info["stored_pointers"] = skips.stored_pointers
    benchmark.extra_info["pointers_per_vertex"] = round(skips.stored_pointers / n, 2)


@pytest.mark.parametrize("n", SIZES)
def test_query(benchmark, n):
    from repro.core.skip_pointers import SkipPointers

    g, cover, kernels, targets = _setup(n, 2)
    skips = SkipPointers(g.n, targets, kernels, k=2)
    rng = random.Random(1)
    probes = [
        (rng.randrange(n), tuple(rng.sample(range(cover.num_bags), 2)))
        for _ in range(512)
    ]

    def query_batch():
        for b, bags in probes:
            skips.skip(b, bags)

    benchmark(query_batch)
