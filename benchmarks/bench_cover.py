"""E4 — neighborhood covers (Theorem 4.4).

Claims under test:

* (r, 2r)-covers are computable in pseudo-linear time — the timing
  series should track ``n``;
* the degree stays small (``n^eps`` in the theorem) — reported as
  ``extra_info`` along with ``Σ|X| / n`` (the paper's pseudo-linear
  total bag size).
"""

import pytest

from benchmarks.conftest import SIZES, make_graph


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("family", ["tree", "grid", "planar"])
def test_build_cover(benchmark, family, n):
    from repro.covers.neighborhood_cover import build_cover

    g = make_graph(family, n)
    cover = benchmark.pedantic(build_cover, args=(g, 2), rounds=1, iterations=1)
    benchmark.extra_info["degree"] = cover.degree()
    benchmark.extra_info["degree_bound_sqrt_n"] = round(n ** 0.5, 1)
    benchmark.extra_info["total_bag_size_over_n"] = round(
        cover.total_bag_size() / n, 2
    )


@pytest.mark.parametrize("radius", [1, 2, 4, 8])
def test_radius_sweep(benchmark, radius):
    from repro.covers.neighborhood_cover import build_cover

    g = make_graph("grid", 4096)
    cover = benchmark.pedantic(build_cover, args=(g, radius), rounds=1, iterations=1)
    benchmark.extra_info["degree"] = cover.degree()
    benchmark.extra_info["bags"] = cover.num_bags


@pytest.mark.parametrize("n", SIZES)
def test_kernels(benchmark, n):
    """Lemma 5.7: kernels in O(p * ||G[X]||) per bag."""
    from repro.covers.kernels import kernel_of_bag
    from repro.covers.neighborhood_cover import build_cover

    g = make_graph("planar", n)
    cover = build_cover(g, 2)

    def all_kernels():
        return [kernel_of_bag(g, bag, 2) for bag in cover.bags]

    kernels = benchmark.pedantic(all_kernels, rounds=1, iterations=1)
    total = sum(len(k) for k in kernels)
    benchmark.extra_info["kernel_fraction"] = round(
        total / max(cover.total_bag_size(), 1), 2
    )
