"""E12 — the headline crossover: index vs materialize-everything.

The paper's motivation (Section 1): the result set can be quadratic in
``n``, so computing all of ``q(G)`` is the wrong unit of work.  Claims
under test:

* naive full materialization grows ~quadratically for a binary query
  with a large result set;
* index preprocessing grows pseudo-linearly — so there is an ``n`` where
  build-the-index beats materialize-everything *even for a single pass*,
  and streaming the first k solutions wins long before that;
* the per-answer cost after preprocessing is independent of the result
  set's size.
"""

import pytest

from benchmarks.conftest import SMALL_SIZES, cached_graph, cached_index, make_graph

QUERY = "dist(x, y) > 2 & Blue(y)"  # result set is Θ(n^2); grid family: uniformly bounded balls


@pytest.mark.parametrize("n", SMALL_SIZES)
def test_naive_materialize(benchmark, n):
    from repro.baselines.naive import NaiveIndex
    from repro.logic.parser import parse_formula
    from repro.logic.syntax import Var

    g = make_graph("grid", n)
    phi = parse_formula(QUERY)

    def materialize():
        return len(NaiveIndex(g, phi, (Var("x"), Var("y"))).solutions)

    count = benchmark.pedantic(materialize, rounds=1, iterations=1)
    benchmark.extra_info["solutions"] = count


@pytest.mark.parametrize("n", SMALL_SIZES)
def test_index_build(benchmark, n):
    from repro.core.engine import build_index

    g = make_graph("grid", n)
    index = benchmark.pedantic(
        build_index, args=(g, QUERY), rounds=1, iterations=1
    )
    assert index.method == "indexed"


@pytest.mark.parametrize("n", SMALL_SIZES)
def test_index_build_plus_first_50(benchmark, n):
    """The streaming use case: preprocessing + the first 50 answers."""
    from repro.core.engine import build_index

    g = make_graph("grid", n)

    def build_and_stream():
        index = build_index(g, QUERY)
        out = []
        for solution in index.enumerate():
            out.append(solution)
            if len(out) >= 50:
                break
        return out

    result = benchmark.pedantic(build_and_stream, rounds=1, iterations=1)
    assert len(result) == 50


@pytest.mark.parametrize("k_prefix", (10, 100, 1000))
def test_streaming_cost_independent_of_result_size(benchmark, k_prefix):
    """After preprocessing, emitting k answers costs Θ(k) — not Θ(|q(G)|)."""
    index = cached_index("grid", 2048, QUERY)

    def stream():
        out = 0
        for _ in index.enumerate():
            out += 1
            if out >= k_prefix:
                break
        return out

    assert benchmark(stream) == k_prefix
