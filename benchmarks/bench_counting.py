"""E13 — counting without enumerating ([18], cited in the paper's intro).

Claim under test: ``|q(G)|`` is computable in pseudo-linear time even
when the result set is quadratic.  The closed-form counter should scale
with ``n`` while enumeration-based counting scales with ``|q(G)| ~ n^2``.
"""

import pytest

from benchmarks.conftest import cached_graph

QUERY = "dist(x, y) > 2 & Blue(y)"  # quadratic result set


@pytest.mark.parametrize("n", (256, 512, 1024))
def test_closed_form_count(benchmark, n):
    from repro.core.counting import CountingIndex
    from repro.logic.parser import parse_formula
    from repro.logic.syntax import Var

    g = cached_graph("grid", n)
    phi = parse_formula(QUERY)

    def build_and_count():
        counting = CountingIndex(g, phi, (Var("x"), Var("y")))
        return counting.count()

    count = benchmark.pedantic(build_and_count, rounds=1, iterations=1)
    benchmark.extra_info["solutions"] = count
    benchmark.extra_info["solutions_over_n"] = round(count / n, 1)


@pytest.mark.parametrize("n", (256, 512, 1024))
def test_enumerate_count_baseline(benchmark, n):
    from repro.core.engine import build_index

    g = cached_graph("grid", n)

    def build_and_enumerate():
        index = build_index(g, QUERY)
        return index.count()

    count = benchmark.pedantic(build_and_enumerate, rounds=1, iterations=1)
    benchmark.extra_info["solutions"] = count
