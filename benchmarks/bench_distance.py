"""E3 — constant-time distance testing (Proposition 4.2).

Claims under test:

* preprocessing pseudo-linear: the ``preprocess`` group grows roughly
  linearly in ``n``;
* queries constant time: the ``query`` group is flat in ``n``;
* the BFS baseline's per-query cost *grows* with the radius/degree —
  this is the index's win.
"""

import random

import pytest

from benchmarks.conftest import SIZES, cached_graph, cached_index, make_graph


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("family", ["planar", "grid"])
def test_preprocess(once, family, n):
    from repro.core.distance_index import DistanceIndex

    g = make_graph(family, n)
    index = once(DistanceIndex, g, 2)
    # the recursion depth is the measured stand-in for lambda(2r)
    # (Theorem 4.6); report it alongside the timing
    assert index.test(0, 0)


@pytest.mark.parametrize("n", SIZES)
def test_query(benchmark, n):
    from repro.core.distance_index import DistanceIndex

    g = make_graph("planar", n)
    index = DistanceIndex(g, 2)
    rng = random.Random(3)
    probes = [(rng.randrange(n), rng.randrange(n)) for _ in range(512)]

    def query_batch():
        hits = 0
        for a, b in probes:
            if index.test(a, b):
                hits += 1
        return hits

    benchmark(query_batch)


@pytest.mark.parametrize("n", SIZES)
def test_bfs_baseline_query(benchmark, n):
    from repro.baselines.bfs_oracle import bfs_distance_at_most

    g = make_graph("planar", n)
    rng = random.Random(3)
    probes = [(rng.randrange(n), rng.randrange(n)) for _ in range(512)]

    def query_batch():
        hits = 0
        for a, b in probes:
            if bfs_distance_at_most(g, a, b, 2):
                hits += 1
        return hits

    benchmark(query_batch)


@pytest.mark.parametrize("radius", [1, 2, 4])
def test_radius_sweep(once, radius):
    """Preprocessing cost versus radius at fixed n."""
    from repro.core.distance_index import DistanceIndex

    g = make_graph("grid", 2048)
    index = once(DistanceIndex, g, radius)
    assert index.test(0, 0)
