"""E8 — constant-time testing (Corollary 2.4).

Claims under test:

* after preprocessing, testing whether a tuple is a solution is constant
  time — the indexed group is flat in ``n``;
* the baseline (naive per-tuple evaluation, one BFS per distance atom)
  *grows* with ``n``'s neighborhood sizes; the index's advantage is the
  gap between the two groups.
"""

import random

import pytest

from benchmarks.conftest import SIZES, SMALL_SIZES, cached_graph, cached_index, make_graph

QUERY = "dist(x, y) > 2 & Blue(y)"


@pytest.mark.parametrize("n", SIZES)
def test_indexed(benchmark, n):
    from repro.core.engine import build_index

    index = cached_index("planar", n, QUERY)
    g = index.graph
    rng = random.Random(11)
    probes = [(rng.randrange(n), rng.randrange(n)) for _ in range(512)]

    def test_batch():
        hits = 0
        for probe in probes:
            if index.test(probe):
                hits += 1
        return hits

    benchmark(test_batch)


@pytest.mark.parametrize("n", SIZES)
def test_naive_baseline(benchmark, n):
    from repro.logic.parser import parse_formula
    from repro.logic.semantics import evaluate
    from repro.logic.syntax import Var

    g = make_graph("planar", n)
    phi = parse_formula(QUERY)
    x, y = Var("x"), Var("y")
    rng = random.Random(11)
    probes = [(rng.randrange(n), rng.randrange(n)) for _ in range(512)]

    def test_batch():
        hits = 0
        for a, b in probes:
            if evaluate(g, phi, {x: a, y: b}):
                hits += 1
        return hits

    benchmark(test_batch)


@pytest.mark.parametrize("n", SMALL_SIZES)
def test_arity3_indexed(benchmark, n):
    """Corollary 2.4 also holds at arity 3 (testing needs no prefix index)."""
    from repro.core.engine import build_index

    g = make_graph("planar", n)
    index = build_index(g, "E(x, y) & dist(x, z) > 2 & Blue(z)")
    rng = random.Random(13)
    probes = [
        (rng.randrange(n), rng.randrange(n), rng.randrange(n)) for _ in range(256)
    ]

    def test_batch():
        hits = 0
        for probe in probes:
            if index.test(probe):
                hits += 1
        return hits

    benchmark(test_batch)
