"""E14 — dynamic color updates (the conclusion's future-work direction).

Claims under test:

* one color update costs ball-sized + ``O(n^eps)`` work — the update
  series should stay (nearly) flat while ``n`` grows;
* rebuilding from scratch grows linearly — the gap is the point;
* queries after updates remain constant time.
"""

import random

import pytest

from benchmarks.conftest import cached_graph

QUERY = "exists y. E(x, y) & Hot(y)"


@pytest.mark.parametrize("n", (512, 2048, 8192))
def test_update(benchmark, n):
    from repro.core.dynamic import DynamicUnaryIndex
    from repro.logic.parser import parse_formula
    from repro.logic.syntax import Var

    g = cached_graph("planar", n).copy()  # updates mutate colors
    index = DynamicUnaryIndex(g, parse_formula(QUERY), Var("x"))
    rng = random.Random(2)
    updates = [(rng.randrange(n), rng.random() < 0.5) for _ in range(64)]

    def apply_updates():
        for v, add in updates:
            if add:
                index.add_color("Hot", v)
            else:
                index.remove_color("Hot", v)

    benchmark(apply_updates)
    benchmark.extra_info["updates_per_round"] = len(updates)


@pytest.mark.parametrize("n", (512, 2048, 8192))
def test_rebuild_baseline(benchmark, n):
    from repro.core.dynamic import DynamicUnaryIndex
    from repro.logic.parser import parse_formula
    from repro.logic.syntax import Var

    g = cached_graph("planar", n).copy()
    rng = random.Random(2)
    g.set_color("Hot", [v for v in g.vertices() if rng.random() < 0.2])

    def rebuild():
        return DynamicUnaryIndex(g, parse_formula(QUERY), Var("x"))

    benchmark.pedantic(rebuild, rounds=1, iterations=1)
