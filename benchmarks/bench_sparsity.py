"""E10 — sparsity of nowhere dense families (Theorem 2.1).

Claim under test: for every family we generate, ``||G|| <= |G|^{1+eps}``
eventually — equivalently, the density exponent ``log ||G|| / log |G|``
tends to 1.  The weak r-accessibility counts (the paper's
characterization) should stay bounded on bounded-expansion families and
grow on the subdivided-clique negative control.
"""

import pytest

from benchmarks.conftest import SIZES, make_graph


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("family", ["tree", "grid", "planar", "degree3"])
def test_density_exponent(benchmark, family, n):
    from repro.graphs.sparsity import edge_density_exponent

    g = make_graph(family, n)
    exponent = benchmark.pedantic(edge_density_exponent, args=(g,), rounds=1, iterations=1)
    benchmark.extra_info["exponent"] = round(exponent, 4)
    assert exponent < 1.35  # Theorem 2.1's shape: converging to 1


@pytest.mark.parametrize("n", (256, 1024, 4096))
def test_weak_accessibility(benchmark, n):
    from repro.graphs.sparsity import weak_coloring_number_upper_bound

    g = make_graph("planar", n)
    bound = benchmark.pedantic(
        weak_coloring_number_upper_bound, args=(g, 2), rounds=1, iterations=1
    )
    benchmark.extra_info["weak_2_coloring_bound"] = bound  # flat in n


def test_negative_control(benchmark):
    """Subdivided cliques: somewhere dense at depth 1 — the bound grows."""
    from repro.graphs.generators import subdivided_clique
    from repro.graphs.sparsity import weak_coloring_number_upper_bound

    g = subdivided_clique(40, subdivisions=1)
    bound = benchmark.pedantic(
        weak_coloring_number_upper_bound, args=(g, 2), rounds=1, iterations=1
    )
    benchmark.extra_info["weak_2_coloring_bound"] = bound
