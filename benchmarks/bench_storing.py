"""E1/E2 — the Storing Theorem (Theorem 3.1).

Claims under test:

* initialization ``O(|Dom| * n^eps)`` — the ``init`` group's times per
  stored key should grow like ``n^eps``, not like ``n``;
* lookup ``O(1)`` — the ``lookup`` group should be flat across ``n``;
* update ``O(n^eps)`` — insert+remove cycles likewise.

(E2, the Figure 1 register layout, is verified bit-for-bit in
``tests/storage/test_figure1.py``.)
"""

import random

import pytest

SIZES = (2 ** 10, 2 ** 14, 2 ** 18)


def _random_keys(n: int, k: int, count: int, seed: int = 0):
    rng = random.Random(seed)
    return [tuple(rng.randrange(n) for _ in range(k)) for _ in range(count)]


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("k", [1, 2])
def test_init(benchmark, n, k):
    from repro.storage.trie import TrieStore

    keys = _random_keys(n, k, 2000)

    def build():
        store = TrieStore(n, k, eps=0.5)
        for key in keys:
            store.insert(key, 0)
        return store

    store = benchmark.pedantic(build, rounds=1, iterations=1)
    benchmark.extra_info["registers_per_key"] = round(
        store.registers_used / max(len(store), 1), 1
    )


@pytest.mark.parametrize("n", SIZES)
def test_lookup(benchmark, n):
    from repro.storage.trie import TrieStore

    store = TrieStore(n, 2, eps=0.5)
    for key in _random_keys(n, 2, 2000):
        store.insert(key, 0)
    probes = _random_keys(n, 2, 512, seed=1)

    def lookup_batch():
        for probe in probes:
            store.lookup(probe)

    benchmark(lookup_batch)
    benchmark.extra_info["per_lookup_batch"] = len(probes)


@pytest.mark.parametrize("n", SIZES)
def test_update_cycle(benchmark, n):
    from repro.storage.trie import TrieStore

    store = TrieStore(n, 1, eps=0.5)
    for key in _random_keys(n, 1, 1000):
        store.insert(key, 0)
    cycle = _random_keys(n, 1, 128, seed=2)

    def updates():
        for key in cycle:
            store.insert(key, 1)
        for key in cycle:
            if key in store:
                store.remove(key)

    benchmark(updates)


@pytest.mark.parametrize("n", SIZES)
def test_successor_scan(benchmark, n):
    """Ordered iteration via successor hops — constant per hop."""
    from repro.storage.trie import TrieStore

    store = TrieStore(n, 1, eps=0.5)
    for key in _random_keys(n, 1, 1500):
        store.insert(key, 0)

    def scan():
        count = 0
        key = store.min_key()
        while key is not None:
            count += 1
            key = store.successor(key, strict=True)
        return count

    benchmark(scan)
