"""E1/E2 — the Storing Theorem (Theorem 3.1).

Claims under test:

* initialization ``O(|Dom| * n^eps)`` — the ``init`` group's times per
  stored key should grow like ``n^eps``, not like ``n``;
* lookup ``O(1)`` — the ``lookup`` group should be flat across ``n``;
* update ``O(n^eps)`` — insert+remove cycles likewise.

Every series runs on both storage layouts (``object`` — one Python node
object per trie block — and ``arena`` — flat typed arrays, see
``docs/storage.md``); the layout shows up as the first parametrize axis
so report ids read ``test_lookup[object-1024]`` / ``test_lookup[arena-1024]``.

(E2, the Figure 1 register layout, is verified bit-for-bit in
``tests/storage/test_figure1.py``.)
"""

import random

import pytest

SIZES = (2 ** 10, 2 ** 14, 2 ** 18)
LAYOUTS = ("object", "arena")


def _random_keys(n: int, k: int, count: int, seed: int = 0):
    rng = random.Random(seed)
    return [tuple(rng.randrange(n) for _ in range(k)) for _ in range(count)]


def _make_store(n: int, k: int, layout: str):
    from repro.storage.arena import make_trie_store

    return make_trie_store(n, k, 0.5, layout=layout)


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("k", [1, 2])
@pytest.mark.parametrize("layout", LAYOUTS)
def test_init(benchmark, layout, n, k):
    keys = _random_keys(n, k, 2000)

    def build():
        store = _make_store(n, k, layout)
        for key in keys:
            store.insert(key, 0)
        return store

    store = benchmark.pedantic(build, rounds=1, iterations=1)
    benchmark.extra_info["registers_per_key"] = round(
        store.registers_used / max(len(store), 1), 1
    )


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("layout", LAYOUTS)
def test_lookup(benchmark, layout, n):
    store = _make_store(n, 2, layout)
    for key in _random_keys(n, 2, 2000):
        store.insert(key, 0)
    probes = _random_keys(n, 2, 512, seed=1)

    def lookup_batch():
        for probe in probes:
            store.lookup(probe)

    benchmark(lookup_batch)
    benchmark.extra_info["per_lookup_batch"] = len(probes)


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("layout", LAYOUTS)
def test_update_cycle(benchmark, layout, n):
    store = _make_store(n, 1, layout)
    for key in _random_keys(n, 1, 1000):
        store.insert(key, 0)
    cycle = _random_keys(n, 1, 128, seed=2)

    def updates():
        for key in cycle:
            store.insert(key, 1)
        for key in cycle:
            if key in store:
                store.remove(key)

    benchmark(updates)


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("layout", LAYOUTS)
def test_successor_scan(benchmark, layout, n):
    """Ordered iteration via successor hops — constant per hop."""
    store = _make_store(n, 1, layout)
    for key in _random_keys(n, 1, 1500):
        store.insert(key, 0)

    def scan():
        count = 0
        key = store.min_key()
        while key is not None:
            count += 1
            key = store.successor(key, strict=True)
        return count

    benchmark(scan)
