"""E9 — constant-delay enumeration (Corollary 2.5).

Claims under test:

* the *maximum* delay between consecutive outputs is flat in ``n``
  (reported as ``extra_info`` in microseconds, alongside the mean);
* outputs arrive in lexicographic order without repetition (asserted);
* total enumeration time is linear in the output count.
"""

import pytest

from benchmarks.conftest import SIZES, cached_graph, cached_index, make_graph

QUERY = "dist(x, y) > 2 & Blue(y)"


@pytest.mark.parametrize("n", (512, 1024, 2048))
def test_delay_profile(benchmark, n):
    from repro.core.engine import build_index
    from repro.core.enumeration import enumerate_with_delays

    index = cached_index("planar", n, QUERY)
    g = index.graph

    def enumerate_all():
        return enumerate_with_delays(index._impl)

    solutions, delays = benchmark.pedantic(enumerate_all, rounds=1, iterations=1)
    assert solutions == sorted(set(solutions))
    benchmark.extra_info["solutions"] = len(solutions)
    if delays:
        ordered = sorted(delays)
        benchmark.extra_info["delay_mean_us"] = round(
            sum(delays) / len(delays) * 1e6, 1
        )
        benchmark.extra_info["delay_p99_us"] = round(
            ordered[int(0.99 * (len(ordered) - 1))] * 1e6, 1
        )
        benchmark.extra_info["delay_max_us"] = round(ordered[-1] * 1e6, 1)


@pytest.mark.parametrize("n", SIZES)
def test_first_hundred(benchmark, n):
    """Streaming the first 100 solutions: cost must not depend on |result|."""
    from repro.core.engine import build_index

    index = cached_index("planar", n, QUERY)
    g = index.graph

    def first_hundred():
        out = []
        for solution in index.enumerate():
            out.append(solution)
            if len(out) >= 100:
                break
        return out

    result = benchmark(first_hundred)
    assert len(result) == 100
