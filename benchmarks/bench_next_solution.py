"""E7 — constant-time next-solution (Theorem 2.3 / 5.1).

Claims under test:

* preprocessing is pseudo-linear in ``|G|`` (build group);
* upon input of *any* tuple, the smallest solution ``>= tuple`` is
  computed in constant time — the ``next`` group must stay flat while
  ``n`` grows 16x.
"""

import random

import pytest

from benchmarks.conftest import SIZES, cached_graph, cached_index, make_graph

QUERY = "dist(x, y) > 2 & Blue(y)"


@pytest.mark.parametrize("n", SIZES)
def test_build(once, n):
    from repro.core.engine import build_index

    g = make_graph("planar", n)
    index = once(build_index, g, QUERY)
    assert index.method == "indexed"


@pytest.mark.parametrize("n", SIZES)
def test_next_solution(benchmark, n):
    from repro.core.engine import build_index

    index = cached_index("planar", n, QUERY)
    g = index.graph
    rng = random.Random(5)
    probes = [(rng.randrange(n), rng.randrange(n)) for _ in range(256)]

    def next_batch():
        found = 0
        for probe in probes:
            if index.next_solution(probe) is not None:
                found += 1
        return found

    benchmark(next_batch)


@pytest.mark.parametrize("query", [
    "E(x, y)",
    "exists z. E(x, z) & E(z, y)",
    "dist(x, y) > 2 & Blue(y)",
])
def test_query_sweep(benchmark, query):
    """Per-call cost across query shapes at fixed n."""
    index = cached_index("planar", 2048, query)
    g = index.graph
    rng = random.Random(7)
    probes = [(rng.randrange(g.n), rng.randrange(g.n)) for _ in range(256)]

    def next_batch():
        for probe in probes:
            index.next_solution(probe)

    benchmark(next_batch)
