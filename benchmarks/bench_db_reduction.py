"""E11 — the relational-to-colored-graph reduction (Lemma 2.2).

Claims under test:

* building ``A'(D)`` is linear in ``||D||``;
* query rewriting is linear in ``|phi|`` (and independent of the data);
* end-to-end: the index over ``A'(D)`` answers the relational query —
  the answer count matches the relational baseline exactly.
"""

import random

import pytest


def make_db(people, facts_per_person=2, seed=0):
    from repro.db.database import Database, Schema

    rng = random.Random(seed)
    db = Database(Schema({"Friend": 2, "Likes": 2}), domain_size=people)
    for p in range(1, people):
        buddy = rng.randrange(max(0, p - 5), p)
        db.add("Friend", (p, buddy))
        db.add("Friend", (buddy, p))
    for _ in range(people * facts_per_person // 2):
        a, b = rng.randrange(people), rng.randrange(people)
        if a != b:
            db.add("Likes", (a, b))
    return db


@pytest.mark.parametrize("people", (512, 2048, 8192))
def test_adjacency_graph_build(benchmark, people):
    from repro.db.adjacency import adjacency_graph

    db = make_db(people)
    encoding = benchmark.pedantic(adjacency_graph, args=(db,), rounds=1, iterations=1)
    benchmark.extra_info["graph_size_over_db_size"] = round(
        encoding.graph.size / db.size, 2
    )


def test_rewrite_linear_in_query(benchmark):
    from repro.db.rewrite import RelationAtom, rewrite_query
    from repro.logic.syntax import And, Exists, Var

    x, y = Var("x"), Var("y")
    chain = RelationAtom("Friend", (x, y))
    previous = x
    parts = []
    for i in range(12):
        nxt = Var(f"v{i}")
        parts.append(RelationAtom("Friend", (previous, nxt)))
        previous = nxt
    phi = parts[0]
    for part in parts[1:]:
        phi = And((phi, part))
    for i in range(11, 0, -1):
        phi = Exists(Var(f"v{i}"), phi)

    benchmark(rewrite_query, phi)


@pytest.mark.parametrize("people", (128, 512))
def test_end_to_end_relational_query(benchmark, people):
    from repro.core.engine import build_index
    from repro.db.adjacency import adjacency_graph
    from repro.db.rewrite import RelationAtom, rewrite_query
    from repro.logic.syntax import Var

    db = make_db(people)
    encoding = adjacency_graph(db)
    x, y = Var("x"), Var("y")
    psi = rewrite_query(RelationAtom("Friend", (x, y)))

    def build_and_count():
        index = build_index(encoding.graph, psi, free_order=(x, y))
        return index.count()

    count = benchmark.pedantic(build_and_count, rounds=1, iterations=1)
    assert count == len(db.relation("Friend"))
