"""Shared helpers for the experiment benchmarks (see DESIGN.md Section 4).

Each ``bench_*.py`` file regenerates one experiment E1-E12.  The
pytest-benchmark table *is* the experiment's series: test ids carry the
swept parameter (``n``, family, radius, ...), so reading one group top to
bottom gives the scaling curve the paper's claim predicts.  Derived
quantities that are not timings (cover degree, measured delay spread,
crossover factors) are attached as ``extra_info`` and summarized in
EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.graphs.generators import (
    bounded_degree_random_graph,
    grid,
    random_planar_like_graph,
    random_tree,
)

#: Vertex-count sweep used by the scaling experiments.
SIZES = (512, 2048, 8192)

#: Smaller sweep for the quadratic-ish baselines.
SMALL_SIZES = (128, 256, 512)


def make_graph(family: str, n: int, seed: int = 1):
    if family == "tree":
        return random_tree(n, seed=seed)
    if family == "grid":
        side = max(int(n ** 0.5), 2)
        return grid(side, side, seed=seed)
    if family == "planar":
        return random_planar_like_graph(n, seed=seed)
    if family == "degree3":
        return bounded_degree_random_graph(n, degree=3, seed=seed)
    raise ValueError(f"unknown family {family!r}")


_graph_cache: dict[tuple, object] = {}
_index_cache: dict[tuple, object] = {}


def cached_graph(family: str, n: int, seed: int = 1):
    """Graphs shared across benches (construction is not what we measure)."""
    key = (family, n, seed)
    if key not in _graph_cache:
        _graph_cache[key] = make_graph(family, n, seed)
    return _graph_cache[key]


def cached_index(family: str, n: int, query: str, seed: int = 1):
    """Prebuilt query indexes shared by the query-time benches."""
    from repro.core.engine import build_index

    key = (family, n, query, seed)
    if key not in _index_cache:
        _index_cache[key] = build_index(cached_graph(family, n, seed), query)
    return _index_cache[key]


@pytest.fixture
def once(benchmark):
    """Run the target exactly once (preprocessing-style measurements)."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return run
