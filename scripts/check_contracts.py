#!/usr/bin/env python
"""Run both static contract passes and annotate CI output.

Thin wrapper over ``python -m repro.contracts`` (complexity *and*
concurrency contracts, one merged report) for use in GitHub
Actions: with ``--github`` every finding becomes a workflow command
(``::error`` / ``::notice``) so violations show up inline on the PR
diff.  Exit code matches the checker's (non-zero iff unwaived errors).

Usage::

    python scripts/check_contracts.py [--github] [PATH ...]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.contracts.lint import run_lint  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("paths", nargs="*", metavar="PATH",
                        help="files or directories (default: src/repro)")
    parser.add_argument("--github", action="store_true",
                        help="emit GitHub Actions workflow commands")
    parser.add_argument("--json-out", metavar="FILE", default=None,
                        help="also write the merged JSON report to FILE")
    args = parser.parse_args(argv)

    paths = [Path(p) for p in args.paths] or [REPO_ROOT / "src" / "repro"]
    report = run_lint(paths)
    if args.json_out:
        Path(args.json_out).write_text(report.to_json() + "\n")

    if args.github:
        for finding in json.loads(report.to_json())["findings"]:
            command = "notice" if finding["waived"] else "error"
            try:
                file = str(Path(finding["file"]).resolve().relative_to(REPO_ROOT))
            except ValueError:
                file = finding["file"]
            message = finding["message"]
            if finding["waived"]:
                message += f" (waived: {finding['waiver']})"
            print(
                f"::{command} file={file},line={finding['line']},"
                f"col={finding['col']},title={finding['rule']} "
                f"{finding['title']}::{finding['function']}: {message}"
            )
        summary = json.loads(report.to_json())
        print(
            f"checked {summary['functions_checked']} contracted functions in "
            f"{summary['files_checked']} files: {summary['errors']} error(s), "
            f"{summary['waived']} waived"
        )
    else:
        print(report.render_text())
    return report.exit_code


if __name__ == "__main__":
    sys.exit(main())
