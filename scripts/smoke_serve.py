#!/usr/bin/env python
"""CI smoke test for ``repro serve``: real subprocess, real sockets.

Starts the server exactly as a user would (``python -m repro serve``),
then drives every endpoint through the stdlib client and asserts:

* a cold miss answers correctly and the identical request then hits the
  warm cache;
* enumerate pages stitch together into exactly the oracle's result set;
* 8 concurrent clients all agree with a single-threaded oracle and the
  simultaneous cold miss triggers exactly one build;
* ``/metrics`` exposes ``engine.*`` counters and the enumeration delay
  histogram, and negotiates Prometheus text exposition;
* an ``X-Trace-Id`` request is recorded and its span tree (request root
  down to the ``enumerate.step`` spans) comes back from ``/v1/traces``;
* malformed requests come back as clean 400s, never 500s;
* the server shuts down cleanly on SIGINT.

With ``--paranoid`` the server runs under the runtime freeze tripwire
(any write to a frozen index outside its build phase raises), proving
the guard is inert on the whole serving read path under concurrent
load — the dynamic counterpart of the static CCY pass.

With ``--pool N`` the script instead smokes the pre-fork pool: it warms
an arena snapshot, starts ``repro serve --pool-workers N``, and asserts
the preloaded index serves the very first request from the shared-memory
copy, concurrent clients agree with the oracle through the router, the
batch endpoint is position-exact, ``/v1/stats`` aggregates the pool and
per-worker blocks (including the pool-wide ``guarantee`` verdict), the
parent's ``/metrics`` serves one *merged* Prometheus exposition whose
histogram counts equal the per-worker sums, a traced request comes back
from ``/v1/traces`` as one stitched cross-process tree (``pool.route``
over the worker's request span), ``/v1/profile`` returns merged
collapsed stacks, and SIGINT tears the whole process family down.

Run from the repo root:
``python scripts/smoke_serve.py [--paranoid] [--pool N]``.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from urllib.error import HTTPError
from urllib.request import Request, urlopen

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.core.engine import build_index  # noqa: E402
from repro.graphs.generators import random_tree  # noqa: E402
from repro.serve.client import (  # noqa: E402
    ServiceClient,
    ServiceClientError,
    family_spec,
)

QUERY = "exists z. E(x, z) & E(z, y)"
SPEC = family_spec("random_tree", 48, seed=9)
CLIENTS = 8

_checks = 0


def check(condition: bool, what: str) -> None:
    global _checks
    _checks += 1
    if not condition:
        print(f"FAIL: {what}", file=sys.stderr)
        sys.exit(1)
    print(f"  ok: {what}")


def start_server(extra_args: list[str] | None = None) -> tuple[subprocess.Popen, str]:
    env = {**os.environ, "PYTHONPATH": str(REPO / "src")}
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", *(extra_args or [])],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
        cwd=REPO,
    )
    line = proc.stdout.readline()
    match = re.search(r"http://([\d.]+):(\d+)", line)
    if match is None:
        proc.terminate()
        print(f"FAIL: could not parse server address from {line!r}", file=sys.stderr)
        sys.exit(1)
    return proc, f"http://{match.group(1)}:{match.group(2)}"


def run_pool(workers: int) -> int:
    """The pre-fork leg: warm snapshot, pooled server, concurrent oracle."""
    import tempfile

    from repro.core.config import EngineConfig
    from repro.graphs.generators import FAMILIES
    from repro.persist import cache_path, index_fingerprint, save_index

    n, seed, query = 120, 9, "E(x, y)"
    graph = FAMILIES["grid"](n, seed=seed)
    oracle = build_index(graph, query)
    solutions = list(oracle.enumerate())
    spec = family_spec("grid", n, seed=seed)
    with tempfile.TemporaryDirectory(prefix="repro-smoke-pool-") as tmp:
        warm = build_index(graph, query, config=EngineConfig(layout="arena"))
        fingerprint = index_fingerprint(graph, query)
        save_index(warm, cache_path(tmp, fingerprint), fingerprint)
        proc, url = start_server([
            "--snapshot-dir", tmp,
            "--pool-workers", str(workers),
            "--shards", str(2 * workers),
        ])
        print(f"pool up at {url} ({workers} workers); "
              f"oracle has {len(solutions)} solutions")
        try:
            client = ServiceClient(url, timeout=120.0)
            check(client.health(), "pool /healthz answers")

            # --- preloaded snapshot: warm from request one ------------
            check(
                client.test(spec, query, solutions[0]) is True,
                "pool test on a solution",
            )
            check(
                client.last_index_meta["status"] == "hit",
                "preloaded snapshot serves the first request warm",
            )
            check(
                client.next_solution(spec, query, (0, 0))
                == oracle.next_solution((0, 0)),
                "pool next_solution matches oracle",
            )
            calls = [("test", s) for s in solutions[:4]] + [("next", (0, 0))]
            check(
                client.batch(spec, query, calls)
                == [True] * 4 + [oracle.next_solution((0, 0))],
                "pool batch is position-exact against the oracle",
            )

            # --- concurrent clients through the router ----------------
            def hammer(worker: int) -> bool:
                mine = ServiceClient(url, timeout=120.0)
                good = mine.count(spec, query) == len(solutions)
                probe = solutions[worker % len(solutions)]
                return good and mine.test(spec, query, probe) is True

            with ThreadPoolExecutor(max_workers=CLIENTS) as pool:
                agreed = list(pool.map(hammer, range(CLIENTS)))
            check(all(agreed), f"{CLIENTS} concurrent clients agree via the pool")

            # --- live updates route to the owning shard ----------------
            non_edge = next(
                (a, b)
                for a in range(graph.n)
                for b in range(graph.n)
                if a != b and (a, b) not in set(solutions)
            )
            page, cursor = client.enumerate_page(spec, query, limit=5)
            pinned = client.last_index_meta["index_version"]
            check(
                page == solutions[:5] and pinned == 0,
                "pool cursor minted at version 0",
            )
            check(
                client.update(spec, query, "insert", non_edge) == 1,
                "pool /v1/update reaches the owning shard and bumps to 1",
            )
            check(
                client.test(spec, query, non_edge) is True,
                "post-update probe sees the new generation via the router",
            )
            try:
                client.enumerate_page(
                    spec, query, cursor=cursor, cursor_version=pinned
                )
            except ServiceClientError as exc:
                check(
                    exc.status == 409
                    and exc.payload["error"]["type"] == "StaleCursor",
                    "pool pre-update cursor -> typed 409 StaleCursor",
                )
            else:
                check(False, "pool stale cursor was not rejected")
            check(
                client.update(spec, query, "delete", non_edge) == 2,
                "pool delete bumps the version to 2",
            )

            # --- aggregated stats + worker attribution ----------------
            stats = client.stats()
            check(stats["pool"]["workers"] == workers, "stats reports worker count")
            check(
                stats["pool"]["preloaded"] == 1,
                "stats reports the preloaded snapshot",
            )
            check(
                stats["pool"]["shared_arena_bytes"] > 0,
                "arena re-homed into shared memory before fork",
            )
            check(
                len(stats["workers"]) == workers,
                "per-worker stats blocks present",
            )
            versions = [
                version
                for worker in stats["workers"]
                for version in (worker.get("cache", {}).get("versions") or {}).values()
            ]
            check(
                2 in versions,
                "/v1/stats reports the updated index version",
            )
            body = json.dumps({**spec, "query": query, "tuple": [0, 0]}).encode()
            request = Request(
                url + "/v1/test", data=body,
                headers={"Content-Type": "application/json"},
            )
            with urlopen(request, timeout=60) as response:
                check(
                    response.headers.get("X-Repro-Worker") is not None,
                    "responses carry X-Repro-Worker",
                )
            check(
                "guarantee" in stats and stats["guarantee"]["workers"] == workers,
                "/v1/stats carries the pool-wide guarantee block",
            )

            # --- merged Prometheus exposition --------------------------
            with urlopen(url + "/metrics?format=prom", timeout=60) as response:
                check(
                    response.headers.get("Content-Type", "").startswith(
                        "text/plain; version=0.0.4"
                    ),
                    "pooled Prometheus /metrics content type",
                )
                prom = response.read().decode()
            metric = "repro_serve_request_seconds__v1_test"
            merged = re.search(rf"^{metric}_count (\d+)$", prom, re.M)
            labeled = re.findall(
                rf'^{metric}_count\{{worker="\d+"\}} (\d+)$', prom, re.M
            )
            check(
                merged is not None and labeled
                and int(merged.group(1)) == sum(int(v) for v in labeled),
                "merged histogram count equals the per-worker sum",
            )
            check(
                f"# TYPE {metric} histogram" in prom
                and re.search(rf'^{metric}_bucket\{{le="\+Inf"\}} ', prom, re.M)
                is not None,
                "merged exposition carries real le buckets",
            )

            # --- cross-process trace stitching --------------------------
            trace_id = "feedbeeffeedbeef"
            request = Request(
                url + "/v1/test",
                data=json.dumps(
                    {**spec, "query": query, "tuple": [0, 0]}
                ).encode(),
                headers={
                    "Content-Type": "application/json",
                    "X-Trace-Id": trace_id,
                },
            )
            with urlopen(request, timeout=60) as response:
                check(
                    response.headers.get("X-Trace-Id") == trace_id,
                    "X-Trace-Id round-trips through the router",
                )
            stitched = None
            for _ in range(50):
                try:
                    with urlopen(
                        url + f"/v1/traces?trace_id={trace_id}", timeout=60
                    ) as response:
                        stitched = json.load(response)["trace"]
                    break
                except HTTPError as exc:
                    if exc.code != 404:
                        raise
                    time.sleep(0.1)
            check(
                stitched is not None and stitched["stitched"] is True,
                "/v1/traces returns one stitched cross-process tree",
            )
            root = stitched["tree"][0] if stitched["tree"] else {}
            child_names = {c["name"] for c in root.get("children", [])}
            check(
                len(stitched["tree"]) == 1
                and root.get("name") == "pool.route"
                and "POST /v1/test" in child_names,
                "stitched tree: pool.route over the worker's request span",
            )
            check(
                any(s.startswith("worker:") for s in stitched["sources"])
                and "parent" in stitched["sources"],
                "stitched tree credits both processes",
            )

            # --- pool-wide sampling profiler ----------------------------
            with urlopen(url + "/v1/profile?seconds=1", timeout=60) as response:
                profiled = json.load(response)
            check(
                profiled["ok"] is True
                and profiled["profile"]["samples"] > 0
                and len(profiled["profile"]["stacks"]) > 0,
                "/v1/profile merges non-empty collapsed stacks",
            )
        finally:
            proc.send_signal(signal.SIGINT)
            try:
                code = proc.wait(timeout=15)
            except subprocess.TimeoutExpired:
                proc.kill()
                print("FAIL: pool did not shut down on SIGINT", file=sys.stderr)
                return 1
    check(code == 0, "pool exited 0 on SIGINT")
    print(f"smoke_serve: all {_checks} checks passed (pool {workers})")
    return 0


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--paranoid", action="store_true",
                        help="run the server with the freeze tripwire installed")
    parser.add_argument("--pool", type=int, default=0, metavar="N",
                        help="smoke the pre-fork pool with N workers instead")
    args = parser.parse_args(argv)
    if args.pool:
        if not hasattr(os, "fork"):
            print("smoke_serve: --pool needs os.fork; skipping")
            return 0
        return run_pool(args.pool)
    oracle = build_index(random_tree(48, seed=9), QUERY)
    solutions = list(oracle.enumerate())
    proc, url = start_server(["--paranoid"] if args.paranoid else None)
    mode = " (paranoid)" if args.paranoid else ""
    print(f"server up at {url}{mode}; oracle has {len(solutions)} solutions")
    try:
        client = ServiceClient(url, timeout=120.0)
        check(client.health(), "/healthz answers")

        # --- cold miss -> warm hit on the same fingerprint -------------
        check(client.count(SPEC, QUERY) == len(solutions), "count matches oracle")
        check(client.last_index_meta["status"] == "built", "first request built")
        client.count(SPEC, QUERY)
        check(client.last_index_meta["status"] == "hit", "second request hit")

        # --- every endpoint -------------------------------------------
        probe = solutions[0]
        check(client.test(SPEC, QUERY, probe) is True, "test on a solution")
        non_solution = next(
            (u, v)
            for u in range(48)
            for v in range(48)
            if (u, v) not in set(solutions)
        )
        check(
            client.test(SPEC, QUERY, non_solution) is False, "test on a non-solution"
        )
        check(
            client.next_solution(SPEC, QUERY, (0, 0)) == oracle.next_solution((0, 0)),
            "next_solution matches oracle",
        )
        paged = list(client.enumerate(SPEC, QUERY, page_size=7))
        check(paged == solutions, "paged enumerate equals the oracle")
        check(client.explain(QUERY)["decomposable"] is True, "explain answers")
        check(client.stats()["cache"]["builds"] == 1, "stats shows one build")

        # --- 8 concurrent clients vs the oracle, one build ------------
        cold_query = "E(x, y)"  # untouched so far: a fresh fingerprint
        cold_oracle = build_index(random_tree(48, seed=9), cold_query)
        cold_solutions = list(cold_oracle.enumerate())
        builds_before = client.stats()["cache"]["builds"]

        def hammer(worker: int) -> bool:
            mine = ServiceClient(url, timeout=120.0)
            good = mine.count(SPEC, cold_query) == len(cold_solutions)
            probe = cold_solutions[worker % len(cold_solutions)]
            good &= mine.test(SPEC, cold_query, probe) is True
            page, _ = mine.enumerate_page(SPEC, cold_query, limit=5)
            return good and page == cold_solutions[:5]

        with ThreadPoolExecutor(max_workers=CLIENTS) as pool:
            agreed = list(pool.map(hammer, range(CLIENTS)))
        check(all(agreed), f"{CLIENTS} concurrent clients agree with the oracle")
        builds_after = client.stats()["cache"]["builds"]
        check(
            builds_after - builds_before == 1,
            f"{CLIENTS} simultaneous cold misses -> exactly one build",
        )

        # --- live updates: repair -> changed answer -> stale cursor ---
        non_edge2 = next(
            (u, v)
            for u in range(48)
            for v in range(48)
            if u != v and (u, v) not in set(cold_solutions)
        )
        page, cursor = client.enumerate_page(SPEC, cold_query, limit=5)
        pinned = client.last_index_meta["index_version"]
        check(
            page == cold_solutions[:5] and pinned == 0,
            "cursor minted at version 0",
        )
        check(
            client.test(SPEC, cold_query, non_edge2) is False,
            "edge absent before the update",
        )
        check(
            client.update(SPEC, cold_query, "insert", non_edge2) == 1,
            "/v1/update repairs in place and bumps the version to 1",
        )
        check(
            client.test(SPEC, cold_query, non_edge2) is True,
            "inserted edge answers True after the ball-local repair",
        )
        try:
            client.enumerate_page(
                SPEC, cold_query, cursor=cursor, cursor_version=pinned
            )
        except ServiceClientError as exc:
            check(
                exc.status == 409
                and exc.payload["error"]["type"] == "StaleCursor",
                "pre-update cursor -> typed 409 StaleCursor",
            )
        else:
            check(False, "stale cursor was not rejected")
        updated_oracle = build_index(
            random_tree(48, seed=9).with_edge(*non_edge2), cold_query
        )
        check(
            list(client.enumerate(SPEC, cold_query, page_size=7))
            == list(updated_oracle.enumerate()),
            "fresh cursor completes against the updated generation",
        )
        check(
            client.update(SPEC, cold_query, "delete", non_edge2) == 2,
            "delete bumps the version to 2",
        )

        # --- /metrics: the paper's instrumentation is live ------------
        dump = client.metrics()
        check(dump["collecting"] is True, "/metrics registry is collecting")
        counters = dump["registry"]["counters"]
        check(counters.get("engine.test", 0) >= 1, "engine.test counter exposed")
        check(
            counters.get("engine.next_solution", 0) >= 1,
            "engine.next_solution counter exposed",
        )
        delays = dump["registry"]["histograms"].get("enumeration.delay_seconds")
        check(
            delays is not None and delays["count"] >= len(solutions),
            "enumeration delay histogram exposed",
        )

        # --- request tracing: X-Trace-Id round trip + /v1/traces ------
        trace_id = "cafef00dcafef00d"
        request = Request(
            url + "/v1/enumerate",
            data=json.dumps({**SPEC, "query": QUERY, "limit": 3}).encode(),
            headers={
                "Content-Type": "application/json",
                "X-Trace-Id": trace_id,
            },
        )
        with urlopen(request, timeout=60) as response:
            check(
                response.headers.get("X-Trace-Id") == trace_id,
                "X-Trace-Id echoed on the response",
            )
            check(json.load(response)["ok"] is True, "traced request answers")
        # the trace is published after the response is flushed, so the
        # immediate fetch can race it: retry the 404 briefly
        recorded = None
        for _ in range(50):
            try:
                with urlopen(
                    url + f"/v1/traces?trace_id={trace_id}", timeout=60
                ) as response:
                    recorded = json.load(response)["trace"]
                break
            except HTTPError as exc:
                if exc.code != 404:
                    raise
                time.sleep(0.1)
        check(
            recorded is not None and recorded["trace_id"] == trace_id,
            "/v1/traces returns the trace",
        )
        roots = recorded["tree"]
        child_names = {child["name"] for child in roots[0]["children"]}
        check(
            len(roots) == 1
            and roots[0]["name"] == "POST /v1/enumerate"
            and "cache.get" in child_names
            and "enumerate.step" in child_names,
            "span tree covers cache lookup and enumeration steps",
        )
        with urlopen(url + "/v1/traces", timeout=60) as response:
            listing = json.load(response)
        check(
            any(t["trace_id"] == trace_id for t in listing["traces"]),
            "/v1/traces lists the recorded trace",
        )

        # --- Prometheus text exposition -------------------------------
        with urlopen(url + "/metrics?format=prom", timeout=60) as response:
            check(
                response.headers.get("Content-Type", "").startswith(
                    "text/plain; version=0.0.4"
                ),
                "Prometheus /metrics content type",
            )
            prom = response.read().decode()
        check(
            "# TYPE repro_engine_test_total counter" in prom
            and "repro_serve_cache_entries" in prom,
            "Prometheus exposition carries counters and cache gauges",
        )
        for line in prom.splitlines():
            if line and not line.startswith("#"):
                name, _, value = line.partition(" ")
                check_ok = bool(re.match(r"^[a-zA-Z_][a-zA-Z0-9_]*(\{.*\})?$", name))
                if not check_ok:
                    check(False, f"Prometheus sample name parses: {line!r}")
                float(value)  # every sample value is numeric
        check(True, "every Prometheus sample line parses")

        # --- malformed input: clean 4xx, never a 500 ------------------
        for what, call in [
            ("bad query syntax", lambda: client.count(SPEC, "E(x,")),
            ("wrong arity", lambda: client.test(SPEC, QUERY, (1, 2, 3))),
            ("oversized page", lambda: client.enumerate_page(SPEC, QUERY, limit=10**6)),
            ("unknown family", lambda: client.count(family_spec("clique", 9), QUERY)),
        ]:
            try:
                call()
            except ServiceClientError as exc:
                check(exc.status == 400, f"{what} -> 400")
            else:
                check(False, f"{what} was not rejected")
    finally:
        proc.send_signal(signal.SIGINT)
        try:
            code = proc.wait(timeout=15)
        except subprocess.TimeoutExpired:
            proc.kill()
            print("FAIL: server did not shut down on SIGINT", file=sys.stderr)
            return 1
    check(code == 0, "server exited 0 on SIGINT")
    print(f"smoke_serve: all {_checks} checks passed{mode}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
