"""Generate EXPERIMENTS.md from bench-suite results.

Usage: python scripts/make_experiments.py [BENCH_results.json ...] > EXPERIMENTS.md

Combines the hand-written claims (what the paper predicts, what
"reproduced" means) with the measured series (tables + fitted scaling
exponents via repro.analysis).  Input is the JSON written by
``python -m repro bench-suite`` (pytest-benchmark JSON from older runs
renders identically); unreadable input produces a one-line error and
exit code 2, never a traceback.
"""

from __future__ import annotations

import re
import sys
from collections import defaultdict
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis import fit_exponent, flatness  # noqa: E402
from repro.reporting import (  # noqa: E402
    ReportError,
    group_by_experiment,
    load_results,
    render_group,
)

PREAMBLE = """\
# EXPERIMENTS — paper claims vs measurements

The paper is pure theory (see DESIGN.md §1): its only figure is the
Storing-Theorem illustration, and there are no measurement tables.  Each
experiment below therefore reproduces one *quantitative theorem claim* as
a measured series.  Absolute numbers are ours (Python on this machine);
what must match the paper is the **shape**: what is constant, what is
(pseudo-)linear, who wins.

Regenerate everything with:

```bash
python -m repro bench-suite -o BENCH_results.json
python scripts/make_experiments.py BENCH_results.json > EXPERIMENTS.md
```

(`--quick` shrinks the sweeps for a smoke run; `pytest benchmarks/
--benchmark-only --benchmark-json=...` still works and renders
identically, but needs pytest-benchmark installed.)

Machine for the recorded numbers: single core of the CI container,
CPython 3.11.  E2 (Figure 1) is checked bit-for-bit in
`tests/storage/test_figure1.py` rather than timed.

"""

#: experiment id -> (claim, verdict template with {placeholders})
CLAIMS = {
    "bench_storing": (
        "**Theorem 3.1.** Lookup O(1); init O(|Dom| n^eps); update O(n^eps).",
        "Lookup flatness across a 256x range of n: {lookup_flat:.2f}x "
        "(constant within noise). Init grows with n as n^{init_exp:.2f} per "
        "fixed key count — the n^eps register factor, not linear growth.",
    ),
    "bench_distance": (
        "**Proposition 4.2.** dist <= r testing O(1) after pseudo-linear "
        "preprocessing; the no-index BFS baseline pays per query.",
        "Indexed query flatness: {query_flat:.2f}x across 16x n. "
        "Preprocessing exponent (planar family): n^{prep_exp:.2f}.",
    ),
    "bench_cover": (
        "**Theorem 4.4.** (r,2r)-covers computable in pseudo-linear time "
        "with degree <= n^eps.",
        "Cover construction exponent (planar): n^{build_exp:.2f}; measured "
        "degrees recorded per row stay far below sqrt(n).",
    ),
    "bench_splitter": (
        "**Theorem 4.6.** Over a fixed nowhere dense family, Splitter wins "
        "in a number of rounds independent of |G|.",
        "Measured rounds per family are flat in n (see the rounds column); "
        "the subdivided-clique negative control needs more rounds.",
    ),
    "bench_skip": (
        "**Lemma 5.8.** SKIP queries O(1) after O(n^{{1+k eps}}) "
        "preprocessing.",
        "Query flatness across 16x n: {query_flat:.2f}x. Stored pointers "
        "per vertex stay bounded (see extra columns).",
    ),
    "bench_next_solution": (
        "**Theorem 2.3 / 5.1.** After pseudo-linear preprocessing, the "
        "smallest solution >= any input tuple is computed in constant time.",
        "next_solution flatness across 16x n: {query_flat:.2f}x; "
        "preprocessing exponent n^{prep_exp:.2f}.",
    ),
    "bench_testing": (
        "**Corollary 2.4.** Constant-time testing; naive per-tuple "
        "evaluation is the baseline.",
        "Indexed testing flatness: {query_flat:.2f}x across 16x n, at a "
        "fraction of the baseline's per-query cost at the largest n.",
    ),
    "bench_delay": (
        "**Corollary 2.5.** Enumeration in lexicographic order with "
        "constant delay.",
        "Max delay stays flat in n (extra columns); streaming the first "
        "100 answers is independent of |q(G)|.",
    ),
    "bench_sparsity": (
        "**Theorem 2.1.** Nowhere dense classes have ||G|| <= |G|^{{1+eps}} "
        "eventually.",
        "Density exponents per family converge toward 1 as n grows "
        "(extra columns); the subdivided clique control stays higher.",
    ),
    "bench_db_reduction": (
        "**Lemma 2.2.** Databases reduce to colored graphs linearly; "
        "answers are preserved.",
        "A'(D) construction exponent over ||D||: n^{build_exp:.2f}; the "
        "end-to-end relational count matches the database exactly "
        "(asserted in the bench).",
    ),
    "bench_crossover": (
        "**Headline (Sec. 1).** Materializing q(G) is the wrong unit of "
        "work when |q(G)| is quadratic: preprocessing + streaming wins.",
        "Naive materialization exponent: n^{naive_exp:.2f} vs index build "
        "n^{index_exp:.2f}; streaming k answers costs Θ(k) regardless of "
        "|q(G)|.",
    ),
    "bench_counting": (
        "**[18] (cited in Sec. 1).** |q(G)| computable in pseudo-linear "
        "time, without enumeration.",
        "Closed-form counting exponent n^{closed_exp:.2f} vs "
        "enumerate-and-count n^{enum_exp:.2f} on a quadratic result set.",
    ),
    "bench_dynamic": (
        "**Section 6 (open problem; implemented slice).** Unary queries "
        "under color updates: ball-sized update cost.",
        "Per-update-batch cost flatness across 16x n: {update_flat:.2f}x, "
        "vs rebuild growing as n^{rebuild_exp:.2f}.",
    ),
    "bench_ablation": (
        "**Ablations.** The knobs replacing the paper's constants trade "
        "speed only; answers are invariant (asserted).",
        "See the table: eps moves trie width/depth; the Step-1 cutoff "
        "moves preprocessing cost.",
    ),
}


def _series(benchmarks, prefix):
    xs, ys = [], []
    for bench in benchmarks:
        if not bench["name"].startswith(prefix):
            continue
        match = re.search(r"\[(?:[a-z0-9]+-)?(\d+)\]$", bench["name"])
        if not match:
            continue
        xs.append(int(match.group(1)))
        ys.append(bench["stats"]["mean"])
    order = sorted(range(len(xs)), key=lambda i: xs[i])
    return [xs[i] for i in order], [ys[i] for i in order]


def _safe_exp(benchmarks, prefix):
    xs, ys = _series(benchmarks, prefix)
    try:
        return fit_exponent(xs, ys)[0]
    except ValueError:
        return float("nan")


def _safe_flat(benchmarks, prefix):
    _, ys = _series(benchmarks, prefix)
    try:
        return flatness(ys)
    except ValueError:
        return float("nan")


_FLAT_PREFIX = {
    "bench_storing": "test_lookup",
    "bench_distance": "test_query",
    "bench_skip": "test_query",
    "bench_next_solution": "test_next_solution",
    "bench_testing": "test_indexed",
}


def _verdict_values(stem, benchmarks):
    return {
        "lookup_flat": _safe_flat(benchmarks, "test_lookup"),
        "init_exp": _safe_exp(benchmarks, "test_init[1-"),
        "query_flat": _safe_flat(benchmarks, _FLAT_PREFIX.get(stem, "test_query")),
        "prep_exp": _safe_exp(benchmarks, "test_preprocess[planar-")
        if stem == "bench_distance"
        else _safe_exp(benchmarks, "test_build"),
        "build_exp": _safe_exp(benchmarks, "test_build_cover[planar-")
        if stem == "bench_cover"
        else _safe_exp(benchmarks, "test_adjacency_graph_build"),
        "naive_exp": _safe_exp(benchmarks, "test_naive_materialize"),
        "index_exp": _safe_exp(benchmarks, "test_index_build["),
        "closed_exp": _safe_exp(benchmarks, "test_closed_form_count"),
        "enum_exp": _safe_exp(benchmarks, "test_enumerate_count_baseline"),
        "update_flat": _safe_flat(benchmarks, "test_update["),
        "rebuild_exp": _safe_exp(benchmarks, "test_rebuild_baseline"),
    }


def main(*paths: str) -> int:
    # later files override earlier ones per benchmark (clean reruns win)
    by_name: dict[str, dict] = {}
    for path in paths:
        try:
            results = load_results(path)
        except ReportError as exc:
            print(f"make_experiments: {exc}", file=sys.stderr)
            return 2
        for bench in results:
            by_name[bench.get("fullname", bench["name"])] = bench
    benchmarks = list(by_name.values())
    groups = group_by_experiment(benchmarks)
    out = [PREAMBLE]
    order = [
        "bench_storing", "bench_distance", "bench_cover", "bench_splitter",
        "bench_skip", "bench_next_solution", "bench_testing", "bench_delay",
        "bench_sparsity", "bench_db_reduction", "bench_crossover",
        "bench_counting", "bench_dynamic", "bench_ablation",
    ]
    for stem in order:
        if stem not in groups:
            continue
        claim, verdict_template = CLAIMS.get(stem, ("", ""))
        section = render_group(stem, groups[stem]).replace("### ", "## ", 1)
        header, _, table = section.partition("\n")
        values = _verdict_values(stem, groups[stem])
        try:
            verdict = verdict_template.format(**values)
        except (KeyError, ValueError):
            verdict = verdict_template
        out.append(header)
        out.append("")
        out.append(f"> {claim}\n>\n> **Measured:** {verdict}")
        out.append(table)
    print("\n".join(out))
    return 0


if __name__ == "__main__":
    sys.exit(main(*(sys.argv[1:] or ["BENCH_results.json"])))
