"""Quickstart: build an index once, then answer in constant time.

This walks the three interfaces of the paper on a small planar-like
graph:

* Theorem 2.3  — ``next_solution``: smallest solution >= a given tuple;
* Corollary 2.4 — ``test``: constant-time membership;
* Corollary 2.5 — ``enumerate``: constant-delay, lexicographic.

Run:  python examples/quickstart.py
"""

from repro import build_index
from repro.graphs import random_planar_like_graph


def main() -> None:
    graph = random_planar_like_graph(400, seed=7)
    print(f"graph: {graph}")

    # Example 2 from the paper: blue vertices far from x.
    query = "dist(x, y) > 2 & Blue(y)"
    index = build_index(graph, query)
    print(f"query: {query}")
    print(
        f"preprocessing: {index.preprocessing_seconds * 1000:.1f} ms "
        f"(method={index.method})"
    )

    # Corollary 2.4: test arbitrary tuples.
    for probe in [(0, 1), (0, 200), (5, 300)]:
        print(f"  test{probe} = {index.test(probe)}")

    # Theorem 2.3: smallest solution >= a given tuple.
    print(f"  next_solution((10, 0)) = {index.next_solution((10, 0))}")

    # Corollary 2.5: constant-delay enumeration (take the first few).
    print("  first solutions:")
    for i, solution in enumerate(index.enumerate()):
        print(f"    {solution}")
        if i >= 4:
            break
    print(f"  total solutions: {index.count()}")


if __name__ == "__main__":
    main()
