"""Social network example: relational databases through Lemma 2.2.

A database with ``Friend`` and ``Follows`` relations over people is
reduced to its colored adjacency graph ``A'(D)``; relational FO queries
are rewritten to colored-graph queries and served by the paper's index.

Scenario: a moderation team wants, for any given user, to *stream*
(constant delay) the users two friendship hops away — the classic
"friend of a friend" suggestion — without materializing the full O(n^2)
suggestion table.

Run:  python examples/social_network.py
"""

import random

from repro import build_index
from repro.core.config import EngineConfig
from repro.db import Database, Schema, adjacency_graph, rewrite_query
from repro.db.rewrite import RelationAtom
from repro.logic.syntax import And, Exists, Not, EqAtom, Var


def build_network(people: int = 40, seed: int = 4) -> Database:
    """A sparse friendship network: local communities, no global hubs.

    Friendships connect nearby ids only, so the network has bounded
    expansion — the regime where the paper's locality machinery shines.
    """
    rng = random.Random(seed)
    db = Database(Schema({"Friend": 2, "Follows": 2}), domain_size=people)
    for p in range(1, people):
        buddy = rng.randrange(max(0, p - 3), p)
        db.add("Friend", (p, buddy))
        db.add("Friend", (buddy, p))
    # follows are local too: long-range random links would act as
    # small-world shortcuts, blowing up every r-ball — the graph would
    # still be *sparse*, but not *locally* sparse, and the locality
    # machinery (rightly) degrades.  Keeping links local keeps the class
    # bounded-expansion-like.
    for _ in range(people // 2):
        a = rng.randrange(people)
        b = rng.randrange(max(0, a - 4), min(people, a + 4))
        if a != b:
            db.add("Follows", (a, b))
    return db


def main() -> None:
    db = build_network()
    print(f"database: {db}")

    encoding = adjacency_graph(db)
    print(f"adjacency graph A'(D): {encoding.graph}")

    x, y, z = Var("x"), Var("y"), Var("z")
    # friend-of-a-friend who is not already a friend and not x itself
    suggestion = And(
        (
            Exists(
                z,
                And(
                    (
                        RelationAtom("Friend", (x, z)),
                        RelationAtom("Friend", (z, y)),
                    )
                ),
            ),
            Not(RelationAtom("Friend", (x, y))),
            Not(EqAtom(x, y)),
        )
    )
    rewritten = rewrite_query(suggestion)
    # A'(D) multiplies distances by 4, so bags are sizeable relative to a
    # small demo database; solving them by the memoized naive evaluator
    # (larger Step-1 cutoff) is the fast configuration here.
    config = EngineConfig(bag_naive_threshold=600)
    index = build_index(encoding.graph, rewritten, free_order=(x, y), config=config)
    print(
        f"index built in {index.preprocessing_seconds * 1000:.1f} ms "
        f"(method={index.method})"
    )

    user = 25
    print(f"suggestions for user {user} (streamed, constant delay):")
    suggestion_count = 0
    cursor = index.next_solution((user, 0))
    while cursor is not None and cursor[0] == user:
        print(f"  suggest user {cursor[1]}")
        suggestion_count += 1
        if suggestion_count >= 8:
            print("  ... (stopping the stream early — that is the point!)")
            break
        cursor = index.next_solution((cursor[0], cursor[1] + 1))

    # constant-time membership: is 3 a suggestion for 42?
    print(f"test ({user}, 3): {index.test((user, 3))}")


if __name__ == "__main__":
    main()
