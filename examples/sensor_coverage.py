"""Sensor coverage example: counting without enumerating.

A mesh of environmental sensors forms a hexagonal lattice (planar, max
degree 3).  Some nodes carry a gas detector, some a backup battery.  The
operations team wants, for a rolling report:

1. for *each* gateway node: how many detector nodes are out of its
   2-hop maintenance range — a per-prefix count (the [18]-style counting
   reproduced in :mod:`repro.core.counting`), computed without
   materializing the quadratic pair set;
2. the total number of (gateway, far-detector) pairs, same machinery;
3. a streamed sample of the first few such pairs (Corollary 2.5).

Run:  python examples/sensor_coverage.py
"""

import random
import time

from repro.core.counting import CountingIndex
from repro.graphs.generators import hex_grid
from repro.logic.parser import parse_formula
from repro.logic.syntax import Var


def main() -> None:
    mesh = hex_grid(18, 18, palette=())
    rng = random.Random(3)
    detectors = [v for v in mesh.vertices() if rng.random() < 0.2]
    gateways = [v for v in mesh.vertices() if rng.random() < 0.1]
    mesh.set_color("Detector", detectors)
    mesh.set_color("Gateway", gateways)
    print(
        f"mesh: {mesh.n} nodes, {len(detectors)} detectors, "
        f"{len(gateways)} gateways"
    )

    query = parse_formula("Gateway(x) & Detector(y) & dist(x, y) > 2")
    x, y = Var("x"), Var("y")
    tick = time.perf_counter()
    counting = CountingIndex(mesh, query, (x, y))
    built = time.perf_counter() - tick
    print(f"counting index built in {built * 1000:.0f} ms ({counting.method})")

    # (2) total count, no enumeration
    tick = time.perf_counter()
    total = counting.count()
    counted = time.perf_counter() - tick
    print(f"total far (gateway, detector) pairs: {total} "
          f"(counted in {counted * 1000:.0f} ms)")

    # (1) per-gateway counts
    print("most under-covered gateways:")
    per_gateway = sorted(
        ((counting.count_suffixes(g), g) for g in gateways), reverse=True
    )
    for count, gateway in per_gateway[:5]:
        print(f"  gateway {gateway}: {count} detectors beyond 2 hops")

    # (3) stream a few witness pairs
    print("sample pairs (lexicographic stream):")
    from repro.core.enumeration import enumerate_solutions

    for i, pair in enumerate(enumerate_solutions(counting.index)):
        print(f"  {pair}")
        if i >= 4:
            break


if __name__ == "__main__":
    main()
