"""Road network example: distance queries on a planar grid.

City blocks form a grid (planar => nowhere dense).  Some intersections
host a hospital, some a school.  The planning office wants:

1. constant-time answers to "are these two intersections within r
   blocks?" (Proposition 4.2);
2. a constant-delay stream of pairs (school, hospital) that are *not*
   within 3 blocks of each other — candidate locations for a new clinic
   shuttle line (the paper's far-pair queries).

Run:  python examples/road_network.py
"""

import random
import time

from repro import build_index
from repro.core import DistanceIndex
from repro.graphs import grid


def main() -> None:
    rows = cols = 30
    city = grid(rows, cols, palette=())
    rng = random.Random(1)
    schools = [v for v in city.vertices() if rng.random() < 0.05]
    hospitals = [v for v in city.vertices() if rng.random() < 0.04]
    city.set_color("School", schools)
    city.set_color("Hospital", hospitals)
    print(f"city: {rows}x{cols} grid, {len(schools)} schools, {len(hospitals)} hospitals")

    # --- Proposition 4.2: the distance index -------------------------------
    tick = time.perf_counter()
    dist_index = DistanceIndex(city, radius=4)
    built = time.perf_counter() - tick
    print(f"distance index (r=4) built in {built * 1000:.1f} ms")
    for a, b in [(0, 4), (0, 5 * cols), (10, 10 + 3 * cols)]:
        print(f"  within 4 blocks({a}, {b}) = {dist_index.test(a, b)}")

    # --- far school/hospital pairs ------------------------------------------
    query = "School(x) & Hospital(y) & dist(x, y) > 3"
    index = build_index(city, query)
    print(f"query: {query}  (method={index.method})")
    pairs = list(index.enumerate())
    print(f"  {len(pairs)} far school/hospital pairs; first five:")
    for pair in pairs[:5]:
        sx, sy = divmod(pair[0], cols)
        hx, hy = divmod(pair[1], cols)
        print(f"    school at block ({sx},{sy})  <->  hospital at ({hx},{hy})")

    # --- underserved schools: no hospital within 3 blocks -------------------
    underserved = build_index(
        city, "School(x) & forall y. (Hospital(y) -> dist(x, y) > 3)"
    )
    lonely = [v for (v,) in underserved.enumerate()]
    print(f"  {len(lonely)} schools with no hospital within 3 blocks")


if __name__ == "__main__":
    main()
