"""The stable public facade: open an index, query it, update it.

:func:`open_index` is the one front door for index construction.  It is
:func:`repro.core.engine.build_index` with the configuration surface made
keyword-only — positional call sites cannot silently swap ``free_order``
and ``method`` — and it is where the live-update API surfaces:

    >>> from repro.api import open_index
    >>> from repro.graphs import grid
    >>> index = open_index(grid(8, 8), "exists z. E(x, z) & E(z, y)")
    >>> index.version
    0
    >>> bumped = index.insert_edge(0, 9)
    >>> bumped.version, index.version   # persistent: the original survives
    (1, 0)
    >>> bumped.fingerprint[0] == index.fingerprint[0]
    True

``build_index`` (positional ``free_order``/``method``/``config`` for
backward compatibility) remains a thin documented alias — existing
callers and pickled snapshots keep working unchanged.  See
``docs/updates.md`` for the update model and version semantics.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.config import DEFAULT_CONFIG, EngineConfig
from repro.core.engine import Page, QueryIndex, build_index
from repro.graphs.colored_graph import ColoredGraph
from repro.logic.syntax import Formula, Var

__all__ = ["open_index", "build_index", "QueryIndex", "Page"]


def open_index(
    graph: ColoredGraph,
    query: Formula | str,
    *,
    free_order: Sequence[Var | str] | None = None,
    method: str = "auto",
    config: EngineConfig = DEFAULT_CONFIG,
) -> QueryIndex:
    """Preprocess ``graph`` for ``query`` and return the live index.

    Exactly :func:`repro.core.engine.build_index`, with everything past
    the two data arguments keyword-only.  The returned
    :class:`~repro.core.engine.QueryIndex` carries the versioned identity
    (:attr:`~repro.core.engine.QueryIndex.version`,
    :attr:`~repro.core.engine.QueryIndex.fingerprint`) and the persistent
    update methods (:meth:`~repro.core.engine.QueryIndex.insert_edge`,
    :meth:`~repro.core.engine.QueryIndex.delete_edge`).

    Parameters
    ----------
    graph:
        A :class:`~repro.graphs.colored_graph.ColoredGraph`.
    query:
        An FO+ formula or its textual form.
    free_order:
        Output coordinate order; defaults to free variables by name.
    method:
        ``"auto"`` | ``"indexed"`` | ``"naive"``.
    config:
        Engine thresholds and layout (:class:`~repro.core.config.EngineConfig`).
    """
    return build_index(graph, query, free_order, method=method, config=config)
