"""Diagnostics: explain *why* a query does or does not decompose.

``build_index(..., method="indexed")`` raises a bare
:class:`~repro.core.normal_form.DecompositionError` when a query falls
outside the guarded fragment.  :func:`explain` produces a structured
report a user can act on: which subformulas are blocks, their anchors
and certified locality radii, which quantifier broke the guard analysis,
and the chosen type scale.

>>> from repro.logic.diagnostics import explain
>>> report = explain("exists z. Blue(z) & dist(z, x) > 2")
>>> report.decomposable
False
>>> "unguarded" in report.problems[0]
True
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.logic.guards import deep_counterexample_guard, deep_guard
from repro.logic.parser import parse_formula
from repro.logic.syntax import (
    And,
    Exists,
    Forall,
    Formula,
    Not,
    Or,
    Var,
)
from repro.logic.transform import free_variables


@dataclass
class BlockReport:
    """One skeleton block: the unit the decomposer assigns to components."""

    formula: str
    anchors: tuple[str, ...]
    radius: int | None  # None = not certifiably local

    @property
    def local(self) -> bool:
        """Did the guard analysis certify a radius?"""
        return self.radius is not None


@dataclass
class Report:
    """The full diagnosis of a query."""

    query: str
    arity: int
    blocks: list[BlockReport] = field(default_factory=list)
    problems: list[str] = field(default_factory=list)
    radius: int | None = None

    @property
    def decomposable(self) -> bool:
        """True when the indexed engine accepts the query."""
        return not self.problems

    def render(self) -> str:
        """Human-readable multi-line summary."""
        lines = [f"query: {self.query}", f"arity: {self.arity}"]
        if self.radius is not None:
            lines.append(f"type scale (radius): {self.radius}")
        for block in self.blocks:
            status = (
                f"local, radius {block.radius}" if block.local else "NOT certifiably local"
            )
            anchors = ", ".join(block.anchors) or "(sentence)"
            lines.append(f"  block {block.formula}  anchors [{anchors}]  {status}")
        if self.problems:
            lines.append("problems:")
            lines.extend(f"  - {problem}" for problem in self.problems)
        else:
            lines.append("verdict: decomposable (indexed engine applies)")
        return "\n".join(lines)


def _unguarded_quantifiers(phi: Formula, anchors: frozenset[Var]) -> list[str]:
    """Quantifiers the guard analysis cannot confine, with explanations."""
    problems: list[str] = []

    def walk(node: Formula, env: dict[Var, int]) -> None:
        if not free_variables(node) & (anchors | set(env)):
            return  # a closed subformula is a sentence block: no guards needed
        if isinstance(node, Not):
            walk(node.body, env)
        elif isinstance(node, (And, Or)):
            for part in node.parts:
                walk(part, env)
        elif isinstance(node, Exists):
            guard = deep_guard(node.body, node.var, env)
            inner = dict(env)
            if guard is None:
                problems.append(
                    f"existential '{node.var}' is unguarded: no positive "
                    f"distance chain ties it to an anchored variable in "
                    f"{node!r}"
                )
                inner.pop(node.var, None)
            else:
                inner[node.var] = guard[1]
            walk(node.body, inner)
        elif isinstance(node, Forall):
            guard = deep_counterexample_guard(node.body, node.var, env)
            inner = dict(env)
            if guard is None:
                problems.append(
                    f"universal '{node.var}' is unguarded: no negated "
                    f"distance chain relativizes it in {node!r}"
                )
                inner.pop(node.var, None)
            else:
                inner[node.var] = guard[1]
            walk(node.body, inner)

    walk(phi, {v: 0 for v in anchors})
    return problems


def explain(query: Formula | str, free_order: tuple[Var, ...] | None = None) -> Report:
    """Diagnose ``query``'s decomposability (see the module docstring)."""
    from repro.core.normal_form import (
        DecompositionError,
        _split_blocks,
        decompose,
        normalize,
    )

    phi = parse_formula(query) if isinstance(query, str) else query
    if free_order is None:
        free_order = tuple(sorted(free_variables(phi), key=lambda v: v.name))
    free_vars = frozenset(free_order)
    report = Report(query=repr(phi), arity=len(free_order))
    phi0 = normalize(phi)
    report.problems.extend(_unguarded_quantifiers(phi0, free_vars))
    try:
        _, blocks = _split_blocks(phi0, free_vars)
        for block in blocks.values():
            report.blocks.append(
                BlockReport(
                    formula=repr(block.formula),
                    anchors=tuple(sorted(v.name for v in block.anchors)),
                    radius=block.radius,
                )
            )
    except DecompositionError as error:
        if not report.problems:
            report.problems.append(str(error))
        return report
    try:
        decomposition = decompose(phi, free_order)
        report.radius = decomposition.radius
    except DecompositionError as error:
        report.problems.append(str(error))
    return report
