"""First-order logic over colored graphs (Sections 2 and 5.1.2).

``FO`` formulas use edge atoms ``E(x, y)``, color atoms ``Red(x)``, and
equality.  ``FO+`` additionally allows *distance atoms* ``dist(x, y) <= d``
(Section 5's logic); they add no expressive power but change the notion of
quantifier rank (*q-rank*), which the paper's induction relies on.
"""

from repro.logic.builders import (
    dist_at_most,
    dist_greater,
    distance_type_formula,
    independence_sentence,
)
from repro.logic.parser import ParseError, parse_formula
from repro.logic.ranks import check_q_rank, f_q, q_rank_bound, quantifier_rank
from repro.logic.semantics import evaluate, satisfies, solutions
from repro.logic.syntax import (
    And,
    Bottom,
    ColorAtom,
    DistAtom,
    EdgeAtom,
    EqAtom,
    Exists,
    Forall,
    Formula,
    Not,
    Or,
    Top,
    Var,
)
from repro.logic.transform import (
    free_variables,
    negation_normal_form,
    rename_variable,
    substitute,
)

__all__ = [
    "And",
    "Bottom",
    "ColorAtom",
    "DistAtom",
    "EdgeAtom",
    "EqAtom",
    "Exists",
    "Forall",
    "Formula",
    "Not",
    "Or",
    "Top",
    "Var",
    "parse_formula",
    "ParseError",
    "evaluate",
    "solutions",
    "satisfies",
    "quantifier_rank",
    "q_rank_bound",
    "check_q_rank",
    "f_q",
    "dist_at_most",
    "dist_greater",
    "distance_type_formula",
    "independence_sentence",
    "free_variables",
    "negation_normal_form",
    "rename_variable",
    "substitute",
]
