"""Naive FO/FO+ semantics over colored graphs.

This is the textbook recursive evaluator — exponential in quantifier depth
and therefore *the baseline* the paper's indexes are measured against.
Distance atoms are evaluated with cutoff BFS (so a ``dist(x,y) <= d`` atom
costs one bounded BFS, not a full shortest-path computation).

The evaluator caches the solution sets of quantified subformulas per graph
when asked to enumerate, which keeps the baseline honest without making it
an index in disguise.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping
from itertools import product

from repro.graphs.colored_graph import ColoredGraph
from repro.graphs.neighborhoods import bounded_bfs
from repro.logic.syntax import (
    And,
    Bottom,
    ColorAtom,
    DistAtom,
    EdgeAtom,
    EqAtom,
    Exists,
    Forall,
    Formula,
    Not,
    Or,
    Top,
    Var,
)
from repro.logic.transform import free_variables


def _dist_at_most(graph: ColoredGraph, a: int, b: int, bound: int) -> bool:
    if a == b:
        return True
    if bound == 0:
        return False
    return b in bounded_bfs(graph, [a], bound)


class DistanceCache:
    """Memoizes the balls behind ``dist(x, y) <= d`` atoms for one graph.

    Evaluating a distance atom costs one bounded BFS; inside the engine's
    bag solvers the same sources recur constantly, so the evaluator
    threads one of these caches through the recursion.
    """

    __slots__ = ("graph", "_balls")

    def __init__(self, graph: ColoredGraph) -> None:
        self.graph = graph
        self._balls: dict[tuple[int, int], set[int]] = {}

    def ball(self, source: int, bound: int) -> set[int]:
        """``N_bound(source)``, memoized."""
        key = (source, bound)
        cached = self._balls.get(key)
        if cached is None:
            cached = set(bounded_bfs(self.graph, [source], bound))
            self._balls[key] = cached
        return cached

    def at_most(self, a: int, b: int, bound: int) -> bool:
        """``dist(a, b) <= bound`` via the memoized balls."""
        if a == b:
            return True
        if bound == 0:
            return False
        return b in self.ball(a, bound)


def evaluate(
    graph: ColoredGraph,
    phi: Formula,
    assignment: Mapping[Var, int],
    dist_cache: DistanceCache | None = None,
) -> bool:
    """Does ``graph |= phi[assignment]``?

    ``assignment`` must bind every free variable of ``phi``.  Pass a
    :class:`DistanceCache` to memoize distance-atom BFS runs across calls.
    """
    if isinstance(phi, Top):
        return True
    if isinstance(phi, Bottom):
        return False
    if isinstance(phi, EdgeAtom):
        return graph.has_edge(assignment[phi.left], assignment[phi.right])
    if isinstance(phi, ColorAtom):
        return graph.has_color(assignment[phi.var], phi.color)
    if isinstance(phi, EqAtom):
        return assignment[phi.left] == assignment[phi.right]
    if isinstance(phi, DistAtom):
        a, b = assignment[phi.left], assignment[phi.right]
        if dist_cache is not None:
            return dist_cache.at_most(a, b, phi.bound)
        return _dist_at_most(graph, a, b, phi.bound)
    if isinstance(phi, Not):
        return not evaluate(graph, phi.body, assignment, dist_cache)
    if isinstance(phi, And):
        return all(evaluate(graph, part, assignment, dist_cache) for part in phi.parts)
    if isinstance(phi, Or):
        return any(evaluate(graph, part, assignment, dist_cache) for part in phi.parts)
    if isinstance(phi, Exists):
        extended = dict(assignment)
        for value in _witness_candidates(graph, phi, assignment, dist_cache):
            extended[phi.var] = value
            if evaluate(graph, phi.body, extended, dist_cache):
                return True
        return False
    if isinstance(phi, Forall):
        extended = dict(assignment)
        for value in _counterexample_candidates(graph, phi, assignment, dist_cache):
            extended[phi.var] = value
            if not evaluate(graph, phi.body, extended, dist_cache):
                return False
        return True
    raise TypeError(f"unknown formula node: {phi!r}")


def _guard_candidates(graph, atom, var, assignment, dist_cache):
    """Candidate values for ``var`` allowed by a positive guard atom whose
    other side is already assigned — None when the atom is no guard."""
    if isinstance(atom, EdgeAtom):
        pairs = ((atom.left, atom.right), (atom.right, atom.left))
        for mine, other in pairs:
            if mine == var and other != var and other in assignment:
                return graph.neighbors(assignment[other])
        return None
    if isinstance(atom, DistAtom):
        pairs = ((atom.left, atom.right), (atom.right, atom.left))
        for mine, other in pairs:
            if mine == var and other != var and other in assignment:
                anchor = assignment[other]
                if dist_cache is not None:
                    return dist_cache.ball(anchor, atom.bound)
                return bounded_bfs(graph, [anchor], atom.bound)
        return None
    if isinstance(atom, EqAtom):
        pairs = ((atom.left, atom.right), (atom.right, atom.left))
        for mine, other in pairs:
            if mine == var and other != var and other in assignment:
                return (assignment[other],)
        return None
    return None


def _witness_candidates(graph, phi, assignment, dist_cache):
    """For ``∃z (guard(z, w) ∧ ...)``: only guard-satisfying values can be
    witnesses, so the scan shrinks from the domain to a neighborhood.

    Guards may be indirect (chains through nested existentials); the
    certified connection analysis of :mod:`repro.logic.guards` finds
    those, so e.g. adjacency-graph encodings of relational joins are
    evaluated neighborhood-by-neighborhood instead of domain-by-domain.
    """
    from repro.logic.guards import deep_guard
    from repro.logic.syntax import And as _And

    parts = phi.body.parts if isinstance(phi.body, _And) else (phi.body,)
    best = None
    for part in parts:
        candidates = _guard_candidates(graph, part, phi.var, assignment, dist_cache)
        if candidates is not None and (best is None or len(candidates) < len(best)):
            best = candidates if hasattr(candidates, "__len__") else list(candidates)
    if best is not None:
        return best
    guard = deep_guard(phi.body, phi.var, {v: 0 for v in assignment})
    if guard is not None:
        anchor_value = assignment[guard[0]]
        if dist_cache is not None:
            return dist_cache.ball(anchor_value, guard[1])
        return bounded_bfs(graph, [anchor_value], guard[1])
    return graph.vertices()


def _counterexample_candidates(graph, phi, assignment, dist_cache):
    """For ``∀z (¬guard(z, w) ∨ ...)``: values violating the guard satisfy
    the disjunct vacuously, so only guard-satisfying values need checking."""
    from repro.logic.syntax import Or as _Or

    parts = phi.body.parts if isinstance(phi.body, _Or) else (phi.body,)
    best = None
    for part in parts:
        if isinstance(part, Not):
            candidates = _guard_candidates(
                graph, part.body, phi.var, assignment, dist_cache
            )
            if candidates is not None and (
                best is None or len(candidates) < len(best)
            ):
                best = candidates if hasattr(candidates, "__len__") else list(candidates)
    return graph.vertices() if best is None else best


def satisfies(graph: ColoredGraph, phi: Formula, tuple_values: tuple[int, ...], free_order: list[Var]) -> bool:
    """Does ``graph |= phi(tuple_values)`` with free variables in ``free_order``?"""
    if len(tuple_values) != len(free_order):
        raise ValueError(
            f"tuple arity {len(tuple_values)} does not match free variables {free_order}"
        )
    return evaluate(graph, phi, dict(zip(free_order, tuple_values)))


def solutions(
    graph: ColoredGraph,
    phi: Formula,
    free_order: list[Var] | None = None,
) -> Iterator[tuple[int, ...]]:
    """Enumerate ``phi(G)`` in lexicographic order, naively.

    ``free_order`` fixes the coordinate order of output tuples; it defaults
    to the free variables of ``phi`` sorted by name.  This is the
    materialize-everything baseline: ``O(n^k)`` evaluations.
    """
    if free_order is None:
        free_order = sorted(free_variables(phi), key=lambda v: v.name)
    else:
        missing = free_variables(phi) - set(free_order)
        if missing:
            raise ValueError(f"free_order is missing variables: {sorted(v.name for v in missing)}")
    k = len(free_order)
    if k == 0:
        if evaluate(graph, phi, {}):
            yield ()
        return
    for values in product(graph.vertices(), repeat=k):
        if evaluate(graph, phi, dict(zip(free_order, values))):
            yield values


def count_solutions(graph: ColoredGraph, phi: Formula, free_order: list[Var] | None = None) -> int:
    """``|phi(G)|`` by naive enumeration."""
    return sum(1 for _ in solutions(graph, phi, free_order))
