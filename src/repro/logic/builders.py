"""Formula builders for the paper's stock queries.

* ``dist_at_most(x, y, r)`` — Definition 4.1's pure-FO distance query (and
  the FO+ one-atom version).
* ``independence_sentence`` — the (r, q)-independence sentences of
  Section 5.1.2.
* ``distance_type_formula`` — the query ``rho_tau`` of preprocessing Step 2
  (Section 5.2.1) asserting that a tuple has exactly distance type ``tau``.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.logic.syntax import (
    And,
    DistAtom,
    EdgeAtom,
    EqAtom,
    Exists,
    Formula,
    Not,
    Or,
    Var,
    conjunction,
)


def dist_at_most(x: Var, y: Var, r: int, as_atom: bool = True) -> Formula:
    """``dist(x, y) <= r``.

    With ``as_atom=True`` (default) this is the single FO+ atom.  With
    ``as_atom=False`` it is the pure-FO formula of Definition 4.1::

        dist_<=0(x,y) := x = y
        dist_<=r(x,y) := exists z (E(x,z) & dist_<=r-1(z,y)) | dist_<=r-1(x,y)
    """
    if r < 0:
        raise ValueError(f"r must be non-negative, got {r}")
    if as_atom:
        return DistAtom(x, y, r)
    if r == 0:
        return EqAtom(x, y)
    previous = dist_at_most(x, y, r - 1, as_atom=False)
    z = Var(f"_d{r}_{x.name}_{y.name}")
    step = Exists(z, And((EdgeAtom(x, z), _shift_first(previous, x, z))))
    return Or((step, previous))


def _shift_first(phi: Formula, old: Var, new: Var) -> Formula:
    from repro.logic.transform import substitute

    return substitute(phi, {old: new})


def dist_greater(x: Var, y: Var, r: int) -> Formula:
    """``dist(x, y) > r`` as a negated distance atom."""
    return Not(DistAtom(x, y, r))


def independence_sentence(
    count: int,
    separation: int,
    witness: Formula,
    witness_var: Var,
) -> Formula:
    """An (r, q)-independence sentence (Section 5.1.2)::

        exists z_1 ... z_count (  AND_{i<j} dist(z_i, z_j) > separation
                                & AND_i witness(z_i) )

    ``witness`` must be quantifier-free with single free variable
    ``witness_var``.
    """
    from repro.logic.transform import substitute

    if count < 1:
        raise ValueError(f"count must be positive, got {count}")
    variables = [Var(f"_z{i}") for i in range(1, count + 1)]
    parts: list[Formula] = []
    for i in range(count):
        for j in range(i + 1, count):
            parts.append(dist_greater(variables[i], variables[j], separation))
    for var in variables:
        parts.append(substitute(witness, {witness_var: var}))
    body = conjunction(parts)
    for var in reversed(variables):
        body = Exists(var, body)
    return body


def distance_type_formula(variables: list[Var], edges: Iterable[tuple[int, int]], r: int) -> Formula:
    """``rho_tau``: the tuple has exactly distance type ``tau`` at scale ``r``.

    ``tau`` is given by ``edges`` over index positions ``0..k-1``: position
    pair ``{i, j}`` is an edge iff ``dist(x_i, x_j) <= r``.  The formula
    conjoins ``dist <= r`` atoms for edges and their negations for
    non-edges (preprocessing Step 2 of Section 5.2.1).
    """
    k = len(variables)
    edge_set = {frozenset(e) for e in edges}
    for e in edge_set:
        if not all(0 <= i < k for i in e) or len(e) != 2:
            raise ValueError(f"invalid distance-type edge {set(e)} for arity {k}")
    parts: list[Formula] = []
    for i in range(k):
        for j in range(i + 1, k):
            atom = DistAtom(variables[i], variables[j], r)
            parts.append(atom if frozenset((i, j)) in edge_set else Not(atom))
    return conjunction(parts)
