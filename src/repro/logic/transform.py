"""Syntactic transformations on formulas.

Substitution, renaming, free variables, negation normal form — the
utilities the Removal Lemma (5.5) and the normal-form decomposer build on.
"""

from __future__ import annotations

from repro.logic.syntax import (
    And,
    Bottom,
    ColorAtom,
    DistAtom,
    EdgeAtom,
    EqAtom,
    Exists,
    Forall,
    Formula,
    Not,
    Or,
    Top,
    Var,
)


def free_variables(phi: Formula) -> frozenset[Var]:
    """The free variables of ``phi``."""
    if isinstance(phi, (Top, Bottom)):
        return frozenset()
    if isinstance(phi, (EdgeAtom, EqAtom, DistAtom)):
        return frozenset((phi.left, phi.right))
    if isinstance(phi, ColorAtom):
        return frozenset((phi.var,))
    if isinstance(phi, Not):
        return free_variables(phi.body)
    if isinstance(phi, (And, Or)):
        out: frozenset[Var] = frozenset()
        for part in phi.parts:
            out |= free_variables(part)
        return out
    if isinstance(phi, (Exists, Forall)):
        return free_variables(phi.body) - {phi.var}
    raise TypeError(f"unknown formula node: {phi!r}")


def all_variables(phi: Formula) -> frozenset[Var]:
    """All variables occurring in ``phi``, free or bound."""
    if isinstance(phi, (Top, Bottom)):
        return frozenset()
    if isinstance(phi, (EdgeAtom, EqAtom, DistAtom)):
        return frozenset((phi.left, phi.right))
    if isinstance(phi, ColorAtom):
        return frozenset((phi.var,))
    if isinstance(phi, Not):
        return all_variables(phi.body)
    if isinstance(phi, (And, Or)):
        out: frozenset[Var] = frozenset()
        for part in phi.parts:
            out |= all_variables(part)
        return out
    if isinstance(phi, (Exists, Forall)):
        return all_variables(phi.body) | {phi.var}
    raise TypeError(f"unknown formula node: {phi!r}")


def fresh_variable(used: frozenset[Var] | set[Var], stem: str = "u") -> Var:
    """A variable named ``stem``, ``stem1``, ``stem2``, ... not in ``used``."""
    if Var(stem) not in used:
        return Var(stem)
    i = 1
    while Var(f"{stem}{i}") in used:
        i += 1
    return Var(f"{stem}{i}")


def rename_variable(phi: Formula, old: Var, new: Var) -> Formula:
    """Capture-avoiding rename of the *free* occurrences of ``old`` to ``new``."""
    return substitute(phi, {old: new})


def substitute(phi: Formula, mapping: dict[Var, Var]) -> Formula:
    """Simultaneous capture-avoiding substitution of free variables."""
    if not mapping:
        return phi
    if isinstance(phi, (Top, Bottom)):
        return phi
    if isinstance(phi, EdgeAtom):
        return EdgeAtom(mapping.get(phi.left, phi.left), mapping.get(phi.right, phi.right))
    if isinstance(phi, EqAtom):
        return EqAtom(mapping.get(phi.left, phi.left), mapping.get(phi.right, phi.right))
    if isinstance(phi, DistAtom):
        return DistAtom(
            mapping.get(phi.left, phi.left), mapping.get(phi.right, phi.right), phi.bound
        )
    if isinstance(phi, ColorAtom):
        return ColorAtom(phi.color, mapping.get(phi.var, phi.var))
    if isinstance(phi, Not):
        return Not(substitute(phi.body, mapping))
    if isinstance(phi, And):
        return And(tuple(substitute(part, mapping) for part in phi.parts))
    if isinstance(phi, Or):
        return Or(tuple(substitute(part, mapping) for part in phi.parts))
    if isinstance(phi, (Exists, Forall)):
        inner = {k: v for k, v in mapping.items() if k != phi.var}
        if not inner:
            return phi
        bound = phi.var
        if bound in inner.values():
            # avoid capture: rename the bound variable first
            used = all_variables(phi) | set(inner) | set(inner.values())
            fresh = fresh_variable(used, bound.name)
            body = substitute(phi.body, {bound: fresh})
            bound = fresh
        else:
            body = phi.body
        node = Exists if isinstance(phi, Exists) else Forall
        return node(bound, substitute(body, inner))
    raise TypeError(f"unknown formula node: {phi!r}")


def negation_normal_form(phi: Formula) -> Formula:
    """Push negations to the atoms (standard NNF)."""
    if isinstance(phi, Not):
        body = phi.body
        if isinstance(body, Not):
            return negation_normal_form(body.body)
        if isinstance(body, And):
            return Or(tuple(negation_normal_form(Not(p)) for p in body.parts))
        if isinstance(body, Or):
            return And(tuple(negation_normal_form(Not(p)) for p in body.parts))
        if isinstance(body, Exists):
            return Forall(body.var, negation_normal_form(Not(body.body)))
        if isinstance(body, Forall):
            return Exists(body.var, negation_normal_form(Not(body.body)))
        if isinstance(body, Top):
            return Bottom()
        if isinstance(body, Bottom):
            return Top()
        return phi  # negated atom
    if isinstance(phi, And):
        return And(tuple(negation_normal_form(p) for p in phi.parts))
    if isinstance(phi, Or):
        return Or(tuple(negation_normal_form(p) for p in phi.parts))
    if isinstance(phi, Exists):
        return Exists(phi.var, negation_normal_form(phi.body))
    if isinstance(phi, Forall):
        return Forall(phi.var, negation_normal_form(phi.body))
    return phi


def standardize_apart(phi: Formula) -> Formula:
    """Rename bound variables so that no variable is bound twice or both
    free and bound — a hygiene pass the engine applies before decomposing."""
    used = set(free_variables(phi))

    def walk(node: Formula) -> Formula:
        if isinstance(node, Not):
            return Not(walk(node.body))
        if isinstance(node, And):
            return And(tuple(walk(p) for p in node.parts))
        if isinstance(node, Or):
            return Or(tuple(walk(p) for p in node.parts))
        if isinstance(node, (Exists, Forall)):
            bound = node.var
            body = node.body
            if bound in used:
                fresh = fresh_variable(used, bound.name)
                body = substitute(body, {bound: fresh})
                bound = fresh
            used.add(bound)
            wrapped = walk(body)
            return Exists(bound, wrapped) if isinstance(node, Exists) else Forall(bound, wrapped)
        return node

    return walk(phi)
