"""A small recursive-descent parser for FO+ formulas.

Grammar (precedence low to high: ``->``, ``|``, ``&``, ``~``, atoms)::

    formula   := quantified
    quantified:= ("exists" | "forall") var ("," var)* "." quantified | implies
    implies   := or ("->" implies)?
    or        := and ("|" and)*
    and       := unary ("&" unary)*
    unary     := "~" unary | "(" formula ")" | atom
    atom      := "E" "(" var "," var ")"
               | "dist" "(" var "," var ")" ("<=" | ">") nat
               | var "=" var | var "!=" var
               | name "(" var ")"                    (color atom)
               | "true" | "false"

Examples
--------
>>> parse_formula("exists z. E(x, z) & E(z, y)")
(exists z. (E(x, z) & E(z, y)))
>>> parse_formula("dist(x, y) > 2 & Blue(y)")
(~(dist(x, y) <= 2) & Blue(y))
"""

from __future__ import annotations

import re

from repro.errors import ReproError
from repro.logic.syntax import (
    And,
    Bottom,
    ColorAtom,
    DistAtom,
    EdgeAtom,
    EqAtom,
    Exists,
    Forall,
    Formula,
    Not,
    Or,
    Top,
    Var,
)


class ParseError(ReproError, ValueError):
    """Raised on malformed formula text, with position information.

    Part of the :mod:`repro.errors` hierarchy (bad user input, CLI exit
    code 2); still a ``ValueError`` for pre-hierarchy call sites.
    """

    exit_code = 2


_TOKEN_RE = re.compile(
    r"\s*(?:(?P<arrow>->)|(?P<le><=)|(?P<ne>!=)|(?P<sym>[()&|~=,.>])"
    r"|(?P<nat>\d+)|(?P<name>[A-Za-z_][A-Za-z0-9_']*))"
)

_KEYWORDS = {"exists", "forall", "true", "false", "dist", "E"}


def _tokenize(text: str) -> list[tuple[str, str, int]]:
    tokens = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None or match.end() == pos:
            remainder = text[pos:].lstrip()
            if not remainder:
                break
            raise ParseError(f"unexpected character at position {pos}: {remainder[:10]!r}")
        pos = match.end()
        for kind in ("arrow", "le", "ne", "sym", "nat", "name"):
            value = match.group(kind)
            if value is not None:
                tokens.append((kind, value, match.start()))
                break
    return tokens


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    # -- token helpers ---------------------------------------------------
    def _peek(self) -> tuple[str, str, int] | None:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def _next(self) -> tuple[str, str, int]:
        token = self._peek()
        if token is None:
            raise ParseError(f"unexpected end of formula: {self.text!r}")
        self.index += 1
        return token

    def _expect(self, value: str) -> None:
        token = self._next()
        if token[1] != value:
            raise ParseError(
                f"expected {value!r} at position {token[2]} but found {token[1]!r}"
            )

    def _at(self, value: str) -> bool:
        token = self._peek()
        return token is not None and token[1] == value

    # -- grammar ---------------------------------------------------------
    def parse(self) -> Formula:
        """Parse the whole input; rejects trailing tokens."""
        phi = self._quantified()
        token = self._peek()
        if token is not None:
            raise ParseError(f"trailing input at position {token[2]}: {token[1]!r}")
        return phi

    def _quantified(self) -> Formula:
        token = self._peek()
        if token is not None and token[1] in ("exists", "forall"):
            self._next()
            variables = [self._variable()]
            while self._at(","):
                self._next()
                variables.append(self._variable())
            self._expect(".")
            body = self._quantified()
            quantifier = Exists if token[1] == "exists" else Forall
            for var in reversed(variables):
                body = quantifier(var, body)
            return body
        return self._implies()

    def _implies(self) -> Formula:
        left = self._or()
        if self._at("->"):
            self._next()
            right = self._implies()
            return Or((Not(left), right))
        return left

    def _or(self) -> Formula:
        parts = [self._and()]
        while self._at("|"):
            self._next()
            parts.append(self._and())
        return parts[0] if len(parts) == 1 else Or(tuple(parts))

    def _and(self) -> Formula:
        parts = [self._unary()]
        while self._at("&"):
            self._next()
            parts.append(self._unary())
        return parts[0] if len(parts) == 1 else And(tuple(parts))

    def _unary(self) -> Formula:
        token = self._peek()
        if token is not None and token[1] in ("exists", "forall"):
            return self._quantified()
        if self._at("~"):
            self._next()
            return Not(self._unary())
        if self._at("("):
            self._next()
            phi = self._quantified()
            self._expect(")")
            return phi
        return self._atom()

    def _variable(self) -> Var:
        token = self._next()
        if token[0] != "name" or token[1] in _KEYWORDS:
            raise ParseError(f"expected a variable at position {token[2]}, found {token[1]!r}")
        return Var(token[1])

    def _atom(self) -> Formula:
        token = self._next()
        kind, value, pos = token
        if value == "true":
            return Top()
        if value == "false":
            return Bottom()
        if value == "E":
            self._expect("(")
            left = self._variable()
            self._expect(",")
            right = self._variable()
            self._expect(")")
            return EdgeAtom(left, right)
        if value == "dist":
            self._expect("(")
            left = self._variable()
            self._expect(",")
            right = self._variable()
            self._expect(")")
            op = self._next()
            bound_token = self._next()
            if bound_token[0] != "nat":
                raise ParseError(
                    f"expected a number at position {bound_token[2]}, found {bound_token[1]!r}"
                )
            bound = int(bound_token[1])
            if op[1] == "<=":
                return DistAtom(left, right, bound)
            if op[1] == ">":
                return Not(DistAtom(left, right, bound))
            raise ParseError(f"expected '<=' or '>' at position {op[2]}, found {op[1]!r}")
        if kind != "name":
            raise ParseError(f"unexpected token {value!r} at position {pos}")
        # either a color atom Name(x) or an equality x = y / x != y
        if self._at("("):
            self._next()
            var = self._variable()
            self._expect(")")
            return ColorAtom(value, var)
        if self._at("="):
            self._next()
            return EqAtom(Var(value), self._variable())
        if self._at("!="):
            self._next()
            return Not(EqAtom(Var(value), self._variable()))
        raise ParseError(
            f"expected '(', '=' or '!=' after {value!r} at position {pos}"
        )


def parse_formula(text: str) -> Formula:
    """Parse ``text`` into a :class:`~repro.logic.syntax.Formula`.

    Raises :class:`ParseError` with position information on malformed input.
    """
    return _Parser(text).parse()
