"""Quantifier rank and *q-rank* (Section 5.1.2).

Following [17, Section 7.2] and the paper: an FO+ query has *q-rank at most
l* if its quantifier rank is at most ``l`` and every distance atom
``dist(x, y) <= d`` in the scope of ``i <= l`` quantifiers satisfies
``d <= (4q)^(q + l - i)``.  The paper's key radius is ``f_q(l) = (4q)^(q+l)``.

The q-rank discipline is what lets Section 5's induction keep the splitter
game's radius *fixed*: each appeal to the Removal Lemma preserves q-rank,
so the locality radius ``r = f_q(l)`` never grows.
"""

from __future__ import annotations

from repro.logic.syntax import (
    And,
    DistAtom,
    Exists,
    Forall,
    Formula,
    Not,
    Or,
)


def quantifier_rank(phi: Formula) -> int:
    """Maximum nesting depth of quantifiers."""
    if isinstance(phi, Not):
        return quantifier_rank(phi.body)
    if isinstance(phi, (And, Or)):
        return max((quantifier_rank(p) for p in phi.parts), default=0)
    if isinstance(phi, (Exists, Forall)):
        return 1 + quantifier_rank(phi.body)
    return 0


def f_q(q: int, ell: int) -> int:
    """``f_q(l) = (4q)^(q+l)`` — the locality radius of Theorem 5.4."""
    if q < 0 or ell < 0:
        raise ValueError(f"q and l must be non-negative, got q={q}, l={ell}")
    return (4 * q) ** (q + ell)


def max_distance_bound(phi: Formula) -> int:
    """The largest ``d`` in any distance atom of ``phi`` (0 if none)."""
    if isinstance(phi, DistAtom):
        return phi.bound
    if isinstance(phi, Not):
        return max_distance_bound(phi.body)
    if isinstance(phi, (And, Or)):
        return max((max_distance_bound(p) for p in phi.parts), default=0)
    if isinstance(phi, (Exists, Forall)):
        return max_distance_bound(phi.body)
    return 0


def check_q_rank(phi: Formula, q: int, ell: int) -> bool:
    """Does ``phi`` have q-rank at most ``ell``?

    Checks quantifier rank <= ``ell`` and, for every distance atom in the
    scope of ``i`` quantifiers, ``bound <= (4q)^(q + ell - i)``.
    """

    def walk(node: Formula, depth: int) -> bool:
        if isinstance(node, DistAtom):
            return node.bound <= f_q(q, ell - depth) if depth <= ell else False
        if isinstance(node, Not):
            return walk(node.body, depth)
        if isinstance(node, (And, Or)):
            return all(walk(p, depth) for p in node.parts)
        if isinstance(node, (Exists, Forall)):
            if depth + 1 > ell:
                return False
            return walk(node.body, depth + 1)
        return True

    return walk(phi, 0)


def q_rank_bound(phi: Formula, arity: int) -> tuple[int, int, int]:
    """Choose paper parameters ``(q, ell, r)`` accommodating ``phi``.

    Section 5.2 fixes ``q >= k``, ``ell = q - k`` and ``r = f_q(ell)``.  We
    pick the smallest such ``q`` for which ``phi`` has q-rank at most
    ``ell`` — i.e. ``q = k + quantifier_rank(phi)`` adjusted upward until
    the distance atoms fit the discipline.

    Returns ``(q, ell, r)``.  Note ``r`` grows like ``(4q)^(2q)``; for
    benchmarks we usually use the *practical radius* instead (see
    :func:`practical_radius`), exactly because the paper's constants are
    astronomically conservative.
    """
    if arity < 0:
        raise ValueError(f"arity must be non-negative, got {arity}")
    q = max(arity + quantifier_rank(phi), 1)
    while True:
        ell = q - arity
        if ell >= quantifier_rank(phi) and check_q_rank(phi, q, ell):
            return q, ell, f_q(q, ell)
        q += 1


def practical_radius(phi: Formula) -> int:
    """A sound but *practical* locality radius for ``phi``.

    Gaifman locality guarantees that an FO formula of quantifier rank
    ``qr`` is local with radius ``<= (7^qr - 1) / 2``; with explicit
    distance atoms of bound ``d`` the relevant scale is stretched by ``d``.
    We use ``max(1, (7**qr - 1) // 2, max_dist) `` capped in callers.  The
    engine's correctness never depends on this number (bag-local evaluation
    plus the far-component independence check are verified per query shape);
    it only determines the cover radius, i.e. performance.
    """
    qr = quantifier_rank(phi)
    gaifman = (7 ** qr - 1) // 2 if qr < 8 else 7 ** 8
    return max(1, gaifman, max_distance_bound(phi))
