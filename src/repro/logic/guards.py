"""Guard analysis: certified distance implications between variables.

A positively guarded existential (``∃z (E(x,z) ∧ ...)``) confines its
witnesses to a neighborhood of an already-anchored variable.  The guard
may also be *indirect*: in ``∃z ∃t (E(z,t) ∧ E(t,x))`` any witness for
``z`` satisfies ``dist(z, x) <= 2`` through the chain.

:func:`implied_connection` certifies such bounds by collecting the
positive Edge/Dist/Eq atoms along the ∧/∃ spine of a formula (an
existential witness still realizes its guards' distances) and running
Dijkstra on the resulting weighted variable graph.  Both the normal-form
decomposer (Theorem 5.4 stand-in) and the naive evaluator's witness
pruning build on it.
"""

from __future__ import annotations

import heapq

from repro.logic.syntax import (
    And,
    DistAtom,
    EdgeAtom,
    EqAtom,
    Exists,
    Formula,
    Var,
)

#: cache: (formula, source, target) -> certified bound or None
_connection_cache: dict[tuple[Formula, Var, Var], int | None] = {}


def _collect_guard_edges(block: Formula) -> list[tuple[Var, Var, int]]:
    edges: list[tuple[Var, Var, int]] = []

    def collect(node: Formula) -> None:
        if isinstance(node, EdgeAtom):
            edges.append((node.left, node.right, 1))
        elif isinstance(node, DistAtom):
            edges.append((node.left, node.right, node.bound))
        elif isinstance(node, EqAtom):
            edges.append((node.left, node.right, 0))
        elif isinstance(node, And):
            for part in node.parts:
                collect(part)
        elif isinstance(node, Exists):
            collect(node.body)
        # Or / Forall / Not branches are not guaranteed by a witness

    collect(block)
    return edges


def implied_connection(block: Formula, x: Var, y: Var) -> int | None:
    """A certified bound ``B`` with ``block ⇒ dist(x, y) <= B`` — or None.

    Sound for any satisfying assignment/witness of ``block``: the
    collected atoms all hold, so the shortest guard-graph path bounds the
    real distance.
    """
    key = (block, x, y)
    if key in _connection_cache:
        return _connection_cache[key]
    adjacency: dict[Var, list[tuple[Var, int]]] = {}
    for u, v, w in _collect_guard_edges(block):
        adjacency.setdefault(u, []).append((v, w))
        adjacency.setdefault(v, []).append((u, w))
    result: int | None = None
    if x == y:
        result = 0
    elif x in adjacency:
        dist: dict[Var, int] = {x: 0}
        heap = [(0, x.name, x)]
        while heap:
            d, _, u = heapq.heappop(heap)
            if u == y:
                result = d
                break
            if d > dist.get(u, d):
                continue
            for v, w in adjacency.get(u, ()):
                nd = d + w
                if nd < dist.get(v, nd + 1):
                    dist[v] = nd
                    heapq.heappush(heap, (nd, v.name, v))
    _connection_cache[key] = result
    return result


def deep_counterexample_guard(
    body: Formula, var: Var, anchored: dict[Var, int]
) -> tuple[Var, int] | None:
    """The dual rule for universals: in ``∀var (D_1 ∨ ... ∨ D_m)``, any
    counterexample satisfies every ``¬D_i``, so a certified connection in
    any single negated disjunct confines the counterexamples.

    Returns the best ``(anchor, bound)`` over the disjuncts, or None.
    """
    from repro.logic.syntax import Or
    from repro.logic.transform import negation_normal_form
    from repro.logic.syntax import Not as _Not

    parts = body.parts if isinstance(body, Or) else (body,)
    best: tuple[Var, int] | None = None
    for part in parts:
        negated = negation_normal_form(_Not(part))
        guard = deep_guard(negated, var, anchored)
        if guard is not None and (best is None or guard[1] < best[1]):
            best = guard
    return best


def deep_guard(
    body: Formula, var: Var, anchored: dict[Var, int]
) -> tuple[Var, int] | None:
    """The best certified guard for ``var`` in an existential's ``body``.

    Returns ``(anchor, total_bound)`` minimizing ``anchored[anchor] +
    implied_connection(body, var, anchor)`` — or None when no anchored
    variable is certifiably connected to ``var``.
    """
    best: tuple[Var, int] | None = None
    for anchor, offset in anchored.items():
        if anchor == var:
            continue
        bound = implied_connection(body, var, anchor)
        if bound is None:
            continue
        total = offset + bound
        if best is None or total < best[1]:
            best = (anchor, total)
    return best
