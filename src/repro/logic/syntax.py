"""Abstract syntax for FO and FO+ over colored graphs.

The schema is ``sigma_c = {E, C_1, ..., C_c}`` (Section 2): one symmetric
binary relation ``E`` and unary colors.  FO+ (Section 5) adds atoms
``dist(x, y) <= d`` for constants ``d``.

All nodes are immutable; formulas compare and hash structurally, so they
can key memoization tables in the engine.  Convenience operators::

    phi & psi     -> And(phi, psi)
    phi | psi     -> Or(phi, psi)
    ~phi          -> Not(phi)
    phi >> psi    -> Or(Not(phi), psi)   (implication)
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class Var:
    """A first-order variable, identified by name."""

    name: str

    def __repr__(self) -> str:
        return self.name


class Formula:
    """Base class for all formula nodes."""

    __slots__ = ()

    def __and__(self, other: "Formula") -> "Formula":
        return And((self, other))

    def __or__(self, other: "Formula") -> "Formula":
        return Or((self, other))

    def __invert__(self) -> "Formula":
        return Not(self)

    def __rshift__(self, other: "Formula") -> "Formula":
        return Or((Not(self), other))


@dataclass(frozen=True, slots=True, repr=False)
class Top(Formula):
    """The constant true."""

    def __repr__(self) -> str:
        return "true"


@dataclass(frozen=True, slots=True, repr=False)
class Bottom(Formula):
    """The constant false."""

    def __repr__(self) -> str:
        return "false"


@dataclass(frozen=True, slots=True, repr=False)
class EdgeAtom(Formula):
    """``E(x, y)`` — the (symmetric) edge relation."""

    left: Var
    right: Var

    def __repr__(self) -> str:
        return f"E({self.left}, {self.right})"


@dataclass(frozen=True, slots=True, repr=False)
class ColorAtom(Formula):
    """``C(x)`` — vertex ``x`` carries color ``C``."""

    color: str
    var: Var

    def __repr__(self) -> str:
        return f"{self.color}({self.var})"


@dataclass(frozen=True, slots=True, repr=False)
class EqAtom(Formula):
    """``x = y``."""

    left: Var
    right: Var

    def __repr__(self) -> str:
        return f"{self.left} = {self.right}"


@dataclass(frozen=True, slots=True, repr=False)
class DistAtom(Formula):
    """``dist(x, y) <= bound`` — the FO+ distance atom (Section 5.1.2).

    ``dist(x, y) > d`` is expressed as ``Not(DistAtom(x, y, d))``.
    """

    left: Var
    right: Var
    bound: int

    def __post_init__(self) -> None:
        if self.bound < 0:
            raise ValueError(f"distance bound must be non-negative, got {self.bound}")

    def __repr__(self) -> str:
        return f"dist({self.left}, {self.right}) <= {self.bound}"


@dataclass(frozen=True, slots=True, repr=False)
class Not(Formula):
    """Negation."""

    body: Formula

    def __repr__(self) -> str:
        return f"~({self.body})"


def _flatten(cls, parts):
    """Flatten nested And/Or for canonical n-ary connectives."""
    out = []
    for p in parts:
        if isinstance(p, cls):
            out.extend(p.parts)
        else:
            out.append(p)
    return tuple(out)


@dataclass(frozen=True, slots=True, repr=False, init=False)
class And(Formula):
    """N-ary conjunction (flattened, order-preserving)."""

    parts: tuple[Formula, ...] = field()

    def __init__(self, parts) -> None:
        object.__setattr__(self, "parts", _flatten(And, parts))

    def __repr__(self) -> str:
        if not self.parts:
            return "true"
        return "(" + " & ".join(map(repr, self.parts)) + ")"


@dataclass(frozen=True, slots=True, repr=False, init=False)
class Or(Formula):
    """N-ary disjunction (flattened, order-preserving)."""

    parts: tuple[Formula, ...] = field()

    def __init__(self, parts) -> None:
        object.__setattr__(self, "parts", _flatten(Or, parts))

    def __repr__(self) -> str:
        if not self.parts:
            return "false"
        return "(" + " | ".join(map(repr, self.parts)) + ")"


@dataclass(frozen=True, slots=True, repr=False)
class Exists(Formula):
    """``exists var. body``."""

    var: Var
    body: Formula

    def __repr__(self) -> str:
        return f"(exists {self.var}. {self.body})"


@dataclass(frozen=True, slots=True, repr=False)
class Forall(Formula):
    """``forall var. body``."""

    var: Var
    body: Formula

    def __repr__(self) -> str:
        return f"(forall {self.var}. {self.body})"


def conjunction(parts) -> Formula:
    """And of ``parts``, simplifying the empty and singleton cases."""
    parts = tuple(parts)
    if not parts:
        return Top()
    if len(parts) == 1:
        return parts[0]
    return And(parts)


def disjunction(parts) -> Formula:
    """Or of ``parts``, simplifying the empty and singleton cases."""
    parts = tuple(parts)
    if not parts:
        return Bottom()
    if len(parts) == 1:
        return parts[0]
    return Or(parts)


ATOM_TYPES = (Top, Bottom, EdgeAtom, ColorAtom, EqAtom, DistAtom)


def is_atom(phi: Formula) -> bool:
    """True for atoms and the boolean constants."""
    return isinstance(phi, ATOM_TYPES)
