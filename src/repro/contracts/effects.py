"""Concurrency & immutability effect decorators plus the runtime tripwire.

The serving layer hands one built ``QueryIndex`` to N concurrent HTTP
workers on a lock-free read path.  That is only sound if the index tower
is genuinely *frozen after build*: every post-build code path either
reads, or confines its writes to declared, lock-guarded memo cells.
This module provides the vocabulary that states the discipline in code:

========================  ====================================================
decorator                 meaning
========================  ====================================================
``@frozen_after_build``   class decorator: instances are immutable once
                          ``__init__`` (and any ``@builds`` method) returns,
                          except for the declared ``cells`` — lazily filled
                          memo attributes, each tied to the lock that guards
                          its fill
``@read_only``            method decorator: may not write ``self`` or any
                          reachable frozen state (cell fills under the
                          declared lock excepted)
``@builds``               method decorator: runs in the build phase and may
                          mutate freely (``__init__`` is implicitly
                          ``@builds``)
``@guarded_by(lock, *f)`` class decorator: the named fields may only be
                          *written* inside ``with self.<lock>:`` (lock-free
                          reads stay legal — that is the point of the
                          double-checked patterns in serve/metrics)
``@locked(lock)``         method decorator: callers must already hold
                          ``self.<lock>`` (the method itself does not take it)
========================  ====================================================

Like the complexity decorators, all of these attach metadata and return
the function/class **unchanged** — zero overhead on the hot path.  The
static checker (:mod:`repro.contracts.concurrency`) reads the same
annotations from the AST, so un-imported code is checked identically.

Runtime teeth: :func:`freeze` (or :func:`install_freeze`, used by
``repro serve --paranoid`` and the contracts test suite) installs a
cheap ``__setattr__`` tripwire on every ``@frozen_after_build`` class.
Attribute assignment outside a build phase — outside ``__init__``, a
``@builds`` method, or an explicit :func:`build_phase` block — raises
:class:`FrozenMutationError`.  Declared cells are exempt (their fills
are checked statically against the declared lock).  The build phase is
tracked per-thread, so parallel ``workers > 1`` builds inside a frozen
constructor keep working: the mutating frame itself carries the depth.
"""

from __future__ import annotations

import functools
import threading
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, TypeVar

READ_ONLY = "read_only"
BUILDS = "builds"

_C = TypeVar("_C", bound=type)


class FrozenMutationError(RuntimeError):
    """A frozen instance was mutated outside a build phase (tripwire hit)."""


@dataclass(frozen=True)
class Effect:
    """One method's declared concurrency effect (``read_only``/``builds``)."""

    kind: str
    note: str | None = None


@dataclass(frozen=True)
class FrozenSpec:
    """A ``@frozen_after_build`` class's declared mutable remainder.

    ``cells`` maps each lazily-filled memo attribute to the name of the
    lock that must be held while filling it.
    """

    cells: tuple[tuple[str, str], ...] = ()
    note: str | None = None

    @property
    def cell_names(self) -> frozenset[str]:
        return frozenset(name for name, _ in self.cells)


@dataclass(frozen=True)
class GuardedSpec:
    """A ``@guarded_by`` class's lock-discipline declaration."""

    lock: str
    fields: tuple[str, ...]


#: Classes registered by ``@frozen_after_build``, in decoration order.
_FROZEN_REGISTRY: list[type] = []


def _attach_effect(fn: Callable, effect: Effect) -> Callable:
    fn.__effect__ = effect  # type: ignore[attr-defined]
    return fn


def read_only(
    fn: Callable | None = None, *, note: str | None = None
) -> Callable:
    """Declare that a method reads (never writes) reachable index state."""
    effect = Effect(READ_ONLY, note)
    if fn is None:
        return lambda f: _attach_effect(f, effect)
    return _attach_effect(fn, effect)


def builds(fn: Callable | None = None, *, note: str | None = None) -> Callable:
    """Declare that a method belongs to the build phase and may mutate."""
    effect = Effect(BUILDS, note)
    if fn is None:
        return lambda f: _attach_effect(f, effect)
    return _attach_effect(fn, effect)


def frozen_after_build(
    cls: _C | None = None,
    *,
    cells: dict[str, str] | None = None,
    note: str | None = None,
) -> Any:
    """Declare a class immutable once built, modulo the named memo cells."""
    spec = FrozenSpec(
        cells=tuple(sorted((cells or {}).items())),
        note=note,
    )

    def decorate(target: _C) -> _C:
        target.__frozen_spec__ = spec  # type: ignore[attr-defined]
        _FROZEN_REGISTRY.append(target)
        return target

    if cls is None:
        return decorate
    return decorate(cls)


def guarded_by(lock: str, *fields: str) -> Callable[[_C], _C]:
    """Declare fields writable only inside ``with self.<lock>:``."""
    spec = GuardedSpec(lock=lock, fields=tuple(fields))

    def decorate(target: _C) -> _C:
        target.__guarded_spec__ = spec  # type: ignore[attr-defined]
        return target

    return decorate


def locked(lock: str) -> Callable[[Callable], Callable]:
    """Declare that callers of this method must already hold ``self.<lock>``."""

    def decorate(fn: Callable) -> Callable:
        fn.__locked__ = lock  # type: ignore[attr-defined]
        return fn

    return decorate


def effect_of(obj: Any) -> Effect | None:
    """The :class:`Effect` attached to ``obj``, if any."""
    return getattr(obj, "__effect__", None)


def frozen_spec_of(cls: type) -> FrozenSpec | None:
    """The :class:`FrozenSpec` attached to ``cls`` itself (not inherited)."""
    return cls.__dict__.get("__frozen_spec__")


def frozen_classes() -> list[type]:
    """All ``@frozen_after_build`` classes, in decoration order."""
    return list(_FROZEN_REGISTRY)


# ----------------------------------------------------------------------
# runtime tripwire
# ----------------------------------------------------------------------
_STATE = threading.local()


def _depth() -> int:
    return getattr(_STATE, "depth", 0)


def in_build_phase() -> bool:
    """Is the current thread inside a build frame (or ``build_phase()``)?"""
    return _depth() > 0


@contextmanager
def build_phase() -> Iterator[None]:
    """Mark a block as build-phase code (e.g. unpickling a snapshot).

    Slotted classes restore their state through ``__setattr__`` when
    unpickled, which would trip the freeze guard; ``load_index`` wraps
    the ``pickle.loads`` call in this context.
    """
    _STATE.depth = _depth() + 1
    try:
        yield
    finally:
        _STATE.depth -= 1


def _depth_wrapper(fn: Callable) -> Callable:
    @functools.wraps(fn)
    def wrapper(*args: Any, **kwargs: Any) -> Any:
        _STATE.depth = _depth() + 1
        try:
            return fn(*args, **kwargs)
        finally:
            _STATE.depth -= 1

    wrapper.__frozen_build_wrapper__ = True  # type: ignore[attr-defined]
    return wrapper


def _make_guard(cls: type, allowed: frozenset[str]) -> Callable:
    original = cls.__dict__.get("__setattr__")
    base = original if original is not None else object.__setattr__

    def __setattr__(self: Any, name: str, value: Any) -> None:
        if _depth() == 0 and name not in allowed:
            raise FrozenMutationError(
                f"attribute {name!r} of frozen {type(self).__name__} "
                f"assigned outside a build phase (paranoid mode is on; "
                f"wrap build-time mutation in a @builds method or "
                f"contracts.build_phase())"
            )
        base(self, name, value)

    return __setattr__


_MISSING = object()
_install_count = 0
_patches: list[tuple[type, str, Any]] = []


def freeze_active() -> bool:
    """Is the runtime tripwire currently installed?"""
    return _install_count > 0


def install_freeze() -> None:
    """Install the ``__setattr__`` tripwire on every frozen class.

    Re-entrant (reference counted): nested installs are no-ops until the
    matching number of :func:`uninstall_freeze` calls.  ``@builds``
    methods and ``__init__`` are wrapped to bump the per-thread build
    depth, so legitimate construction keeps working while the guard is
    live — including constructors running on worker threads of a
    parallel build.
    """
    global _install_count
    _install_count += 1
    if _install_count > 1:
        return
    for cls in list(_FROZEN_REGISTRY):
        _patch_class(cls)


def _patch_class(cls: type) -> None:
    spec = frozen_spec_of(cls) or FrozenSpec()
    for name, attr in list(cls.__dict__.items()):
        underlying = (
            attr.__func__ if isinstance(attr, (staticmethod, classmethod)) else attr
        )
        if not callable(underlying):
            continue
        effect = getattr(underlying, "__effect__", None)
        is_build = name in ("__init__", "__post_init__") or (
            effect is not None and effect.kind == BUILDS
        )
        if not is_build:
            continue
        wrapped: Any = _depth_wrapper(underlying)
        if isinstance(attr, staticmethod):
            wrapped = staticmethod(wrapped)
        elif isinstance(attr, classmethod):
            wrapped = classmethod(wrapped)
        setattr(cls, name, wrapped)
        _patches.append((cls, name, attr))
    guard = _make_guard(cls, spec.cell_names)
    original = cls.__dict__.get("__setattr__", _MISSING)
    setattr(cls, "__setattr__", guard)
    _patches.append((cls, "__setattr__", original))


def uninstall_freeze() -> None:
    """Remove the tripwire (when the last reference is released)."""
    global _install_count
    if _install_count == 0:
        return
    _install_count -= 1
    if _install_count > 0:
        return
    for cls, name, original in reversed(_patches):
        if original is _MISSING:
            if name in cls.__dict__:
                delattr(cls, name)
        else:
            setattr(cls, name, original)
    _patches.clear()


@contextmanager
def freeze() -> Iterator[None]:
    """Scope the runtime tripwire to a block (tests use this)."""
    install_freeze()
    try:
        yield
    finally:
        uninstall_freeze()
