"""AST-based complexity-contract checker (``repro lint``).

Statically enforces the contracts declared via
:mod:`repro.contracts.decorators`.  For every annotated function the
checker walks the AST and applies these rules:

=========  ==================================================================
rule id    fires when
=========  ==================================================================
CTC001     a constant-time context (``@constant_time`` or ``@delay`` of any
           bound) iterates over — or materializes with ``list``/``sorted``/
           ``set``/``sum``/... — a *graph-sized* collection:
           ``graph.vertices()``, ``graph.edges()``, ``.adjacency``/``.nodes``
           attributes, ``range(n)``-like ranges over ``.n``/``.num_edges``,
           or any name declared via the decorator's ``sized=(...)`` kwarg
CTC002     a ``@constant_time`` / ``@delay("O(1)")`` function recurses —
           directly, or through a cycle of contracted functions resolved in
           the call graph
CTC003     a ``@constant_time`` / ``@delay("O(1)")`` function calls a
           function defined in the analyzed tree that is not itself
           constant-time (unannotated, ``@pseudo_linear``, ``@amortized``,
           or a slower ``@delay``); dispatch through attributes is resolved
           with lightweight type inference (parameter annotations,
           ``self.x = ClassName(...)`` assignments, return annotations,
           ``list[T]``/``tuple[...]`` subscripts)
PLC004     a ``@pseudo_linear`` function nests one graph-sized loop inside
           another (quadratic risk)
=========  ==================================================================

A trailing ``# contract: <reason>`` comment on the offending line (or the
line directly above it) waives the finding: it stays in the report as a
note — the explicit, reviewable escape hatch for documented amortization
(e.g. the ``PrefixScan`` fallback in ``next_solution.py``) — but does not
fail the lint.

Calls that cannot be resolved to a definition in the analyzed tree
(builtins, stdlib, dynamically typed attributes) are ignored rather than
guessed at: the checker is deliberately zero-false-positive on the
annotated tree, and the escape-hatch comments carry the residual risk.
"""

from __future__ import annotations

import ast
import io
import json
import re
import sys
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

RULE_SIZED_LOOP = "CTC001"
RULE_RECURSION = "CTC002"
RULE_CALLEE = "CTC003"
RULE_NESTED_SIZED = "PLC004"

RULE_TITLES = {
    RULE_SIZED_LOOP: "graph-sized iteration in a constant-time context",
    RULE_RECURSION: "recursion in a constant-time context",
    RULE_CALLEE: "constant-time function calls a non-constant callee",
    RULE_NESTED_SIZED: "nested graph-sized loops in pseudo-linear context",
}

#: Decorator names recognized as contracts.
CONTRACT_NAMES = {"constant_time", "delay", "pseudo_linear", "amortized"}

#: Classes whose instances are "the graph" for sized-expression purposes.
GRAPH_CLASSES = {"ColoredGraph"}
#: Methods/attributes of a graph-ish object that yield Θ(n)/Θ(m) collections.
GRAPH_SIZED_ATTRS = {"vertices", "edges"}
#: Attribute names that are graph-sized on any receiver (`Dom(f)`-likes).
ALWAYS_SIZED_ATTRS = {"adjacency", "nodes"}
#: Names that make a receiver graph-ish by convention (``graph.vertices()``).
GRAPH_NAME_HINTS = {"graph", "g", "subgraph"}
#: Attributes whose appearance in a ``range()`` argument marks it Θ(n).
SIZED_RANGE_ATTRS = {"n", "num_edges"}
#: Builtins that materialize / reduce their (possibly sized) first argument.
MATERIALIZERS = {"list", "sorted", "set", "tuple", "frozenset", "sum", "max", "min"}
#: Builtins that forward their first argument's size to iteration.
FORWARDERS = {"enumerate", "reversed", "iter"} | MATERIALIZERS

WAIVER_RE = re.compile(r"#\s*contract:\s*(?P<reason>.+?)\s*$")

_LOOP_NODES = (ast.For, ast.AsyncFor)
_COMP_NODES = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)


# ----------------------------------------------------------------------
# data model
# ----------------------------------------------------------------------
@dataclass
class StaticContract:
    """A contract as read from the decorator syntax (no import needed)."""

    kind: str
    bound: str
    sized: tuple[str, ...] = ()

    @property
    def constant(self) -> bool:
        return self.kind == "constant_time" or (
            self.kind == "delay" and self.bound == "O(1)"
        )


@dataclass(eq=False)  # identity hash: one instance per definition
class FuncInfo:
    qualname: str  # module.Class.name or module.name
    module: str
    name: str
    cls: str | None  # owning class qualname, if a method
    node: ast.FunctionDef | ast.AsyncFunctionDef
    contract: StaticContract | None
    path: Path


@dataclass
class ClassInfo:
    qualname: str
    module: str
    node: ast.ClassDef
    methods: dict[str, FuncInfo] = field(default_factory=dict)
    attr_types: dict[str, set] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    name: str
    path: Path
    tree: ast.Module
    names: dict[str, str] = field(default_factory=dict)  # local -> qualified
    waivers: dict[int, str] = field(default_factory=dict)  # line -> reason


@dataclass
class Finding:
    path: str
    line: int
    col: int
    rule: str
    function: str
    message: str
    waived: bool = False
    waiver: str | None = None

    @property
    def severity(self) -> str:
        return "note" if self.waived else "error"

    def to_dict(self) -> dict:
        return {
            "file": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "title": RULE_TITLES.get(self.rule, self.rule),
            "function": self.function,
            "message": self.message,
            "severity": self.severity,
            "waived": self.waived,
            "waiver": self.waiver,
        }


@dataclass
class Report:
    findings: list[Finding]
    files_checked: int
    functions_checked: int

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if not f.waived]

    @property
    def exit_code(self) -> int:
        return 1 if self.errors else 0

    def rule_counts(self) -> dict[str, dict[str, int]]:
        """Per-rule error/waived tallies (the merged-report summary)."""
        out: dict[str, dict[str, int]] = {}
        for f in self.findings:
            entry = out.setdefault(f.rule, {"errors": 0, "waived": 0})
            entry["waived" if f.waived else "errors"] += 1
        return dict(sorted(out.items()))

    def to_json(self) -> str:
        return json.dumps(
            {
                "version": 2,
                "files_checked": self.files_checked,
                "functions_checked": self.functions_checked,
                "errors": len(self.errors),
                "waived": len(self.findings) - len(self.errors),
                "rules": self.rule_counts(),
                "findings": [f.to_dict() for f in self.findings],
            },
            indent=2,
            sort_keys=False,
        )

    def render_text(self) -> str:
        lines = []
        for f in self.findings:
            mark = "note (waived)" if f.waived else "error"
            lines.append(
                f"{f.path}:{f.line}:{f.col}: {f.rule} [{mark}] {f.function}: {f.message}"
            )
            if f.waived and f.waiver:
                lines.append(f"    waiver: {f.waiver}")
        lines.append(
            f"checked {self.functions_checked} contracted functions in "
            f"{self.files_checked} files: {len(self.errors)} error(s), "
            f"{len(self.findings) - len(self.errors)} waived"
        )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# type model: sets of atoms; atoms are ('cls', qualname) | ('list', frozenset)
#             | ('tuple', (frozenset, ...))
# ----------------------------------------------------------------------
def _cls_atoms(types: set) -> list[str]:
    return [atom[1] for atom in types if atom and atom[0] == "cls"]


class ContractChecker:
    """One checking run over a set of files/directories."""

    def __init__(self, paths: list[str | Path]) -> None:
        self.files = _collect_files(paths)
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FuncInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self._return_types: dict[str, set] = {}

    # ------------------------------------------------------------------
    def run(self) -> Report:
        for path in self.files:
            self._index_file(path)
        for cls in self.classes.values():
            self._infer_attr_types(cls)
        contracted = [f for f in self.functions.values() if f.contract is not None]
        findings: list[Finding] = []
        call_edges: dict[str, list[tuple[int, int, set[str]]]] = {}
        for fn in contracted:
            findings.extend(self._check_function(fn, call_edges))
        findings.extend(self._check_recursion(contracted, call_edges))
        findings.sort(key=lambda f: (f.path, f.line, f.rule))
        deduped: list[Finding] = []
        seen = set()
        for f in findings:
            key = (f.path, f.line, f.rule, f.message)
            if key not in seen:
                seen.add(key)
                deduped.append(f)
        return Report(deduped, len(self.files), len(contracted))

    # ------------------------------------------------------------------
    # pass A: indexing
    # ------------------------------------------------------------------
    def _index_file(self, path: Path) -> None:
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError:
            return
        name = _module_name(path)
        module = ModuleInfo(name, path, tree, waivers=_waivers(source))
        self.modules[name] = module
        for stmt in tree.body:
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    module.names[alias.asname or alias.name.split(".")[0]] = alias.name
            elif isinstance(stmt, ast.ImportFrom) and stmt.module and stmt.level == 0:
                for alias in stmt.names:
                    module.names[alias.asname or alias.name] = (
                        f"{stmt.module}.{alias.name}"
                    )
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(module, stmt, cls=None, path=path)
            elif isinstance(stmt, ast.ClassDef):
                qual = f"{name}.{stmt.name}"
                info = ClassInfo(qual, name, stmt)
                self.classes[qual] = info
                module.names[stmt.name] = qual
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        fn = self._add_function(module, sub, cls=qual, path=path)
                        info.methods[sub.name] = fn

    def _add_function(
        self,
        module: ModuleInfo,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        cls: str | None,
        path: Path,
    ) -> FuncInfo:
        owner = cls if cls is not None else module.name
        qual = f"{owner}.{node.name}"
        info = FuncInfo(
            qualname=qual,
            module=module.name,
            name=node.name,
            cls=cls,
            node=node,
            contract=_contract_from_decorators(node),
            path=path,
        )
        self.functions[qual] = info
        if cls is None:
            module.names.setdefault(node.name, qual)
        return info

    # ------------------------------------------------------------------
    # pass B: attribute-type inference per class
    # ------------------------------------------------------------------
    def _infer_attr_types(self, cls: ClassInfo) -> None:
        module = self.modules[cls.module]
        for stmt in cls.node.body:  # dataclass-style fields
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                cls.attr_types.setdefault(stmt.target.id, set()).update(
                    self._annotation_types(stmt.annotation, module)
                )
        for method in cls.methods.values():
            if _is_property(method.node) and method.node.returns is not None:
                cls.attr_types.setdefault(method.name, set()).update(
                    self._annotation_types(method.node.returns, module)
                )
            env = self._param_env(method)
            for node in ast.walk(method.node):
                targets: list[ast.expr] = []
                value: ast.expr | None = None
                if isinstance(node, ast.Assign):
                    targets, value = node.targets, node.value
                elif isinstance(node, ast.AnnAssign):
                    targets = [node.target]
                for target in targets:
                    if not (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        continue
                    if isinstance(node, ast.AnnAssign):
                        inferred = self._annotation_types(node.annotation, module)
                    elif value is not None:
                        inferred = self._expr_types(value, env, module, cls.qualname)
                    else:
                        inferred = set()
                    if inferred:
                        cls.attr_types.setdefault(target.attr, set()).update(inferred)

    # ------------------------------------------------------------------
    # annotations & expressions -> types
    # ------------------------------------------------------------------
    def _annotation_types(self, node: ast.expr | None, module: ModuleInfo) -> set:
        if node is None:
            return set()
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                parsed = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return set()
            return self._annotation_types(parsed, module)
        if isinstance(node, ast.Name):
            qual = module.names.get(node.id, node.id)
            if qual in self.classes:
                return {("cls", qual)}
            return set()
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
            return self._annotation_types(node.left, module) | self._annotation_types(
                node.right, module
            )
        if isinstance(node, ast.Subscript):
            base = node.value
            base_name = base.id if isinstance(base, ast.Name) else getattr(base, "attr", "")
            slices = (
                list(node.slice.elts)
                if isinstance(node.slice, ast.Tuple)
                else [node.slice]
            )
            if base_name in ("list", "List", "Sequence", "Iterable", "Iterator"):
                return {("list", frozenset(self._annotation_types(slices[0], module)))}
            if base_name in ("tuple", "Tuple"):
                return {
                    (
                        "tuple",
                        tuple(
                            frozenset(self._annotation_types(s, module)) for s in slices
                        ),
                    )
                }
            if base_name in ("Optional", "Union"):
                out: set = set()
                for s in slices:
                    out |= self._annotation_types(s, module)
                return out
            return set()
        return set()

    def _param_env(self, fn: FuncInfo) -> dict[str, set]:
        module = self.modules[fn.module]
        env: dict[str, set] = {}
        args = fn.node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            types = self._annotation_types(arg.annotation, module)
            if types:
                env[arg.arg] = types
        return env

    def _return_types_of(self, fn: FuncInfo) -> set:
        cached = self._return_types.get(fn.qualname)
        if cached is None:
            cached = self._annotation_types(fn.node.returns, self.modules[fn.module])
            self._return_types[fn.qualname] = cached
        return cached

    def _expr_types(
        self, node: ast.expr, env: dict[str, set], module: ModuleInfo, cls: str | None
    ) -> set:
        if isinstance(node, ast.Name):
            if node.id == "self" and cls is not None:
                return {("cls", cls)}
            return env.get(node.id, set())
        if isinstance(node, ast.Attribute):
            out: set = set()
            for qual in _cls_atoms(self._expr_types(node.value, env, module, cls)):
                info = self.classes.get(qual)
                if info is not None:
                    out |= info.attr_types.get(node.attr, set())
            return out
        if isinstance(node, ast.Call):
            resolved = self._resolve_call(node, env, module, cls)
            if resolved is None:
                return set()
            kind, payload = resolved
            if kind == "class":
                return {("cls", payload)}
            out = set()
            for fn in payload:
                out |= self._return_types_of(fn)
            return out
        if isinstance(node, ast.BoolOp):
            out = set()
            for value in node.values:
                out |= self._expr_types(value, env, module, cls)
            return out
        if isinstance(node, ast.IfExp):
            return self._expr_types(node.body, env, module, cls) | self._expr_types(
                node.orelse, env, module, cls
            )
        if isinstance(node, ast.Subscript):
            out = set()
            for atom in self._expr_types(node.value, env, module, cls):
                if atom[0] == "list":
                    out |= set(atom[1])
                elif atom[0] == "tuple":
                    if isinstance(node.slice, ast.Constant) and isinstance(
                        node.slice.value, int
                    ):
                        index = node.slice.value
                        if -len(atom[1]) <= index < len(atom[1]):
                            out |= set(atom[1][index])
                    else:
                        for slot in atom[1]:
                            out |= set(slot)
            return out
        return set()

    # ------------------------------------------------------------------
    # call resolution
    # ------------------------------------------------------------------
    def _resolve_call(
        self, call: ast.Call, env: dict[str, set], module: ModuleInfo, cls: str | None
    ) -> tuple[str, object] | None:
        """``('funcs', set[FuncInfo])`` or ``('class', qualname)`` or None."""
        func = call.func
        if isinstance(func, ast.Name):
            qual = module.names.get(func.id)
            if qual is None:
                return None
            if qual in self.functions:
                return ("funcs", {self.functions[qual]})
            if qual in self.classes:
                return ("class", qual)
            return None
        if isinstance(func, ast.Attribute):
            candidates: set[FuncInfo] = set()
            for qual in _cls_atoms(self._expr_types(func.value, env, module, cls)):
                info = self.classes.get(qual)
                if info is None:
                    continue
                method = info.methods.get(func.attr)
                if method is not None:
                    candidates.add(method)
            if candidates:
                return ("funcs", candidates)
            return None
        return None

    # ------------------------------------------------------------------
    # pass C: per-function rules
    # ------------------------------------------------------------------
    def _check_function(
        self,
        fn: FuncInfo,
        call_edges: dict[str, list[tuple[int, int, set[str]]]],
    ) -> list[Finding]:
        contract = fn.contract
        assert contract is not None
        if contract.kind == "amortized":
            return []  # the declared escape: exempt, but callers are checked
        module = self.modules[fn.module]
        env = self._build_env(fn)
        findings: list[Finding] = []

        if contract.kind == "pseudo_linear":
            self._check_sized_nesting(fn, env, module, contract, findings)
            return findings

        # constant_time / delay contexts -----------------------------------
        for node in ast.walk(fn.node):
            if isinstance(node, _LOOP_NODES):
                if self._is_sized(node.iter, env, module, fn.cls, contract):
                    findings.append(
                        self._finding(
                            fn,
                            node,
                            RULE_SIZED_LOOP,
                            f"loop iterates over a graph-sized collection "
                            f"({ast.unparse(node.iter)}) inside a "
                            f"{contract.bound} context",
                            module,
                        )
                    )
            elif isinstance(node, _COMP_NODES):
                for gen in node.generators:
                    if self._is_sized(gen.iter, env, module, fn.cls, contract):
                        findings.append(
                            self._finding(
                                fn,
                                node,
                                RULE_SIZED_LOOP,
                                f"comprehension iterates over a graph-sized "
                                f"collection ({ast.unparse(gen.iter)}) inside a "
                                f"{contract.bound} context",
                                module,
                            )
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Name)
                    and func.id in MATERIALIZERS
                    and node.args
                    and self._is_sized(node.args[0], env, module, fn.cls, contract)
                ):
                    findings.append(
                        self._finding(
                            fn,
                            node,
                            RULE_SIZED_LOOP,
                            f"{func.id}() materializes a graph-sized collection "
                            f"({ast.unparse(node.args[0])}) inside a "
                            f"{contract.bound} context",
                            module,
                        )
                    )

        if not contract.constant:
            return findings  # slower @delay bounds: only the sized-loop rule

        edges = call_edges.setdefault(fn.qualname, [])
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            resolved = self._resolve_call(node, env, module, fn.cls)
            if resolved is None or resolved[0] != "funcs":
                continue
            callees: set[FuncInfo] = resolved[1]  # type: ignore[assignment]
            edges.append(
                (node.lineno, node.col_offset, {c.qualname for c in callees})
            )
            offenders = [
                c for c in callees if c.contract is None or not c.contract.constant
            ]
            if offenders:
                detail = ", ".join(
                    f"{c.qualname} "
                    f"[{c.contract.kind + ' ' + c.contract.bound if c.contract else 'unannotated'}]"
                    for c in sorted(offenders, key=lambda c: c.qualname)
                )
                findings.append(
                    self._finding(
                        fn,
                        node,
                        RULE_CALLEE,
                        f"call may dispatch to a non-constant-time callee: {detail}",
                        module,
                    )
                )
        return findings

    def _check_sized_nesting(
        self,
        fn: FuncInfo,
        env: dict[str, set],
        module: ModuleInfo,
        contract: StaticContract,
        findings: list[Finding],
    ) -> None:
        def walk(node: ast.AST, depth: int) -> None:
            for child in ast.iter_child_nodes(node):
                child_depth = depth
                if isinstance(child, _LOOP_NODES):
                    if self._is_sized(child.iter, env, module, fn.cls, contract):
                        child_depth += 1
                elif isinstance(child, _COMP_NODES):
                    if any(
                        self._is_sized(g.iter, env, module, fn.cls, contract)
                        for g in child.generators
                    ):
                        child_depth += 1
                if child_depth >= 2 and child_depth > depth:
                    findings.append(
                        self._finding(
                            fn,
                            child,
                            RULE_NESTED_SIZED,
                            "graph-sized loop nested inside another graph-sized "
                            "loop in a pseudo-linear context (quadratic risk)",
                            module,
                        )
                    )
                walk(child, child_depth)

        walk(fn.node, 0)

    def _check_recursion(
        self,
        contracted: list[FuncInfo],
        call_edges: dict[str, list[tuple[int, int, set[str]]]],
    ) -> list[Finding]:
        """Cycles through the resolved call graph of constant-time functions."""
        constant = {
            f.qualname: f
            for f in contracted
            if f.contract is not None and f.contract.constant
        }
        adjacency: dict[str, set[str]] = {
            qual: {
                callee
                for _, _, callees in call_edges.get(qual, [])
                for callee in callees
                if callee in constant
            }
            for qual in constant
        }

        def reaches(start: str, goal: str) -> bool:
            stack, seen = [start], set()
            while stack:
                current = stack.pop()
                if current == goal:
                    return True
                if current in seen:
                    continue
                seen.add(current)
                stack.extend(adjacency.get(current, ()))
            return False

        findings = []
        for qual, fn in constant.items():
            for line, col, callees in call_edges.get(qual, []):
                if any(
                    callee in constant and reaches(callee, qual) for callee in callees
                ):
                    module = self.modules[fn.module]
                    findings.append(
                        self._make_finding(
                            fn,
                            line,
                            col,
                            RULE_RECURSION,
                            "recursive call cycle reaches this function again "
                            "(unbounded stack depth breaks the O(1) contract)",
                            module,
                        )
                    )
        return findings

    # ------------------------------------------------------------------
    # sized-expression detection
    # ------------------------------------------------------------------
    def _is_sized(
        self,
        expr: ast.expr,
        env: dict[str, set],
        module: ModuleInfo,
        cls: str | None,
        contract: StaticContract,
    ) -> bool:
        if isinstance(expr, ast.Name):
            if expr.id in contract.sized:
                return True
            return self._is_graphish(expr, env, module, cls)
        if isinstance(expr, ast.Attribute):
            if expr.attr in ALWAYS_SIZED_ATTRS:
                return True
            return expr.attr in GRAPH_SIZED_ATTRS and self._is_graphish(
                expr.value, env, module, cls
            )
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Attribute):
                return func.attr in GRAPH_SIZED_ATTRS and self._is_graphish(
                    func.value, env, module, cls
                )
            if isinstance(func, ast.Name):
                if func.id == "range":
                    return any(
                        self._mentions_n(arg, env, module, cls, contract)
                        for arg in expr.args
                    )
                if func.id in FORWARDERS and expr.args:
                    return self._is_sized(expr.args[0], env, module, cls, contract)
            return False
        return False

    def _mentions_n(
        self,
        expr: ast.expr,
        env: dict[str, set],
        module: ModuleInfo,
        cls: str | None,
        contract: StaticContract,
    ) -> bool:
        for node in ast.walk(expr):
            if isinstance(node, ast.Name) and node.id in ({"n"} | set(contract.sized)):
                return True
            if isinstance(node, ast.Attribute) and node.attr in SIZED_RANGE_ATTRS:
                return True
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "len"
                and node.args
                and self._is_sized(node.args[0], env, module, cls, contract)
            ):
                return True
        return False

    def _is_graphish(
        self, expr: ast.expr, env: dict[str, set], module: ModuleInfo, cls: str | None
    ) -> bool:
        for qual in _cls_atoms(self._expr_types(expr, env, module, cls)):
            if qual.rsplit(".", 1)[-1] in GRAPH_CLASSES:
                return True
        if isinstance(expr, ast.Name):
            return expr.id in GRAPH_NAME_HINTS
        if isinstance(expr, ast.Attribute):
            return expr.attr in GRAPH_NAME_HINTS
        return False

    # ------------------------------------------------------------------
    # env construction for a checked function body
    # ------------------------------------------------------------------
    def _build_env(self, fn: FuncInfo) -> dict[str, set]:
        module = self.modules[fn.module]
        env = self._param_env(fn)
        for node in ast.walk(fn.node):
            if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                types = self._annotation_types(node.annotation, module)
                if types:
                    env.setdefault(node.target.id, set()).update(types)
            elif isinstance(node, ast.Assign):
                value_types = self._expr_types(node.value, env, module, fn.cls)
                for target in node.targets:
                    if isinstance(target, ast.Name) and value_types:
                        env.setdefault(target.id, set()).update(value_types)
                    elif isinstance(target, ast.Tuple):
                        for atom in value_types:
                            if atom[0] != "tuple" or len(atom[1]) != len(target.elts):
                                continue
                            for element, slot in zip(target.elts, atom[1]):
                                if isinstance(element, ast.Name) and slot:
                                    env.setdefault(element.id, set()).update(slot)
        return env

    # ------------------------------------------------------------------
    def _finding(
        self,
        fn: FuncInfo,
        node: ast.AST,
        rule: str,
        message: str,
        module: ModuleInfo,
    ) -> Finding:
        return self._make_finding(
            fn, node.lineno, node.col_offset, rule, message, module
        )

    def _make_finding(
        self,
        fn: FuncInfo,
        line: int,
        col: int,
        rule: str,
        message: str,
        module: ModuleInfo,
    ) -> Finding:
        waiver = module.waivers.get(line) or module.waivers.get(line - 1)
        return Finding(
            path=str(fn.path),
            line=line,
            col=col,
            rule=rule,
            function=fn.qualname,
            message=message,
            waived=waiver is not None,
            waiver=waiver,
        )


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _collect_files(paths: list[str | Path]) -> list[Path]:
    out: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                parts = set(candidate.parts)
                if "__pycache__" in parts or any(
                    p.endswith(".egg-info") for p in candidate.parts
                ):
                    continue
                out.append(candidate)
        elif path.suffix == ".py":
            out.append(path)
    return out


def _module_name(path: Path) -> str:
    parts = list(path.with_suffix("").parts)
    for anchor in ("repro",):
        if anchor in parts:
            return ".".join(parts[parts.index(anchor):])
    return path.stem


def _waivers(source: str) -> dict[int, str]:
    out: dict[int, str] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                match = WAIVER_RE.search(token.string)
                if match:
                    out[token.start[0]] = match.group("reason")
    except tokenize.TokenError:
        pass
    return out


def _is_property(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for dec in node.decorator_list:
        name = dec.attr if isinstance(dec, ast.Attribute) else getattr(dec, "id", None)
        if name in ("property", "cached_property"):
            return True
    return False


def _contract_from_decorators(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> StaticContract | None:
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = target.attr if isinstance(target, ast.Attribute) else getattr(target, "id", None)
        if name not in CONTRACT_NAMES:
            continue
        bound = {"constant_time": "O(1)", "pseudo_linear": "O(n^{1+eps})"}.get(name, "")
        sized: tuple[str, ...] = ()
        if isinstance(dec, ast.Call):
            if name in ("delay", "amortized") and dec.args:
                first = dec.args[0]
                if isinstance(first, ast.Constant) and isinstance(first.value, str):
                    bound = first.value
            for kw in dec.keywords:
                if kw.arg == "sized" and isinstance(kw.value, (ast.Tuple, ast.List)):
                    sized = tuple(
                        e.value
                        for e in kw.value.elts
                        if isinstance(e, ast.Constant) and isinstance(e.value, str)
                    )
        if name == "amortized" and not bound:
            bound = "O(1)"
        if name == "delay" and not bound:
            bound = "O(?)"
        return StaticContract(kind=name, bound=bound, sized=sized)
    return None


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------
def check_paths(paths: list[str | Path]) -> Report:
    """Run the checker over files/directories and return the report."""
    return ContractChecker(paths).run()


def main(argv: list[str] | None = None) -> int:
    """CLI: ``python -m repro.contracts [paths...] [--format text|json]``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.contracts",
        description="Statically check the paper's complexity contracts",
    )
    parser.add_argument("paths", nargs="*", default=None)
    parser.add_argument("--format", choices=["text", "json"], default="text")
    args = parser.parse_args(argv)
    paths = args.paths
    if not paths:
        paths = [Path(__file__).resolve().parent.parent]  # the repro package
    try:
        report = check_paths(paths)
    except FileNotFoundError as exc:
        print(f"{parser.prog}: error: {exc}", file=sys.stderr)
        return 2
    print(report.to_json() if args.format == "json" else report.render_text())
    return report.exit_code
