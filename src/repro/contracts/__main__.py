"""``python -m repro.contracts src/`` — run both static passes."""

from __future__ import annotations

import sys

from repro.contracts.lint import main

if __name__ == "__main__":
    sys.exit(main())
