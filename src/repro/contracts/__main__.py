"""``python -m repro.contracts src/`` — run the contract checker."""

from __future__ import annotations

import sys

from repro.contracts.checker import main

if __name__ == "__main__":
    sys.exit(main())
