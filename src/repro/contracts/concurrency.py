"""AST-based concurrency & immutability checker (the second lint pass).

Statically proves the discipline that makes the shared-index read path
race-free: a built index tower is immutable (``@frozen_after_build``),
its read methods never write (``@read_only``), its lazily-filled memo
cells are only touched under their declared locks, and the serving
layer's ``@guarded_by`` fields are only written inside ``with
self.<lock>:``.  Rules:

=========  ==================================================================
rule id    fires when
=========  ==================================================================
CCY101     a ``@read_only`` method of a frozen class writes ``self`` or
           reachable index state — attribute rebinding, subscript or
           augmented assignment, ``del``, or a mutator-method call
           (``append``/``update``/``setdefault``/...) on anything rooted
           at ``self`` or typed to a frozen class.  Declared memo
           *cells* are exempt **only** inside ``with self.<lock>:`` for
           the cell's declared lock; objects constructed inside the
           method (fresh locals) are exempt
CCY102     a ``@read_only`` method calls a ``@builds`` or unannotated
           method of a frozen class (resolved through the same typed
           call resolution as the complexity checker), or reads a
           ``@builds`` property — unless the receiver is a fresh local
CCY103     any *other* function mutates an object typed to a frozen
           class, or calls one of its ``@builds`` methods, outside
           ``__init__``/``@builds`` code and not on a fresh local
CCY104     a method of a ``@guarded_by(lock, *fields)`` class *writes* a
           guarded field outside ``with self.<lock>:`` (lock-free reads
           are deliberately legal); ``__init__``, ``@builds`` and
           ``@locked(lock)`` methods are exempt
CCY105     a method calls a ``@locked(lock)`` sibling without holding
           the lock
CCY106     a stale annotation: a declared cell, guarded field, or lock
           names an attribute the class no longer has
CCY107     a method of a frozen class carries neither ``@read_only`` nor
           ``@builds`` (``__init__``/``__post_init__`` are implicitly
           ``@builds``)
=========  ==================================================================

Waivers work exactly as in the complexity pass: a ``# contract:
<reason>`` comment on the offending line (or the line above) demotes the
finding to a note.  Calls and receivers the type inference cannot
resolve are ignored — like the complexity checker, this pass prefers
false negatives over false positives on the annotated tree.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.contracts.checker import (
    RULE_TITLES,
    ClassInfo,
    ContractChecker,
    Finding,
    FuncInfo,
    ModuleInfo,
    Report,
    _cls_atoms,
    _is_property,
)

RULE_READ_ONLY_WRITE = "CCY101"
RULE_READ_ONLY_CALL = "CCY102"
RULE_FROZEN_EXTERNAL = "CCY103"
RULE_GUARDED_FIELD = "CCY104"
RULE_LOCKED_CALL = "CCY105"
RULE_STALE = "CCY106"
RULE_UNANNOTATED = "CCY107"

RULE_TITLES.update(
    {
        RULE_READ_ONLY_WRITE: "write to index state in a read-only method",
        RULE_READ_ONLY_CALL: "read-only method calls into mutating code",
        RULE_FROZEN_EXTERNAL: "frozen instance mutated outside its build phase",
        RULE_GUARDED_FIELD: "guarded field written outside its lock",
        RULE_LOCKED_CALL: "locked method called without its lock held",
        RULE_STALE: "stale concurrency annotation",
        RULE_UNANNOTATED: "frozen-class method lacks an effect annotation",
    }
)

#: Method names treated as in-place mutation of their receiver.
MUTATOR_METHODS = {
    "add",
    "append",
    "clear",
    "discard",
    "extend",
    "insert",
    "move_to_end",
    "pop",
    "popitem",
    "remove",
    "reverse",
    "setdefault",
    "sort",
    "update",
}

#: Methods the build phase owns implicitly (no decorator needed).
IMPLICIT_BUILDS = {"__init__", "__post_init__"}


# ----------------------------------------------------------------------
# decorator parsing (from syntax — un-imported code is checked the same)
# ----------------------------------------------------------------------
def _decorator_name(dec: ast.expr) -> str | None:
    target = dec.func if isinstance(dec, ast.Call) else dec
    if isinstance(target, ast.Attribute):
        return target.attr
    return getattr(target, "id", None)


def _frozen_cells(node: ast.ClassDef) -> dict[str, str] | None:
    """The ``cells`` mapping if the class is ``@frozen_after_build``."""
    for dec in node.decorator_list:
        if _decorator_name(dec) != "frozen_after_build":
            continue
        cells: dict[str, str] = {}
        if isinstance(dec, ast.Call):
            for kw in dec.keywords:
                if kw.arg == "cells" and isinstance(kw.value, ast.Dict):
                    for key, value in zip(kw.value.keys, kw.value.values):
                        if (
                            isinstance(key, ast.Constant)
                            and isinstance(key.value, str)
                            and isinstance(value, ast.Constant)
                            and isinstance(value.value, str)
                        ):
                            cells[key.value] = value.value
        return cells
    return None


def _guarded_spec(node: ast.ClassDef) -> tuple[str, tuple[str, ...]] | None:
    """``(lock, fields)`` if the class is ``@guarded_by(lock, *fields)``."""
    for dec in node.decorator_list:
        if _decorator_name(dec) != "guarded_by" or not isinstance(dec, ast.Call):
            continue
        names = [
            a.value
            for a in dec.args
            if isinstance(a, ast.Constant) and isinstance(a.value, str)
        ]
        if names:
            return names[0], tuple(names[1:])
    return None


def _effect_kind(node: ast.FunctionDef | ast.AsyncFunctionDef) -> str | None:
    for dec in node.decorator_list:
        name = _decorator_name(dec)
        if name in ("read_only", "builds"):
            return name
    return None


def _locked_lock(node: ast.FunctionDef | ast.AsyncFunctionDef) -> str | None:
    for dec in node.decorator_list:
        if _decorator_name(dec) == "locked" and isinstance(dec, ast.Call):
            if dec.args and isinstance(dec.args[0], ast.Constant):
                value = dec.args[0].value
                if isinstance(value, str):
                    return value
    return None


# ----------------------------------------------------------------------
# lexical lock tracking
# ----------------------------------------------------------------------
def _self_lock_name(expr: ast.expr) -> str | None:
    """``with self._lock:`` -> ``"_lock"`` (anything else -> None)."""
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    ):
        return expr.attr
    return None


def _walk_with_locks(
    root: ast.FunctionDef | ast.AsyncFunctionDef,
) -> list[tuple[ast.AST, frozenset[str]]]:
    """Every node in the body paired with the self-locks held around it."""
    out: list[tuple[ast.AST, frozenset[str]]] = []

    def visit(node: ast.AST, held: frozenset[str]) -> None:
        out.append((node, held))
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner = set(held)
            for item in node.items:
                visit(item.context_expr, held)
                if item.optional_vars is not None:
                    visit(item.optional_vars, held)
                lock = _self_lock_name(item.context_expr)
                if lock is not None:
                    inner.add(lock)
            inner_frozen = frozenset(inner)
            for stmt in node.body:
                visit(stmt, inner_frozen)
            return
        for child in ast.iter_child_nodes(node):
            visit(child, held)

    for stmt in root.body:
        visit(stmt, frozenset())
    return out


def _root_is_self(expr: ast.expr) -> bool:
    node = expr
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return isinstance(node, ast.Name) and node.id == "self"


def _self_attr(expr: ast.expr) -> str | None:
    """``self.<attr>`` -> the attribute name (anything else -> None)."""
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    ):
        return expr.attr
    return None


# ----------------------------------------------------------------------
# the checker
# ----------------------------------------------------------------------
class ConcurrencyChecker(ContractChecker):
    """One concurrency-checking run over a set of files/directories."""

    def __init__(self, paths: list[str | Path]) -> None:
        super().__init__(paths)
        self.frozen: dict[str, dict[str, str]] = {}  # class qual -> cells
        self.guarded: dict[str, tuple[str, tuple[str, ...]]] = {}
        self.effects: dict[str, str] = {}  # func qual -> read_only|builds
        self.locked: dict[str, str] = {}  # func qual -> required lock

    # ------------------------------------------------------------------
    def run(self) -> Report:
        for path in self.files:
            self._index_file(path)
        for cls in self.classes.values():
            self._infer_attr_types(cls)
        self._collect_specs()
        findings: list[Finding] = []
        checked = 0
        for cls in self.classes.values():
            cells = self.frozen.get(cls.qualname)
            guard = self.guarded.get(cls.qualname)
            if cells is not None:
                checked += len(cls.methods)
                self._check_frozen_class(cls, cells, findings)
            if guard is not None:
                if cells is None:
                    checked += len(cls.methods)
                self._check_guarded_class(cls, guard, findings)
            self._check_stale(cls, cells, guard, findings)
        if self.frozen:
            self._check_external_mutation(findings)
        findings.sort(key=lambda f: (f.path, f.line, f.rule))
        deduped: list[Finding] = []
        seen = set()
        for f in findings:
            key = (f.path, f.line, f.rule, f.message)
            if key not in seen:
                seen.add(key)
                deduped.append(f)
        return Report(deduped, len(self.files), checked)

    # ------------------------------------------------------------------
    def _collect_specs(self) -> None:
        for cls in self.classes.values():
            cells = _frozen_cells(cls.node)
            if cells is not None:
                self.frozen[cls.qualname] = cells
            guard = _guarded_spec(cls.node)
            if guard is not None:
                self.guarded[cls.qualname] = guard
        for fn in self.functions.values():
            effect = _effect_kind(fn.node)
            if effect is not None:
                self.effects[fn.qualname] = effect
            lock = _locked_lock(fn.node)
            if lock is not None:
                self.locked[fn.qualname] = lock

    def _frozen_atoms(self, types: set) -> list[str]:
        return [qual for qual in _cls_atoms(types) if qual in self.frozen]

    # ------------------------------------------------------------------
    # mutation extraction
    # ------------------------------------------------------------------
    def _mutations(
        self, fn: FuncInfo
    ) -> list[tuple[ast.AST, ast.expr, str | None, frozenset[str]]]:
        """``(locus, owner, attr, held-locks)`` for every write in ``fn``.

        ``attr`` set means ``owner.attr`` is rebound (setattr); ``attr``
        None means the object denoted by ``owner`` is mutated in place
        (subscript write, ``del``, or a mutator-method call).
        """
        out: list[tuple[ast.AST, ast.expr, str | None, frozenset[str]]] = []
        for node, held in _walk_with_locks(fn.node):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    self._target_mutations(node, target, held, out)
            elif isinstance(node, ast.AugAssign):
                self._target_mutations(node, node.target, held, out)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                self._target_mutations(node, node.target, held, out)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    self._target_mutations(node, target, held, out)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in MUTATOR_METHODS
            ):
                out.append((node, node.func.value, None, held))
        return out

    def _target_mutations(
        self,
        locus: ast.AST,
        target: ast.expr,
        held: frozenset[str],
        out: list,
    ) -> None:
        if isinstance(target, ast.Attribute):
            out.append((locus, target.value, target.attr, held))
        elif isinstance(target, ast.Subscript):
            out.append((locus, target.value, None, held))
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._target_mutations(locus, element, held, out)
        elif isinstance(target, ast.Starred):
            self._target_mutations(locus, target.value, held, out)

    def _fresh_locals(
        self, fn: FuncInfo, env: dict[str, set], module: ModuleInfo
    ) -> set[str]:
        """Names only ever bound to objects constructed in this function."""
        fresh: set[str] = set()
        tainted: set[str] = set()
        for node in ast.walk(fn.node):
            value: ast.expr | None = None
            names: list[str] = []
            if isinstance(node, ast.Assign):
                value = node.value
                names = [t.id for t in node.targets if isinstance(t, ast.Name)]
            elif (
                isinstance(node, ast.AnnAssign)
                and isinstance(node.target, ast.Name)
                and node.value is not None
            ):
                value = node.value
                names = [node.target.id]
            if not names:
                continue
            if isinstance(value, ast.Call):
                resolved = self._resolve_call(value, env, module, fn.cls)
                if resolved is not None and resolved[0] == "class":
                    fresh.update(names)
                    continue
            tainted.update(names)
        return fresh - tainted

    # ------------------------------------------------------------------
    # frozen classes: CCY101 / CCY102 / CCY107
    # ------------------------------------------------------------------
    def _check_frozen_class(
        self, cls: ClassInfo, cells: dict[str, str], findings: list[Finding]
    ) -> None:
        module = self.modules[cls.module]
        for fn in cls.methods.values():
            if fn.name in IMPLICIT_BUILDS:
                continue
            effect = self.effects.get(fn.qualname)
            if effect is None:
                findings.append(
                    self._finding(
                        fn,
                        fn.node,
                        RULE_UNANNOTATED,
                        f"method of frozen class {cls.qualname} carries "
                        f"neither @read_only nor @builds",
                        module,
                    )
                )
                continue
            if effect != "read_only":
                continue
            env = self._build_env(fn)
            fresh = self._fresh_locals(fn, env, module)
            self._check_read_only_writes(cls, cells, fn, env, fresh, module, findings)
            self._check_read_only_calls(cls, fn, env, fresh, module, findings)

    def _check_read_only_writes(
        self,
        cls: ClassInfo,
        cells: dict[str, str],
        fn: FuncInfo,
        env: dict[str, set],
        fresh: set[str],
        module: ModuleInfo,
        findings: list[Finding],
    ) -> None:
        for locus, owner, attr, held in self._mutations(fn):
            if isinstance(owner, ast.Name) and owner.id in fresh:
                continue
            if attr is not None:
                # attribute rebinding: owner.attr = ...
                if isinstance(owner, ast.Name) and owner.id == "self":
                    lock = cells.get(attr)
                    if lock is not None and lock in held:
                        continue
                    if lock is not None:
                        message = (
                            f"memo cell 'self.{attr}' filled outside "
                            f"'with self.{lock}:' (its declared lock)"
                        )
                    else:
                        message = (
                            f"read-only method rebinds 'self.{attr}' "
                            f"(not a declared memo cell)"
                        )
                    findings.append(
                        self._finding(fn, locus, RULE_READ_ONLY_WRITE, message, module)
                    )
                    continue
                if _root_is_self(owner) or self._frozen_atoms(
                    self._expr_types(owner, env, module, fn.cls)
                ):
                    findings.append(
                        self._finding(
                            fn,
                            locus,
                            RULE_READ_ONLY_WRITE,
                            f"read-only method writes attribute {attr!r} of "
                            f"reachable index state ({ast.unparse(owner)})",
                            module,
                        )
                    )
                continue
            # in-place mutation of the object denoted by owner
            cell = _self_attr(owner)
            if cell is not None:
                lock = cells.get(cell)
                if lock is not None and lock in held:
                    continue
                if lock is not None:
                    message = (
                        f"memo cell 'self.{cell}' mutated outside "
                        f"'with self.{lock}:' (its declared lock)"
                    )
                else:
                    message = (
                        f"read-only method mutates 'self.{cell}' in place "
                        f"(not a declared memo cell)"
                    )
                findings.append(
                    self._finding(fn, locus, RULE_READ_ONLY_WRITE, message, module)
                )
                continue
            if _root_is_self(owner) or self._frozen_atoms(
                self._expr_types(owner, env, module, fn.cls)
            ):
                findings.append(
                    self._finding(
                        fn,
                        locus,
                        RULE_READ_ONLY_WRITE,
                        f"read-only method mutates reachable index state "
                        f"({ast.unparse(owner)})",
                        module,
                    )
                )

    def _check_read_only_calls(
        self,
        cls: ClassInfo,
        fn: FuncInfo,
        env: dict[str, set],
        fresh: set[str],
        module: ModuleInfo,
        findings: list[Finding],
    ) -> None:
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                resolved = self._resolve_call(node, env, module, fn.cls)
                if resolved is None or resolved[0] != "funcs":
                    continue
                receiver_fresh = (
                    isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in fresh
                )
                if receiver_fresh:
                    continue
                for callee in resolved[1]:
                    if callee.cls not in self.frozen:
                        continue
                    effect = self.effects.get(callee.qualname)
                    if effect == "read_only":
                        continue
                    label = effect if effect is not None else "unannotated"
                    findings.append(
                        self._finding(
                            fn,
                            node,
                            RULE_READ_ONLY_CALL,
                            f"read-only method calls {callee.qualname} "
                            f"[{label}] on a frozen class",
                            module,
                        )
                    )
            elif isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
                if isinstance(node.value, ast.Name) and node.value.id in fresh:
                    continue
                for qual in self._frozen_atoms(
                    self._expr_types(node.value, env, module, fn.cls)
                ):
                    info = self.classes.get(qual)
                    method = info.methods.get(node.attr) if info else None
                    if (
                        method is not None
                        and _is_property(method.node)
                        and self.effects.get(method.qualname) == "builds"
                    ):
                        findings.append(
                            self._finding(
                                fn,
                                node,
                                RULE_READ_ONLY_CALL,
                                f"read-only method reads @builds property "
                                f"{method.qualname}",
                                module,
                            )
                        )

    # ------------------------------------------------------------------
    # everything else: CCY103
    # ------------------------------------------------------------------
    def _check_external_mutation(self, findings: list[Finding]) -> None:
        for fn in self.functions.values():
            if fn.cls in self.frozen:
                continue  # covered by CCY101/CCY107
            if fn.name in IMPLICIT_BUILDS:
                continue
            if self.effects.get(fn.qualname) == "builds":
                continue
            module = self.modules[fn.module]
            env = self._build_env(fn)
            fresh = self._fresh_locals(fn, env, module)
            for locus, owner, attr, held in self._mutations(fn):
                if isinstance(owner, ast.Name) and owner.id in fresh:
                    continue
                frozen = self._frozen_atoms(
                    self._expr_types(owner, env, module, fn.cls)
                )
                if frozen:
                    what = (
                        f"rebinds attribute {attr!r} of" if attr is not None
                        else "mutates"
                    )
                    findings.append(
                        self._finding(
                            fn,
                            locus,
                            RULE_FROZEN_EXTERNAL,
                            f"{what} a frozen {', '.join(sorted(frozen))} "
                            f"instance outside its build phase",
                            module,
                        )
                    )
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                resolved = self._resolve_call(node, env, module, fn.cls)
                if resolved is None or resolved[0] != "funcs":
                    continue
                receiver_fresh = (
                    isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in fresh
                )
                if receiver_fresh:
                    continue
                for callee in resolved[1]:
                    if (
                        callee.cls in self.frozen
                        and self.effects.get(callee.qualname) == "builds"
                    ):
                        findings.append(
                            self._finding(
                                fn,
                                node,
                                RULE_FROZEN_EXTERNAL,
                                f"calls build-phase method {callee.qualname} "
                                f"on a frozen instance outside its build phase",
                                module,
                            )
                        )

    # ------------------------------------------------------------------
    # guarded classes: CCY104 / CCY105
    # ------------------------------------------------------------------
    def _check_guarded_class(
        self,
        cls: ClassInfo,
        guard: tuple[str, tuple[str, ...]],
        findings: list[Finding],
    ) -> None:
        lock, fields = guard
        field_set = set(fields)
        module = self.modules[cls.module]
        for fn in cls.methods.values():
            if fn.name in IMPLICIT_BUILDS:
                continue
            if self.effects.get(fn.qualname) == "builds":
                continue
            holds_by_contract = self.locked.get(fn.qualname) == lock
            if not holds_by_contract:
                for locus, owner, attr, held in self._mutations(fn):
                    field = None
                    if (
                        attr is not None
                        and isinstance(owner, ast.Name)
                        and owner.id == "self"
                        and attr in field_set
                    ):
                        field = attr
                    elif attr is None:
                        candidate = _self_attr(owner)
                        if candidate in field_set:
                            field = candidate
                    if field is not None and lock not in held:
                        findings.append(
                            self._finding(
                                fn,
                                locus,
                                RULE_GUARDED_FIELD,
                                f"guarded field 'self.{field}' written outside "
                                f"'with self.{lock}:'",
                                module,
                            )
                        )
            for node, held in _walk_with_locks(fn.node):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "self"
                ):
                    continue
                callee = cls.methods.get(node.func.attr)
                if (
                    callee is not None
                    and self.locked.get(callee.qualname) == lock
                    and lock not in held
                    and not holds_by_contract
                ):
                    findings.append(
                        self._finding(
                            fn,
                            node,
                            RULE_LOCKED_CALL,
                            f"calls @locked({lock!r}) method {callee.qualname} "
                            f"without holding 'self.{lock}'",
                            module,
                        )
                    )

    # ------------------------------------------------------------------
    # stale annotations: CCY106
    # ------------------------------------------------------------------
    def _assigned_attrs(self, cls: ClassInfo) -> set[str]:
        """Every attribute the class plausibly has: class-body names,
        ``__slots__`` entries, and ``self.x`` assignment targets."""
        out: set[str] = set()
        for stmt in cls.node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                out.add(stmt.target.id)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if not isinstance(target, ast.Name):
                        continue
                    out.add(target.id)
                    if target.id == "__slots__" and isinstance(
                        stmt.value, (ast.Tuple, ast.List)
                    ):
                        out.update(
                            e.value
                            for e in stmt.value.elts
                            if isinstance(e, ast.Constant)
                            and isinstance(e.value, str)
                        )
        for fn in cls.methods.values():
            for node in ast.walk(fn.node):
                targets: list[ast.expr] = []
                if isinstance(node, ast.Assign):
                    targets = list(node.targets)
                elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                    targets = [node.target]
                for target in targets:
                    attr = None
                    if isinstance(target, ast.Attribute):
                        attr = _self_attr(target)
                    if attr is not None:
                        out.add(attr)
        return out

    def _check_stale(
        self,
        cls: ClassInfo,
        cells: dict[str, str] | None,
        guard: tuple[str, tuple[str, ...]] | None,
        findings: list[Finding],
    ) -> None:
        if cells is None and guard is None and not any(
            self.locked.get(fn.qualname) for fn in cls.methods.values()
        ):
            return
        module = self.modules[cls.module]
        attrs = self._assigned_attrs(cls)
        anchor = next(iter(cls.methods.values()), None)

        def stale(line: int, col: int, message: str) -> None:
            findings.append(
                self._finding_at(
                    cls, anchor, line, col, RULE_STALE, message, module
                )
            )

        if cells is not None:
            for cell, lock in sorted(cells.items()):
                if cell not in attrs:
                    stale(
                        cls.node.lineno,
                        cls.node.col_offset,
                        f"declared memo cell {cell!r} is not an attribute "
                        f"of {cls.qualname}",
                    )
                if lock not in attrs:
                    stale(
                        cls.node.lineno,
                        cls.node.col_offset,
                        f"lock {lock!r} declared for cell {cell!r} is not "
                        f"an attribute of {cls.qualname}",
                    )
        if guard is not None:
            lock, fields = guard
            if lock not in attrs:
                stale(
                    cls.node.lineno,
                    cls.node.col_offset,
                    f"guarded_by lock {lock!r} is not an attribute of "
                    f"{cls.qualname}",
                )
            for field in fields:
                if field not in attrs:
                    stale(
                        cls.node.lineno,
                        cls.node.col_offset,
                        f"guarded field {field!r} is not an attribute of "
                        f"{cls.qualname}",
                    )
        for fn in cls.methods.values():
            lock = self.locked.get(fn.qualname)
            if lock is not None and lock not in attrs:
                stale(
                    fn.node.lineno,
                    fn.node.col_offset,
                    f"@locked lock {lock!r} is not an attribute of "
                    f"{cls.qualname}",
                )

    def _finding_at(
        self,
        cls: ClassInfo,
        anchor: FuncInfo | None,
        line: int,
        col: int,
        rule: str,
        message: str,
        module: ModuleInfo,
    ) -> Finding:
        waiver = module.waivers.get(line) or module.waivers.get(line - 1)
        return Finding(
            path=str(anchor.path if anchor is not None else module.path),
            line=line,
            col=col,
            rule=rule,
            function=cls.qualname,
            message=message,
            waived=waiver is not None,
            waiver=waiver,
        )


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------
def check_concurrency(paths: list[str | Path]) -> Report:
    """Run the concurrency checker over files/directories."""
    return ConcurrencyChecker(paths).run()
