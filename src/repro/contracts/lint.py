"""Unified lint front-end: complexity + concurrency passes, one report.

``repro lint`` (and ``python -m repro.contracts``) runs both static
passes over the same tree and merges their findings into a single
:class:`~repro.contracts.checker.Report` — one exit code, one JSON
document with per-rule counts (``"rules"``), one waiver vocabulary.

Exit codes follow the :mod:`repro.errors` convention: 0 clean, 1 on
unwaived findings, 2 on usage errors (bad path, bad flags).
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.contracts.checker import Report
from repro.contracts.checker import check_paths as check_complexity
from repro.contracts.concurrency import check_concurrency


def run_lint(paths: list[str | Path]) -> Report:
    """Run both passes and merge their findings into one report.

    ``files_checked`` counts each file once; ``functions_checked`` sums
    the contracted functions of the complexity pass and the effect- or
    lock-annotated methods of the concurrency pass.
    """
    complexity = check_complexity(paths)
    concurrency = check_concurrency(paths)
    findings = sorted(
        complexity.findings + concurrency.findings,
        key=lambda f: (f.path, f.line, f.rule),
    )
    return Report(
        findings=findings,
        files_checked=complexity.files_checked,
        functions_checked=(
            complexity.functions_checked + concurrency.functions_checked
        ),
    )


def main(argv: list[str] | None = None) -> int:
    """CLI: ``python -m repro.contracts [paths...] [--format text|json]``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.contracts",
        description=(
            "Statically check the paper's complexity contracts and the "
            "serving layer's concurrency contracts"
        ),
    )
    parser.add_argument("paths", nargs="*", default=None)
    parser.add_argument("--format", choices=["text", "json"], default="text")
    args = parser.parse_args(argv)
    paths = args.paths
    if not paths:
        paths = [Path(__file__).resolve().parent.parent]  # the repro package
    try:
        report = run_lint(paths)
    except FileNotFoundError as exc:
        print(f"{parser.prog}: error: {exc}", file=sys.stderr)
        return 2
    print(report.to_json() if args.format == "json" else report.render_text())
    return report.exit_code
