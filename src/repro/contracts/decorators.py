"""The complexity-contract decorator vocabulary.

A contract states the asymptotic cost of one function for fixed query
parameters (arity ``k``, exponent ``eps``, radius ``r``) as ``n = |G|``
grows — the paper's measurement convention throughout.

========================  ====================================================
decorator                 meaning
========================  ====================================================
``@constant_time``        worst-case ``O(1)`` per call (Theorem 3.1 lookups,
                          Corollary 2.4 tests, Lemma 5.8 SKIP, ...)
``@delay(bound)``         worst-case ``bound`` per operation; for generators,
                          per *emitted answer* (``@delay("O(1)")`` is
                          Corollary 2.5's constant delay and is held to the
                          same static rules as ``@constant_time``)
``@pseudo_linear``        total ``O(n^{1+eps})`` — the preprocessing budget
``@amortized(bound)``     ``bound`` holds amortized, not worst-case (caches,
                          lazy construction).  The checker exempts these but
                          flags any un-waived call into them from a
                          constant-time context.
========================  ====================================================

The decorators attach a :class:`Contract` to the function and return it
**unchanged** — zero overhead on the hot path.  They also register the
function so :func:`instrument` can later swap in counting wrappers: inside
``with instrument() as counts:`` every call to a contracted function is
tallied by qualified name, letting tests cross-check the static verdict
empirically (e.g. reads per ``TrieStore.lookup`` must be flat in ``n``
while writes per ``insert`` grow like ``n^eps`` — see
``tests/contracts/test_decorators.py``).
"""

from __future__ import annotations

import sys
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any

CONSTANT_TIME = "constant_time"
DELAY = "delay"
PSEUDO_LINEAR = "pseudo_linear"
AMORTIZED = "amortized"


@dataclass(frozen=True)
class Contract:
    """One function's declared asymptotic bound.

    Attributes
    ----------
    kind:
        One of ``constant_time``, ``delay``, ``pseudo_linear``,
        ``amortized``.
    bound:
        The bound as written, e.g. ``"O(1)"`` or ``"O(n^eps)"``.
    note:
        Free-text justification (usually the paper item being claimed).
    sized:
        Extra local names the checker must treat as graph-sized inside
        this function (beyond its built-in heuristics).
    """

    kind: str
    bound: str
    note: str | None = None
    sized: tuple[str, ...] = ()

    @property
    def constant(self) -> bool:
        """Does this contract promise worst-case O(1) per operation?"""
        return self.kind == CONSTANT_TIME or (
            self.kind == DELAY and self.bound == "O(1)"
        )


#: Raw decorated functions, in decoration order (instrumentation targets).
_REGISTRY: list[Callable] = []


def _attach(fn: Callable, contract: Contract) -> Callable:
    fn.__contract__ = contract  # type: ignore[attr-defined]
    _REGISTRY.append(fn)
    return fn


def constant_time(
    fn: Callable | None = None,
    *,
    note: str | None = None,
    sized: tuple[str, ...] = (),
) -> Callable:
    """Declare worst-case O(1) per call (for fixed k, eps, r)."""
    contract = Contract(CONSTANT_TIME, "O(1)", note, tuple(sized))
    if fn is None:
        return lambda f: _attach(f, contract)
    return _attach(fn, contract)


def delay(
    bound: str, *, note: str | None = None, sized: tuple[str, ...] = ()
) -> Callable:
    """Declare a worst-case per-operation (per-answer, for generators) bound."""
    contract = Contract(DELAY, bound, note, tuple(sized))
    return lambda f: _attach(f, contract)


def pseudo_linear(
    fn: Callable | None = None,
    *,
    note: str | None = None,
    sized: tuple[str, ...] = (),
) -> Callable:
    """Declare total O(n^{1+eps}) — the preprocessing budget."""
    contract = Contract(PSEUDO_LINEAR, "O(n^{1+eps})", note, tuple(sized))
    if fn is None:
        return lambda f: _attach(f, contract)
    return _attach(fn, contract)


def amortized(
    bound: str = "O(1)", *, note: str | None = None, sized: tuple[str, ...] = ()
) -> Callable:
    """Declare an amortized bound (caches, lazy builds) — the escape hatch."""
    contract = Contract(AMORTIZED, bound, note, tuple(sized))
    return lambda f: _attach(f, contract)


def contract_of(obj: Any) -> Contract | None:
    """The :class:`Contract` attached to ``obj``, if any."""
    return getattr(obj, "__contract__", None)


def registered_contracts() -> list[tuple[str, Contract]]:
    """All decorated functions as ``(qualified name, contract)`` pairs."""
    return [
        (f"{fn.__module__}.{fn.__qualname__}", fn.__contract__)  # type: ignore[attr-defined]
        for fn in _REGISTRY
    ]


# ----------------------------------------------------------------------
# runtime instrumentation (the empirical cross-check)
# ----------------------------------------------------------------------
def _resolve_slot(fn: Callable) -> tuple[Any, str] | None:
    """The (owner, attribute) pair through which ``fn`` is reached at call
    time — its module for top-level functions, its class for methods.
    Functions defined inside other functions cannot be patched."""
    parts = fn.__qualname__.split(".")
    if "<locals>" in parts:
        return None
    owner: Any = sys.modules.get(fn.__module__)
    for part in parts[:-1]:
        owner = getattr(owner, part, None)
        if owner is None:
            return None
    name = parts[-1]
    slot = owner.__dict__.get(name) if hasattr(owner, "__dict__") else None
    underlying = slot.__func__ if isinstance(slot, (staticmethod, classmethod)) else slot
    if underlying is not fn:
        return None  # already wrapped, shadowed, or property-wrapped
    return owner, name


def _counting_wrapper(fn: Callable, counts: dict[str, int]) -> Callable:
    import functools

    qualname = f"{fn.__module__}.{fn.__qualname__}"

    @functools.wraps(fn)
    def wrapper(*args: Any, **kwargs: Any) -> Any:
        counts[qualname] = counts.get(qualname, 0) + 1
        return fn(*args, **kwargs)

    return wrapper


@contextmanager
def instrument() -> Iterator[dict[str, int]]:
    """Count calls to every contracted function while the context is open.

    Yields a dict mapping qualified names to call counts, updated live.
    Patches are applied to the owning module/class and fully reverted on
    exit, so the zero-overhead property of the decorators is preserved
    outside the context.  The primitive-operation counts this produces are
    what ``analysis.flatness`` / ``analysis.fit_exponent`` consume to
    verify the contracts empirically.
    """
    counts: dict[str, int] = {}
    patched: list[tuple[Any, str, Any]] = []
    try:
        for fn in list(_REGISTRY):
            resolved = _resolve_slot(fn)
            if resolved is None:
                continue
            owner, name = resolved
            original = owner.__dict__[name]
            wrapper: Any = _counting_wrapper(fn, counts)
            if isinstance(original, staticmethod):
                wrapper = staticmethod(wrapper)
            elif isinstance(original, classmethod):
                wrapper = classmethod(wrapper)
            setattr(owner, name, wrapper)
            patched.append((owner, name, original))
        yield counts
    finally:
        for owner, name, original in reversed(patched):
            setattr(owner, name, original)
