"""Complexity contracts: the paper's asymptotic guarantees as checked code.

Every headline result of the paper is an asymptotic contract — Theorem
3.1's constant-time lookup-or-successor, Corollary 2.5's constant-delay
enumeration, Lemma 5.8's constant-time SKIP.  This package turns those
contracts from docstring prose into machine-checked annotations:

* :mod:`repro.contracts.decorators` — the vocabulary
  (:func:`constant_time`, :func:`pseudo_linear`, :func:`delay`,
  :func:`amortized`) applied to the hot-path functions across
  ``storage/``, ``core/`` and ``covers/``.  The decorators are free at
  runtime (they tag the function and return it unchanged) and double as
  instrumentation points: :func:`instrument` swaps counting wrappers in
  so tests can cross-check the static verdict empirically.
* :mod:`repro.contracts.checker` — an AST checker that walks every
  annotated function and flags contract violations: loops over
  graph-sized collections, recursion, and calls from a constant-time
  function into anything not itself constant-time (a call-graph closure
  check with lightweight type inference).  ``# contract: <reason>``
  comments waive a finding while keeping it in the report.

* :mod:`repro.contracts.effects` — the concurrency vocabulary
  (:func:`frozen_after_build`, :func:`read_only`, :func:`builds`,
  :func:`guarded_by`, :func:`locked`) that states the build-then-freeze
  discipline of the shared-index read path, plus the runtime
  :func:`freeze` tripwire (``repro serve --paranoid``).
* :mod:`repro.contracts.concurrency` — the matching AST pass (CCY101 —
  CCY107): no writes from ``@read_only`` methods, no mutation of frozen
  instances outside their build phase, ``guarded_by`` fields written
  only under their lock, stale annotations flagged.

Run both passes as ``repro lint src/`` or ``python -m repro.contracts
src/`` — one merged report, one waiver vocabulary.
"""

from repro.contracts.decorators import (
    Contract,
    amortized,
    constant_time,
    contract_of,
    delay,
    instrument,
    pseudo_linear,
    registered_contracts,
)
from repro.contracts.effects import (
    Effect,
    FrozenMutationError,
    FrozenSpec,
    GuardedSpec,
    build_phase,
    builds,
    effect_of,
    freeze,
    freeze_active,
    frozen_after_build,
    frozen_classes,
    frozen_spec_of,
    guarded_by,
    in_build_phase,
    install_freeze,
    locked,
    read_only,
    uninstall_freeze,
)

__all__ = [
    "Contract",
    "Effect",
    "FrozenMutationError",
    "FrozenSpec",
    "GuardedSpec",
    "amortized",
    "build_phase",
    "builds",
    "constant_time",
    "contract_of",
    "delay",
    "effect_of",
    "freeze",
    "freeze_active",
    "frozen_after_build",
    "frozen_classes",
    "frozen_spec_of",
    "guarded_by",
    "in_build_phase",
    "install_freeze",
    "instrument",
    "locked",
    "pseudo_linear",
    "read_only",
    "registered_contracts",
    "uninstall_freeze",
]
