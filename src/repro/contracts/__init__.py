"""Complexity contracts: the paper's asymptotic guarantees as checked code.

Every headline result of the paper is an asymptotic contract — Theorem
3.1's constant-time lookup-or-successor, Corollary 2.5's constant-delay
enumeration, Lemma 5.8's constant-time SKIP.  This package turns those
contracts from docstring prose into machine-checked annotations:

* :mod:`repro.contracts.decorators` — the vocabulary
  (:func:`constant_time`, :func:`pseudo_linear`, :func:`delay`,
  :func:`amortized`) applied to the hot-path functions across
  ``storage/``, ``core/`` and ``covers/``.  The decorators are free at
  runtime (they tag the function and return it unchanged) and double as
  instrumentation points: :func:`instrument` swaps counting wrappers in
  so tests can cross-check the static verdict empirically.
* :mod:`repro.contracts.checker` — an AST checker that walks every
  annotated function and flags contract violations: loops over
  graph-sized collections, recursion, and calls from a constant-time
  function into anything not itself constant-time (a call-graph closure
  check with lightweight type inference).  ``# contract: <reason>``
  comments waive a finding while keeping it in the report.

Run it as ``repro lint src/`` or ``python -m repro.contracts src/``.
"""

from repro.contracts.decorators import (
    Contract,
    amortized,
    constant_time,
    contract_of,
    delay,
    instrument,
    pseudo_linear,
    registered_contracts,
)

__all__ = [
    "Contract",
    "amortized",
    "constant_time",
    "contract_of",
    "delay",
    "instrument",
    "pseudo_linear",
    "registered_contracts",
]
