"""The Storing Theorem trie (Theorem 3.1, Appendix Section 7).

Stores a partial function ``f`` with ``Dom(f) ⊆ [n]^k`` as the paper's
partial ``d``-ary tree ``T(f)`` of depth ``k*h``, where ``d = ⌈n^eps⌉`` and
``h = ⌈1/eps⌉`` (so ``d^h >= n``).  Every node is a block of ``d+1``
consecutive registers:

* cell ``i < d`` holds ``(1, child)`` when the ``i``-th child exists —
  ``child`` is the child's first register for inner levels, and the stored
  *value* ``f(ā)`` at the deepest level;
* cell ``i < d`` holds ``(0, succ)`` when it does not — ``succ`` is the
  smallest domain tuple whose encoding exceeds the cell's prefix (``None``
  if there is none).  This is the shortcut making *lookup-or-successor*
  constant time;
* the trailing register holds ``(-1, parent_cell)``, the back-pointer used
  by the update procedures (``None`` for the root).

Register ``R_0`` holds the next free register, as in the paper; arrays are
compacted on removal by moving the physically-last block into the freed
slot (procedure ``Cut``).

Complexities for fixed ``k`` and ``eps`` (Theorem 3.1): lookup ``O(k*h)``
= constant; insert/remove ``O(d*k*h)`` = ``O(n^eps)``; space
``O(|Dom(f)| * d * k * h)`` = ``O(|Dom(f)| * n^eps)`` registers.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator
from typing import Any

from repro.contracts import (
    builds,
    constant_time,
    delay,
    frozen_after_build,
    pseudo_linear,
    read_only,
)
from repro.metrics.runtime import count as _metrics_count
from repro.storage.registers import CHILD, GAP, PARENT, RegisterFile
from repro.trace.runtime import span as _trace_span

#: Lookup outcome tags.
HIT = "hit"
MISS = "miss"


@frozen_after_build
class TrieStore:
    """Theorem 3.1's data structure for one fixed key order.

    Parameters
    ----------
    n:
        Keys are ``k``-tuples over ``[0, n)``.
    k:
        Key arity (``>= 1``).
    eps:
        The space/update exponent; determines the branching factor
        ``d = ⌈n^eps⌉`` and depth ``h = ⌈1/eps⌉`` per coordinate.
    """

    __slots__ = ("n", "k", "eps", "d", "h", "depth", "registers", "_root", "_size")

    def __init__(self, n: int, k: int, eps: float) -> None:
        if n < 1:
            raise ValueError(f"n must be positive, got {n}")
        if k < 1:
            raise ValueError(f"k must be positive, got {k}")
        if not 0 < eps <= 1:
            raise ValueError(f"eps must be in (0, 1], got {eps}")
        self.n = n
        self.k = k
        self.eps = eps
        # d >= 2 always: a degenerate one-cell fanout (n=1 used to yield
        # d=1) makes _increment overflow on every call and leaves the
        # _fill_* walks with nothing to skip over, so the universe of a
        # single key still gets the ordinary two-way branching.
        self.d = max(2, math.ceil(n ** eps))
        self.h = max(1, math.ceil(1 / eps))
        while self.d ** self.h < n:  # guard against float rounding in n**eps
            self.h += 1
        self.depth = k * self.h  # number of branching levels
        with _trace_span("trie.create", n=n, k=k, d=self.d, h=self.h):
            self.registers = self._make_registers()
            self._root = self._new_node(parent_cell=None)
            self._size = 0

    @builds
    def _make_registers(self) -> RegisterFile:
        """The backing register file; the arena layout overrides this."""
        return RegisterFile()

    # ------------------------------------------------------------------
    # encoding (Algorithm 1, "Decomposition")
    # ------------------------------------------------------------------
    @constant_time(note="k*h digit extractions; k, h fixed")
    @read_only
    def _encode(self, key: tuple[int, ...]) -> list[int]:
        """Base-``d`` digits of ``key``, most significant first per coordinate."""
        if len(key) != self.k:
            raise ValueError(f"expected a {self.k}-tuple, got {key!r}")
        digits = [0] * self.depth
        for i, coordinate in enumerate(key):
            if not 0 <= coordinate < self.n:
                raise ValueError(f"coordinate {coordinate} out of range [0, {self.n})")
            value = coordinate
            base = (i + 1) * self.h - 1
            for j in range(self.h):
                value, digit = divmod(value, self.d)
                digits[base - j] = digit
        return digits

    @constant_time(note="k*h digit folds; k, h fixed")
    @read_only
    def _decode(self, digits: list[int]) -> tuple[int, ...]:
        key = []
        for i in range(self.k):
            value = 0
            for j in range(i * self.h, (i + 1) * self.h):
                value = value * self.d + digits[j]
            key.append(value)
        return tuple(key)

    @staticmethod
    @constant_time(note="one pass over k*h digits")
    @read_only
    def _increment(digits: list[int], d: int) -> list[int] | None:
        """The digit string following ``digits`` in base ``d``; None on overflow."""
        out = list(digits)
        for i in range(len(out) - 1, -1, -1):
            if out[i] + 1 < d:
                out[i] += 1
                return out
            out[i] = 0
        return None

    # ------------------------------------------------------------------
    # node allocation
    # ------------------------------------------------------------------
    @builds
    def _new_node(self, parent_cell: int | None) -> int:
        base = self.registers.allocate(self.d + 1)
        for j in range(self.d):
            self.registers.write(base + j, GAP, None)
        self.registers.write(base + self.d, PARENT, parent_cell)
        return base

    # ------------------------------------------------------------------
    # lookup (Algorithm 2, "Access")
    # ------------------------------------------------------------------
    @constant_time(note="Theorem 3.1 lookup-or-successor")
    @read_only
    def lookup(self, key: tuple[int, ...]) -> tuple[str, Any]:
        """Constant-time lookup-or-successor.

        Returns ``(HIT, value)`` if ``key`` is stored, else
        ``(MISS, succ)`` where ``succ`` is the smallest stored key
        ``> key`` (or ``None`` if none exists).
        """
        _metrics_count("trie.lookup")
        return self._lookup_digits(self._encode(key))

    @constant_time(note="one root-to-leaf walk of depth k*h")
    @read_only
    def _lookup_digits(self, digits: list[int]) -> tuple[str, Any]:
        base = self._root
        last = self.depth - 1
        for t, digit in enumerate(digits):
            delta, payload = self.registers.read(base + digit)
            if delta == GAP:
                return (MISS, payload)
            if t == last:
                return (HIT, payload)
            base = payload
        raise AssertionError("unreachable: trie walk fell through")  # pragma: no cover

    @constant_time
    @read_only
    def get(self, key: tuple[int, ...], default: Any = None) -> Any:
        """dict.get semantics."""
        status, payload = self.lookup(key)
        return payload if status == HIT else default

    @constant_time
    @read_only
    def __contains__(self, key: tuple[int, ...]) -> bool:
        return self.lookup(key)[0] == HIT

    @constant_time(note="Section 7.2.2: at most two trie walks")
    @read_only
    def successor(self, key: tuple[int, ...], strict: bool = False) -> tuple[int, ...] | None:
        """Smallest stored key ``>= key`` (``> key`` when ``strict``).

        Constant time: one or two trie walks (Section 7.2.2).
        """
        _metrics_count("trie.successor")
        digits = self._encode(key)
        if not strict:
            status, payload = self._lookup_digits(digits)
            if status == HIT:
                return key
            return payload
        bumped = self._increment(digits, self.d)
        if bumped is None:
            return None
        status, payload = self._lookup_digits(bumped)
        if status == HIT:
            return self._decode(bumped)
        return payload

    # ------------------------------------------------------------------
    # predecessor (in-structure walk; O(d * k * h), used by updates)
    # ------------------------------------------------------------------
    @delay("O(n^eps)", note="in-structure walk; see predecessor() docstring")
    @read_only
    def _predecessor(self, digits: list[int]) -> tuple[int, ...] | None:
        """Largest stored key strictly below ``digits``.

        The paper obtains this from the dual (reverse-order) structure in
        constant time; inside update procedures an ``O(d*k*h)`` walk has the
        same asymptotics as the update itself, so we stay self-contained.
        """
        base = self._root
        last = self.depth - 1
        # Walk down recording visited nodes while the path exists.
        trail: list[tuple[int, int]] = []  # (node base, digit taken)
        for t, digit in enumerate(digits):
            trail.append((base, digit))
            delta, payload = self.registers.read(base + digit)
            if delta == GAP or t == last:
                break
            base = payload
        # Climb the trail looking for a smaller branch to dive into.
        for t in range(len(trail) - 1, -1, -1):
            node, taken = trail[t]
            for digit in range(taken - 1, -1, -1):
                delta, payload = self.registers.read(node + digit)
                if delta == CHILD:
                    return self._rightmost(payload, t, prefix=self._trail_digits(trail, t) + [digit])
        return None

    @read_only
    def _trail_digits(self, trail: list[tuple[int, int]], t: int) -> list[int]:
        return [digit for (_, digit) in trail[:t]]

    @read_only
    def _rightmost(self, payload: Any, level: int, prefix: list[int]) -> tuple[int, ...]:
        """Descend to the largest key under the child reached at ``level``."""
        digits = list(prefix)
        last = self.depth - 1
        t = level
        while t < last:
            base = payload
            for digit in range(self.d - 1, -1, -1):
                delta, cell_payload = self.registers.read(base + digit)
                if delta == CHILD:
                    digits.append(digit)
                    payload = cell_payload
                    break
            else:  # pragma: no cover - a live inner node always has a child
                raise AssertionError("inner node with no children")
            t += 1
        return self._decode(digits)

    @delay("O(n^eps)", note="documented non-constant walk; dual structure gives O(1)")
    @read_only
    def predecessor(self, key: tuple[int, ...], strict: bool = True) -> tuple[int, ...] | None:
        """Largest stored key ``< key`` (``<= key`` when ``strict=False``).

        Note: ``O(d*k*h)``, not constant — use
        :class:`~repro.storage.function_store.StoredFunction` for the
        paper's constant-time predecessor via the dual structure.
        """
        if not strict and key in self:
            return key
        return self._predecessor(self._encode(key))

    # ------------------------------------------------------------------
    # insertion (Algorithms 4/5, "Add"/"Insert", plus "Clean")
    # ------------------------------------------------------------------
    @delay("O(n^eps)", note="Theorem 3.1 update bound O(d*k*h)")
    @builds
    def insert(self, key: tuple[int, ...], value: Any) -> bool:
        """Set ``f(key) = value``.  Returns True iff ``key`` is new."""
        _metrics_count("trie.insert")
        digits = self._encode(key)
        status, payload = self._lookup_digits(digits)
        if status == HIT:
            self._overwrite(digits, value)
            return False
        succ = payload  # the old successor of key, i.e. ā_>
        pred = self._predecessor(digits)  # ā_<
        self._insert_path(digits, value)
        self._fill_between(None if pred is None else self._encode(pred), digits, key)
        self._fill_between(digits, None if succ is None else self._encode(succ), succ)
        self._size += 1
        return True

    @builds
    def _overwrite(self, digits: list[int], value: Any) -> None:
        base = self._root
        for digit in digits[:-1]:
            base = self.registers.read(base + digit)[1]
        self.registers.write(base + digits[-1], CHILD, value)

    @builds
    def _insert_path(self, digits: list[int], value: Any) -> None:
        base = self._root
        last = self.depth - 1
        for t, digit in enumerate(digits):
            cell = base + digit
            if t == last:
                self.registers.write(cell, CHILD, value)
                return
            delta, payload = self.registers.read(cell)
            if delta == GAP:
                payload = self._new_node(parent_cell=cell)
                self.registers.write(cell, CHILD, payload)
            base = payload

    # ------------------------------------------------------------------
    # bulk load (preprocessing fast path)
    # ------------------------------------------------------------------
    @pseudo_linear(note="sort once, then one sorted pass + one gap-fill pass")
    @builds
    def bulk_load(self, items: Iterable[tuple[tuple[int, ...], Any]]) -> int:
        """Build the whole structure from ``(key, value)`` pairs at once.

        Much cheaper than repeated :meth:`insert`: keys are sorted once,
        paths are materialized left to right reusing the shared prefix
        with the previous key, and every gap cell is pointed at its
        successor in a single reverse-lexicographic pass — so the
        ``O(d*k*h)`` per-insert gap maintenance is paid once per *node*
        instead of once per *key*.  Duplicate keys keep the last value
        (dict semantics).  Requires an empty store; returns the number of
        keys loaded.
        """
        if self._size:
            raise ValueError("bulk_load requires an empty store")
        unique: dict[tuple[int, ...], Any] = {}
        for key, value in items:
            unique[tuple(key)] = value
        ordered = sorted(unique.items())
        last = self.depth - 1
        # stack[t] = base register of the node at level t on the current path
        stack = [self._root] + [0] * last
        previous: list[int] | None = None
        for key, value in ordered:
            digits = self._encode(key)
            start = 0
            if previous is not None:
                while start < last and digits[start] == previous[start]:
                    start += 1
            base = stack[start]
            for t in range(start, self.depth):
                cell = base + digits[t]
                if t == last:
                    self.registers.write(cell, CHILD, value)
                    break
                delta, payload = self.registers.read(cell)
                if delta == GAP:
                    payload = self._new_node(parent_cell=cell)
                    self.registers.write(cell, CHILD, payload)
                base = payload
                stack[t + 1] = base
            previous = digits
        self._size = len(ordered)
        self._fill_all_gaps()
        return self._size

    @builds
    def _fill_all_gaps(self) -> None:
        """Point every gap cell at its successor in one reverse-order pass."""
        last = self.depth - 1
        next_key: tuple[int, ...] | None = None
        prefix: list[int] = []

        def walk(base: int, t: int) -> None:
            nonlocal next_key
            for digit in range(self.d - 1, -1, -1):
                cell = base + digit
                delta, payload = self.registers.read(cell)
                if delta == CHILD:
                    if t == last:
                        prefix.append(digit)
                        next_key = self._decode(prefix)
                        prefix.pop()
                    else:
                        prefix.append(digit)
                        walk(payload, t + 1)
                        prefix.pop()
                else:
                    self.registers.write(cell, GAP, next_key)

        walk(self._root, 0)

    # ------------------------------------------------------------------
    # removal (Algorithms 10/12, "Remove"/"Cut")
    # ------------------------------------------------------------------
    @delay("O(n^eps)", note="Theorem 3.1 update bound O(d*k*h)")
    @builds
    def remove(self, key: tuple[int, ...]) -> Any:
        """Delete ``key``; returns its value.  Raises KeyError if absent."""
        _metrics_count("trie.remove")
        digits = self._encode(key)
        status, old_value = self._lookup_digits(digits)
        if status == MISS:
            raise KeyError(key)
        succ = self.successor(key, strict=True)
        pred = self._predecessor(digits)
        succ_digits = None if succ is None else self._encode(succ)
        pred_digits = None if pred is None else self._encode(pred)
        # Clear the leaf cell, then compact empty arrays bottom-up.
        leaf_node = self._node_on_path(digits, self.depth - 1)
        self.registers.write(leaf_node + digits[-1], GAP, succ)
        self._cut(leaf_node, self.depth - 1, succ)
        self._fill_between(pred_digits, succ_digits, succ)
        self._size -= 1
        return old_value

    @read_only
    def _node_on_path(self, digits: list[int], level: int) -> int:
        base = self._root
        for t in range(level):
            base = self.registers.read(base + digits[t])[1]
        return base

    @builds
    def _cut(self, node: int, node_depth: int, succ: tuple[int, ...] | None) -> None:
        """Free all-gap arrays bottom-up, compacting the register file."""
        while node_depth > 0:
            if any(
                self.registers.read(node + j)[0] == CHILD for j in range(self.d)
            ):
                return
            parent_cell = self.registers.read(node + self.d)[1]
            self.registers.write(parent_cell, GAP, succ)
            parent_cell = self._free_array(node, parent_cell)
            node = self._array_base(parent_cell)
            node_depth -= 1

    @builds
    def _free_array(self, node: int, parent_cell: int) -> int:
        """Release array ``node``; returns ``parent_cell`` (remapped if moved)."""
        width = self.d + 1
        last = self.registers.next_free - width
        if last != node:
            moved_depth = self._depth_of(last)
            # copy the physically-last array into the freed slot
            for j in range(width):
                delta, payload = self.registers.read(last + j)
                self.registers.write(node + j, delta, payload)
            # fix the moved array's parent -> child pointer
            moved_parent_cell = self.registers.read(node + self.d)[1]
            self.registers.write(moved_parent_cell, CHILD, node)
            # fix the moved array's children -> parent back-pointers
            if moved_depth < self.depth - 1:
                for j in range(self.d):
                    delta, payload = self.registers.read(node + j)
                    if delta == CHILD:
                        self.registers.write(payload + self.d, PARENT, node + j)
            if last <= parent_cell < last + width:
                parent_cell = node + (parent_cell - last)
        self.registers.release_last(width)
        return parent_cell

    @read_only
    def _depth_of(self, node: int) -> int:
        """Depth of array ``node`` via its parent chain (O(d * k * h))."""
        depth = 0
        cell = self.registers.read(node + self.d)[1]
        while cell is not None:
            depth += 1
            base = self._array_base(cell)
            cell = self.registers.read(base + self.d)[1]
        return depth

    @read_only
    def _array_base(self, cell: int) -> int:
        """The base register of the array containing register ``cell``."""
        index = cell
        while self.registers.read(index)[0] != PARENT:
            index += 1
        return index - self.d

    # ------------------------------------------------------------------
    # gap maintenance (Algorithms 6-9, "Clean"/"Fill*")
    # ------------------------------------------------------------------
    @builds
    def _fill_between(
        self,
        lo: list[int] | None,
        hi: list[int] | None,
        payload: tuple[int, ...] | None,
    ) -> None:
        """Point every gap cell strictly between paths ``lo`` and ``hi`` at
        ``payload``.  ``lo=None`` means "from the very beginning", ``hi=None``
        "to the very end"; both paths, when given, must exist in the trie."""
        if lo is None and hi is None:
            for j in range(self.d):
                if self.registers.read(self._root + j)[0] == GAP:
                    self.registers.write(self._root + j, GAP, payload)
            return
        if lo is None:
            self._fill_left(self._root, 0, hi, payload)
            return
        if hi is None:
            self._fill_right(self._root, 0, lo, payload)
            return
        base = self._root
        t = 0
        while lo[t] == hi[t]:
            base = self.registers.read(base + lo[t])[1]
            t += 1
        for digit in range(lo[t] + 1, hi[t]):
            if self.registers.read(base + digit)[0] == GAP:
                self.registers.write(base + digit, GAP, payload)
        if t < self.depth - 1:
            lo_child = self.registers.read(base + lo[t])[1]
            self._fill_right(lo_child, t + 1, lo, payload)
            hi_child = self.registers.read(base + hi[t])[1]
            self._fill_left(hi_child, t + 1, hi, payload)

    @builds
    def _fill_left(self, base: int, t: int, path: list[int], payload: Any) -> None:
        """Gap cells lexicographically before ``path`` within its subtree."""
        while True:
            digit = path[t]
            for j in range(digit):
                if self.registers.read(base + j)[0] == GAP:
                    self.registers.write(base + j, GAP, payload)
            if t == self.depth - 1:
                return
            base = self.registers.read(base + digit)[1]
            t += 1

    @builds
    def _fill_right(self, base: int, t: int, path: list[int], payload: Any) -> None:
        """Gap cells lexicographically after ``path`` within its subtree."""
        while True:
            digit = path[t]
            for j in range(digit + 1, self.d):
                if self.registers.read(base + j)[0] == GAP:
                    self.registers.write(base + j, GAP, payload)
            if t == self.depth - 1:
                return
            base = self.registers.read(base + digit)[1]
            t += 1

    # ------------------------------------------------------------------
    # iteration / introspection
    # ------------------------------------------------------------------
    @read_only
    def __len__(self) -> int:
        return self._size

    @constant_time
    @read_only
    def min_key(self) -> tuple[int, ...] | None:
        """The smallest stored key (None when empty)."""
        return self.successor(tuple([0] * self.k))

    @delay("O(1)", note="each yielded item costs one successor walk")
    @read_only
    def items(self) -> Iterator[tuple[tuple[int, ...], Any]]:
        """All (key, value) pairs in lexicographic key order.

        Constant delay per item: each step is one successor walk.
        """
        key = self.min_key()
        while key is not None:
            status, value = self.lookup(key)
            assert status == HIT
            yield key, value
            key = self.successor(key, strict=True)

    @delay("O(1)")
    @read_only
    def keys(self) -> Iterator[tuple[int, ...]]:
        """Stored keys in ascending order."""
        for key, _ in self.items():
            yield key

    @property
    @read_only
    def registers_used(self) -> int:
        """Space in registers (Theorem 3.1 bounds this by c * |Dom| * n^eps)."""
        return self.registers.used

    # ------------------------------------------------------------------
    # invariants (test support)
    # ------------------------------------------------------------------
    @read_only
    def check_invariants(self) -> None:
        """Exhaustively verify the structure (tests only; linear time).

        Checks: (1) parent back-pointers are consistent; (2) every gap cell
        points to the true successor of its prefix; (3) the register count
        equals (#arrays)*(d+1)+1; (4) every stored key is reachable.
        """
        keys = sorted(self._collect_keys())
        arrays = self._count_arrays()
        expected = 1 + arrays * (self.d + 1)
        if self.registers.used != expected:
            raise AssertionError(
                f"register leak: used={self.registers.used}, expected={expected}"
            )
        if len(keys) != self._size:
            raise AssertionError(f"size mismatch: {len(keys)} keys vs size={self._size}")
        self._check_node(self._root, [], keys)

    @read_only
    def _collect_keys(self) -> list[tuple[int, ...]]:
        out = []

        def walk(base: int, prefix: list[int], t: int) -> None:
            for digit in range(self.d):
                delta, payload = self.registers.read(base + digit)
                if delta != CHILD:
                    continue
                if t == self.depth - 1:
                    out.append(self._decode(prefix + [digit]))
                else:
                    walk(payload, prefix + [digit], t + 1)

        walk(self._root, [], 0)
        return out

    @read_only
    def _count_arrays(self) -> int:
        count = [0]

        def walk(base: int, t: int) -> None:
            count[0] += 1
            if t == self.depth - 1:
                return
            for digit in range(self.d):
                delta, payload = self.registers.read(base + digit)
                if delta == CHILD:
                    walk(payload, t + 1)

        walk(self._root, 0)
        return count[0]

    @read_only
    def _check_node(self, base: int, prefix: list[int], keys: list[tuple[int, ...]]) -> None:
        import bisect

        for digit in range(self.d):
            delta, payload = self.registers.read(base + digit)
            cell_prefix = prefix + [digit]
            if delta == CHILD:
                if len(cell_prefix) < self.depth:
                    child_parent = self.registers.read(payload + self.d)
                    if child_parent != (PARENT, base + digit):
                        raise AssertionError(
                            f"bad parent pointer at node {payload}: {child_parent}"
                        )
                    self._check_node(payload, cell_prefix, keys)
            else:
                # expected successor: smallest key whose digits exceed cell_prefix
                bound = self._prefix_upper_key(cell_prefix)
                idx = bisect.bisect_left(keys, bound)
                expected = keys[idx] if idx < len(keys) else None
                if payload != expected:
                    raise AssertionError(
                        f"gap cell {cell_prefix} points to {payload}, expected {expected}"
                    )

    @read_only
    def _prefix_upper_key(self, prefix: list[int]) -> tuple[int, ...]:
        """Smallest key (as a tuple) whose digit string is > every string
        with the given prefix — i.e. decode(prefix+1 padded with zeros)."""
        bumped = self._increment(prefix, self.d)
        if bumped is None:
            return tuple([self.n] * self.k)  # larger than every valid key
        padded = bumped + [0] * (self.depth - len(bumped))
        return self._decode(padded)
