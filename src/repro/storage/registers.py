"""A tiny RAM register file (the computational model of Section 2/3).

The paper's algorithms are stated for a Random Access Machine whose
registers hold pairs ``(delta, payload)`` with ``delta`` in ``{-1, 0, 1}``.
We model the register file as a growable Python list of such pairs so that
the trie code below can follow the appendix pseudo-code line by line, and
so benchmarks can report the exact number of registers in use (the space
bound of Theorem 3.1).
"""

from __future__ import annotations

from typing import Any

from repro.contracts import builds, constant_time, frozen_after_build, read_only

#: delta tag: the cell points to a child node's first register.
CHILD = 1
#: delta tag: the cell is a "gap" holding the next-larger domain tuple.
GAP = 0
#: delta tag: the cell is a node's trailing parent pointer.
PARENT = -1


@frozen_after_build
class RegisterFile:
    """A growable array of ``(delta, payload)`` registers.

    Register 0 plays the role of the paper's ``R_0``: it holds the index of
    the next free register.  :meth:`allocate` hands out blocks of
    consecutive registers; :meth:`release_last` reclaims the most recently
    allocated block (the paper's compaction in ``Cut`` always frees the
    physically-last block after moving it).
    """

    __slots__ = ("_delta", "_payload")

    def __init__(self) -> None:
        self._delta: list[int] = [GAP]
        self._payload: list[Any] = [1]  # R_0 <- next free register

    # -- R_0 bookkeeping --------------------------------------------------
    @property
    @read_only
    def next_free(self) -> int:
        return self._payload[0]

    @next_free.setter
    @builds
    def next_free(self, value: int) -> None:
        self._payload[0] = value

    @builds
    def allocate(self, count: int) -> int:
        """Reserve ``count`` consecutive registers, returning the first index."""
        base = self._payload[0]
        needed = base + count
        if needed > len(self._delta):
            extra = needed - len(self._delta)
            self._delta.extend([GAP] * extra)
            self._payload.extend([None] * extra)
        self._payload[0] = needed
        return base

    @builds
    def release_last(self, count: int) -> None:
        """Return the physically-last ``count`` registers to the free pool.

        Freed cells are reset to ``(GAP, None)``: a register that has been
        returned to the pool must not keep its old payload alive, or
        remove-heavy workloads leak every value and successor tuple that
        ever passed through the high end of the file.
        """
        base = self._payload[0] - count
        for index in range(base, base + count):
            self._delta[index] = GAP
            self._payload[index] = None
        self._payload[0] = base

    # -- cell access -------------------------------------------------------
    @constant_time(note="one RAM cell access — the primitive operation")
    @read_only
    def read(self, index: int) -> tuple[int, Any]:
        """The (delta, payload) pair at ``index``."""
        return self._delta[index], self._payload[index]

    @constant_time(note="one RAM cell access — the primitive operation")
    @builds
    def write(self, index: int, delta: int, payload: Any) -> None:
        """Overwrite the register at ``index``."""
        self._delta[index] = delta
        self._payload[index] = payload

    @property
    @read_only
    def used(self) -> int:
        """Registers currently in use (the Theorem 3.1 space measure)."""
        return self._payload[0]

    @read_only
    def dump(self, start: int = 0, stop: int | None = None) -> list[tuple[int, Any]]:
        """Snapshot of registers ``start..stop`` (for tests and Figure 1)."""
        if stop is None:
            stop = self.used
        return [(self._delta[i], self._payload[i]) for i in range(start, stop)]
