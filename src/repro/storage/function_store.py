"""The public facade over the Storing Theorem structure.

:class:`StoredFunction` pairs the primary trie with the *dual* trie the
paper describes in Section 7.2.2: the dual stores every key complemented
coordinate-wise (``x -> n-1-x``), which reverses the lexicographic order,
so a successor query on the dual is a constant-time *predecessor* query on
the primary.

Every index built by :mod:`repro.core` keeps its precomputed partial
functions in instances of this class, so Theorem 3.1's space and time
bounds govern the whole pipeline (as in the paper, where the Storing
Theorem backs Steps 2-13 of the preprocessing).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from typing import Any

from repro.contracts import builds, constant_time, delay, frozen_after_build, read_only
from repro.storage.arena import make_trie_store, resolve_layout
from repro.storage.trie import HIT, MISS

Key = tuple[int, ...]


@frozen_after_build
class StoredFunction:
    """A mutable partial function ``[n]^k -> values`` with O(1) ordered lookups.

    Parameters
    ----------
    n:
        Coordinate universe size; keys are ``k``-tuples over ``[0, n)``.
    k:
        Key arity.
    eps:
        Space/update exponent (Theorem 3.1's ``eps``).
    items:
        Optional initial ``(key, value)`` pairs; loaded through the
        tries' batch bulk-load path (sort once, one construction pass)
        instead of per-key inserts.
    layout:
        Register layout: ``"object"`` (the original list-of-pairs
        oracle), ``"arena"`` (flat typed arrays, the fast path), or
        ``None``/``"auto"`` to defer to ``REPRO_STORAGE_LAYOUT`` and
        the default.  Both layouts give identical answers in identical
        order — only the constants differ.

    Examples
    --------
    >>> f = StoredFunction(27, 1, eps=1/3)
    >>> for x in (2, 4, 5, 19, 24, 25):
    ...     f[x,] = x
    >>> f.lookup((7,))
    ('miss', (19,))
    >>> f.predecessor((7,))
    (5,)
    """

    __slots__ = ("_primary", "_dual", "n", "k", "layout")

    def __init__(
        self,
        n: int,
        k: int,
        eps: float = 0.5,
        items: Iterable[tuple[Key, Any]] = (),
        layout: str | None = None,
    ) -> None:
        self.layout = resolve_layout(layout)
        self._primary = make_trie_store(n, k, eps, self.layout)
        self._dual = make_trie_store(n, k, eps, self.layout)
        self.n = n
        self.k = k
        pairs = [(self._as_key(key), value) for key, value in items]
        if pairs:
            self._primary.bulk_load(pairs)
            self._dual.bulk_load(
                (self._complement(key), True) for key, _ in pairs
            )

    # ------------------------------------------------------------------
    @constant_time(note="k negations, k fixed")
    @read_only
    def _complement(self, key: Key) -> Key:
        return tuple(self.n - 1 - x for x in key)

    @constant_time
    @read_only
    def _as_key(self, key) -> Key:
        if isinstance(key, int):
            key = (key,)
        return tuple(key)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    @delay("O(n^eps)", note="two trie inserts")
    @builds
    def __setitem__(self, key, value: Any) -> None:
        key = self._as_key(key)
        self._primary.insert(key, value)
        self._dual.insert(self._complement(key), True)

    @delay("O(n^eps)", note="two trie removals")
    @builds
    def __delitem__(self, key) -> None:
        key = self._as_key(key)
        self._primary.remove(key)
        self._dual.remove(self._complement(key))

    # ------------------------------------------------------------------
    # queries (all constant time for fixed k, eps)
    # ------------------------------------------------------------------
    @constant_time(note="Theorem 3.1 lookup-or-successor")
    @read_only
    def lookup(self, key) -> tuple[str, Any]:
        """The paper's lookup: ``(HIT, value)`` or ``(MISS, next key or None)``."""
        return self._primary.lookup(self._as_key(key))

    @constant_time
    @read_only
    def __getitem__(self, key) -> Any:
        status, payload = self.lookup(key)
        if status == MISS:
            raise KeyError(self._as_key(key))
        return payload

    @constant_time
    @read_only
    def get(self, key, default: Any = None) -> Any:
        """dict.get semantics over the stored function."""
        status, payload = self.lookup(key)
        return payload if status == HIT else default

    @constant_time
    @read_only
    def __contains__(self, key) -> bool:
        return self.lookup(key)[0] == HIT

    @constant_time
    @read_only
    def successor(self, key, strict: bool = False) -> Key | None:
        """Smallest stored key ``>= key`` (or ``> key`` if strict)."""
        return self._primary.successor(self._as_key(key), strict=strict)

    @constant_time(note="successor on the complemented dual (Section 7.2.2)")
    @read_only
    def predecessor(self, key, strict: bool = True) -> Key | None:
        """Largest stored key ``< key`` (or ``<= key`` if not strict).

        Constant time via the dual structure (Section 7.2.2).
        """
        key = self._as_key(key)
        mirrored = self._dual.successor(self._complement(key), strict=strict)
        if mirrored is None:
            return None
        return self._complement(mirrored)

    @constant_time
    @read_only
    def min_key(self) -> Key | None:
        """The smallest stored key (None when empty)."""
        return self._primary.min_key()

    @constant_time
    @read_only
    def max_key(self) -> Key | None:
        """The largest stored key, via the dual structure."""
        mirrored = self._dual.min_key()
        return None if mirrored is None else self._complement(mirrored)

    # ------------------------------------------------------------------
    # iteration / accounting
    # ------------------------------------------------------------------
    @constant_time
    @read_only
    def __len__(self) -> int:
        return len(self._primary)

    @delay("O(1)")
    @read_only
    def items(self) -> Iterator[tuple[Key, Any]]:
        """(key, value) pairs in ascending key order, constant delay."""
        return self._primary.items()

    @delay("O(1)")
    @read_only
    def keys(self) -> Iterator[Key]:
        """Stored keys in ascending order."""
        return self._primary.keys()

    @property
    @read_only
    def registers_used(self) -> int:
        """Total registers across primary + dual (Theorem 3.1 space)."""
        return self._primary.registers_used + self._dual.registers_used

    @read_only
    def check_invariants(self) -> None:
        """Exhaustive verification of both tries and their agreement."""
        self._primary.check_invariants()
        self._dual.check_invariants()
        primary_keys = set(self._primary.keys())
        dual_keys = {self._complement(key) for key in self._dual.keys()}
        if primary_keys != dual_keys:
            raise AssertionError("primary and dual tries disagree on the domain")

    @read_only
    def __repr__(self) -> str:
        return f"StoredFunction(n={self.n}, k={self.k}, size={len(self)})"
