"""The flat-arena storage engine (Theorem 3.1 on typed arrays).

The object layout (:mod:`repro.storage.registers`) models every register
as a ``(delta, payload)`` pair inside two growable Python lists, with
payloads boxed as arbitrary objects.  E1 shows ~24 registers per stored
key at ``k=2``, so every Theorem 3.1 lookup chases dozens of heap
pointers through list cells and tuple allocations.  This module keeps
the exact register *semantics* but stores the file as a contiguous
arena:

* ``_delta`` — one signed byte per register (``CHILD``/``GAP``/``PARENT``);
* ``_payload`` — one signed 64-bit word per register, tag-encoded:

  ======  ===========================================================
  low 2   meaning of ``word >> 2``
  ======  ===========================================================
  ``00``  ``None`` (the whole word is 0)
  ``01``  an inline integer (child base, parent cell, int leaf value)
  ``10``  index into the interned-object side table (gap successors)
  ``11``  index into the side table (non-int leaf/parent payloads)
  ======  ===========================================================

* ``_objects`` — the side table: gap-successor tuples are interned with
  reference counts (deduplicated, so the table holds one entry per
  *distinct* successor, not one per gap cell), other non-int payloads
  get a private slot each.

The tag assignment is deliberate: every payload a ``CHILD`` cell can
hold is **odd** and every payload a ``GAP`` cell can hold is **even**,
so the hot lookup walk never touches ``_delta`` at all — one array read
plus two bit operations per level decides "descend or return the gap's
successor".  That, plus fusing the base-``d`` digit extraction into the
descent, is where the measured >2x lookup/successor speedup over the
object layout comes from (see ``docs/storage.md``).

:class:`ArenaTrieStore` subclasses :class:`~repro.storage.trie.TrieStore`
and *inherits every structural algorithm unchanged* (insert, remove,
gap maintenance, compaction, invariant checking) — the arena register
file is a bit-exact drop-in, which is what makes the two layouts
register-level identical under the differential suite.  Only the
constant-time read paths (``lookup``/``successor``) are overridden with
fused walks over the raw arrays.

Snapshots: :meth:`ArenaRegisterFile.__getstate__` pickles the raw array
buffers (1 + 8 bytes per register instead of a boxed pair), so persisted
indexes are several times smaller and the buffers are contiguous —
ready for a future ``mmap``-shared serving path (see ROADMAP).
"""

from __future__ import annotations

from array import array
from typing import Any

from repro.contracts import (
    builds,
    constant_time,
    frozen_after_build,
    pseudo_linear,
    read_only,
)
from repro.metrics.runtime import count as _metrics_count
from repro.storage.registers import CHILD, GAP, PARENT, RegisterFile
from repro.storage.trie import HIT, MISS, TrieStore

#: Payload tag bits (low two bits of a payload word).
_TAG_NONE = 0
_TAG_INT = 1
_TAG_SUCC = 2  # interned object, even class (gap cells)
_TAG_OBJ = 3  # interned object, odd class (child/parent cells)

#: Inline integers must survive ``(value << 2)`` inside a signed 64-bit
#: word; anything bigger is interned like a non-int payload.
_INLINE_MAX = (1 << 60) - 1
_INLINE_MIN = -(1 << 60)


@frozen_after_build
class ArenaRegisterFile:
    """A :class:`RegisterFile` drop-in backed by flat typed arrays.

    Register 0 plays the same ``R_0`` role (next free register, stored
    as an inline integer).  ``read``/``write``/``allocate``/
    ``release_last``/``dump`` decode and encode transparently, so every
    :class:`~repro.storage.trie.TrieStore` algorithm runs unmodified on
    this layout and observes exactly the object layout's semantics.
    """

    __slots__ = ("_delta", "_payload", "_objects", "_refs", "_free", "_intern")

    def __init__(self) -> None:
        self._delta = array("b", (GAP,))
        self._payload = array("q", ((1 << 2) | _TAG_INT,))  # R_0 <- 1
        self._objects: list[Any] = [None]  # slot 0 reserved
        self._refs: list[int] = [0]
        self._free: list[int] = []
        self._intern: dict[Any, int] = {}

    # -- side table --------------------------------------------------------
    # (the write-path helpers are @constant_time — one dict probe, one
    # refcount edit — but never run on the lookup walk, so instrumented
    # register-op counts per *lookup* stay 1:1 with the object layout)
    @constant_time(note="one dict probe + one refcount edit")
    @builds
    def _intern_slot(self, value: Any) -> int:
        """A live side-table slot holding ``value`` (refcounted, deduped)."""
        try:
            slot = self._intern.get(value)
        except TypeError:  # unhashable payloads get a private slot
            slot = None
        else:
            if slot is not None:
                self._refs[slot] += 1
                return slot
        if self._free:
            slot = self._free.pop()
            self._objects[slot] = value
            self._refs[slot] = 1
        else:
            slot = len(self._objects)
            self._objects.append(value)
            self._refs.append(1)
        try:
            self._intern[value] = slot
        except TypeError:
            pass
        return slot

    @constant_time(note="one refcount decrement, one dict removal at zero")
    @builds
    def _release_slot(self, slot: int) -> None:
        self._refs[slot] -= 1
        if self._refs[slot] == 0:
            try:
                del self._intern[self._objects[slot]]
            except (TypeError, KeyError):
                pass
            self._objects[slot] = None
            self._free.append(slot)

    # -- payload codec -------------------------------------------------------
    @constant_time(note="a type test, two bit ops, at most one interning")
    @builds
    def _encode(self, delta: int, payload: Any) -> int:
        """Tag-encode ``payload`` for a cell carrying tag ``delta``.

        Gap payloads land in the even tag class, child/parent payloads
        in the odd one — the invariant the delta-free lookup walk needs.
        """
        if delta == GAP:
            if payload is None:
                return 0
            return (self._intern_slot(payload) << 2) | _TAG_SUCC
        if payload is None:
            # Root parent pointers and stored-None leaf values map to the
            # reserved side-table slot 0 (word 3: odd, so the walk still
            # reads this cell as CHILD-class).  Slot 0 is never refcounted
            # or freed.
            return _TAG_OBJ
        if type(payload) is int and _INLINE_MIN <= payload <= _INLINE_MAX:
            return (payload << 2) | _TAG_INT
        return (self._intern_slot(payload) << 2) | _TAG_OBJ

    # -- R_0 bookkeeping --------------------------------------------------
    @property
    @read_only
    def next_free(self) -> int:
        return self._payload[0] >> 2

    @next_free.setter
    @builds
    def next_free(self, value: int) -> None:
        self._payload[0] = (value << 2) | _TAG_INT

    @builds
    def allocate(self, count: int) -> int:
        """Reserve ``count`` consecutive registers, returning the first index."""
        base = self._payload[0] >> 2
        needed = base + count
        if needed > len(self._delta):
            extra = needed - len(self._delta)
            self._delta.frombytes(bytes(extra))
            self._payload.frombytes(bytes(8 * extra))
        self._payload[0] = (needed << 2) | _TAG_INT
        return base

    @builds
    def release_last(self, count: int) -> None:
        """Return the physically-last ``count`` registers to the free pool.

        Freed cells are reset to ``(GAP, None)`` and their interned
        payloads released — same no-leak guarantee as the object layout.
        """
        base = (self._payload[0] >> 2) - count
        for index in range(base, base + count):
            word = self._payload[index]
            if word & 2 and word >> 2:
                self._release_slot(word >> 2)
            self._delta[index] = GAP
            self._payload[index] = 0
        self._payload[0] = (base << 2) | _TAG_INT

    # -- cell access -------------------------------------------------------
    @constant_time(note="one RAM cell access — the primitive operation")
    @read_only
    def read(self, index: int) -> tuple[int, Any]:
        """The (delta, payload) pair at ``index``, payload decoded.

        The tag decode is inlined (not a helper call) so that one
        instrumented register op per cell touch stays the rule on the
        generic walk, exactly as in the object layout.
        """
        word = self._payload[index]
        tag = word & 3
        if tag == _TAG_INT:
            return self._delta[index], word >> 2
        if tag == _TAG_NONE:
            return self._delta[index], None
        return self._delta[index], self._objects[word >> 2]

    @constant_time(note="one RAM cell access — the primitive operation")
    @builds
    def write(self, index: int, delta: int, payload: Any) -> None:
        """Overwrite the register at ``index``."""
        old = self._payload[index]
        if old & 2 and old >> 2:
            self._release_slot(old >> 2)
        self._delta[index] = delta
        self._payload[index] = self._encode(delta, payload)

    @property
    @read_only
    def used(self) -> int:
        """Registers currently in use (the Theorem 3.1 space measure)."""
        return self._payload[0] >> 2

    @read_only
    def dump(self, start: int = 0, stop: int | None = None) -> list[tuple[int, Any]]:
        """Snapshot of registers ``start..stop`` (decoded, so the dump is
        comparable pair-for-pair with the object layout's)."""
        if stop is None:
            stop = self.used
        return [self.read(i) for i in range(start, stop)]

    # -- sizing / serialization -------------------------------------------
    @property
    @read_only
    def nbytes(self) -> int:
        """Bytes held by the two arena arrays (9 per allocated register)."""
        return len(self._delta) * self._delta.itemsize + len(
            self._payload
        ) * self._payload.itemsize

    @read_only
    def __getstate__(self) -> dict[str, Any]:
        # Raw buffers, not boxed cells.  Payload words are mostly small
        # (tagged indexes), so their high bytes are zero and the arrays
        # deflate to a fraction of both the raw buffer and the object
        # layout's per-cell pickle stream; loading inflates them back
        # into contiguous, mmap-shareable array buffers.  The dedup map
        # is derived state — rebuilt on load.
        import zlib

        return {
            "delta": zlib.compress(self._delta.tobytes(), 6),
            "payload": zlib.compress(self._payload.tobytes(), 6),
            "objects": self._objects,
            "refs": zlib.compress(array("q", self._refs).tobytes(), 6),
            "free": self._free,
        }

    @builds
    def __setstate__(self, state: dict[str, Any]) -> None:
        import zlib

        self._delta = array("b")
        self._delta.frombytes(zlib.decompress(state["delta"]))
        self._payload = array("q")
        self._payload.frombytes(zlib.decompress(state["payload"]))
        self._objects = state["objects"]
        refs = array("q")
        refs.frombytes(zlib.decompress(state["refs"]))
        self._refs = refs.tolist()
        self._free = state["free"]
        free = set(self._free)
        self._intern = {}
        for slot, value in enumerate(self._objects):
            if slot == 0 or slot in free:
                continue
            try:
                self._intern[value] = slot
            except TypeError:
                pass

    # -- shared-memory re-homing -------------------------------------------
    @builds
    def adopt_buffers(self, delta: Any, payload: Any) -> None:
        """Swap the arena arrays for externally-owned buffer views.

        The pre-fork serving pool copies ``_delta``/``_payload`` into one
        shared ``memfd`` mapping and re-homes the register file onto
        read-only ``memoryview`` casts of it, so every forked worker reads
        the *same physical pages* (zero-copy; see
        :mod:`repro.storage.shared`).  The buffers must decode to exactly
        the current cells — this changes where the words live, never what
        they say.  Read paths only ever index the buffers, so any
        sequence supporting ``__getitem__``/``__len__``/``tobytes`` works;
        growth paths (``allocate``) would need ``array`` and are frozen
        out after build anyway.
        """
        if len(delta) != len(self._delta):
            raise ValueError(
                f"delta buffer holds {len(delta)} cells, arena has "
                f"{len(self._delta)}"
            )
        if len(payload) != len(self._payload):
            raise ValueError(
                f"payload buffer holds {len(payload)} words, arena has "
                f"{len(self._payload)}"
            )
        self._delta = delta
        self._payload = payload

    # -- introspection (tests) ----------------------------------------------
    @read_only
    def check_intern_invariants(self, live_cells: int) -> None:
        """Audit the side table against the first ``live_cells`` registers.

        Every interned slot's refcount must equal the number of live
        cells that reference it, free slots must be empty, and the dedup
        map must cover exactly the live hashable slots.
        """
        counted: dict[int, int] = {}
        for index in range(live_cells):
            word = self._payload[index]
            if word & 2:
                counted[word >> 2] = counted.get(word >> 2, 0) + 1
        free = set(self._free)
        for slot in range(1, len(self._objects)):
            expected = counted.get(slot, 0)
            if slot in free:
                if expected:
                    raise AssertionError(f"freed slot {slot} still referenced")
                if self._objects[slot] is not None:
                    raise AssertionError(f"freed slot {slot} keeps its payload")
                continue
            if self._refs[slot] != expected:
                raise AssertionError(
                    f"slot {slot} refcount {self._refs[slot]} != {expected} references"
                )
        for value, slot in self._intern.items():
            if slot in free:
                raise AssertionError(f"dedup map points at freed slot {slot}")
            if self._objects[slot] is not value and self._objects[slot] != value:
                raise AssertionError(f"dedup map disagrees with slot {slot}")


@frozen_after_build
class ArenaTrieStore(TrieStore):
    """Theorem 3.1's trie on the flat arena layout.

    Construction, updates, invariants and iteration are inherited from
    :class:`TrieStore` — they run against :class:`ArenaRegisterFile`
    through the same register API and produce register-level identical
    structures.  ``lookup`` and ``successor`` are overridden with fused
    walks that read one payload word per level.
    """

    __slots__ = ("_cells", "_side", "_pows_head")

    def __init__(self, n: int, k: int, eps: float) -> None:
        super().__init__(n, k, eps)
        registers = self.registers
        # direct handles for the fused walk (the arrays grow in place,
        # so these stay valid across every update)
        self._cells = registers._payload
        self._side = registers._objects
        self._pows_head = tuple(self.d ** (self.h - 1 - j) for j in range(self.h - 1))

    @builds
    def _make_registers(self) -> ArenaRegisterFile:
        return ArenaRegisterFile()

    # ------------------------------------------------------------------
    # fused constant-time reads
    # ------------------------------------------------------------------
    @constant_time(note="Theorem 3.1 lookup-or-successor; one word per level")
    @read_only
    def _walk(self, key: tuple[int, ...]) -> tuple[str, Any]:
        """The fused root-to-leaf walk: digit extraction happens inline
        and the CHILD-odd/GAP-even payload invariant replaces the delta
        reads, so each level costs one array access and two bit ops."""
        if len(key) != self.k:
            raise ValueError(f"expected a {self.k}-tuple, got {key!r}")
        n = self.n
        for c in key:  # whole-key validation first, like the object layout
            if not 0 <= c < n:
                raise ValueError(f"coordinate {c} out of range [0, {n})")
        cells = self._cells
        side = self._side
        base = self._root
        last_coordinate = self.k - 1
        for index in range(self.k):
            c = key[index]
            for p in self._pows_head:
                digit = c // p
                c -= digit * p
                word = cells[base + digit]
                if word & 1:
                    base = word >> 2
                else:
                    return (MISS, side[word >> 2]) if word else (MISS, None)
            # the coordinate's last level: the divisor is 1, digit == c
            word = cells[base + c]
            if word & 1:
                if index == last_coordinate:
                    if word & 2:
                        return (HIT, side[word >> 2])
                    return (HIT, word >> 2)
                base = word >> 2
            else:
                return (MISS, side[word >> 2]) if word else (MISS, None)
        raise AssertionError("unreachable: arena walk fell through")  # pragma: no cover

    @constant_time(note="Theorem 3.1 lookup-or-successor")
    @read_only
    def lookup(self, key: tuple[int, ...]) -> tuple[str, Any]:
        """Constant-time lookup-or-successor (fused arena walk).

        The walk body is duplicated from :meth:`_walk` on purpose: an
        extra Python frame per call costs ~25% of the whole operation,
        and this method *is* the Theorem 3.1 hot path.
        """
        _metrics_count("trie.lookup")
        if len(key) != self.k:
            raise ValueError(f"expected a {self.k}-tuple, got {key!r}")
        n = self.n
        for c in key:  # whole-key validation first, like the object layout
            if not 0 <= c < n:
                raise ValueError(f"coordinate {c} out of range [0, {n})")
        cells = self._cells
        side = self._side
        pows = self._pows_head
        base = self._root
        last_coordinate = self.k - 1
        for index, c in enumerate(key):
            for p in pows:
                digit = c // p
                c -= digit * p
                word = cells[base + digit]
                if word & 1:
                    base = word >> 2
                else:
                    return (MISS, side[word >> 2]) if word else (MISS, None)
            word = cells[base + c]
            if word & 1:
                if index == last_coordinate:
                    if word & 2:
                        return (HIT, side[word >> 2])
                    return (HIT, word >> 2)
                base = word >> 2
            else:
                return (MISS, side[word >> 2]) if word else (MISS, None)
        raise AssertionError("unreachable: arena walk fell through")  # pragma: no cover

    @constant_time(note="Section 7.2.2: one fused walk on the (bumped) key")
    @read_only
    def successor(self, key: tuple[int, ...], strict: bool = False) -> tuple[int, ...] | None:
        """Smallest stored key ``>= key`` (``> key`` when ``strict``).

        The strict case walks from the next key in *tuple* order (carry
        at ``n``) instead of the object layout's next *digit string*:
        the digit strings strictly between the two encode no valid
        keys, so both walks land in the same gap cell and read the same
        stored successor.  Like :meth:`lookup`, the walk body is
        inlined — this is the enumeration hot path.
        """
        _metrics_count("trie.successor")
        if len(key) != self.k:
            raise ValueError(f"expected a {self.k}-tuple, got {key!r}")
        n = self.n
        for c in key:  # whole-key validation first, like the object layout
            if not 0 <= c < n:
                raise ValueError(f"coordinate {c} out of range [0, {n})")
        if strict:
            bump = self.k - 1
            while bump >= 0 and key[bump] + 1 >= n:
                bump -= 1
            if bump < 0:  # every coordinate carried: key was the maximum
                return None
            if bump == self.k - 1:
                key = key[:bump] + (key[bump] + 1,)
            else:
                key = key[:bump] + (key[bump] + 1,) + (0,) * (self.k - 1 - bump)
        cells = self._cells
        side = self._side
        pows = self._pows_head
        base = self._root
        last_coordinate = self.k - 1
        for index, c in enumerate(key):
            for p in pows:
                digit = c // p
                c -= digit * p
                word = cells[base + digit]
                if word & 1:
                    base = word >> 2
                else:
                    return side[word >> 2] if word else None
            word = cells[base + c]
            if word & 1:
                if index == last_coordinate:
                    return key
                base = word >> 2
            else:
                return side[word >> 2] if word else None
        raise AssertionError("unreachable: arena walk fell through")  # pragma: no cover

    @builds
    def rebind_arena(self) -> None:
        """Refresh the fused-walk handles after a register-file buffer swap
        (:meth:`ArenaRegisterFile.adopt_buffers`); ``check_invariants``
        asserts these handles alias the live buffers."""
        self._cells = self.registers._payload
        self._side = self.registers._objects

    # ------------------------------------------------------------------
    # invariants / sizing
    # ------------------------------------------------------------------
    @read_only
    def check_invariants(self) -> None:
        """Everything the object layout checks, plus the side table."""
        super().check_invariants()
        registers = self.registers
        if self._cells is not registers._payload:
            raise AssertionError("stale fused-walk handle on the payload arena")
        if self._side is not registers._objects:
            raise AssertionError("stale fused-walk handle on the side table")
        registers.check_intern_invariants(registers.used)

    @property
    @read_only
    def arena_nbytes(self) -> int:
        """Raw arena bytes (excludes the interned-object side table)."""
        return self.registers.nbytes

    # ------------------------------------------------------------------
    # pickling: __reduce__ rebuilds via __init__-free restore
    # ------------------------------------------------------------------
    @read_only
    def __getstate__(self) -> dict[str, Any]:
        return {
            "n": self.n,
            "k": self.k,
            "eps": self.eps,
            "d": self.d,
            "h": self.h,
            "depth": self.depth,
            "registers": self.registers,
            "root": self._root,
            "size": self._size,
        }

    @builds
    def __setstate__(self, state: dict[str, Any]) -> None:
        self.n = state["n"]
        self.k = state["k"]
        self.eps = state["eps"]
        self.d = state["d"]
        self.h = state["h"]
        self.depth = state["depth"]
        self.registers = state["registers"]
        self._root = state["root"]
        self._size = state["size"]
        self._cells = self.registers._payload
        self._side = self.registers._objects
        self._pows_head = tuple(self.d ** (self.h - 1 - j) for j in range(self.h - 1))


# ----------------------------------------------------------------------
# layout selection


#: The storage layouts a trie can be built on.
LAYOUTS = ("object", "arena")

#: Layout used when neither the caller nor the environment picks one.
DEFAULT_LAYOUT = "object"

#: Environment override consulted by :func:`resolve_layout` for
#: ``layout=None``/``"auto"`` — how CI runs the whole suite on one layout.
LAYOUT_ENV_VAR = "REPRO_STORAGE_LAYOUT"


def resolve_layout(layout: str | None = None) -> str:
    """Normalize a layout request to ``"object"`` or ``"arena"``.

    ``None`` and ``"auto"`` defer to the ``REPRO_STORAGE_LAYOUT``
    environment variable, then to :data:`DEFAULT_LAYOUT`.  Anything else
    must name a real layout.
    """
    import os

    if layout is None or layout == "auto":
        layout = os.environ.get(LAYOUT_ENV_VAR, "") or DEFAULT_LAYOUT
    if layout not in LAYOUTS:
        raise ValueError(
            f"unknown storage layout {layout!r}: expected one of "
            f"{LAYOUTS + ('auto',)}"
        )
    return layout


@pseudo_linear(note="one trie construction")
def make_trie_store(
    n: int, k: int, eps: float, layout: str | None = None
) -> TrieStore:
    """Build a Theorem 3.1 trie on the requested layout.

    The two layouts are register-level identical (same answers, same
    enumeration order, same registers-used accounting) — the differential
    suite in ``tests/storage/test_arena.py`` holds them to that.
    """
    if resolve_layout(layout) == "arena":
        return ArenaTrieStore(n, k, eps)
    return TrieStore(n, k, eps)


__all__ = [
    "ArenaRegisterFile",
    "ArenaTrieStore",
    "DEFAULT_LAYOUT",
    "LAYOUTS",
    "LAYOUT_ENV_VAR",
    "make_trie_store",
    "resolve_layout",
]
