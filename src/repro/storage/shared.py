"""mmap-shared arena snapshots for the pre-fork serving pool.

The flat arena (:mod:`repro.storage.arena`) stores the Theorem 3.1
register file as two contiguous typed buffers — exactly the shape an
operating system can share between processes for free.  This module
re-homes those buffers into one ``memfd``-backed ``MAP_SHARED`` mapping
**before** the pool forks its workers:

1. :func:`share_index` walks a built :class:`~repro.core.engine.QueryIndex`
   and collects every reachable :class:`ArenaRegisterFile`;
2. the raw ``_delta``/``_payload`` bytes are copied once into a single
   anonymous ``memfd`` (named ``memfd:repro-arena-...`` in
   ``/proc/*/smaps``, which is how the bench suite proves sharing);
3. each register file adopts read-only ``memoryview`` casts of its slice
   of the mapping (:meth:`ArenaRegisterFile.adopt_buffers`) and each
   :class:`ArenaTrieStore` refreshes its fused-walk handles
   (:meth:`ArenaTrieStore.rebind_arena`).

After ``fork()`` every worker inherits the mapping: N workers answer
``test``/``next`` against the *same physical pages* — zero-copy, and the
kernel's page accounting (``Pss`` much smaller than ``Rss`` on the named
mapping) makes the claim measurable rather than asserted.  The views are
``.toreadonly()``, so a stray post-build write raises ``TypeError`` even
without the ``--paranoid`` tripwire.

Everything here is build-phase work on frozen objects — the helpers are
``@builds`` (statically checked) and the mutation runs inside
:func:`~repro.contracts.build_phase` (runtime tripwire).  Object-layout
indexes contain no arena buffers; sharing them is a no-op (fork's
copy-on-write still shares the skeleton until the refcounts dirty it).
"""

from __future__ import annotations

import mmap
import os
from typing import Any

from repro.contracts import build_phase, builds
from repro.storage.arena import ArenaRegisterFile, ArenaTrieStore

#: ``memfd_create`` name prefix; smaps shows ``memfd:<name>`` per mapping.
MEMFD_NAME = "repro-arena"

_ATOMIC = (type(None), bool, int, float, complex, str, bytes, bytearray)


class SharedArena:
    """One live shared mapping plus the register files homed onto it."""

    __slots__ = ("name", "mapping", "nbytes", "registers")

    def __init__(
        self,
        name: str,
        mapping: mmap.mmap,
        nbytes: int,
        registers: int,
    ) -> None:
        self.name = name
        self.mapping = mapping
        self.nbytes = nbytes
        self.registers = registers

    def close(self) -> None:
        """Release this process's view (pages live while any process maps)."""
        try:
            self.mapping.close()
        except BufferError:
            # exported memoryviews still alive (the adopted buffers) — the
            # mapping must outlive them; closing is best-effort cleanup
            pass

    def touch_pages(self) -> int:
        """Fault every page of the mapping in; returns the page count.

        Workers call this once at startup so the first request never pays
        the fault, and so the kernel's per-process page accounting (smaps
        ``Pss`` vs ``Rss``) reflects all workers sharing the pages rather
        than whichever subset traffic happened to route to.
        """
        pages = 0
        for offset in range(0, self.nbytes, mmap.PAGESIZE):
            self.mapping[offset]
            pages += 1
        return pages


def _iter_reachable(root: Any):
    """Every object reachable from ``root`` through containers, ``__dict__``
    and ``__slots__`` (each yielded once; atoms skipped)."""
    seen: set[int] = set()
    stack: list[Any] = [root]
    while stack:
        obj = stack.pop()
        if isinstance(obj, _ATOMIC):
            continue
        key = id(obj)
        if key in seen:
            continue
        seen.add(key)
        yield obj
        if isinstance(obj, dict):
            stack.extend(obj.keys())
            stack.extend(obj.values())
        elif isinstance(obj, (list, tuple, set, frozenset)):
            stack.extend(obj)
        else:
            attrs = getattr(obj, "__dict__", None)
            if isinstance(attrs, dict):
                stack.extend(attrs.values())
            for cls in type(obj).__mro__:
                for slot in getattr(cls, "__slots__", ()) or ():
                    if slot in ("__dict__", "__weakref__"):
                        continue
                    try:
                        stack.append(getattr(obj, slot))
                    except AttributeError:
                        continue


def collect_arenas(
    root: Any,
) -> tuple[list[ArenaRegisterFile], list[ArenaTrieStore]]:
    """The arena register files and trie stores reachable from ``root``."""
    files: list[ArenaRegisterFile] = []
    stores: list[ArenaTrieStore] = []
    for obj in _iter_reachable(root):
        if isinstance(obj, ArenaRegisterFile):
            files.append(obj)
        elif isinstance(obj, ArenaTrieStore):
            stores.append(obj)
    return files, stores


def _create_mapping(name: str, nbytes: int) -> mmap.mmap:
    """A ``MAP_SHARED`` mapping of ``nbytes``, memfd-named when possible."""
    if hasattr(os, "memfd_create"):
        fd = os.memfd_create(name, os.MFD_CLOEXEC)
        try:
            os.ftruncate(fd, nbytes)
            return mmap.mmap(fd, nbytes)
        finally:
            os.close(fd)  # the mapping keeps the pages alive
    # non-Linux fallback: anonymous MAP_SHARED still survives fork, it is
    # just not identifiable by name in the memory maps
    return mmap.mmap(-1, nbytes)


@builds
def share_index(index: Any, tag: str = "") -> SharedArena | None:
    """Re-home every arena buffer under ``index`` into one shared mapping.

    Returns the :class:`SharedArena` (keep it referenced for the server's
    lifetime), or ``None`` when the index holds no arena register files
    (object layout).  Call **before** ``fork()``; afterwards the workers
    read the parent's pages in place.  Answers are unchanged — this moves
    the words, it never rewrites them.
    """
    files, stores = collect_arenas(index)
    if not files:
        return None
    # payload words first (each segment 8-aligned because every payload is
    # a whole number of 8-byte words), delta bytes after
    offsets: list[tuple[int, int]] = []
    cursor = 0
    for rf in files:
        payload_bytes = len(rf._payload) * rf._payload.itemsize
        delta_bytes = len(rf._delta) * rf._delta.itemsize
        offsets.append((cursor, cursor + payload_bytes))
        cursor += payload_bytes + delta_bytes
        cursor += -cursor % 8
    name = f"{MEMFD_NAME}-{tag}" if tag else MEMFD_NAME
    mapping = _create_mapping(name, cursor)
    view = memoryview(mapping)
    with build_phase():
        for rf, (payload_at, delta_at) in zip(files, offsets):
            payload_raw = rf._payload.tobytes()
            delta_raw = rf._delta.tobytes()
            mapping[payload_at : payload_at + len(payload_raw)] = payload_raw
            mapping[delta_at : delta_at + len(delta_raw)] = delta_raw
            payload = (
                view[payload_at : payload_at + len(payload_raw)]
                .cast("q")
                .toreadonly()
            )
            delta = (
                view[delta_at : delta_at + len(delta_raw)]
                .cast("b")
                .toreadonly()
            )
            rf.adopt_buffers(delta, payload)
        for store in stores:
            store.rebind_arena()
    return SharedArena(name, mapping, cursor, len(files))


def shared_map_stats(prefix: str = MEMFD_NAME) -> dict[str, int]:
    """Rss/Pss (kB) of this process's ``memfd:<prefix>*`` mappings.

    ``Pss`` divides each resident page by the number of processes mapping
    it, so ``pss ≪ rss`` on the arena mappings is the kernel's own
    testimony that the workers share pages instead of copying them.
    Returns zeros when smaps is unavailable (non-Linux).
    """
    out = {"maps": 0, "rss_kb": 0, "pss_kb": 0}
    needle = f"memfd:{prefix}"
    try:
        with open("/proc/self/smaps", encoding="ascii", errors="replace") as fh:
            in_target = False
            for line in fh:
                if "-" in line.split(" ", 1)[0] and ":" not in line.split(" ", 1)[0]:
                    # a mapping header line ("<start>-<end> perms ... name")
                    in_target = needle in line
                    if in_target:
                        out["maps"] += 1
                elif in_target:
                    if line.startswith("Rss:"):
                        out["rss_kb"] += int(line.split()[1])
                    elif line.startswith("Pss:"):
                        out["pss_kb"] += int(line.split()[1])
    except OSError:
        pass
    return out


__all__ = [
    "MEMFD_NAME",
    "SharedArena",
    "collect_arenas",
    "share_index",
    "shared_map_stats",
]
