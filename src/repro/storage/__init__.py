"""The Storing Theorem data structure (Theorem 3.1 / Section 7).

A register-level implementation of the paper's trie: a partial ``k``-ary
function over ``[n]^k`` stored in ``O(|Dom(f)| * n^eps)`` registers with
constant-time *lookup-or-successor*, and ``O(n^eps)`` insert/remove.

:class:`~repro.storage.function_store.StoredFunction` is the public facade;
it also maintains the dual (reverse-order) trie the paper uses for
predecessor queries (Section 7.2.2).

Two register layouts implement the same structure: the original
object layout (:class:`~repro.storage.registers.RegisterFile`, the
differential-testing oracle) and the flat arena
(:class:`~repro.storage.arena.ArenaRegisterFile`, the fast path).
:func:`~repro.storage.arena.make_trie_store` and the ``layout``
keyword on :class:`StoredFunction` select between them; see
``docs/storage.md``.
"""

from repro.storage.arena import (
    DEFAULT_LAYOUT,
    LAYOUT_ENV_VAR,
    LAYOUTS,
    ArenaRegisterFile,
    ArenaTrieStore,
    make_trie_store,
    resolve_layout,
)
from repro.storage.function_store import StoredFunction
from repro.storage.registers import RegisterFile
from repro.storage.shared import SharedArena, share_index, shared_map_stats
from repro.storage.trie import HIT, MISS, TrieStore

__all__ = [
    "ArenaRegisterFile",
    "ArenaTrieStore",
    "DEFAULT_LAYOUT",
    "HIT",
    "LAYOUTS",
    "LAYOUT_ENV_VAR",
    "MISS",
    "RegisterFile",
    "SharedArena",
    "StoredFunction",
    "TrieStore",
    "make_trie_store",
    "resolve_layout",
    "share_index",
    "shared_map_stats",
]
