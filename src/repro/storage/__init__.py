"""The Storing Theorem data structure (Theorem 3.1 / Section 7).

A register-level implementation of the paper's trie: a partial ``k``-ary
function over ``[n]^k`` stored in ``O(|Dom(f)| * n^eps)`` registers with
constant-time *lookup-or-successor*, and ``O(n^eps)`` insert/remove.

:class:`~repro.storage.function_store.StoredFunction` is the public facade;
it also maintains the dual (reverse-order) trie the paper uses for
predecessor queries (Section 7.2.2).
"""

from repro.storage.function_store import StoredFunction
from repro.storage.registers import RegisterFile
from repro.storage.trie import HIT, MISS, TrieStore

__all__ = ["RegisterFile", "TrieStore", "StoredFunction", "HIT", "MISS"]
