"""Named query workloads for tests, examples and benchmarks.

Each workload is a query with metadata: arity, whether it is in the
indexable fragment, which answering-phase cases it exercises, and a
rough selectivity class.  Tests and benchmarks draw from this registry
so "the queries we evaluate" is a single reviewable list (the analogue
of a benchmark suite's query appendix).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Workload:
    """One benchmark query with its metadata."""

    name: str
    text: str
    arity: int
    indexable: bool
    exercises: tuple[str, ...]  # e.g. ("case-near", "case-far", "sentence")
    selectivity: str  # "sparse" (≈ O(n) answers) or "dense" (≈ O(n^2))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}: {self.text}"


WORKLOADS: tuple[Workload, ...] = (
    Workload("edge", "E(x, y)", 2, True, ("case-near",), "sparse"),
    Workload(
        "two-hop", "exists z. E(x, z) & E(z, y)", 2, True, ("case-near", "guards"),
        "sparse",
    ),
    Workload("ball-2", "dist(x, y) <= 2", 2, True, ("case-near",), "sparse"),
    Workload(
        "far-blue", "dist(x, y) > 2 & Blue(y)", 2, True, ("case-far", "skip"),
        "dense",
    ),
    Workload(
        "colored-far", "Red(x) & Blue(y) & dist(x, y) > 1", 2, True,
        ("case-far", "skip"), "dense",
    ),
    Workload(
        "guarded-forall", "forall z. (E(x, z) -> dist(z, y) <= 2)", 2, True,
        ("case-near", "universal-guards"), "dense",
    ),
    Workload(
        "mixed-dnf", "(Red(x) & E(x, y)) | (Blue(x) & dist(x, y) > 1)", 2, True,
        ("case-near", "case-far", "dnf"), "dense",
    ),
    Workload(
        "non-edge-close", "~E(x, y) & dist(x, y) <= 2", 2, True,
        ("case-near", "negation"), "sparse",
    ),
    Workload(
        "triangle-free-pair", "x = y | E(x, y)", 2, True, ("case-near",), "sparse"
    ),
    Workload(
        "path-3", "E(x, y) & E(y, z)", 3, True, ("case-near", "projection"),
        "sparse",
    ),
    Workload(
        "far-witness-3", "E(x, y) & dist(x, z) > 2 & Blue(z)", 3, True,
        ("case-far", "prefix-scan"), "dense",
    ),
    Workload(
        "red-hub", "exists y. E(x, y) & Blue(y)", 1, True, ("unary",), "sparse"
    ),
    Workload(
        "unguarded", "exists z. Blue(z) & dist(z, x) > 2", 1, False,
        ("fallback",), "dense",
    ),
)


def by_name(name: str) -> Workload:
    """Look a workload up by its name (KeyError when unknown)."""
    for workload in WORKLOADS:
        if workload.name == name:
            return workload
    raise KeyError(f"unknown workload {name!r}")


def indexable(arity: int | None = None) -> list[Workload]:
    """The in-fragment workloads, optionally filtered by arity."""
    return [
        w
        for w in WORKLOADS
        if w.indexable and (arity is None or w.arity == arity)
    ]
