"""repro — Enumeration for FO Queries over Nowhere Dense Graphs.

A reproduction of Schweikardt, Segoufin & Vigny (PODS 2018 / JACM 2022):
constant-delay enumeration, constant-time testing, and constant-time
next-solution queries for first-order queries over sparse (nowhere
dense) colored graphs, after pseudo-linear preprocessing.

Quickstart::

    from repro import ColoredGraph, open_index
    from repro.graphs import grid

    g = grid(30, 30)
    index = open_index(g, "dist(x, y) > 2 & Blue(y)")
    index.test((0, 5))                 # Corollary 2.4
    index.next_solution((0, 0))        # Theorem 2.3
    for x, y in index.enumerate():     # Corollary 2.5
        ...
    index.insert_edge(0, 31).version   # live updates (docs/updates.md)

See DESIGN.md for the paper-to-module map and EXPERIMENTS.md for the
reproduced claims.
"""

from repro.api import open_index
from repro.core.config import EngineConfig
from repro.core.counting import CountingIndex, count_solutions
from repro.core.engine import Page, QueryIndex, build_index
from repro.db.adjacency import adjacency_graph
from repro.db.database import Database
from repro.db.rewrite import rewrite_query
from repro.errors import ReproError
from repro.graphs.colored_graph import ColoredGraph
from repro.logic.diagnostics import explain
from repro.logic.parser import parse_formula

__version__ = "1.0.0"

__all__ = [
    "QueryIndex",
    "Page",
    "open_index",
    "build_index",
    "EngineConfig",
    "ReproError",
    "CountingIndex",
    "count_solutions",
    "ColoredGraph",
    "parse_formula",
    "explain",
    "Database",
    "adjacency_graph",
    "rewrite_query",
    "__version__",
]
