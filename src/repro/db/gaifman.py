"""The Gaifman graph of a database (Section 2, discussion after Lemma 2.2).

The paper defines nowhere denseness of a class of databases via the
*adjacency* graphs ``A'(D)``; the more familiar alternative uses Gaifman
graphs — two elements adjacent iff they co-occur in some tuple.  The
paper notes the two notions agree for a fixed schema ([34, Thm 4.3.6])
but differ when the schema may grow ([19, Ex 3.3.2]), because a single
wide tuple turns into a Gaifman *clique*.

This module provides the Gaifman construction so users can compare both
reductions, plus :func:`gaifman_density_witness` demonstrating the
divergence the paper cites: wide-tuple databases whose adjacency graphs
stay sparse while their Gaifman graphs densify.
"""

from __future__ import annotations

from repro.db.database import Database, Schema
from repro.graphs.colored_graph import ColoredGraph


def gaifman_graph(db: Database) -> ColoredGraph:
    """The Gaifman graph: domain elements, co-occurrence edges.

    Colors: one color per unary relation (its members), so unary facts
    survive the reduction the way the paper's colored graphs expect.
    """
    graph = ColoredGraph(db.domain_size)
    for name, values in db.all_tuples():
        distinct = sorted(set(values))
        for i, u in enumerate(distinct):
            for v in distinct[i + 1 :]:
                graph.add_edge(u, v)
        if len(values) == 1:
            graph.add_to_color(name, values[0])
    return graph


def gaifman_density_witness(width: int, tuples: int) -> tuple[Database, float, float]:
    """A database family separating the two reductions.

    One relation of arity ``width`` holding ``tuples`` disjoint tuples:
    the Gaifman graph is a disjoint union of ``width``-cliques
    (``~ width^2 / 2`` edges per tuple) while ``A'(D)`` stays a forest of
    stars (``2 * width`` edges per tuple).  Returns the database and the
    two density exponents, Gaifman first.
    """
    from repro.db.adjacency import adjacency_graph
    from repro.graphs.sparsity import edge_density_exponent

    if width < 2:
        raise ValueError(f"need arity >= 2, got {width}")
    db = Database(Schema({"Wide": width}), domain_size=width * tuples)
    for t in range(tuples):
        db.add("Wide", tuple(range(t * width, (t + 1) * width)))
    gaifman_exponent = edge_density_exponent(gaifman_graph(db))
    adjacency_exponent = edge_density_exponent(adjacency_graph(db).graph)
    return db, gaifman_exponent, adjacency_exponent
