"""Relational databases and their reduction to colored graphs (Lemma 2.2).

The paper's algorithms run on colored graphs; arbitrary relational
structures reduce to them via the *colored adjacency graph* ``A'(D)``:
one vertex per domain element, per tuple, and per (position, tuple) pair,
with colors ``P_R`` (tuple of relation R) and ``C_i`` (position i).  An
FO query over the schema rewrites (linearly in its size) to an FO query
over ``A'(D)`` with the same answers.
"""

from repro.db.adjacency import AdjacencyEncoding, adjacency_graph
from repro.db.database import Database, Schema
from repro.db.rewrite import rewrite_query

__all__ = [
    "Database",
    "Schema",
    "AdjacencyEncoding",
    "adjacency_graph",
    "rewrite_query",
]
