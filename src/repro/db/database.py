"""Finite relational structures (Section 2's "databases").

A :class:`Database` is a finite structure over a :class:`Schema`: a
domain ``0..n-1`` plus one set of tuples per relation symbol.  The class
is deliberately small — the paper immediately reduces databases to
colored graphs (see :mod:`repro.db.adjacency`), which is where all the
algorithmics lives.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Schema:
    """Relation symbols with arities, e.g. ``Schema({"Friend": 2})``."""

    relations: Mapping[str, int]

    def __post_init__(self) -> None:
        for name, arity in self.relations.items():
            if arity < 1:
                raise ValueError(f"relation {name!r} must have arity >= 1, got {arity}")

    @property
    def max_arity(self) -> int:
        """The largest relation arity (the paper's ``k``)."""
        return max(self.relations.values(), default=0)

    def arity(self, name: str) -> int:
        """The declared arity of relation ``name``."""
        return self.relations[name]

    def __contains__(self, name: str) -> bool:
        return name in self.relations


@dataclass
class Database:
    """A finite relational structure over a schema.

    Examples
    --------
    >>> db = Database(Schema({"Friend": 2, "Likes": 2}), domain_size=4)
    >>> db.add("Friend", (0, 1))
    >>> (0, 1) in db.relation("Friend")
    True
    """

    schema: Schema
    domain_size: int
    _relations: dict[str, set[tuple[int, ...]]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.domain_size < 0:
            raise ValueError(f"domain size must be non-negative, got {self.domain_size}")
        for name in self.schema.relations:
            self._relations.setdefault(name, set())

    def add(self, relation: str, values: Iterable[int]) -> None:
        """Insert a fact; validates arity and domain membership."""
        values = tuple(values)
        arity = self.schema.arity(relation)
        if len(values) != arity:
            raise ValueError(
                f"relation {relation!r} has arity {arity}, got tuple {values}"
            )
        for v in values:
            if not 0 <= v < self.domain_size:
                raise ValueError(f"value {v} outside domain [0, {self.domain_size})")
        self._relations[relation].add(values)

    def relation(self, name: str) -> frozenset[tuple[int, ...]]:
        """The current extension of relation ``name``."""
        return frozenset(self._relations[name])

    @property
    def size(self) -> int:
        """``||D||``: domain plus total tuple entries (encoding size)."""
        return self.domain_size + sum(
            self.schema.arity(name) * len(tuples)
            for name, tuples in self._relations.items()
        )

    def all_tuples(self) -> Iterable[tuple[str, tuple[int, ...]]]:
        """Every (relation, tuple) fact, deterministically ordered."""
        for name in sorted(self._relations):
            for values in sorted(self._relations[name]):
                yield name, values

    def __repr__(self) -> str:
        counts = {name: len(tuples) for name, tuples in sorted(self._relations.items())}
        return f"Database(n={self.domain_size}, tuples={counts})"
