"""Lemma 2.2: rewriting relational FO queries to colored-graph queries.

A relational atom ``R(x_1..x_j)`` becomes::

    ∃t ( P_R(t) ∧ ⋀_{i<=j} ∃z ( C_i(z) ∧ E(x_i, z) ∧ E(z, t) ) )

and every quantifier is relativized to the ``Dom`` color (quantifiers of
the original query range over the database's domain, not over the
auxiliary tuple/position vertices of ``A'(D)``).  The rewriting is linear
in the query size, as the lemma states.

Relational queries reuse the FO AST of :mod:`repro.logic.syntax` plus the
:class:`RelationAtom` node defined here; :func:`evaluate_db` gives them a
direct (naive) semantics over :class:`~repro.db.database.Database` for
testing the lemma.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.adjacency import DOMAIN_COLOR, position_color, tuple_color
from repro.db.database import Database
from repro.logic.syntax import (
    And,
    Bottom,
    ColorAtom,
    EdgeAtom,
    EqAtom,
    Exists,
    Forall,
    Formula,
    Not,
    Or,
    Top,
    Var,
)
from repro.logic.transform import all_variables, fresh_variable


@dataclass(frozen=True, repr=False)
class RelationAtom(Formula):
    """``R(x_1, ..., x_j)`` over a relational schema."""

    relation: str
    variables: tuple[Var, ...]

    def __repr__(self) -> str:
        inner = ", ".join(v.name for v in self.variables)
        return f"{self.relation}({inner})"


def _relational_variables(phi: Formula) -> set[Var]:
    """``all_variables`` extended to relational atoms."""
    if isinstance(phi, RelationAtom):
        return set(phi.variables)
    if isinstance(phi, Not):
        return _relational_variables(phi.body)
    if isinstance(phi, (And, Or)):
        out: set[Var] = set()
        for part in phi.parts:
            out |= _relational_variables(part)
        return out
    if isinstance(phi, (Exists, Forall)):
        return _relational_variables(phi.body) | {phi.var}
    return set(all_variables(phi))


def rewrite_query(phi: Formula) -> Formula:
    """Lemma 2.2: the equivalent query over ``A'(D)``'s schema.

    For every database ``D``: ``phi(D) = rewritten(A'(D))`` as *sets of
    tuples* — quantifiers and free variables are relativized to the
    ``Dom`` color, so auxiliary tuple/position vertices never appear in
    answers (domain elements keep their ids in ``A'(D)``).
    """
    used = _relational_variables(phi)

    def fresh(stem: str) -> Var:
        var = fresh_variable(frozenset(used), stem)
        used.add(var)
        return var

    def walk(node: Formula) -> Formula:
        if isinstance(node, RelationAtom):
            t = fresh("t")
            parts: list[Formula] = [ColorAtom(tuple_color(node.relation), t)]
            for i, var in enumerate(node.variables, start=1):
                z = fresh("z")
                parts.append(
                    Exists(
                        z,
                        And(
                            (
                                ColorAtom(position_color(i), z),
                                EdgeAtom(var, z),
                                EdgeAtom(z, t),
                            )
                        ),
                    )
                )
            return Exists(t, And(tuple(parts)))
        if isinstance(node, (Top, Bottom, EqAtom, ColorAtom)):
            return node
        if isinstance(node, EdgeAtom):
            raise ValueError(
                "relational queries must not contain raw E atoms; "
                "use RelationAtom for schema relations"
            )
        if isinstance(node, Not):
            return Not(walk(node.body))
        if isinstance(node, And):
            return And(tuple(walk(p) for p in node.parts))
        if isinstance(node, Or):
            return Or(tuple(walk(p) for p in node.parts))
        if isinstance(node, Exists):
            return Exists(
                node.var, And((ColorAtom(DOMAIN_COLOR, node.var), walk(node.body)))
            )
        if isinstance(node, Forall):
            return Forall(
                node.var,
                Or((Not(ColorAtom(DOMAIN_COLOR, node.var)), walk(node.body))),
            )
        raise TypeError(f"unknown formula node: {node!r}")

    rewritten = walk(phi)
    free = sorted(
        _relational_variables(phi) - _bound_variables(phi), key=lambda v: v.name
    )
    guards = tuple(ColorAtom(DOMAIN_COLOR, v) for v in free)
    if guards:
        rewritten = And((*guards, rewritten))
    return rewritten


def _bound_variables(phi: Formula) -> set[Var]:
    if isinstance(phi, Not):
        return _bound_variables(phi.body)
    if isinstance(phi, (And, Or)):
        out: set[Var] = set()
        for part in phi.parts:
            out |= _bound_variables(part)
        return out
    if isinstance(phi, (Exists, Forall)):
        return _bound_variables(phi.body) | {phi.var}
    return set()


def evaluate_db(db: Database, phi: Formula, assignment: dict[Var, int]) -> bool:
    """Naive semantics of relational FO directly over the database."""
    if isinstance(phi, Top):
        return True
    if isinstance(phi, Bottom):
        return False
    if isinstance(phi, RelationAtom):
        values = tuple(assignment[v] for v in phi.variables)
        return values in db.relation(phi.relation)
    if isinstance(phi, EqAtom):
        return assignment[phi.left] == assignment[phi.right]
    if isinstance(phi, ColorAtom):
        raise ValueError("color atoms have no relational semantics")
    if isinstance(phi, Not):
        return not evaluate_db(db, phi.body, assignment)
    if isinstance(phi, And):
        return all(evaluate_db(db, p, assignment) for p in phi.parts)
    if isinstance(phi, Or):
        return any(evaluate_db(db, p, assignment) for p in phi.parts)
    if isinstance(phi, Exists):
        extended = dict(assignment)
        for value in range(db.domain_size):
            extended[phi.var] = value
            if evaluate_db(db, phi.body, extended):
                return True
        return False
    if isinstance(phi, Forall):
        extended = dict(assignment)
        for value in range(db.domain_size):
            extended[phi.var] = value
            if not evaluate_db(db, phi.body, extended):
                return False
        return True
    raise TypeError(f"unknown formula node: {phi!r}")
