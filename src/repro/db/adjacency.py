"""The colored adjacency graph ``A'(D)`` (Section 2).

``A(D)`` has a vertex per domain element and per stored tuple, with an
``E_i`` edge between element ``a`` and tuple ``t`` when ``a`` is the
``i``-th entry of ``t``.  ``A'(D)`` replaces each ``E_i`` edge by a path
of length two through a fresh vertex of color ``C_i`` (the 1-subdivision
trick) so that a single symmetric edge relation suffices.  Colors:

* ``P_<R>`` on tuple vertices of relation ``R``;
* ``C_<i>`` on position vertices (``i`` is 1-based, as in the paper);
* ``Dom`` on domain-element vertices (convenience, so queries can
  relativize quantifiers to the original domain).

Vertex layout: domain elements keep ids ``0..n-1`` (so answer tuples over
``A'(D)`` project straight back to the database, in the same order),
followed by tuple vertices, followed by position vertices.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.database import Database
from repro.graphs.colored_graph import ColoredGraph

#: Color carried by original domain elements.
DOMAIN_COLOR = "Dom"


def tuple_color(relation: str) -> str:
    """The color ``P_R`` of tuple vertices."""
    return f"P_{relation}"


def position_color(i: int) -> str:
    """The color ``C_i`` of position vertices (1-based)."""
    return f"C_{i}"


@dataclass
class AdjacencyEncoding:
    """``A'(D)`` together with the vertex bookkeeping.

    Attributes
    ----------
    graph:
        The colored graph ``A'(D)``.
    domain_size:
        ``|D|``; the first ``domain_size`` vertices are the database's
        domain elements, in order.
    tuple_vertex:
        Maps ``(relation, tuple)`` to its tuple-vertex id.
    """

    graph: ColoredGraph
    domain_size: int
    tuple_vertex: dict[tuple[str, tuple[int, ...]], int]


def adjacency_graph(db: Database) -> AdjacencyEncoding:
    """Build ``A'(D)`` in time linear in ``||D||``."""
    facts = list(db.all_tuples())
    total_positions = sum(len(values) for _, values in facts)
    n = db.domain_size + len(facts) + total_positions
    graph = ColoredGraph(n)
    graph.set_color(DOMAIN_COLOR, range(db.domain_size))
    tuple_vertex: dict[tuple[str, tuple[int, ...]], int] = {}
    colors: dict[str, list[int]] = {}
    next_vertex = db.domain_size
    for relation, values in facts:
        t_vertex = next_vertex
        next_vertex += 1
        tuple_vertex[(relation, values)] = t_vertex
        colors.setdefault(tuple_color(relation), []).append(t_vertex)
        for i, element in enumerate(values, start=1):
            p_vertex = next_vertex
            next_vertex += 1
            colors.setdefault(position_color(i), []).append(p_vertex)
            graph.add_edge(element, p_vertex)
            graph.add_edge(p_vertex, t_vertex)
    for name, members in colors.items():
        graph.set_color(name, members)
    return AdjacencyEncoding(graph, db.domain_size, tuple_vertex)
