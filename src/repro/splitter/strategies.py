"""Splitter strategies (Remark 4.7).

The paper needs Splitter's answer ``s_{i+1}`` computable from the previous
moves and ``c_{i+1}`` in time ``O(||N_r^{G_i}(c_{i+1})||)``.  Theorem 4.6
promises a winning strategy *exists* for every nowhere dense class but is
not constructive in general; we provide concrete strategies that win
quickly on the canonical sparse families (see DESIGN.md's substitution
table):

* :class:`TopmostStrategy` — for rooted forests: delete the unique
  shallowest vertex of the arena.  Each round strictly increases the
  minimum depth relative to the ball structure, so Splitter wins in at
  most ``r+1`` rounds on forests (the classic argument).
* :class:`CentroidStrategy` — delete a vertex minimizing the largest
  connected component left behind (a 1/2-balanced separator when one
  exists, e.g. on trees); good general-purpose play on planar-like
  inputs.
* :class:`GreedySeparatorStrategy` — delete the vertex of maximum degree
  inside the arena; cheap (linear in the arena) and effective on
  bounded-degree and bounded-expansion graphs.

All strategies receive the arena as an induced subgraph plus the ball
around Connector's move and must return a member of that ball.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Collection

from repro.graphs.colored_graph import ColoredGraph


class SplitterStrategy:
    """Interface: pick Splitter's vertex inside Connector's ball."""

    def choose(
        self,
        graph: ColoredGraph,
        arena: Collection[int],
        ball: Collection[int],
        connector: int,
        radius: int,
    ) -> int:
        """Return Splitter's move ``s ∈ ball``.

        ``graph`` is the ambient graph; ``arena`` the current arena's
        vertices; ``ball`` is ``N_radius`` of ``connector`` inside the
        arena (the next arena before Splitter's deletion).
        """
        raise NotImplementedError


class TopmostStrategy(SplitterStrategy):
    """Forest play: delete the shallowest vertex of the ball.

    ``depths`` maps every vertex to its depth in a rooted spanning forest;
    build with :func:`forest_depths`.
    """

    def __init__(self, depths: dict[int, int]) -> None:
        self.depths = depths

    def choose(self, graph, arena, ball, connector, radius) -> int:
        return min(ball, key=lambda v: (self.depths.get(v, 0), v))


class GreedySeparatorStrategy(SplitterStrategy):
    """Delete the highest-degree vertex of the ball (degree within the ball)."""

    def choose(self, graph, arena, ball, connector, radius) -> int:
        members = set(ball)

        def inner_degree(v: int) -> int:
            return sum(1 for w in graph.neighbors(v) if w in members)

        return max(ball, key=lambda v: (inner_degree(v), -v))


class CentroidStrategy(SplitterStrategy):
    """Delete the ball vertex minimizing the largest remaining component.

    Exact (scans every candidate) below ``exact_limit`` arena sizes; above
    it falls back to :class:`GreedySeparatorStrategy` to stay within the
    Remark 4.7 time budget in spirit.
    """

    def __init__(self, exact_limit: int = 160) -> None:
        self.exact_limit = exact_limit
        self._fallback = GreedySeparatorStrategy()

    def choose(self, graph, arena, ball, connector, radius) -> int:
        members = set(ball)
        if len(members) > self.exact_limit:
            return self._fallback.choose(graph, arena, ball, connector, radius)
        best_vertex = None
        best_score = None
        for s in sorted(members):
            score = _largest_component(graph, members - {s})
            if best_score is None or score < best_score:
                best_score = score
                best_vertex = s
        return best_vertex


def _largest_component(graph: ColoredGraph, members: set[int]) -> int:
    seen: set[int] = set()
    largest = 0
    for start in members:
        if start in seen:
            continue
        size = 0
        queue = deque([start])
        seen.add(start)
        while queue:
            u = queue.popleft()
            size += 1
            for w in graph.neighbors(u):
                if w in members and w not in seen:
                    seen.add(w)
                    queue.append(w)
        largest = max(largest, size)
    return largest


def forest_depths(graph: ColoredGraph) -> dict[int, int]:
    """BFS depths in a spanning forest rooted at the smallest vertex of
    each component — the labels :class:`TopmostStrategy` plays from."""
    depths: dict[int, int] = {}
    for root in graph.vertices():
        if root in depths:
            continue
        depths[root] = 0
        queue = deque([root])
        while queue:
            u = queue.popleft()
            for w in graph.neighbors(u):
                if w not in depths:
                    depths[w] = depths[u] + 1
                    queue.append(w)
    return depths


def default_strategy(graph: ColoredGraph) -> SplitterStrategy:
    """Pick a sensible strategy for ``graph``: topmost play on forests,
    centroid play otherwise."""
    if graph.num_edges < graph.n:  # a forest has at most n-1 edges
        if _is_forest(graph):
            return TopmostStrategy(forest_depths(graph))
    return CentroidStrategy()


def _is_forest(graph: ColoredGraph) -> bool:
    seen: set[int] = set()
    for root in graph.vertices():
        if root in seen:
            continue
        seen.add(root)
        queue = deque([(root, -1)])
        while queue:
            u, parent = queue.popleft()
            for w in graph.neighbors(u):
                if w == parent:
                    continue
                if w in seen:
                    return False
                seen.add(w)
                queue.append((w, u))
    return True
