"""The splitter game (Definition 4.5, Theorem 4.6, Remark 4.7).

The game characterizes nowhere denseness: Connector picks a vertex, the
arena shrinks to its ``r``-ball, Splitter deletes one vertex; Splitter
wins when the arena empties.  Nowhere dense = Splitter wins in a constant
number of rounds ``λ(r)``.

The enumeration engine uses Splitter's *moves* as its induction: each bag
is (contained in) a ``2r``-ball, so removing Splitter's answer strictly
reduces the number of remaining rounds, and the recursion of Sections 4.2
and 5.2 terminates.
"""

from repro.splitter.game import SplitterGame, play_game, rounds_to_win
from repro.splitter.strategies import (
    CentroidStrategy,
    GreedySeparatorStrategy,
    SplitterStrategy,
    TopmostStrategy,
    default_strategy,
)

__all__ = [
    "SplitterGame",
    "play_game",
    "rounds_to_win",
    "CentroidStrategy",
    "GreedySeparatorStrategy",
    "SplitterStrategy",
    "TopmostStrategy",
    "default_strategy",
]
