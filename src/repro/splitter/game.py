"""The (λ, r)-splitter game engine (Definition 4.5).

``G_0 = G``.  In round ``i+1`` Connector picks ``c ∈ V_i``, Splitter picks
``s ∈ N_r^{G_i}(c)``; the next arena is ``V_{i+1} = N_r^{G_i}(c) \\ {s}``.
Splitter wins when the arena becomes empty; Connector wins by surviving
``λ`` rounds.

:func:`rounds_to_win` plays the game against adversarial Connectors to
*measure* ``λ(r)`` for a graph (experiment E5); the engine itself only
needs single Splitter moves (Remark 4.7), supplied by
:mod:`repro.splitter.strategies`.
"""

from __future__ import annotations

import random
from collections.abc import Collection

from repro.graphs.colored_graph import ColoredGraph
from repro.splitter.strategies import SplitterStrategy, default_strategy
from repro.trace.runtime import span as _trace_span


class SplitterGame:
    """A playable game state on an ambient graph.

    The arena is tracked as a vertex subset; balls are computed by BFS
    restricted to the arena (the game's ``G_i`` is the induced subgraph).
    """

    def __init__(self, graph: ColoredGraph, radius: int) -> None:
        if radius < 1:
            raise ValueError(f"the splitter game needs radius >= 1, got {radius}")
        self.graph = graph
        self.radius = radius
        self.arena: set[int] = set(graph.vertices())
        self.rounds_played = 0
        self.history: list[tuple[int, int]] = []  # (connector, splitter) moves

    def ball(self, center: int) -> set[int]:
        """``N_r^{G_i}(center)``: BFS inside the current arena."""
        if center not in self.arena:
            raise ValueError(f"connector move {center} outside the arena")
        dist: dict[int, int] = {center: 0}
        frontier = [center]
        for _ in range(self.radius):
            new_frontier = []
            for u in frontier:
                for w in self.graph.neighbors(u):
                    if w in self.arena and w not in dist:
                        dist[w] = dist[u] + 1
                        new_frontier.append(w)
            frontier = new_frontier
        return set(dist)

    @property
    def over(self) -> bool:
        """Has Splitter emptied the arena?"""
        return not self.arena

    def play_round(self, connector: int, splitter: int) -> None:
        """Apply one round; validates both moves."""
        ball = self.ball(connector)
        if splitter not in ball:
            raise ValueError(f"splitter move {splitter} outside N_r({connector})")
        self.arena = ball - {splitter}
        self.rounds_played += 1
        self.history.append((connector, splitter))


def _adversarial_connector(game: SplitterGame, rng: random.Random, samples: int) -> int:
    """A greedy Connector: sample candidates, pick the one whose ball is
    largest (a strong proxy for surviving long)."""
    arena = sorted(game.arena)
    if len(arena) <= samples:
        candidates = arena
    else:
        candidates = rng.sample(arena, samples)
    return max(candidates, key=lambda c: (len(game.ball(c)), -c))


def play_game(
    graph: ColoredGraph,
    radius: int,
    strategy: SplitterStrategy | None = None,
    connector: str = "adversarial",
    seed: int = 0,
    max_rounds: int | None = None,
    samples: int = 8,
) -> int:
    """Play one full game; returns the number of rounds Splitter needed.

    ``connector`` is ``"adversarial"`` (greedy largest-ball) or
    ``"random"``.  ``max_rounds`` aborts run-away games (returns the bound).
    """
    if strategy is None:
        strategy = default_strategy(graph)
    game = SplitterGame(graph, radius)
    rng = random.Random(seed)
    limit = max_rounds if max_rounds is not None else graph.n + 1
    with _trace_span(
        "splitter.play_game", radius=radius, connector=connector, n=graph.n
    ) as sp:
        while not game.over and game.rounds_played < limit:
            if connector == "adversarial":
                c = _adversarial_connector(game, rng, samples)
            elif connector == "random":
                c = rng.choice(sorted(game.arena))
            else:
                raise ValueError(f"unknown connector policy {connector!r}")
            ball = game.ball(c)
            with _trace_span("splitter.move", round=game.rounds_played):
                s = strategy.choose(game.graph, game.arena, ball, c, radius)
            game.play_round(c, s)
        if sp is not None:
            sp.attributes["rounds"] = game.rounds_played
    return game.rounds_played


def rounds_to_win(
    graph: ColoredGraph,
    radius: int,
    strategy: SplitterStrategy | None = None,
    trials: int = 5,
    seed: int = 0,
) -> int:
    """Empirical ``λ(radius)``: worst case over several Connector plays."""
    worst = 0
    for trial in range(trials):
        policy = "adversarial" if trial % 2 == 0 else "random"
        worst = max(
            worst,
            play_game(graph, radius, strategy, connector=policy, seed=seed + trial),
        )
    return worst


def splitter_move(
    graph: ColoredGraph,
    ball: Collection[int],
    connector: int,
    radius: int,
    strategy: SplitterStrategy | None = None,
) -> int:
    """One-shot Splitter answer for a bag: the engine's use of Remark 4.7.

    ``ball`` should contain ``N_radius(connector)`` (e.g. a cover bag with
    its center); the returned vertex is Splitter's deletion ``s_X``.
    """
    if strategy is None:
        strategy = default_strategy(graph)
    return strategy.choose(graph, ball, ball, connector, radius)
