"""Prometheus text exposition (format 0.0.4) for the metrics registry.

``repro serve`` exposes ``GET /metrics`` as JSON by default; this module
renders the same registry snapshot in the Prometheus text format so a
standard scraper can poll the server directly (``Accept: text/plain`` or
``?format=prom`` selects it).  Mapping:

* counters  -> ``repro_<name>_total`` (TYPE counter)
* timers    -> ``repro_<name>_seconds_total`` + ``repro_<name>_laps_total``
* histograms-> ``repro_<name>`` summary (quantile 0.5/0.95 labels) with
  ``_count`` and ``_sum`` series
* op_counts -> ``repro_contract_calls_total{function="..."}``
* extra gauges (cache sizes etc.) -> ``repro_<name>`` (TYPE gauge)

No client library is involved — the format is plain text and the
snapshot is already a dict of floats.
"""

from __future__ import annotations

import re
from typing import Any

from repro.metrics.core import MetricsRegistry

#: Content type a compliant scraper expects.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_INVALID = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(name: str, suffix: str = "") -> str:
    """Mangle a dotted repro metric name into a valid Prometheus name."""
    base = _INVALID.sub("_", name).strip("_")
    if base and base[0].isdigit():
        base = "_" + base
    return f"repro_{base}{suffix}"


def _label_value(value: str) -> str:
    """Escape a label value per the exposition format."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt(value: float) -> str:
    """Render a sample value (integers without trailing .0)."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int) or (isinstance(value, float) and value.is_integer()):
        return str(int(value))
    return repr(float(value))


def render_prometheus(
    registry: MetricsRegistry | None,
    gauges: dict[str, float] | None = None,
) -> str:
    """The registry (and optional extra gauges) in text exposition format.

    ``registry`` may be ``None`` (server running without ``collect()``);
    the gauges are still emitted so the endpoint never 404s mid-scrape.
    """
    lines: list[str] = []

    if registry is not None:
        for name, counter in sorted(registry.counters.items()):
            metric = _metric_name(name, "_total")
            lines.append(f"# HELP {metric} repro counter {name}")
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {_fmt(counter.value)}")

        for name, timer in sorted(registry.timers.items()):
            seconds = _metric_name(name, "_seconds_total")
            lines.append(f"# HELP {seconds} repro timer {name} accumulated seconds")
            lines.append(f"# TYPE {seconds} counter")
            lines.append(f"{seconds} {_fmt(timer.total)}")
            laps = _metric_name(name, "_laps_total")
            lines.append(f"# HELP {laps} repro timer {name} lap count")
            lines.append(f"# TYPE {laps} counter")
            lines.append(f"{laps} {_fmt(timer.laps)}")

        for name, histogram in sorted(registry.histograms.items()):
            metric = _metric_name(name)
            lines.append(f"# HELP {metric} repro histogram {name}")
            lines.append(f"# TYPE {metric} summary")
            lines.append(f'{metric}{{quantile="0.5"}} {_fmt(histogram.p50)}')
            lines.append(f'{metric}{{quantile="0.95"}} {_fmt(histogram.p95)}')
            lines.append(f'{metric}{{quantile="0.99"}} {_fmt(histogram.p99)}')
            lines.append(f"{metric}_count {_fmt(histogram.count)}")
            lines.append(f"{metric}_sum {_fmt(histogram.total)}")

        if registry.op_counts:
            metric = "repro_contract_calls_total"
            lines.append(
                f"# HELP {metric} calls per contracted function (instrument())"
            )
            lines.append(f"# TYPE {metric} counter")
            for function, calls in sorted(registry.op_counts.items()):
                lines.append(
                    f'{metric}{{function="{_label_value(function)}"}} {_fmt(calls)}'
                )

    for name, value in sorted((gauges or {}).items()):
        metric = _metric_name(name)
        lines.append(f"# HELP {metric} repro gauge {name}")
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_fmt(value)}")

    return "\n".join(lines) + "\n" if lines else ""


def render_merged_prometheus(
    worker_exports: dict[str, dict[str, Any]],
    gauges: dict[str, float] | None = None,
    worker_gauges: dict[str, dict[str, float]] | None = None,
) -> str:
    """Pool-wide text exposition from per-worker mergeable exports.

    ``worker_exports`` maps a worker label (``"0"``, ``"1"``, ...) to that
    worker's :meth:`MetricsRegistry.export` payload.  Each family gets

    * one **merged** unlabeled series (counts/totals added exactly via
      :func:`repro.metrics.core.merge_snapshots`), and
    * one ``{worker="N"}``-labeled series per worker for attribution.

    Histograms render as true Prometheus ``histogram`` type: cumulative
    ``_bucket{le="2**e"}`` series from the merged log-2 buckets, plus
    ``_count``/``_sum`` (merged unlabeled and per-worker labeled) — so a
    scraper's ``sum(rate(..._count[1m]))`` works across the pool and
    ``histogram_quantile`` sees real buckets.  ``gauges`` are pool-level
    (unlabeled); ``worker_gauges`` get the ``worker`` label.
    """
    from repro.metrics.core import bucket_upper_edge, merge_snapshots

    merged = merge_snapshots(list(worker_exports.values()))
    workers = sorted(worker_exports, key=lambda w: (len(w), w))
    lines: list[str] = []

    def per_worker(section: str, name: str) -> list[tuple[str, Any]]:
        pairs = []
        for wid in workers:
            value = worker_exports[wid].get(section, {}).get(name)
            if value is not None:
                pairs.append((wid, value))
        return pairs

    for name, value in merged["counters"].items():
        metric = _metric_name(name, "_total")
        lines.append(f"# HELP {metric} repro counter {name} (pool-merged)")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_fmt(value)}")
        for wid, wval in per_worker("counters", name):
            lines.append(f'{metric}{{worker="{_label_value(wid)}"}} {_fmt(wval)}')

    for name, timer in merged["timers"].items():
        seconds = _metric_name(name, "_seconds_total")
        lines.append(f"# HELP {seconds} repro timer {name} accumulated seconds")
        lines.append(f"# TYPE {seconds} counter")
        lines.append(f"{seconds} {_fmt(timer['total'])}")
        for wid, wval in per_worker("timers", name):
            lines.append(
                f'{seconds}{{worker="{_label_value(wid)}"}} {_fmt(wval["total"])}'
            )
        laps = _metric_name(name, "_laps_total")
        lines.append(f"# HELP {laps} repro timer {name} lap count")
        lines.append(f"# TYPE {laps} counter")
        lines.append(f"{laps} {_fmt(timer['laps'])}")
        for wid, wval in per_worker("timers", name):
            lines.append(
                f'{laps}{{worker="{_label_value(wid)}"}} {_fmt(wval["laps"])}'
            )

    for name, snap in merged["histograms"].items():
        metric = _metric_name(name)
        lines.append(f"# HELP {metric} repro histogram {name} (pool-merged)")
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for exp in sorted(int(key) for key in snap["buckets"]):
            edge = bucket_upper_edge(exp)
            if edge == float("inf"):
                break  # folded into the final +Inf bucket
            cumulative += int(snap["buckets"][str(exp)])
            lines.append(f'{metric}_bucket{{le="{_fmt(edge)}"}} {_fmt(cumulative)}')
        lines.append(f'{metric}_bucket{{le="+Inf"}} {_fmt(snap["count"])}')
        lines.append(f"{metric}_count {_fmt(snap['count'])}")
        lines.append(f"{metric}_sum {_fmt(snap['total'])}")
        for wid, wsnap in per_worker("histograms", name):
            label = f'worker="{_label_value(wid)}"'
            lines.append(f"{metric}_count{{{label}}} {_fmt(wsnap['count'])}")
            lines.append(f"{metric}_sum{{{label}}} {_fmt(wsnap['total'])}")

    if merged["op_counts"]:
        metric = "repro_contract_calls_total"
        lines.append(f"# HELP {metric} calls per contracted function (pool-merged)")
        lines.append(f"# TYPE {metric} counter")
        for function, calls in merged["op_counts"].items():
            lines.append(
                f'{metric}{{function="{_label_value(function)}"}} {_fmt(calls)}'
            )

    for name, value in sorted((gauges or {}).items()):
        metric = _metric_name(name)
        lines.append(f"# HELP {metric} repro gauge {name}")
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_fmt(value)}")

    for wid in sorted(worker_gauges or {}, key=lambda w: (len(w), w)):
        for name, value in sorted((worker_gauges or {})[wid].items()):
            metric = _metric_name(name)
            lines.append(
                f'{metric}{{worker="{_label_value(wid)}"}} {_fmt(value)}'
            )

    return "\n".join(lines) + "\n" if lines else ""


def flatten_gauges(payload: dict[str, Any], prefix: str = "") -> dict[str, float]:
    """Flatten a nested stats dict into dotted-name numeric gauges.

    Non-numeric leaves are dropped (strings, None); bools become 0/1.
    Used to turn ``/v1/stats``-style payloads (cache sizes, watchdog
    state) into Prometheus gauges without a schema.
    """
    flat: dict[str, float] = {}
    for key, value in payload.items():
        name = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, dict):
            flat.update(flatten_gauges(value, name))
        elif isinstance(value, bool):
            flat[name] = 1.0 if value else 0.0
        elif isinstance(value, (int, float)):
            flat[name] = float(value)
    return flat
