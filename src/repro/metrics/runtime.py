"""The active-registry plumbing: zero-cost hooks for the hot paths.

The hot paths (``storage/trie.py``, ``core/next_solution.py``,
``core/distance_index.py``, ``core/enumeration.py``,
``covers/neighborhood_cover.py``) call the module-level hooks below —
:func:`count`, :func:`observe`, :func:`delay_recorder`,
:func:`time_block` — unconditionally.  Outside a :func:`collect` context
there is no active registry and every hook is a single ``is None`` check,
so the paper's constant-time guarantees are unaffected; the hooks are
themselves ``@constant_time`` so ``repro lint`` verifies that calling
them from an O(1) context is legal.

Inside ``with collect() as registry:`` the hooks write into ``registry``,
and (with ``ops=True``, the default) every *contracted* function is also
patched via :func:`repro.contracts.decorators.instrument` so the run
records primitive-operation counts — the empirical, noise-free check
that "constant time" means a flat number of register reads, not just a
flat wall clock.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from contextlib import contextmanager

from repro.contracts import constant_time, instrument
from repro.metrics.core import MetricsRegistry

#: The registry currently collecting, or None (the common, zero-cost case).
_ACTIVE: MetricsRegistry | None = None


@constant_time(note="one module-global read")
def active() -> MetricsRegistry | None:
    """The registry currently collecting, or None outside :func:`collect`."""
    return _ACTIVE


@constant_time(note="one None check + one integer add when collecting")
def count(name: str, amount: int = 1) -> None:
    """Bump the named operation counter if a registry is collecting."""
    if _ACTIVE is not None:
        _ACTIVE.counter(name).inc(amount)


@constant_time(note="one None check + one histogram append when collecting")
def observe(name: str, value: float) -> None:
    """Record one sample into the named histogram if collecting."""
    if _ACTIVE is not None:
        _ACTIVE.histogram(name).record(value)


@constant_time(note="one None check; the returned recorder is one append")
def delay_recorder(name: str) -> Callable[[float], None] | None:
    """The named histogram's ``record`` method, or None when not collecting.

    Hot loops hoist this lookup out of the loop: a None result means the
    loop can skip per-iteration clock reads entirely.
    """
    if _ACTIVE is None:
        return None
    return _ACTIVE.histogram(name).record


@contextmanager
def time_block(name: str) -> Iterator[None]:
    """Time one block into the named :class:`Timer` (no-op when inactive)."""
    if _ACTIVE is None:
        yield
        return
    timer = _ACTIVE.timer(name)
    timer.start()
    try:
        yield
    finally:
        timer.stop()


@contextmanager
def collect(
    ops: bool = True, histogram_samples: int | None = None
) -> Iterator[MetricsRegistry]:
    """Collect metrics from everything that runs inside the context.

    Parameters
    ----------
    ops:
        Also patch every contracted function (via the PR-1
        ``instrument()`` hook) so ``registry.op_counts`` maps qualified
        function names to call counts.  Patching costs one extra Python
        call per contracted call, so measurement runs that only need the
        explicit counters/histograms can pass ``ops=False``.
    histogram_samples:
        Bound every histogram to a reservoir of this many samples
        (exact running count/total/mean/max either way).  ``None``
        (default) keeps every sample — right for finite bench runs,
        wrong for a long-lived server.

    Contexts nest: the innermost registry receives the hooks, and the
    previous one is restored on exit.
    """
    global _ACTIVE
    registry = MetricsRegistry(histogram_samples=histogram_samples)
    previous = _ACTIVE
    _ACTIVE = registry
    try:
        if ops:
            with instrument() as counts:
                registry.op_counts = counts
                yield registry
        else:
            yield registry
    finally:
        _ACTIVE = previous
