"""Metric primitives: counters, monotonic timers, delay histograms.

These are the value types behind :mod:`repro.metrics`.  They are plain
mutable objects with O(1) update operations — a :class:`Counter` is one
integer add, a :class:`Timer` lap is two ``perf_counter`` reads, a
:class:`Histogram` record is one list append — so they can sit on the
paper's constant-time hot paths without changing any asymptotics.

Percentile queries (:meth:`Histogram.percentile`) sort lazily and cache
the sorted order; they are meant for *after* a measurement run, not
inside one.
"""

from __future__ import annotations

import math
import random
import threading
import time
from typing import Any

from repro.contracts import guarded_by

#: Bucket key for non-positive samples (below every frexp exponent of a
#: positive float, whose range is [-1073, 1024]).
ZERO_BUCKET = -1075


def bucket_exponent(value: float) -> int:
    """The log-2 bucket key of ``value``: ``2**(e-1) <= value < 2**e``.

    Non-positive values land in :data:`ZERO_BUCKET`.  One ``frexp`` call —
    O(1), no log/pow, exact for every finite float.
    """
    if value <= 0.0:
        return ZERO_BUCKET
    return math.frexp(value)[1]


def bucket_upper_edge(exponent: int) -> float:
    """The inclusive upper edge ``2**e`` of a bucket (``inf``-safe)."""
    if exponent == ZERO_BUCKET:
        return 0.0
    if exponent >= 1024:  # 2.0 ** 1024 overflows a double
        return math.inf
    return 2.0**exponent


class Counter:
    """A named monotonically-increasing operation counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (one integer add — O(1))."""
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value})"


class Timer:
    """A named accumulating monotonic timer (``time.perf_counter`` based).

    Usable as a context manager; each enter/exit pair adds one *lap*.
    ``total`` is the accumulated wall-clock time across laps.
    """

    __slots__ = ("name", "total", "laps", "_started")

    def __init__(self, name: str) -> None:
        self.name = name
        self.total = 0.0
        self.laps = 0
        self._started: float | None = None

    def start(self) -> None:
        self._started = time.perf_counter()

    def stop(self) -> float:
        """End the current lap; returns the lap's duration in seconds."""
        if self._started is None:
            raise RuntimeError(f"timer {self.name!r} stopped without start()")
        lap = time.perf_counter() - self._started
        self._started = None
        self.total += lap
        self.laps += 1
        return lap

    def __enter__(self) -> Timer:
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    @property
    def mean(self) -> float:
        """Mean seconds per lap (0.0 before the first lap)."""
        return self.total / self.laps if self.laps else 0.0

    def __repr__(self) -> str:
        return f"Timer({self.name!r}, total={self.total:.6f}s, laps={self.laps})"


@guarded_by(
    "_lock", "_samples", "_sorted", "_count", "_total", "_max", "_min", "_buckets"
)
class Histogram:
    """A named sample distribution with p50/p95/p99/max summaries.

    Records raw samples (typically per-answer delays in seconds) and
    answers percentile queries afterwards.  Recording is an O(1) locked
    append; percentile queries sort on demand and cache until the next
    record.

    Two storage modes:

    * **exact** (``max_samples=None``, the default) keeps every sample —
      what the bench suite wants, where a run is finite and percentiles
      must be exact;
    * **reservoir** (``max_samples=N``) keeps a uniform random sample of
      size ``N`` (Vitter's algorithm R, deterministic per-histogram
      seed), which bounds memory in a long-lived ``repro serve`` process
      while keeping percentiles statistically faithful.  ``count``,
      ``total``, ``mean`` and ``max`` stay *exact* in both modes — they
      are tracked as running aggregates, not derived from the stored
      samples.

    Alongside either sample store the histogram maintains **fixed
    log-2 buckets** (one ``frexp`` per record, O(1) memory in the number
    of distinct magnitudes): bucket ``e`` counts samples in
    ``[2**(e-1), 2**e)``.  Bucket counts are *exact* and mergeable —
    :meth:`to_mergeable` exports them and :meth:`merge` adds snapshots
    from different processes bucket-by-bucket, which is what the pool
    parent's merged ``/metrics`` exposition is built on.

    All mutation happens under ``_lock`` so concurrent server threads
    never lose a record (a bare ``+=`` on an attribute is not atomic in
    CPython).  The lock is uncontended on single-threaded bench runs.
    """

    __slots__ = (
        "name",
        "max_samples",
        "_samples",
        "_sorted",
        "_count",
        "_total",
        "_max",
        "_min",
        "_buckets",
        "_rng",
        "_lock",
    )

    def __init__(self, name: str, max_samples: int | None = None) -> None:
        if max_samples is not None and max_samples < 1:
            raise ValueError(f"max_samples must be >= 1, got {max_samples}")
        self.name = name
        self.max_samples = max_samples
        self._samples: list[float] = []
        self._sorted: list[float] | None = None
        self._count = 0
        self._total = 0.0
        self._max = 0.0
        self._min = math.inf
        #: frexp exponent -> exact sample count (see :func:`bucket_exponent`).
        self._buckets: dict[int, int] = {}
        self._rng: random.Random | None = (
            None if max_samples is None else random.Random(hash(name) & 0xFFFFFFFF)
        )
        self._lock = threading.Lock()

    def record(self, value: float) -> None:
        """Add one sample (O(1) amortized; O(1) memory in reservoir mode)."""
        exp = bucket_exponent(value)
        with self._lock:
            self._count += 1
            self._total += value
            if value > self._max:
                self._max = value
            if value < self._min:
                self._min = value
            self._buckets[exp] = self._buckets.get(exp, 0) + 1
            if self.max_samples is None or len(self._samples) < self.max_samples:
                self._samples.append(value)
            else:
                # Vitter's algorithm R: keep each of the _count samples with
                # equal probability max_samples / _count
                slot = self._rng.randrange(self._count)
                if slot < self.max_samples:
                    self._samples[slot] = value
                else:
                    return  # stored set unchanged: keep the sorted cache
            self._sorted = None

    @property
    def count(self) -> int:
        """Exact number of recorded samples (both modes)."""
        return self._count

    @property
    def stored(self) -> int:
        """Samples currently held (``<= max_samples`` in reservoir mode)."""
        return len(self._samples)

    @property
    def total(self) -> float:
        """Exact running sum (both modes)."""
        return self._total

    @property
    def mean(self) -> float:
        return self._total / self._count if self._count else 0.0

    @property
    def max(self) -> float:
        """Exact running maximum (both modes)."""
        return self._max

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0 <= q <= 100), nearest-rank on sorted data."""
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if not self._samples:
            return 0.0
        ordered = self._sorted
        if ordered is None:
            ordered = sorted(self._samples)
            with self._lock:
                self._sorted = ordered
        rank = math.ceil(q / 100 * len(ordered)) - 1
        return ordered[max(0, rank)]

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p95(self) -> float:
        return self.percentile(95)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    def summary(self) -> dict[str, float]:
        """The reporting payload: count, mean, p50, p95, p99, max."""
        return {
            "count": float(self.count),
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.max,
        }

    def to_mergeable(self) -> dict[str, Any]:
        """A JSON-safe, *mergeable* snapshot of the exact aggregates.

        The snapshot carries no raw samples — only the running count /
        total / min / max and the exact log-2 bucket counts — so two
        snapshots from different processes merge losslessly with
        :meth:`merge`.  Bucket keys are stringified exponents (JSON
        object keys must be strings).
        """
        with self._lock:
            return {
                "name": self.name,
                "count": self._count,
                "total": self._total,
                "min": self._min if self._count else 0.0,
                "max": self._max,
                "buckets": {str(exp): n for exp, n in sorted(self._buckets.items())},
            }

    @staticmethod
    def merge(snapshots: list[dict[str, Any]]) -> dict[str, Any]:
        """Merge :meth:`to_mergeable` snapshots (same shape back out).

        Counts, totals and bucket counts add exactly; min/max combine.
        An empty input merges to an empty histogram snapshot.
        """
        name = snapshots[0]["name"] if snapshots else ""
        count = 0
        total = 0.0
        low = math.inf
        high = 0.0
        buckets: dict[int, int] = {}
        for snap in snapshots:
            count += int(snap["count"])
            total += float(snap["total"])
            if snap["count"]:
                low = min(low, float(snap["min"]))
                high = max(high, float(snap["max"]))
            for key, n in snap["buckets"].items():
                exp = int(key)
                buckets[exp] = buckets.get(exp, 0) + int(n)
        return {
            "name": name,
            "count": count,
            "total": total,
            "min": low if count else 0.0,
            "max": high,
            "buckets": {str(exp): n for exp, n in sorted(buckets.items())},
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count})"


def percentile_from_buckets(snapshot: dict[str, Any], q: float) -> float:
    """Estimate the ``q``-th percentile from a mergeable snapshot.

    Walks the cumulative bucket counts to the nearest-rank bucket and
    returns its inclusive upper edge ``2**e`` — so for a true sample
    ``v > 0`` the estimate lies in ``[v, 2v)`` (one bucket width), and
    is clamped to the snapshot's exact ``max``.
    """
    if not 0 <= q <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    count = int(snapshot["count"])
    if count == 0:
        return 0.0
    rank = max(1, math.ceil(q / 100 * count))
    seen = 0
    for exp in sorted(int(key) for key in snapshot["buckets"]):
        seen += int(snapshot["buckets"][str(exp)])
        if seen >= rank:
            return min(bucket_upper_edge(exp), float(snapshot["max"]))
    return float(snapshot["max"])


@guarded_by("_create_lock", "counters", "timers", "histograms")
class MetricsRegistry:
    """One measurement run's worth of counters, timers and histograms.

    Instances are handed out by :func:`repro.metrics.collect`; named
    children are created on first use so hot paths never need to
    pre-register anything.  ``op_counts`` is filled by the contracts
    instrumentation hook (calls per contracted function) when the
    registry was activated with ``ops=True``.

    ``histogram_samples`` bounds every histogram the registry creates
    (reservoir mode — see :class:`Histogram`); the default ``None``
    keeps the exact-mode behaviour the bench suite relies on.
    """

    def __init__(self, histogram_samples: int | None = None) -> None:
        self.histogram_samples = histogram_samples
        self.counters: dict[str, Counter] = {}
        self.timers: dict[str, Timer] = {}
        self.histograms: dict[str, Histogram] = {}
        #: qualified contracted-function name -> call count (see
        #: :func:`repro.contracts.decorators.instrument`).
        self.op_counts: dict[str, int] = {}
        # Guards first-use child creation only (a long-lived registry is
        # shared by every server thread; without it two threads could
        # each create "the" counter and one's increments would vanish).
        # The hit path stays a lock-free dict.get.
        self._create_lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        found = self.counters.get(name)
        if found is None:
            with self._create_lock:
                found = self.counters.setdefault(name, Counter(name))
        return found

    def timer(self, name: str) -> Timer:
        found = self.timers.get(name)
        if found is None:
            with self._create_lock:
                found = self.timers.setdefault(name, Timer(name))
        return found

    def histogram(self, name: str) -> Histogram:
        found = self.histograms.get(name)
        if found is None:
            with self._create_lock:
                found = self.histograms.setdefault(
                    name, Histogram(name, max_samples=self.histogram_samples)
                )
        return found

    def snapshot(self) -> dict[str, Any]:
        """A plain-dict view of everything measured (JSON-serializable)."""
        return {
            "counters": {name: c.value for name, c in sorted(self.counters.items())},
            "timers": {
                name: {"total": t.total, "laps": t.laps, "mean": t.mean}
                for name, t in sorted(self.timers.items())
            },
            "histograms": {
                name: h.summary() for name, h in sorted(self.histograms.items())
            },
            "op_counts": dict(sorted(self.op_counts.items())),
        }

    def export(self) -> dict[str, Any]:
        """The *mergeable* wire format of this registry.

        Unlike :meth:`snapshot` (summaries for humans), ``export``
        carries exact, additive state: counter values, timer totals/laps,
        op counts, and per-histogram :meth:`Histogram.to_mergeable`
        bucket snapshots.  ``merge_snapshots`` combines any number of
        these (one per pool worker) into a single equivalent export.
        """
        return {
            "version": 1,
            "counters": {name: c.value for name, c in sorted(self.counters.items())},
            "timers": {
                name: {"total": t.total, "laps": t.laps}
                for name, t in sorted(self.timers.items())
            },
            "histograms": {
                name: h.to_mergeable() for name, h in sorted(self.histograms.items())
            },
            "op_counts": dict(sorted(self.op_counts.items())),
        }


def merge_snapshots(exports: list[dict[str, Any]]) -> dict[str, Any]:
    """Merge :meth:`MetricsRegistry.export` payloads into one.

    Counters, timer totals/laps and op counts add; histograms merge
    bucket-by-bucket via :meth:`Histogram.merge`.  The result has the
    same shape as a single export, so merging is associative and the
    pool parent can treat N workers as one logical process.
    """
    counters: dict[str, int] = {}
    timers: dict[str, dict[str, float]] = {}
    histogram_parts: dict[str, list[dict[str, Any]]] = {}
    op_counts: dict[str, int] = {}
    for export in exports:
        for name, value in export.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + int(value)
        for name, timer in export.get("timers", {}).items():
            slot = timers.setdefault(name, {"total": 0.0, "laps": 0})
            slot["total"] += float(timer["total"])
            slot["laps"] += int(timer["laps"])
        for name, snap in export.get("histograms", {}).items():
            histogram_parts.setdefault(name, []).append(snap)
        for name, calls in export.get("op_counts", {}).items():
            op_counts[name] = op_counts.get(name, 0) + int(calls)
    return {
        "version": 1,
        "counters": dict(sorted(counters.items())),
        "timers": dict(sorted(timers.items())),
        "histograms": {
            name: Histogram.merge(parts)
            for name, parts in sorted(histogram_parts.items())
        },
        "op_counts": dict(sorted(op_counts.items())),
    }
