"""Observability for the paper's complexity claims (``repro.metrics``).

The contracts layer (PR 1) states the bounds *statically*; this package
measures them *empirically*.  Three primitives —

* :class:`~repro.metrics.core.Counter` — operation counts,
* :class:`~repro.metrics.core.Timer` — accumulating monotonic timers,
* :class:`~repro.metrics.core.Histogram` — delay distributions with
  p50/p95/max summaries —

live in a :class:`~repro.metrics.core.MetricsRegistry` activated by
:func:`~repro.metrics.runtime.collect`::

    from repro import metrics

    with metrics.collect() as registry:
        index = build_index(graph, "dist(x, y) > 2 & Blue(y)")
        list(index.enumerate())

    registry.histograms["enumeration.delay_seconds"].p95
    registry.op_counts["repro.storage.registers.RegisterFile.read"]

The hot paths are threaded with zero-cost hooks (a single ``None`` check
when no registry is active), and ``ops=True`` additionally counts every
contracted-function call via the PR-1 ``instrument()`` patch — so
"constant time" is checked in primitive operations, not just wall-clock.
The ``repro bench-suite`` runner (:mod:`repro.benchrunner`) builds the
E1–E14 measurement series on top of this package.
"""

from repro.metrics.core import (
    Counter,
    Histogram,
    MetricsRegistry,
    Timer,
    bucket_exponent,
    bucket_upper_edge,
    merge_snapshots,
    percentile_from_buckets,
)
from repro.metrics.prometheus import (
    flatten_gauges,
    render_merged_prometheus,
    render_prometheus,
)
from repro.metrics.runtime import (
    active,
    collect,
    count,
    delay_recorder,
    observe,
    time_block,
)

__all__ = [
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "Timer",
    "active",
    "bucket_exponent",
    "bucket_upper_edge",
    "collect",
    "count",
    "delay_recorder",
    "flatten_gauges",
    "merge_snapshots",
    "observe",
    "percentile_from_buckets",
    "render_merged_prometheus",
    "render_prometheus",
    "time_block",
]
