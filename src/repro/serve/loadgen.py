"""Closed- and open-loop HTTP load generation for the serving benchmarks.

Two disciplines, two questions:

* :func:`closed_loop` — as many requests as the server will absorb over
  persistent connections; measures **throughput** (answers/second).
  Clients parse nothing on the hot loop beyond the status line, so on a
  shared CI box the measured ceiling is the server's, not the client's.
* :func:`open_loop` — requests dispatched on a fixed schedule
  (``t0 + i/rate``) regardless of completions, the discipline that
  exposes queueing: a saturated server cannot slow the arrival process
  down, so latency, not throughput, absorbs the overload.  Per-answer
  delay is the batch round-trip divided by the calls it carried —
  directly comparable with the watchdog's per-step budget.

Everything is stdlib (``http.client`` + threads); the paper's workload
shape — tiny CPU-bound request bodies, constant-time answers — is what
makes a thread-per-connection generator in Python adequate: clients
spend their time blocked on the server, not computing.
"""

from __future__ import annotations

import http.client
import threading
import time
from dataclasses import dataclass, field


@dataclass
class LoadResult:
    """What one load run observed (latencies only for open-loop runs)."""

    requests: int = 0
    answers: int = 0
    errors: int = 0
    elapsed_seconds: float = 0.0
    #: open-loop per-answer delays (seconds), scheduled-send to response.
    delays: list[float] = field(default_factory=list)
    #: requests that could not be sent at their scheduled time budget.
    late_sends: int = 0

    @property
    def answers_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.answers / self.elapsed_seconds


def percentile(samples: list[float], q: float) -> float:
    """The ``q``-quantile (0..1) by linear interpolation; 0.0 when empty."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    weight = position - low
    return ordered[low] * (1 - weight) + ordered[high] * weight


def _post_once(
    conn: http.client.HTTPConnection, path: str, body: bytes
) -> tuple[http.client.HTTPConnection, int]:
    """POST over a keep-alive connection, reconnecting once if it died."""
    for attempt in (0, 1):
        try:
            conn.request(
                "POST", path, body=body,
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            response.read()  # drain so the connection can be reused
            return conn, response.status
        except (http.client.HTTPException, OSError):
            conn.close()
            if attempt:
                raise
            conn = http.client.HTTPConnection(conn.host, conn.port, timeout=30.0)
    raise AssertionError("unreachable")  # pragma: no cover


def closed_loop(
    host: str,
    port: int,
    path: str,
    bodies: list[bytes],
    answers_per_request: int,
    connections: int = 8,
    duration_seconds: float = 2.0,
    warmup_seconds: float = 0.3,
) -> LoadResult:
    """Hammer ``path`` from ``connections`` persistent clients.

    Each client cycles through the pre-encoded ``bodies`` (vary the
    probes there, not in the loop).  The warmup window runs the same
    traffic but counts nothing — connection setup, cache settling and
    the server's first-touch page faults happen off the books.
    """
    result = LoadResult()
    lock = threading.Lock()
    start = time.monotonic()
    measure_from = start + warmup_seconds
    deadline = measure_from + duration_seconds

    def client(offset: int) -> None:
        conn = http.client.HTTPConnection(host, port, timeout=30.0)
        sent = 0
        counted = 0
        good = 0
        errors = 0
        try:
            while True:
                now = time.monotonic()
                if now >= deadline:
                    break
                body = bodies[(offset + sent) % len(bodies)]
                sent += 1
                try:
                    conn, status = _post_once(conn, path, body)
                except (http.client.HTTPException, OSError):
                    errors += 1
                    continue
                if now >= measure_from:
                    counted += 1
                    if status == 200:
                        good += 1
                    else:
                        errors += 1
        finally:
            conn.close()
        with lock:
            result.requests += counted
            result.answers += good * answers_per_request
            result.errors += errors

    threads = [
        threading.Thread(target=client, args=(i * 7,), daemon=True)
        for i in range(connections)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    result.elapsed_seconds = time.monotonic() - measure_from
    return result


def open_loop(
    host: str,
    port: int,
    path: str,
    bodies: list[bytes],
    answers_per_request: int,
    rate_per_second: float,
    duration_seconds: float = 2.0,
    connections: int = 8,
) -> LoadResult:
    """Dispatch on the clock: request ``i`` is due at ``t0 + i/rate``.

    Connections take interleaved slots (client c sends slots c, c+C,
    c+2C, ...), sleep until each slot's due time, then send and record
    ``completion - due`` — the latency a *punctual* client population
    would see, queueing included.  Per-answer delay divides by the calls
    per body.
    """
    result = LoadResult()
    lock = threading.Lock()
    total = max(1, int(rate_per_second * duration_seconds))
    interval = 1.0 / rate_per_second
    start = time.monotonic() + 0.05  # small lead so slot 0 is in the future

    def client(which: int) -> None:
        conn = http.client.HTTPConnection(host, port, timeout=30.0)
        delays: list[float] = []
        good = 0
        errors = 0
        late = 0
        try:
            for slot in range(which, total, connections):
                due = start + slot * interval
                pause = due - time.monotonic()
                if pause > 0:
                    time.sleep(pause)
                elif pause < -interval:
                    late += 1  # this client fell behind the schedule
                body = bodies[slot % len(bodies)]
                try:
                    conn, status = _post_once(conn, path, body)
                except (http.client.HTTPException, OSError):
                    errors += 1
                    continue
                finish = time.monotonic()
                if status == 200:
                    good += 1
                    delays.append((finish - due) / answers_per_request)
                else:
                    errors += 1
        finally:
            conn.close()
        with lock:
            result.requests += good + errors
            result.answers += good * answers_per_request
            result.errors += errors
            result.late_sends += late
            result.delays.extend(delays)

    threads = [
        threading.Thread(target=client, args=(i,), daemon=True)
        for i in range(connections)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    result.elapsed_seconds = time.monotonic() - start
    return result


__all__ = ["LoadResult", "closed_loop", "open_loop", "percentile"]
