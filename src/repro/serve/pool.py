"""Pre-fork sharded serving: N worker processes, one mmap-shared arena.

CPython's GIL caps the single-process server at one core no matter how
many connection threads it runs — the constant-delay guarantee survives,
aggregate throughput does not.  :class:`PoolServer` takes the classic
pre-fork shape instead:

* the **parent** builds one :class:`~repro.serve.service.QueryService`,
  preloads every ``.rpx`` snapshot from the cache directory and re-homes
  their arena buffers into shared ``memfd`` mappings
  (:func:`repro.storage.shared.share_index`) *before* forking — so the
  multi-megabyte register files exist once in physical memory no matter
  how many workers serve them;
* each **worker** is a fork that inherits a pre-bound loopback socket
  and runs the ordinary threaded HTTP server
  (:func:`repro.serve.http.build_handler`) against the pre-seeded,
  copy-on-write-shared service — CPU-bound ``test``/``next`` calls now
  run on as many cores as there are workers;
* the parent then serves the public port as a thin **router**: it reads
  each request, computes a cheap (graph, query) routing key *without
  loading anything*, and proxies the request to ``shard % workers`` over
  persistent keep-alive connections.  Requests for the same key always
  land on the same worker, so post-fork index builds shard the warm LRU
  instead of duplicating it in every process.

The routing key deliberately mirrors :meth:`GraphStore._spec` (family
tuple, content digests, path string) rather than the persist fingerprint
— computing the real fingerprint needs the loaded graph, which is
exactly the work the router must not do.  The two keys agree on "same
request", which is all routing needs.

Lifecycle: SIGTERM each worker on :meth:`close`, reap, respawn dead
workers (a monitor thread waits on ``waitpid``), ``X-Repro-Worker`` on
every proxied response, aggregated ``/v1/stats`` + ``/metrics`` from the
router.  ``/healthz`` answers from the router itself — liveness of the
pool, not of any one worker.
"""

from __future__ import annotations

import http.client
import json
import logging
import os
import queue
import signal
import socket
import threading
import time
import zlib
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlsplit

from repro import __version__
from repro.metrics.core import merge_snapshots
from repro.metrics.prometheus import CONTENT_TYPE as _PROM_CONTENT_TYPE
from repro.metrics.prometheus import flatten_gauges, render_merged_prometheus
from repro.obs.slo import aggregate_guarantee, endpoint_latency_summary
from repro.obs.stitch import stitch_traces
from repro.persist import SNAPSHOT_SUFFIX, SnapshotError, load_index, read_header
from repro.serve.http import (
    DEFAULT_MAX_BODY_BYTES,
    _POST_ROUTES,
    _TRACE_ID_RE,
    build_handler,
    read_request_body,
)
from repro.serve.service import QueryService, ServeError
from repro.storage.shared import SharedArena, share_index, shared_map_stats
from repro.trace.buffer import DEFAULT_CAPACITY, TraceBuffer
from repro.trace.logging import log_event
from repro.trace.profiler import DEFAULT_HZ, MAX_PROFILE_SECONDS, merge_profiles
from repro.trace.runtime import current_span as _current_span
from repro.trace.runtime import span as _span
from repro.trace.runtime import tracing

logger = logging.getLogger("repro.serve.pool")

#: Extra LRU headroom beyond the preloaded snapshots, so serving traffic
#: cannot evict what the parent deliberately warmed.
_PRELOAD_SLACK = 4


# ----------------------------------------------------------------------
# routing
# ----------------------------------------------------------------------


def routing_key(payload: Any) -> bytes:
    """A stable (graph, query, method) key for shard routing.

    Mirrors the service's graph-spec cache key without loading graphs:
    family requests key on ``(family, n, seed)``, inline graphs on their
    content digest, path requests on the path string.  Unroutable
    payloads (not a dict, no graph spec) key on their JSON — the worker
    that receives them produces the canonical 400.
    """
    if not isinstance(payload, dict):
        return repr(payload).encode("utf-8", "replace")
    parts: list[str] = [
        str(payload.get("query", "")),
        str(payload.get("method", "auto")),
    ]
    if "family" in payload:
        parts += [
            "family",
            str(payload.get("family")),
            str(payload.get("n")),
            str(payload.get("seed", 0)),
        ]
    elif "edge_list" in payload:
        import hashlib

        text = payload.get("edge_list")
        raw = text.encode("utf-8", "replace") if isinstance(text, str) else repr(text).encode()
        parts += ["edge_list", hashlib.sha256(raw).hexdigest()]
    elif "graph" in payload:
        import hashlib

        try:
            canon = json.dumps(
                payload["graph"], sort_keys=True, separators=(",", ":")
            )
        except (TypeError, ValueError):
            canon = repr(payload.get("graph"))
        parts += ["graph", hashlib.sha256(canon.encode()).hexdigest()]
    elif "graph_path" in payload:
        parts += ["path", str(payload.get("graph_path"))]
    return "\x1f".join(parts).encode("utf-8", "replace")


def shard_for(key: bytes, shards: int) -> int:
    """The shard a routing key belongs to (stable across runs/processes)."""
    return zlib.crc32(key) % shards


# ----------------------------------------------------------------------
# adopted-socket server
# ----------------------------------------------------------------------


class _AdoptedHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server on an already-bound, already-listening
    socket (a worker's inherited fd, or the router's public socket)."""

    def __init__(self, sock: socket.socket, handler: type) -> None:
        host, port = sock.getsockname()[:2]
        super().__init__((host, port), handler, bind_and_activate=False)
        self.socket = sock
        # what server_bind would have filled in
        self.server_address = sock.getsockname()
        self.server_name = host
        self.server_port = port
        self.daemon_threads = True


class _WorkerLink:
    """Parent-side handle on one worker: socket, pid, connection pool."""

    def __init__(self, wid: int, sock: socket.socket) -> None:
        self.wid = wid
        self.sock = sock
        self.port: int = sock.getsockname()[1]
        self.pid: int | None = None
        self._conns: queue.LifoQueue = queue.LifoQueue()

    def get_conn(self, timeout: float | None) -> http.client.HTTPConnection:
        try:
            return self._conns.get_nowait()
        except queue.Empty:
            return http.client.HTTPConnection(
                "127.0.0.1", self.port, timeout=timeout
            )

    def put_conn(self, conn: http.client.HTTPConnection) -> None:
        self._conns.put(conn)

    def drain_conns(self) -> None:
        while True:
            try:
                self._conns.get_nowait().close()
            except queue.Empty:
                return


# ----------------------------------------------------------------------
# the pool
# ----------------------------------------------------------------------


class PoolServer:
    """A pre-fork worker pool plus its routing front-end.

    Call :meth:`start` (binds, preloads, forks, spins the monitor), then
    :meth:`serve_forever` from the main thread; :meth:`close` tears the
    whole family down.  Needs ``os.fork`` — Linux/macOS only.
    """

    def __init__(
        self,
        service: QueryService,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        shards: int | None = None,
        request_timeout: float = 30.0,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        trace_capacity: int | None = None,
        trace_sample: float = 0.0,
        slow_ms: float | None = None,
        watchdog_factory: Any = None,
        preload: bool = True,
        worker_setup: Any = None,
    ) -> None:
        if not hasattr(os, "fork"):
            raise RuntimeError("PoolServer needs os.fork (POSIX only)")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if shards is None:
            shards = workers
        if shards < workers:
            raise ValueError(
                f"shards ({shards}) must be >= workers ({workers}); each "
                f"worker owns shards s with s % workers == worker id"
            )
        self.service = service
        self.host = host
        self.port = port
        self.workers = workers
        self.shards = shards
        self.request_timeout = request_timeout
        self.max_body_bytes = max_body_bytes
        self.trace_capacity = trace_capacity
        self.trace_sample = trace_sample
        # the parent's own ring of pool.route traces — stitched against
        # the workers' buffers by /v1/traces (same 0-disables convention
        # as build_handler)
        self.trace_buffer: TraceBuffer | None = (
            None
            if trace_capacity == 0
            else TraceBuffer(trace_capacity or DEFAULT_CAPACITY)
        )
        self.slow_ms = slow_ms
        self.watchdog_factory = watchdog_factory
        self.preload = preload
        self.worker_setup = worker_setup
        self.preloaded: list[str] = []
        self.arenas: list[SharedArena] = []
        self.shared_bytes = 0
        self._links: list[_WorkerLink] = []
        self._by_pid: dict[int, _WorkerLink] = {}
        self._lock = threading.Lock()
        self._respawns = 0
        self._started_at: float | None = None
        self._shutting_down = False
        self._public_sock: socket.socket | None = None
        self._router: ThreadingHTTPServer | None = None
        self._monitor: threading.Thread | None = None

    # -- public lifecycle ---------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        assert self._public_sock is not None, "start() first"
        return self._public_sock.getsockname()[:2]

    def start(self) -> None:
        """Bind, preload + share snapshots, fork workers, start the monitor."""
        self._public_sock = socket.create_server(
            (self.host, self.port), backlog=128
        )
        if self.preload:
            self._preload_snapshots()
        for wid in range(self.workers):
            self._links.append(
                _WorkerLink(wid, socket.create_server(("127.0.0.1", 0)))
            )
        self._started_at = time.monotonic()
        for link in self._links:
            link.pid = self._spawn(link)
            self._by_pid[link.pid] = link
        self._monitor = threading.Thread(
            target=self._reap_loop, name="pool-reaper", daemon=True
        )
        self._monitor.start()
        router_handler = type(
            "BoundRouterHandler",
            (RouterHandler,),
            {"pool": self, "timeout": self.request_timeout},
        )
        self._router = _AdoptedHTTPServer(self._public_sock, router_handler)
        log_event(
            logger,
            "pool started",
            workers=self.workers,
            shards=self.shards,
            preloaded=len(self.preloaded),
            shared_arena_bytes=self.shared_bytes,
            port=self.address[1],
        )

    def serve_forever(self) -> None:
        assert self._router is not None, "start() first"
        self._router.serve_forever()

    def shutdown(self) -> None:
        """Stop accepting (callable from another thread)."""
        if self._router is not None:
            self._router.shutdown()

    def close(self) -> None:
        """SIGTERM the workers, reap them, release every socket."""
        self._shutting_down = True
        with self._lock:
            pids = list(self._by_pid)
        for pid in pids:
            try:
                os.kill(pid, signal.SIGTERM)
            except ProcessLookupError:
                pass
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            with self._lock:
                if not self._by_pid:
                    break
            time.sleep(0.05)
        with self._lock:
            stragglers = list(self._by_pid)
        for pid in stragglers:  # pool teardown must not hang the parent
            try:
                os.kill(pid, signal.SIGKILL)
                os.waitpid(pid, 0)
            except (ProcessLookupError, ChildProcessError):
                pass
        if self._router is not None:
            self._router.server_close()
            self._router = None
            self._public_sock = None
        elif self._public_sock is not None:
            self._public_sock.close()
            self._public_sock = None
        for link in self._links:
            link.drain_conns()
            link.sock.close()
        for arena in self.arenas:
            arena.close()

    # -- pre-fork warmup ----------------------------------------------------

    def _preload_snapshots(self) -> None:
        """Load every snapshot once, re-home its arenas into shared memory,
        and seed the LRU — all before ``fork()``, so workers share pages.

        Every worker gets every preloaded index: the router's key routes
        *requests*, but a snapshot's fingerprint is not computable from a
        request without loading the graph, so pinning snapshots to single
        workers could strand a request on a worker without its index.
        Sharing makes that correct *and* cheap — the arena pages are
        mapped, not copied, no matter how many workers touch them.
        """
        directory = self.service.cache.snapshot_dir
        if directory is None or not directory.is_dir():
            return
        for path in sorted(directory.glob(f"*{SNAPSHOT_SUFFIX}")):
            try:
                header = read_header(path)
                fingerprint = str(header["fingerprint"])
                index = load_index(path, expected_fingerprint=fingerprint)
            except (SnapshotError, KeyError) as exc:
                logger.warning("preload skipped %s: %s", path.name, exc)
                continue
            arena = share_index(index, tag=fingerprint[:8])
            if arena is not None:
                self.arenas.append(arena)
                self.shared_bytes += arena.nbytes
            cache = self.service.cache
            cache.max_entries = max(
                cache.max_entries, len(self.preloaded) + 1 + _PRELOAD_SLACK
            )
            cache.seed(fingerprint, index)
            self.preloaded.append(fingerprint)
        log_event(
            logger,
            "preloaded snapshots",
            count=len(self.preloaded),
            shared_arena_bytes=self.shared_bytes,
            arenas=len(self.arenas),
        )

    # -- worker side --------------------------------------------------------

    def _spawn(self, link: _WorkerLink) -> int:
        pid = os.fork()
        if pid:
            return pid
        code = 1
        try:
            code = self._worker_main(link)
        except BaseException:  # noqa: BLE001 — a worker must never return
            import traceback

            traceback.print_exc()
        finally:
            os._exit(code)

    def _worker_main(self, link: _WorkerLink) -> int:
        """The forked child: adopt the socket, serve until SIGTERM."""
        from repro import metrics

        if self._public_sock is not None:
            self._public_sock.close()
        for other in self._links:
            if other is not link:
                other.sock.close()

        def _terminate(signum: int, frame: Any) -> None:
            # raising unwinds serve_forever from inside its select; calling
            # shutdown() here would deadlock the only thread
            raise SystemExit(0)

        try:
            signal.signal(signal.SIGTERM, _terminate)
            # the parent's ^C (SIGINT to the foreground process group) must
            # not kill workers mid-request; the parent SIGTERMs on close()
            signal.signal(signal.SIGINT, signal.SIG_IGN)
        except ValueError:  # pragma: no cover — non-main-thread fork
            pass
        wid = link.wid
        owned = tuple(s for s in range(self.shards) if s % self.workers == wid)
        for arena in self.arenas:
            arena.touch_pages()  # pre-fault: first request never page-faults
        self.service.worker_stats_fn = lambda: _worker_stats(wid, owned)
        if self.worker_setup is not None:
            self.worker_setup(wid)
        watchdog = (
            self.watchdog_factory() if self.watchdog_factory is not None else None
        )
        handler = build_handler(
            self.service,
            request_timeout=self.request_timeout,
            max_body_bytes=self.max_body_bytes,
            trace_capacity=self.trace_capacity,
            trace_sample=self.trace_sample,
            slow_ms=self.slow_ms,
            watchdog=watchdog,
        )
        server = _AdoptedHTTPServer(link.sock, handler)
        try:
            with metrics.collect(ops=False, histogram_samples=8192):
                server.serve_forever()
        except SystemExit:
            pass
        finally:
            server.server_close()
        return 0

    # -- parent-side monitoring --------------------------------------------

    def _reap_loop(self) -> None:
        """Reap dead workers; respawn them unless the pool is closing."""
        while True:
            try:
                pid, status = os.waitpid(-1, 0)
            except ChildProcessError:
                if self._shutting_down:
                    return
                time.sleep(0.2)
                continue
            except InterruptedError:
                continue
            with self._lock:
                link = self._by_pid.pop(pid, None)
            if link is None:
                continue
            if self._shutting_down:
                continue
            link.drain_conns()  # its keep-alive connections died with it
            with self._lock:
                self._respawns += 1
            log_event(
                logger,
                "worker died, respawning",
                level=logging.WARNING,
                worker=link.wid,
                pid=pid,
                status=status,
            )
            link.pid = self._spawn(link)
            with self._lock:
                self._by_pid[link.pid] = link

    # -- routing / proxying -------------------------------------------------

    def worker_for(self, payload: Any) -> int:
        return shard_for(routing_key(payload), self.shards) % self.workers

    def forward(
        self,
        wid: int,
        method: str,
        path: str,
        body: bytes | None,
        headers: dict[str, str],
        idempotent: bool = True,
    ) -> tuple[int, dict[str, str], bytes]:
        """Proxy one request to worker ``wid`` over a pooled connection.

        Retries exactly once on a transport error (a worker respawn kills
        its keep-alive connections; reads retry safely).  Callers proxying
        a request that mutates worker state — ``/v1/update``, which bumps
        the index version — pass ``idempotent=False``: a request that may
        already have been *applied* before the transport error must not be
        replayed, so those fail fast with a 503 instead.
        """
        link = self._links[wid]
        last_error: Exception | None = None
        attempts = (0, 1) if idempotent else (0,)
        for attempt in attempts:
            conn = link.get_conn(self.request_timeout)
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                data = response.read()
            except (http.client.HTTPException, OSError) as exc:
                conn.close()
                last_error = exc
                continue
            reply_headers = {
                key: value
                for key, value in response.getheaders()
                if key.lower() in ("content-type", "x-trace-id")
            }
            if response.will_close:
                conn.close()
            else:
                link.put_conn(conn)
            return response.status, reply_headers, data
        raise PoolWorkerUnavailable(
            f"worker {wid} unreachable after retry: {last_error}"
        )

    # -- aggregation --------------------------------------------------------

    def pool_stats(self) -> dict[str, Any]:
        with self._lock:
            live = {link.wid: link.pid for link in self._links}
            respawns = self._respawns
        return {
            "pid": os.getpid(),
            "workers": self.workers,
            "shards": self.shards,
            "respawns": respawns,
            "worker_pids": live,
            "preloaded": len(self.preloaded),
            "shared_arena_bytes": self.shared_bytes,
            "uptime_seconds": (
                None
                if self._started_at is None
                else round(time.monotonic() - self._started_at, 3)
            ),
        }

    def _fan_in(self, path: str) -> list[dict[str, Any]]:
        """GET ``path`` from every worker; errors become error entries."""
        out: list[dict[str, Any]] = []
        for link in self._links:
            try:
                status, _, data = self.forward(link.wid, "GET", path, None, {})
                payload = json.loads(data.decode("utf-8"))
            except (PoolWorkerUnavailable, ValueError) as exc:
                out.append({"worker": link.wid, "error": str(exc)})
                continue
            payload["worker_id"] = link.wid
            out.append(payload)
        return out

    def aggregate_stats(self) -> dict[str, Any]:
        """Pool + per-worker stats, plus the pool-wide ``guarantee`` block.

        The guarantee block folds every worker's watchdog snapshot into
        one verdict (did the constant-delay budget hold across the whole
        family), violation burn rates, and per-endpoint p50/p95/p99 from
        the merged request-latency histograms.
        """
        workers = self._fan_in("/v1/stats")
        exports = self._fan_in_exports()
        watchdogs: dict[str, dict[str, Any] | None] = {
            str(entry["worker_id"]): entry.get("watchdog")
            for entry in exports
            if "worker_id" in entry
        }
        merged = merge_snapshots(
            [e["metrics"] for e in exports if e.get("metrics") is not None]
        )
        return {
            "ok": True,
            "pool": self.pool_stats(),
            "guarantee": aggregate_guarantee(watchdogs),
            "endpoints": endpoint_latency_summary(merged),
            "workers": workers,
        }

    def aggregate_metrics(self) -> dict[str, Any]:
        exports = self._fan_in_exports()
        merged = merge_snapshots(
            [e["metrics"] for e in exports if e.get("metrics") is not None]
        )
        return {
            "ok": True,
            "pool": self.pool_stats(),
            "merged": merged,
            "workers": self._fan_in("/metrics"),
        }

    def _fan_in_exports(self) -> list[dict[str, Any]]:
        """Every worker's ``/v1/export`` payload (errors become entries)."""
        return self._fan_in("/v1/export")

    def merged_prometheus(self) -> str:
        """One pool-wide Prometheus exposition from the worker exports.

        Each family carries a merged unlabeled series plus per-worker
        ``{worker="N"}`` series; histograms come out as true Prometheus
        histograms with ``le`` buckets from the exact merged log-2
        bucket counts.  Pool-level stats become gauges; worker gauges
        (cache occupancy etc.) keep the worker label.
        """
        exports = self._fan_in_exports()
        worker_exports: dict[str, dict[str, Any]] = {}
        worker_gauges: dict[str, dict[str, float]] = {}
        for entry in exports:
            wid = entry.get("worker_id")
            if wid is None or "error" in entry:
                continue
            label = str(wid)
            if entry.get("metrics") is not None:
                worker_exports[label] = entry["metrics"]
            gauges = dict(entry.get("gauges") or {})
            if entry.get("watchdog") is not None:
                gauges.update(flatten_gauges(entry["watchdog"], "watchdog"))
            if gauges:
                worker_gauges[label] = gauges
        pool_gauges = flatten_gauges(
            {k: v for k, v in self.pool_stats().items() if k != "worker_pids"},
            "pool",
        )
        return render_merged_prometheus(
            worker_exports, gauges=pool_gauges, worker_gauges=worker_gauges
        )

    # -- cross-process traces / profiles ------------------------------------

    def stitched_trace(self, trace_id: str) -> dict[str, Any] | None:
        """One stitched tree for ``trace_id`` across parent + workers.

        Collects the parent's own ``pool.route`` trace (if recorded) and
        every worker's buffered payload for the id, then stitches them
        onto one timeline.  Returns None when no process recorded it.
        """
        payloads: list[dict[str, Any]] = []
        if self.trace_buffer is not None:
            own = self.trace_buffer.get(trace_id)
            if own is not None:
                own = dict(own)
                own["source"] = "parent"
                payloads.append(own)
        for link in self._links:
            try:
                status, _, data = self.forward(
                    link.wid, "GET", f"/v1/traces?trace_id={trace_id}", None, {}
                )
                payload = json.loads(data.decode("utf-8"))
            except (PoolWorkerUnavailable, ValueError):
                continue
            if status != 200 or not payload.get("ok"):
                continue
            trace = dict(payload["trace"])
            trace["source"] = f"worker:{link.wid}"
            payloads.append(trace)
        if not payloads:
            return None
        return stitch_traces(payloads)

    def aggregate_traces(self, limit: int) -> dict[str, Any]:
        """Recent-trace summaries across parent + all workers.

        Entries for the same trace id (the parent's ``pool.route`` hop
        and the worker's request trace) are folded into one summary with
        a ``sources`` list; fetch ``?trace_id=`` for the stitched tree.
        """
        grouped: dict[str, dict[str, Any]] = {}

        def fold(entries: list[dict[str, Any]], source: str) -> None:
            for entry in entries:
                tid = entry.get("trace_id")
                if tid is None:
                    continue
                slot = grouped.setdefault(
                    tid,
                    {
                        "trace_id": tid,
                        "name": entry.get("name"),
                        "started_at": entry.get("started_at"),
                        "spans": 0,
                        "sources": [],
                    },
                )
                if source == "parent":
                    slot["name"] = entry.get("name", slot["name"])
                slot["spans"] += int(entry.get("spans", 0))
                if source not in slot["sources"]:
                    slot["sources"].append(source)
                started = entry.get("started_at")
                if started is not None and (
                    slot["started_at"] is None or started < slot["started_at"]
                ):
                    slot["started_at"] = started

        if self.trace_buffer is not None:
            fold(self.trace_buffer.recent(limit), "parent")
        for link in self._links:
            try:
                status, _, data = self.forward(
                    link.wid, "GET", f"/v1/traces?limit={limit}", None, {}
                )
                payload = json.loads(data.decode("utf-8"))
            except (PoolWorkerUnavailable, ValueError):
                continue
            if status != 200 or not payload.get("ok"):
                continue
            fold(payload.get("traces", []), f"worker:{link.wid}")
        traces = sorted(
            grouped.values(), key=lambda t: t.get("started_at") or 0.0, reverse=True
        )[:limit]
        return {"ok": True, "worker": "all", "traces": traces}

    def aggregate_profile(self, seconds: float, hz: float) -> dict[str, Any]:
        """Profile every worker concurrently and merge the stacks.

        Each worker samples its own threads for ``seconds``; the fan-out
        runs on parallel threads over *fresh* connections (the pooled
        keep-alive connections have a shorter timeout than a long profile
        run), so wall clock is ~``seconds``, not ``workers * seconds``.
        """
        results: dict[int, dict[str, Any]] = {}
        lock = threading.Lock()

        def one(link: _WorkerLink) -> None:
            conn = http.client.HTTPConnection(
                "127.0.0.1", link.port, timeout=seconds + 10.0
            )
            try:
                conn.request("GET", f"/v1/profile?seconds={seconds:g}&hz={hz:g}")
                response = conn.getresponse()
                payload = json.loads(response.read().decode("utf-8"))
            except (http.client.HTTPException, OSError, ValueError):
                return
            finally:
                conn.close()
            if payload.get("ok"):
                with lock:
                    results[link.wid] = payload["profile"]

        threads = [
            threading.Thread(target=one, args=(link,), daemon=True)
            for link in self._links
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        merged = merge_profiles([results[wid] for wid in sorted(results)])
        return {
            "ok": True,
            "profile": merged,
            "workers": {
                str(wid): results[wid].get("samples", 0) for wid in sorted(results)
            },
        }


class PoolWorkerUnavailable(ServeError):
    """A worker could not be reached even after a retry (HTTP 503)."""

    http_status = 503


def _worker_stats(wid: int, owned_shards: tuple[int, ...]) -> dict[str, Any]:
    """One worker's ``/v1/stats`` block: identity, shards, memory."""
    return {
        "id": wid,
        "pid": os.getpid(),
        "shards": list(owned_shards),
        "rss_kb": _rss_kb(),
        "arena_maps": shared_map_stats(),
    }


def _rss_kb() -> int | None:
    try:
        with open("/proc/self/status", encoding="ascii", errors="replace") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except (OSError, ValueError, IndexError):
        pass
    return None


# ----------------------------------------------------------------------
# the router's HTTP face
# ----------------------------------------------------------------------


def _mutates_index(path: str, payload: Any) -> bool:
    """Does this routed request bump an index version on its worker?

    ``/v1/update`` always does; ``/v1/batch`` does when any call is an
    update.  Such requests must not be transparently retried by the
    router — a replay after a transport error could apply the same edge
    update twice.
    """
    if path == "/v1/update":
        return True
    if path == "/v1/batch" and isinstance(payload, dict):
        calls = payload.get("calls")
        if isinstance(calls, list):
            return any(
                isinstance(call, dict) and call.get("op") == "update"
                for call in calls
            )
    return False


class RouterHandler(BaseHTTPRequestHandler):
    """The parent's public-port handler: route, proxy, aggregate.

    All JSON work on this path is one ``json.loads`` per request (for the
    routing key) — index lookups, graph loads and oracle calls happen in
    the workers.  ``/healthz`` answers locally; ``/v1/stats`` fans in and
    adds the pool-wide ``guarantee`` block; ``/metrics`` fans in (JSON)
    or serves one *merged* Prometheus exposition (``Accept: text/plain``
    / ``?format=prom``); ``/v1/traces`` stitches one cross-process tree
    per trace id (``?worker=N`` filters to one worker's local view);
    ``/v1/profile`` samples every worker at once and merges the collapsed
    stacks.  Requests carrying ``X-Trace-Id`` get a ``pool.route`` span
    recorded here, with the span id propagated to the worker via
    ``X-Parent-Span``.
    """

    pool: PoolServer
    server_version = f"repro-pool/{__version__}"
    protocol_version = "HTTP/1.1"

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        path = urlsplit(self.path).path
        if path in ("/", "/healthz"):
            self._reply_json(
                200,
                {
                    "ok": True,
                    "service": "repro-serve-pool",
                    "workers": self.pool.workers,
                },
            )
        elif path == "/v1/stats":
            self._reply_json(200, self.pool.aggregate_stats())
        elif path == "/metrics":
            self._get_metrics()
        elif path == "/v1/export":
            self._reply_json(200, self.pool.aggregate_metrics())
        elif path == "/v1/traces":
            self._get_traces()
        elif path == "/v1/profile":
            self._get_profile()
        else:
            self._reply_error(404, "not_found", f"no such route: GET {path}")

    def _get_metrics(self) -> None:
        """``/metrics``: same negotiation as a single worker.

        JSON by default (pool + merged + per-worker payloads); Prometheus
        text via ``Accept: text/plain`` or ``?format=prom`` — one merged
        exposition with a ``worker`` label on per-worker series, so a
        scraper pointed at the parent sees the whole pool as one target.
        """
        query = parse_qs(urlsplit(self.path).query)
        accept = self.headers.get("Accept", "")
        wants_prom = query.get("format", [""])[0] == "prom" or (
            "text/plain" in accept and "application/json" not in accept
        )
        if wants_prom:
            self._reply_text(200, self.pool.merged_prometheus(), _PROM_CONTENT_TYPE)
        else:
            self._reply_json(200, self.pool.aggregate_metrics())

    def _get_traces(self) -> None:
        """``/v1/traces``: stitched across the pool by default.

        ``?worker=N`` keeps the old single-worker proxy as a filter;
        ``?worker=all`` (or no ``worker``) fans in — with ``trace_id``
        the reply is one stitched cross-process tree, without it a
        merged recent-summary list.
        """
        query = parse_qs(urlsplit(self.path).query)
        worker = query.get("worker", ["all"])[0]
        if worker != "all":
            self._proxy_to_worker("GET", body=None)
            return
        trace_id = query.get("trace_id", [None])[0]
        if trace_id:
            if not _TRACE_ID_RE.match(trace_id):
                self._reply_error(
                    400, "BadRequest", "'trace_id' must be 8-64 hex chars"
                )
                return
            stitched = self.pool.stitched_trace(trace_id.lower())
            if stitched is None:
                self._reply_error(
                    404,
                    "not_found",
                    f"no process recorded trace {trace_id!r}",
                )
                return
            self._reply_json(200, {"ok": True, "trace": stitched})
            return
        try:
            limit = int(query.get("limit", ["20"])[0])
        except ValueError:
            self._reply_error(400, "BadRequest", "'limit' must be an integer")
            return
        self._reply_json(200, self.pool.aggregate_traces(max(1, limit)))

    def _get_profile(self) -> None:
        """``/v1/profile``: profile every worker at once, merge the stacks."""
        query = parse_qs(urlsplit(self.path).query)
        try:
            seconds = float(query.get("seconds", ["1.0"])[0])
            hz = float(query.get("hz", [str(DEFAULT_HZ)])[0])
        except ValueError:
            self._reply_error(
                400, "BadRequest", "'seconds' and 'hz' must be numbers"
            )
            return
        if not 0.0 < seconds <= MAX_PROFILE_SECONDS:
            self._reply_error(
                400,
                "BadRequest",
                f"'seconds' must be in (0, {MAX_PROFILE_SECONDS:g}], "
                f"got {seconds:g}",
            )
            return
        if not 1.0 <= hz <= 1000.0:
            self._reply_error(
                400, "BadRequest", f"'hz' must be in [1, 1000], got {hz:g}"
            )
            return
        self._reply_json(200, self.pool.aggregate_profile(seconds, hz))

    def do_POST(self) -> None:  # noqa: N802 (stdlib naming)
        path = urlsplit(self.path).path
        if path not in _POST_ROUTES:
            self._reply_error(404, "not_found", f"no such route: POST {path}")
            return
        try:
            body = read_request_body(self, self.pool.max_body_bytes)
        except ServeError as exc:
            self._reply_error(exc.http_status, type(exc).__name__, str(exc))
            return
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            payload = None  # worker 0 renders the canonical 400
        wid = self.pool.worker_for(payload)
        idempotent = not _mutates_index(path, payload)
        # the router records a pool.route span when the client opted in
        # with a valid X-Trace-Id; the root span's id is propagated to
        # the worker (X-Parent-Span) so its request span nests under it
        # in the stitched tree.  Without the header the router does no
        # trace work at all.
        inbound = self.headers.get("X-Trace-Id")
        recording = (
            self.pool.trace_buffer is not None
            and inbound is not None
            and _TRACE_ID_RE.match(inbound) is not None
        )
        if not recording:
            self._proxy(wid, "POST", body, idempotent=idempotent)
            return
        with tracing(
            "pool.route",
            trace_id=inbound.lower(),
            endpoint=path,
            worker=wid,
            shards=self.pool.shards,
        ) as tracer:
            # the still-open pool.route root span is the worker's parent
            current = _current_span()
            parent_id = current.span_id if current is not None else None
            self._proxy(
                wid,
                "POST",
                body,
                idempotent=idempotent,
                extra_headers=(
                    {"X-Parent-Span": parent_id} if parent_id is not None else {}
                ),
            )
        self.pool.trace_buffer.add(tracer)

    def _proxy_to_worker(self, method: str, body: bytes | None) -> None:
        query = parse_qs(urlsplit(self.path).query)
        raw = query.get("worker", ["0"])[0]
        try:
            wid = int(raw)
        except ValueError:
            self._reply_error(
                400, "BadRequest", "'worker' must be an integer or 'all'"
            )
            return
        if not 0 <= wid < self.pool.workers:
            self._reply_error(
                400,
                "BadRequest",
                f"'worker' must be in [0, {self.pool.workers}), got {wid}",
            )
            return
        self._proxy(wid, method, body)

    def _proxy(
        self,
        wid: int,
        method: str,
        body: bytes | None,
        idempotent: bool = True,
        extra_headers: dict[str, str] | None = None,
    ) -> None:
        headers: dict[str, str] = {}
        for name in ("Content-Type", "X-Trace-Id"):
            value = self.headers.get(name)
            if value is not None:
                headers[name] = value
        if extra_headers:
            headers.update(extra_headers)
        try:
            with _span("pool.forward", worker=wid):
                status, reply_headers, data = self.pool.forward(
                    wid, method, self.path, body, headers, idempotent=idempotent
                )
        except PoolWorkerUnavailable as exc:
            self._reply_error(503, "PoolWorkerUnavailable", str(exc))
            return
        self.send_response(status)
        for key, value in reply_headers.items():
            self.send_header(key, value)
        self.send_header("X-Repro-Worker", str(wid))
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        try:
            self.wfile.write(data)
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True

    def _reply_json(self, status: int, payload: dict[str, Any]) -> None:
        data = json.dumps(payload).encode("utf-8")
        self._send_raw(status, data, "application/json")

    def _reply_text(self, status: int, text: str, content_type: str) -> None:
        self._send_raw(status, text.encode("utf-8"), content_type)

    def _send_raw(self, status: int, data: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        try:
            self.wfile.write(data)
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True

    def _reply_error(self, status: int, kind: str, message: str) -> None:
        self._reply_json(
            status, {"ok": False, "error": {"type": kind, "message": message}}
        )

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        logger.debug("%s - %s", self.address_string(), format % args)


__all__ = [
    "PoolServer",
    "PoolWorkerUnavailable",
    "RouterHandler",
    "routing_key",
    "shard_for",
]
