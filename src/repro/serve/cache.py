"""The shared index cache: one warm ``QueryIndex`` per fingerprint.

This is the server-side realization of the paper's amortization story:
Theorem 2.3's pseudo-linear preprocessing is paid **once per distinct
(graph, query, order, method, config)** — the PR-3 fingerprint — and
every later request answers in constant time from the warm object.  Three
tiers, coldest to warmest:

1. **build** — no snapshot, no cached object: run ``build_index`` and
   (best-effort) write a snapshot;
2. **snapshot** — a valid ``.rpx`` snapshot exists in ``snapshot_dir``:
   unpickle instead of rebuilding (the ``repro warm`` command pre-seeds
   this tier);
3. **hit** — the built object is live in the in-process LRU: zero cost.

Concurrency rules (the only locks in the read path of the whole server):

* the LRU map and the in-flight build table are mutated under one lock;
* builds are **deduplicated per fingerprint**: the first requester
  becomes the owner and builds, concurrent requesters for the same key
  block on an event and share the result (status ``"joined"``) — N
  simultaneous cold misses trigger exactly one build;
* requesters never hold the lock while building or waiting;
* a waiter gives up after ``build_wait_seconds`` (503 upstream), and at
  most ``max_in_flight_builds`` *distinct* keys may build at once —
  both knobs bound how much preprocessing a traffic spike can demand.

The cached ``QueryIndex`` objects themselves need no locks: see the
thread-safety note on :class:`~repro.core.engine.QueryIndex`.
"""

from __future__ import annotations

import logging
import threading
from collections import OrderedDict
from collections.abc import Callable, Sequence
from pathlib import Path
from typing import Any

from repro.contracts import guarded_by, locked
from repro.core.config import DEFAULT_CONFIG, EngineConfig
from repro.core.engine import QueryIndex, build_index
from repro.graphs.colored_graph import ColoredGraph
from repro.logic.syntax import Formula, Var
from repro.metrics.runtime import count as _metrics_count
from repro.persist import (
    SnapshotError,
    cache_path,
    index_fingerprint,
    load_index,
    save_index,
)
from repro.trace.runtime import span as _trace_span

logger = logging.getLogger("repro.serve")


class _Build:
    """One in-flight build: the owner fills it, waiters block on it."""

    __slots__ = ("event", "index", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.index: QueryIndex | None = None
        self.error: BaseException | None = None


class BuildWaitTimeout(TimeoutError):
    """A waiter outlived ``build_wait_seconds``; the build may still finish."""


class TooManyBuilds(RuntimeError):
    """``max_in_flight_builds`` distinct keys are already preprocessing."""


@guarded_by("_lock", "_entries", "_building", "stats")
class IndexCache:
    """An LRU of built :class:`QueryIndex` objects keyed by fingerprint.

    Parameters
    ----------
    max_entries:
        Live indexes kept warm; least-recently-used beyond that are
        dropped (their snapshots, if any, survive on disk).
    snapshot_dir:
        Optional ``.rpx`` snapshot directory backing cold starts; misses
        consult it before building and write to it after building.
    build_wait_seconds:
        How long a request waits for another thread's in-flight build of
        the same key before giving up with :class:`BuildWaitTimeout`.
    max_in_flight_builds:
        Cap on concurrent builds of *distinct* keys; beyond it new cold
        misses fail fast with :class:`TooManyBuilds`.
    build_fn:
        Injection point for tests; defaults to
        :func:`repro.core.engine.build_index`.
    """

    def __init__(
        self,
        max_entries: int = 8,
        snapshot_dir: str | Path | None = None,
        config: EngineConfig = DEFAULT_CONFIG,
        build_wait_seconds: float = 60.0,
        max_in_flight_builds: int = 4,
        build_fn: Callable[..., QueryIndex] = build_index,
    ) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.snapshot_dir = None if snapshot_dir is None else Path(snapshot_dir)
        self.config = config
        self.build_wait_seconds = build_wait_seconds
        self.max_in_flight_builds = max_in_flight_builds
        self._build_fn = build_fn
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, QueryIndex] = OrderedDict()
        self._building: dict[str, _Build] = {}
        self.stats: dict[str, int] = {
            "hits": 0,
            "joined": 0,
            "snapshot_loads": 0,
            "builds": 0,
            "evictions": 0,
            "busy_rejections": 0,
            "wait_timeouts": 0,
        }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def fingerprint(
        self,
        graph: ColoredGraph,
        query: Formula | str,
        free_order: Sequence[Var | str] | None = None,
        method: str = "auto",
        graph_digest_hint: str | None = None,
    ) -> str:
        """The cache key for a request (see :mod:`repro.persist.fingerprint`)."""
        return index_fingerprint(
            graph, query, free_order, self.config, method,
            graph_digest_hint=graph_digest_hint,
        )

    def get(
        self,
        graph: ColoredGraph,
        query: Formula | str,
        free_order: Sequence[Var | str] | None = None,
        method: str = "auto",
        graph_digest_hint: str | None = None,
    ) -> tuple[QueryIndex, str]:
        """The warm index for this request, plus how it was obtained.

        Returns ``(index, status)`` with status one of ``"hit"``
        (live in the LRU), ``"joined"`` (shared another request's
        in-flight build), ``"snapshot"`` (cold start from disk) or
        ``"built"`` (full preprocessing ran).  Raises whatever the build
        raises (e.g. ``DecompositionError`` for ``method="indexed"`` on
        an undecomposable query), :class:`BuildWaitTimeout`, or
        :class:`TooManyBuilds`.
        """
        key = self.fingerprint(graph, query, free_order, method, graph_digest_hint)
        with _trace_span("cache.get", fingerprint=key[:12]) as sp:
            index, status = self._get(key, graph, query, free_order, method)
            if sp is not None:
                sp.attributes["status"] = status
            return index, status

    def _get(
        self,
        key: str,
        graph: ColoredGraph,
        query: Formula | str,
        free_order: Sequence[Var | str] | None,
        method: str,
    ) -> tuple[QueryIndex, str]:
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self.stats["hits"] += 1
                _metrics_count("serve.cache_hits")
                return cached, "hit"
            build = self._building.get(key)
            if build is None:
                if len(self._building) >= self.max_in_flight_builds:
                    self.stats["busy_rejections"] += 1
                    _metrics_count("serve.busy_rejections")
                    raise TooManyBuilds(
                        f"{len(self._building)} index builds already in flight "
                        f"(max_in_flight_builds={self.max_in_flight_builds})"
                    )
                build = self._building[key] = _Build()
                owner = True
            else:
                owner = False
        if owner:
            return self._build(key, build, graph, query, free_order, method)
        # share the owner's result instead of building the same key twice
        if not build.event.wait(self.build_wait_seconds):
            with self._lock:
                self.stats["wait_timeouts"] += 1
            _metrics_count("serve.wait_timeouts")
            raise BuildWaitTimeout(
                f"timed out after {self.build_wait_seconds:.1f}s waiting for "
                f"an in-flight build of {key[:12]}..."
            )
        if build.error is not None:
            raise build.error
        assert build.index is not None
        with self._lock:
            self.stats["joined"] += 1
        _metrics_count("serve.builds_joined")
        return build.index, "joined"

    def _build(
        self,
        key: str,
        build: _Build,
        graph: ColoredGraph,
        query: Formula | str,
        free_order: Sequence[Var | str] | None,
        method: str,
    ) -> tuple[QueryIndex, str]:
        """Owner path: snapshot-or-build outside the lock, then publish."""
        try:
            index, status = self._load_or_build(key, graph, query, free_order, method)
            build.index = index
        except BaseException as exc:
            build.error = exc
            raise
        finally:
            build.event.set()
            with self._lock:
                self._building.pop(key, None)
                if build.index is not None:
                    self._insert(key, build.index)
        return index, status

    def _load_or_build(
        self,
        key: str,
        graph: ColoredGraph,
        query: Formula | str,
        free_order: Sequence[Var | str] | None,
        method: str,
    ) -> tuple[QueryIndex, str]:
        if self.snapshot_dir is not None:
            path = cache_path(self.snapshot_dir, key)
            if path.exists():
                try:
                    index = load_index(path, expected_fingerprint=key)
                except SnapshotError as exc:
                    logger.warning("snapshot rejected, rebuilding: %s", exc)
                else:
                    with self._lock:
                        self.stats["snapshot_loads"] += 1
                    _metrics_count("serve.snapshot_loads")
                    return index, "snapshot"
        index = self._build_fn(
            graph, query, free_order, method=method, config=self.config
        )
        with self._lock:
            self.stats["builds"] += 1
        _metrics_count("serve.builds")
        if self.snapshot_dir is not None:
            try:
                save_index(index, cache_path(self.snapshot_dir, key), key)
            except OSError as exc:  # a read-only snapshot dir degrades gracefully
                logger.warning("could not write snapshot for %s: %s", key[:12], exc)
        return index, "built"

    @locked("_lock")
    def _insert(self, key: str, index: QueryIndex) -> None:
        """Publish into the LRU and evict; caller must hold ``self._lock``."""
        self._entries[key] = index
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats["evictions"] += 1
            _metrics_count("serve.evictions")

    def seed(self, key: str, index: QueryIndex) -> None:
        """Publish a pre-built index under ``key`` (pool pre-fork warmup).

        The pool parent loads snapshots and re-homes their arena buffers
        into shared memory *before* forking, then seeds them here so every
        worker starts with the index already warm — status ``"hit"`` on
        the first request.  Seeding counts as a snapshot load in the stats
        since that is what it replaced.
        """
        with self._lock:
            self._insert(key, index)
            self.stats["snapshot_loads"] += 1

    def replace(self, key: str, index: QueryIndex) -> None:
        """Publish a new update generation under an existing fingerprint.

        ``/v1/update`` repairs a warm index into a new generation
        (version + 1) and republishes it here so every later request for
        the same static fingerprint answers at the new version.  The
        snapshot (if any) is overwritten so the lineage survives both
        eviction and restart — rebuilding from the graph *spec* would
        silently rewind to version 0.
        """
        with self._lock:
            self._insert(key, index)
        if self.snapshot_dir is not None:
            try:
                save_index(index, cache_path(self.snapshot_dir, key), key)
            except OSError as exc:
                logger.warning(
                    "could not write snapshot for %s: %s", key[:12], exc
                )

    def drop(self, key: str) -> bool:
        """Evict one fingerprint; True if it was cached."""
        with self._lock:
            return self._entries.pop(key, None) is not None

    def clear(self) -> None:
        """Evict everything (snapshots on disk are untouched)."""
        with self._lock:
            self._entries.clear()

    def snapshot_stats(self) -> dict[str, Any]:
        """A JSON-ready view for ``/metrics`` and ``/v1/stats``."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "in_flight_builds": len(self._building),
                "snapshot_dir": str(self.snapshot_dir) if self.snapshot_dir else None,
                # update generation per warm entry (abridged fingerprints),
                # so /v1/stats shows which version each shard answers at
                "versions": {
                    key[:12]: index.version
                    for key, index in self._entries.items()
                },
                **dict(self.stats),
            }
