"""A small stdlib client for the ``repro serve`` HTTP API.

::

    from repro.serve.client import ServiceClient, family_spec

    client = ServiceClient("http://127.0.0.1:8321")
    spec = family_spec("grid", 400, seed=7)        # or path_spec / inline_spec
    client.test(spec, "E(x, y)", (0, 1))           # -> bool
    client.next_solution(spec, "E(x, y)", (10, 0)) # -> tuple | None
    for sol in client.enumerate(spec, "E(x, y)"):  # paginates transparently
        ...

Failures raise :class:`ServiceClientError` with the server's status code
and decoded error payload — a connection refusal, a 4xx input error and
a 503 overload are all the same exception type, distinguished by
``status`` (0 for transport-level failures).
"""

from __future__ import annotations

import json
from collections.abc import Iterator, Sequence
from typing import Any
from urllib.error import HTTPError, URLError
from urllib.request import Request, urlopen

from repro.errors import ReproError
from repro.graphs.colored_graph import ColoredGraph
from repro.graphs.io import dumps_edge_list


class ServiceClientError(ReproError):
    """The server rejected the request or could not be reached."""

    def __init__(self, message: str, status: int = 0, payload: Any = None) -> None:
        super().__init__(message)
        self.status = status
        self.payload = payload


def path_spec(path: str) -> dict[str, Any]:
    """Ask the server to load a graph file under its ``--graph-root``."""
    return {"graph_path": path}


def inline_spec(graph: ColoredGraph) -> dict[str, Any]:
    """Ship a local graph inline as canonical edge-list text."""
    return {"edge_list": dumps_edge_list(graph)}


def family_spec(family: str, n: int, seed: int = 0) -> dict[str, Any]:
    """Ask the server to generate a graph family member."""
    return {"family": family, "n": n, "seed": seed}


class ServiceClient:
    """Typed wrappers over the JSON endpoints (one instance per server)."""

    def __init__(self, base_url: str, timeout: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        #: index metadata from the most recent graph+query call —
        #: {"status": "hit"|"built"|..., "method", "arity", "fingerprint"}.
        self.last_index_meta: dict[str, Any] | None = None

    # ------------------------------------------------------------------

    def test(
        self,
        graph: dict[str, Any],
        query: str,
        values: Sequence[int],
        method: str = "auto",
    ) -> bool:
        """Corollary 2.4: is ``values`` a solution?"""
        reply = self._post(
            "/v1/test",
            {**graph, "query": query, "tuple": list(values), "method": method},
        )
        return bool(reply["value"])

    def next_solution(
        self,
        graph: dict[str, Any],
        query: str,
        start: Sequence[int],
        method: str = "auto",
    ) -> tuple[int, ...] | None:
        """Theorem 2.3: smallest solution ``>= start``."""
        reply = self._post(
            "/v1/next",
            {**graph, "query": query, "tuple": list(start), "method": method},
        )
        found = reply["solution"]
        return None if found is None else tuple(found)

    def enumerate_page(
        self,
        graph: dict[str, Any],
        query: str,
        cursor: Sequence[int] | None = None,
        limit: int | None = None,
        method: str = "auto",
        cursor_version: int | None = None,
    ) -> tuple[list[tuple[int, ...]], tuple[int, ...] | None]:
        """One page: ``(items, next_cursor)``; resume by passing the cursor.

        Pass the ``index_version`` from :attr:`last_index_meta` as
        ``cursor_version`` to pin the page to one update generation — a
        mid-enumeration ``/v1/update`` then surfaces as a
        :class:`ServiceClientError` with ``status == 409`` instead of
        silently mixing generations.
        """
        payload: dict[str, Any] = {**graph, "query": query, "method": method}
        if cursor is not None:
            payload["cursor"] = list(cursor)
        if limit is not None:
            payload["limit"] = limit
        if cursor_version is not None:
            payload["cursor_version"] = cursor_version
        reply = self._post("/v1/enumerate", payload)
        items = [tuple(item) for item in reply["items"]]
        next_cursor = reply["next_cursor"]
        return items, (None if next_cursor is None else tuple(next_cursor))

    def enumerate(
        self,
        graph: dict[str, Any],
        query: str,
        start: Sequence[int] | None = None,
        page_size: int | None = None,
        method: str = "auto",
    ) -> Iterator[tuple[int, ...]]:
        """All solutions ``>= start``, fetching pages transparently.

        The first page pins the index version; later pages carry it as
        ``cursor_version``, so a concurrent update raises a 409
        :class:`ServiceClientError` rather than splicing two generations
        into one stream.
        """
        cursor = None if start is None else tuple(start)
        pinned: int | None = None
        while True:
            items, cursor = self.enumerate_page(
                graph, query, cursor=cursor, limit=page_size, method=method,
                cursor_version=pinned,
            )
            if pinned is None and isinstance(self.last_index_meta, dict):
                pinned = self.last_index_meta.get("index_version")
            yield from items
            if cursor is None:
                return

    def update(
        self,
        graph: dict[str, Any],
        query: str,
        op: str,
        edge: Sequence[int],
        method: str = "auto",
    ) -> int:
        """Apply one edge update (``/v1/update``); returns the new version.

        ``op`` is ``"insert"`` or ``"delete"``; ``edge`` the ``(u, v)``
        endpoints.  The server repairs the warm index ball-locally into
        version + 1 (see ``docs/updates.md``).
        """
        reply = self._post(
            "/v1/update",
            {
                **graph,
                "query": query,
                "method": method,
                "op": op,
                "edge": list(edge),
            },
        )
        return int(reply["version"])

    def batch(
        self,
        graph: dict[str, Any],
        query: str,
        calls: Sequence[tuple[str, Sequence[int]]],
        method: str = "auto",
    ) -> list[Any]:
        """N test/next/update calls in one round trip (``/v1/batch``).

        ``calls`` is a sequence of ``(op, values)`` pairs: ``("test", t)``
        / ``("next", t)`` probe with tuple ``t``, while
        ``("insert", (u, v))`` / ``("delete", (u, v))`` apply an edge
        update in place in the sequence.  The reply is position-aligned —
        a bool per ``test``, a solution tuple or ``None`` per ``next``,
        and an ``{"applied", "version"}`` dict per update; probes after
        an update answer against the updated generation.
        """
        shaped = []
        for op, values in calls:
            if op in ("insert", "delete"):
                shaped.append({"op": "update", "action": op, "edge": list(values)})
            else:
                shaped.append({"op": op, "tuple": list(values)})
        reply = self._post(
            "/v1/batch",
            {**graph, "query": query, "method": method, "calls": shaped},
        )
        return [
            tuple(item) if isinstance(item, list) else item
            for item in reply["results"]
        ]

    def count(self, graph: dict[str, Any], query: str, method: str = "auto") -> int:
        """|phi(G)|."""
        reply = self._post("/v1/count", {**graph, "query": query, "method": method})
        return int(reply["count"])

    def explain(self, query: str) -> dict[str, Any]:
        """Fragment diagnosis for ``query`` (no graph involved)."""
        return self._post("/v1/explain", {"query": query})

    def metrics(self) -> dict[str, Any]:
        """The ``/metrics`` dump (registry snapshot + cache stats)."""
        return self._get("/metrics")

    def stats(self) -> dict[str, Any]:
        """The ``/v1/stats`` dump (knobs + cache occupancy)."""
        return self._get("/v1/stats")

    def export(self) -> dict[str, Any]:
        """The ``/v1/export`` mergeable metrics/watchdog wire payload."""
        return self._get("/v1/export")

    def prometheus(self) -> str:
        """The ``/metrics`` endpoint as Prometheus text exposition.

        Against a pool parent this is the *merged* pool-wide exposition
        with per-worker ``{worker="N"}`` series.
        """
        request = Request(
            self.base_url + "/metrics?format=prom",
            headers={"Accept": "text/plain"},
            method="GET",
        )
        try:
            with urlopen(request, timeout=self.timeout) as response:
                return response.read().decode("utf-8")
        except HTTPError as exc:
            raise ServiceClientError(
                f"HTTP {exc.code}: {exc}", status=exc.code
            ) from None
        except URLError as exc:
            raise ServiceClientError(
                f"could not reach {self.base_url}: {exc.reason}"
            ) from None

    def traces(
        self,
        trace_id: str | None = None,
        worker: int | str | None = None,
        limit: int | None = None,
    ) -> dict[str, Any]:
        """``/v1/traces``: recent summaries, or one (stitched) tree.

        Against a pool parent, ``worker`` filters to one worker's local
        view (``worker="all"`` / None stitches across the pool); a
        single server ignores it.
        """
        params: list[str] = []
        if trace_id is not None:
            params.append(f"trace_id={trace_id}")
        if worker is not None:
            params.append(f"worker={worker}")
        if limit is not None:
            params.append(f"limit={limit}")
        suffix = "?" + "&".join(params) if params else ""
        return self._get("/v1/traces" + suffix)

    def profile(
        self, seconds: float = 1.0, hz: float | None = None
    ) -> dict[str, Any]:
        """``/v1/profile``: collapsed stacks (merged pool-wide on a parent).

        Blocks for ~``seconds``.  The client timeout is stretched to
        cover the sampling window.
        """
        suffix = f"?seconds={seconds:g}"
        if hz is not None:
            suffix += f"&hz={hz:g}"
        request = Request(self.base_url + "/v1/profile" + suffix, method="GET")
        saved = self.timeout
        self.timeout = max(saved, seconds + 15.0)
        try:
            return self._send(request)
        finally:
            self.timeout = saved

    def health(self) -> bool:
        """True when the server answers ``/healthz``."""
        try:
            return bool(self._get("/healthz").get("ok"))
        except ServiceClientError:
            return False

    # ------------------------------------------------------------------

    def _post(self, route: str, payload: dict[str, Any]) -> dict[str, Any]:
        body = json.dumps(payload).encode("utf-8")
        request = Request(
            self.base_url + route,
            data=body,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        reply = self._send(request)
        meta = reply.get("index")
        if isinstance(meta, dict):
            self.last_index_meta = meta
        return reply

    def _get(self, route: str) -> dict[str, Any]:
        return self._send(Request(self.base_url + route, method="GET"))

    def _send(self, request: Request) -> dict[str, Any]:
        try:
            with urlopen(request, timeout=self.timeout) as response:
                status = response.status
                raw = response.read()
            try:
                return json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, ValueError) as exc:
                # a 2xx with a malformed body is still a failure, and the
                # documented contract is "failures raise ServiceClientError"
                raise ServiceClientError(
                    f"HTTP {status}: response body is not valid JSON: {exc}",
                    status=status,
                    payload=raw[:512],
                ) from None
        except HTTPError as exc:
            try:
                payload = json.loads(exc.read().decode("utf-8"))
                message = payload.get("error", {}).get("message", str(exc))
            except (ValueError, AttributeError):
                payload, message = None, str(exc)
            raise ServiceClientError(
                f"HTTP {exc.code}: {message}", status=exc.code, payload=payload
            ) from None
        except URLError as exc:
            raise ServiceClientError(
                f"could not reach {self.base_url}: {exc.reason}"
            ) from None
