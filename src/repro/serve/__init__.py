"""A long-lived query service with a shared index cache (``repro serve``).

The paper's contract — pseudo-linear preprocessing once, then
constant-time ``test`` / ``next_solution`` forever (Theorem 2.3,
Corollaries 2.4-2.5) — is the shape of a server, not a batch job.  This
package is that server:

* :mod:`repro.serve.cache` — an LRU of built
  :class:`~repro.core.engine.QueryIndex` objects keyed by the persist
  fingerprint, backed by ``.rpx`` snapshots for cold starts, with
  per-key build deduplication (N concurrent misses, one build);
* :mod:`repro.serve.service` — transport-agnostic JSON request
  handlers (``test`` / ``next`` / ``enumerate`` / ``count`` /
  ``explain``) with typed 4xx errors;
* :mod:`repro.serve.http` — the stdlib ``ThreadingHTTPServer`` skin
  plus ``/metrics`` and ``/healthz``;
* :mod:`repro.serve.client` — a stdlib urllib client.

Start it with ``python -m repro serve`` (see ``docs/serving.md``) or
embed it::

    from repro.serve import QueryService, create_server

    server = create_server(QueryService(snapshot_dir=".repro-cache"), port=8321)
    server.serve_forever()
"""

from repro.serve.cache import BuildWaitTimeout, IndexCache, TooManyBuilds
from repro.serve.client import (
    ServiceClient,
    ServiceClientError,
    family_spec,
    inline_spec,
    path_spec,
)
from repro.serve.http import build_handler, create_server, wait_until_ready
from repro.serve.pool import PoolServer, PoolWorkerUnavailable, routing_key, shard_for
from repro.serve.service import (
    BadRequest,
    GraphStore,
    QueryService,
    ServeError,
    ServiceUnavailable,
)

__all__ = [
    "BadRequest",
    "BuildWaitTimeout",
    "GraphStore",
    "IndexCache",
    "PoolServer",
    "PoolWorkerUnavailable",
    "QueryService",
    "ServeError",
    "ServiceClient",
    "ServiceClientError",
    "ServiceUnavailable",
    "TooManyBuilds",
    "build_handler",
    "create_server",
    "family_spec",
    "inline_spec",
    "path_spec",
    "routing_key",
    "shard_for",
    "wait_until_ready",
]
