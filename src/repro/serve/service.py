"""The transport-agnostic query service behind ``repro serve``.

:class:`QueryService` turns JSON-ready request dicts into JSON-ready
response dicts; :mod:`repro.serve.http` is a thin HTTP skin over it, and
tests drive it directly.  All user-input failures raise
:class:`BadRequest` / :class:`ServiceUnavailable` (both
:class:`~repro.errors.ReproError` subclasses carrying an HTTP status),
never a traceback.

A request names a graph (one of four *graph specs*), a query, and the
operation's own arguments::

    {"edge_list": "n 3\\ne 0 1\\ne 1 2\\n", "query": "E(x, y)",
     "tuple": [0, 1]}                        # -> /v1/test
    {"graph_path": "g.json", "query": "...", "cursor": [5, 0],
     "limit": 200}                           # -> /v1/enumerate
    {"family": "grid", "n": 400, "seed": 7, "query": "..."}
    {"graph": {"kind": "colored_graph", ...}, "query": "..."}

Graphs are resolved through a small LRU (:class:`GraphStore`) that also
remembers each graph's content digest, so the per-request fingerprint
computation is O(1) after the first load — requests then cost exactly
what the paper promises: a cache lookup plus constant-time oracle calls.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Any

from repro.contracts import guarded_by
from repro.core.config import DEFAULT_CONFIG, EngineConfig
from repro.core.engine import QueryIndex
from repro.core.normal_form import DecompositionError
from repro.errors import GraphFormatError, ReproError
from repro.graphs.colored_graph import ColoredGraph
from repro.graphs.generators import FAMILIES
from repro.graphs.io import graph_from_json, loads_edge_list, read_edge_list, read_json
from repro.logic.diagnostics import explain
from repro.logic.parser import ParseError, parse_formula
from repro.logic.syntax import Formula
from repro.metrics.runtime import active as _metrics_active
from repro.persist.fingerprint import graph_digest
from repro.serve.cache import BuildWaitTimeout, IndexCache, TooManyBuilds

_METHODS = ("auto", "indexed", "naive")


class ServeError(ReproError):
    """Base for request failures; carries the HTTP status to answer with."""

    http_status = 500


class BadRequest(ServeError):
    """Malformed or unsatisfiable request input (HTTP 400)."""

    exit_code = 2
    http_status = 400


class ServiceUnavailable(ServeError):
    """Transient overload: build backlog or wait timeout (HTTP 503)."""

    http_status = 503


class StaleCursor(ServeError):
    """A cursor pinned to an older index version (HTTP 409).

    Pagination is *cursor-stable across updates*: a cursor minted at
    version ``k`` either completes against version ``k`` or fails with
    this typed conflict — the service never silently mixes pages from
    different generations.  Clients restart the enumeration (or pin the
    old generation by keeping their own reference) on 409.
    """

    exit_code = 2
    http_status = 409


@guarded_by("_lock", "_entries")
class GraphStore:
    """A small LRU of loaded graphs, each with its content digest.

    Keys are *graph specs* (what the request said), values are
    ``(graph, digest)``.  Loading and digesting happen outside the lock;
    racing loads of the same spec both succeed and one result wins —
    idempotent, like the engine's own memoization.
    """

    def __init__(self, graph_root: str | Path | None, max_entries: int = 16) -> None:
        self.graph_root = None if graph_root is None else Path(graph_root).resolve()
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, tuple[ColoredGraph, str]] = OrderedDict()

    def resolve(self, payload: dict[str, Any]) -> tuple[ColoredGraph, str]:
        """The payload's graph and its digest (loading and caching it)."""
        key, loader = self._spec(payload)
        with self._lock:
            found = self._entries.get(key)
            if found is not None:
                self._entries.move_to_end(key)
                return found
        graph = loader()
        entry = (graph, graph_digest(graph))
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
        return entry

    def _spec(self, payload: dict[str, Any]):
        """Parse the graph spec: a hashable cache key plus a loader."""
        given = [
            k for k in ("graph_path", "edge_list", "graph", "family") if k in payload
        ]
        if len(given) != 1:
            raise BadRequest(
                "specify the graph with exactly one of 'graph_path', "
                f"'edge_list', 'graph' or 'family' (got {given or 'none'})"
            )
        kind = given[0]
        if kind == "graph_path":
            return self._path_spec(payload["graph_path"])
        if kind == "edge_list":
            text = payload["edge_list"]
            if not isinstance(text, str):
                raise BadRequest("'edge_list' must be a string")
            digest = hashlib.sha256(text.encode()).hexdigest()
            return ("edge_list", digest), lambda: self._load(loads_edge_list, text)
        if kind == "graph":
            doc = payload["graph"]
            if not isinstance(doc, dict):
                raise BadRequest("'graph' must be a JSON object document")
            canon = json.dumps(doc, sort_keys=True, separators=(",", ":"))
            digest = hashlib.sha256(canon.encode()).hexdigest()
            return ("graph", digest), lambda: self._load(graph_from_json, doc)
        family = payload["family"]
        if family not in FAMILIES:
            raise BadRequest(
                f"unknown family {family!r}; choose from {sorted(FAMILIES)}"
            )
        n = _require_int(payload, "n", minimum=0)
        seed = _require_int(payload, "seed", minimum=0, default=0)
        return (
            ("family", family, n, seed),
            lambda: FAMILIES[family](n, seed=seed),
        )

    def _path_spec(self, raw: Any):
        if self.graph_root is None:
            raise BadRequest(
                "'graph_path' requests are disabled (serve started without "
                "--graph-root)"
            )
        if not isinstance(raw, str) or not raw:
            raise BadRequest("'graph_path' must be a non-empty string")
        path = (self.graph_root / raw).resolve()
        if self.graph_root != path and self.graph_root not in path.parents:
            raise BadRequest(f"'graph_path' {raw!r} escapes the served graph root")
        try:
            stat = path.stat()
        except OSError:
            raise BadRequest(f"no such graph file: {raw!r}") from None
        key = ("path", str(path), stat.st_mtime_ns, stat.st_size)
        if path.suffix == ".json":
            return key, lambda: self._load_json_graph(path)
        return key, lambda: self._load(read_edge_list, path)

    def _load_json_graph(self, path: Path) -> ColoredGraph:
        loaded = self._load(read_json, path)
        if not isinstance(loaded, ColoredGraph):
            raise BadRequest(f"{path.name} holds a database, not a colored graph")
        return loaded

    @staticmethod
    def _load(reader, source):
        try:
            return reader(source)
        except GraphFormatError as exc:
            raise BadRequest(f"malformed graph: {exc}") from None
        except OSError as exc:
            raise BadRequest(f"could not read graph: {exc}") from None


class QueryService:
    """Stateful request handlers over one shared :class:`IndexCache`.

    One instance serves every connection thread of the HTTP server; all
    its own state is the two caches, which carry their own locks.
    """

    def __init__(
        self,
        cache_entries: int = 8,
        snapshot_dir: str | Path | None = None,
        graph_root: str | Path | None = None,
        max_page_size: int = 1000,
        default_page_size: int = 100,
        build_wait_seconds: float = 60.0,
        max_in_flight_builds: int = 4,
        graph_cache_entries: int = 16,
        config: EngineConfig = DEFAULT_CONFIG,
        max_batch_calls: int = 1024,
    ) -> None:
        if max_page_size < 1:
            raise ValueError(f"max_page_size must be >= 1, got {max_page_size}")
        if max_batch_calls < 1:
            raise ValueError(f"max_batch_calls must be >= 1, got {max_batch_calls}")
        self.max_page_size = max_page_size
        self.default_page_size = min(default_page_size, max_page_size)
        self.max_batch_calls = max_batch_calls
        #: Filled by the pool's worker bootstrap; merged into ``stats()``
        #: so ``/v1/stats`` reports per-worker occupancy.
        self.worker_stats_fn = None
        #: Serializes ``/v1/update`` applications per service: an update
        #: re-fetches the current generation inside the lock, so two
        #: concurrent updates compound instead of overwriting each other.
        self._update_lock = threading.Lock()
        self.graphs = GraphStore(graph_root, max_entries=graph_cache_entries)
        self.cache = IndexCache(
            max_entries=cache_entries,
            snapshot_dir=snapshot_dir,
            config=config,
            build_wait_seconds=build_wait_seconds,
            max_in_flight_builds=max_in_flight_builds,
        )

    # ------------------------------------------------------------------
    # endpoint handlers (payload dict in, response dict out)

    def handle_test(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Corollary 2.4 over HTTP: is ``tuple`` a solution?"""
        index, meta = self._index_for(payload)
        values = _require_tuple(payload, "tuple", index.arity)
        return {"value": index.test(values), "index": meta}

    def handle_next(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Theorem 2.3 over HTTP: smallest solution ``>= tuple``."""
        index, meta = self._index_for(payload)
        values = _require_tuple(payload, "tuple", index.arity)
        found = index.next_solution(values)
        return {
            "solution": None if found is None else list(found),
            "index": meta,
        }

    def handle_enumerate(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Corollary 2.5 over HTTP, cursor-paginated.

        ``cursor`` is the tuple to resume from (from the previous
        response's ``next_cursor``); ``limit`` defaults to
        ``default_page_size`` and is capped at ``max_page_size``.

        ``cursor_version`` (optional) pins the enumeration to one update
        generation: when it no longer matches the warm index's version,
        the request fails with a typed 409 :class:`StaleCursor` instead
        of silently mixing pages from different generations.
        """
        index, meta = self._index_for(payload)
        limit = _require_int(
            payload, "limit", minimum=1, default=self.default_page_size
        )
        if limit > self.max_page_size:
            raise BadRequest(
                f"limit {limit} exceeds the page-size cap {self.max_page_size}"
            )
        if payload.get("cursor_version") is not None:
            pinned = _require_int(payload, "cursor_version", minimum=0)
            if pinned != index.version:
                raise StaleCursor(
                    f"cursor was minted at index version {pinned} but the "
                    f"index is now at version {index.version}; restart the "
                    "enumeration"
                )
        cursor = None
        if payload.get("cursor") is not None:
            cursor = _require_tuple(payload, "cursor", index.arity)
        page = index.enumerate_page(start=cursor, limit=limit)
        return {
            "items": [list(item) for item in page.items],
            "next_cursor": None if page.next_cursor is None else list(page.next_cursor),
            "index": meta,
        }

    def handle_update(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Apply one edge update; the index moves to version + 1.

        ``{"op": "insert"|"delete", "edge": [u, v]}`` alongside the usual
        graph spec / query / method.  The warm index is repaired
        ball-locally (:mod:`repro.core.repair`) into a *new* generation
        and republished under the same static fingerprint; in-flight
        readers of the old generation finish undisturbed, and cursors
        pinned to it get a typed 409 on their next page.  A semantically
        invalid edge (absent on delete, present or self-loop on insert,
        out-of-range endpoint) is a 400.
        """
        graph, digest, phi, method = self._resolve_request(payload)
        op = payload.get("op")
        if op not in ("insert", "delete"):
            raise BadRequest(f"'op' must be 'insert' or 'delete', got {op!r}")
        edge = _require_tuple(payload, "edge", 2)
        updated, status, key = self._apply_update(graph, digest, phi, method, op, edge)
        meta = {
            "status": status,
            "method": updated.method,
            "arity": updated.arity,
            "fingerprint": key[:12],
            "index_version": updated.version,
        }
        return {
            "applied": op,
            "edge": list(edge),
            "version": updated.version,
            "index": meta,
        }

    def handle_batch(self, payload: dict[str, Any]) -> dict[str, Any]:
        """N test/next/update calls against one index, amortizing the trip.

        ``calls`` is a list of ``{"op": "test"|"next", "tuple": [...]}``
        or ``{"op": "update", "action": "insert"|"delete", "edge": [u, v]}``;
        the response's ``results`` list is position-aligned (a bool per
        ``test``, a solution list or null per ``next``, an
        ``{"applied", "version"}`` object per ``update``).  Calls run in
        order: test/next calls after an update in the same batch answer
        against the updated generation.  Call *shapes* are validated
        up front (a malformed batch applies nothing); a semantically
        invalid edge mid-batch fails the batch after the earlier updates
        have been applied — batches are not transactions.
        """
        index, meta = self._index_for(payload)
        graph, digest, phi, method = self._resolve_request(payload)
        calls = payload.get("calls")
        if not isinstance(calls, list) or not calls:
            raise BadRequest("'calls' must be a non-empty list of call objects")
        if len(calls) > self.max_batch_calls:
            raise BadRequest(
                f"batch of {len(calls)} calls exceeds the "
                f"{self.max_batch_calls}-call cap"
            )
        for position, call in enumerate(calls):
            if not isinstance(call, dict):
                raise BadRequest(f"calls[{position}] must be an object")
            op = call.get("op")
            if op in ("test", "next"):
                _require_tuple(call, "tuple", index.arity)
            elif op == "update":
                if call.get("action") not in ("insert", "delete"):
                    raise BadRequest(
                        f"calls[{position}].action must be 'insert' or "
                        f"'delete', got {call.get('action')!r}"
                    )
                _require_tuple(call, "edge", 2)
            else:
                raise BadRequest(
                    f"calls[{position}].op must be 'test', 'next' or "
                    f"'update', got {op!r}"
                )
        results: list[Any] = []
        for call in calls:
            op = call["op"]
            if op == "test":
                results.append(index.test(_require_tuple(call, "tuple", index.arity)))
            elif op == "next":
                found = index.next_solution(_require_tuple(call, "tuple", index.arity))
                results.append(None if found is None else list(found))
            else:
                index, _, _ = self._apply_update(
                    graph, digest, phi, method,
                    call["action"], _require_tuple(call, "edge", 2),
                )
                results.append(
                    {"applied": call["action"], "version": index.version}
                )
        meta = {**meta, "index_version": index.version}
        return {"results": results, "index": meta}

    def handle_count(self, payload: dict[str, Any]) -> dict[str, Any]:
        """|phi(G)| (one full enumeration on the indexed path)."""
        index, meta = self._index_for(payload)
        return {"count": index.count(), "index": meta}

    def handle_explain(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Fragment diagnosis — needs only ``query``, no graph."""
        phi = self._parse_query(payload)
        report = explain(phi)
        return {
            "decomposable": report.decomposable,
            "arity": report.arity,
            "problems": list(report.problems),
            "report": report.render(),
        }

    def metrics_snapshot(self) -> dict[str, Any]:
        """The ``/metrics`` payload: registry dump plus cache stats."""
        registry = _metrics_active()
        out: dict[str, Any] = {
            "collecting": registry is not None,
            "cache": self.cache.snapshot_stats(),
        }
        if registry is not None:
            out["registry"] = registry.snapshot()
        return out

    def stats(self) -> dict[str, Any]:
        """The ``/v1/stats`` payload: knobs and cache occupancy."""
        out: dict[str, Any] = {
            "cache": self.cache.snapshot_stats(),
            "max_page_size": self.max_page_size,
            "default_page_size": self.default_page_size,
            "max_batch_calls": self.max_batch_calls,
            "graph_root": (
                None if self.graphs.graph_root is None else str(self.graphs.graph_root)
            ),
        }
        if self.worker_stats_fn is not None:
            out["worker"] = self.worker_stats_fn()
        return out

    # ------------------------------------------------------------------
    # shared plumbing

    def _parse_query(self, payload: dict[str, Any]) -> Formula:
        query = payload.get("query")
        if not isinstance(query, str) or not query.strip():
            raise BadRequest("'query' must be a non-empty formula string")
        try:
            return parse_formula(query)
        except ParseError as exc:
            raise BadRequest(f"bad query: {exc}") from None

    def _resolve_request(
        self, payload: dict[str, Any]
    ) -> tuple[ColoredGraph, str, Formula, str]:
        """The request's graph (+ digest), parsed query, and method."""
        graph, digest = self.graphs.resolve(payload)
        phi = self._parse_query(payload)
        method = payload.get("method", "auto")
        if method not in _METHODS:
            raise BadRequest(f"unknown method {method!r}; choose from {_METHODS}")
        return graph, digest, phi, method

    def _cached_index(
        self, graph: ColoredGraph, digest: str, phi: Formula, method: str
    ) -> tuple[QueryIndex, str]:
        """The warm index, with build failures mapped to typed errors."""
        try:
            return self.cache.get(graph, phi, method=method, graph_digest_hint=digest)
        except DecompositionError as exc:
            raise BadRequest(f"query is not decomposable: {exc}") from None
        except BuildWaitTimeout as exc:
            raise ServiceUnavailable(str(exc)) from None
        except TooManyBuilds as exc:
            raise ServiceUnavailable(str(exc)) from None

    def _index_for(
        self, payload: dict[str, Any]
    ) -> tuple[QueryIndex, dict[str, Any]]:
        """Resolve graph + query to a warm index and response metadata.

        The ``index`` meta is the consistent response envelope: every
        endpoint that touches an index reports its (abridged) static
        fingerprint and current ``index_version`` alongside the result.
        """
        graph, digest, phi, method = self._resolve_request(payload)
        index, status = self._cached_index(graph, digest, phi, method)
        meta = {
            "status": status,
            "method": index.method,
            "arity": index.arity,
            "fingerprint": self.cache.fingerprint(
                graph, phi, method=method, graph_digest_hint=digest
            )[:12],
            "index_version": index.version,
        }
        return index, meta

    def _apply_update(
        self,
        graph: ColoredGraph,
        digest: str,
        phi: Formula,
        method: str,
        action: str,
        edge: tuple[int, ...],
    ) -> tuple[QueryIndex, str, str]:
        """Repair the warm index one generation forward and republish it.

        Serialized under ``_update_lock``: the *current* generation is
        re-fetched inside the lock so concurrent updates compound.  The
        graph spec keeps naming the version-0 graph; the lineage lives in
        the cache (and its snapshot), keyed by the static fingerprint.
        """
        u, v = edge
        key = self.cache.fingerprint(graph, phi, method=method, graph_digest_hint=digest)
        with self._update_lock:
            index, status = self._cached_index(graph, digest, phi, method)
            try:
                updated = (
                    index.insert_edge(u, v)
                    if action == "insert"
                    else index.delete_edge(u, v)
                )
            except (ValueError, IndexError) as exc:
                raise BadRequest(f"cannot {action} edge {list(edge)}: {exc}") from None
            self.cache.replace(key, updated)
        return updated, status, key


def _require_int(
    payload: dict[str, Any],
    key: str,
    minimum: int | None = None,
    default: int | None = None,
) -> int:
    value = payload.get(key, default)
    if value is None:
        raise BadRequest(f"missing required field {key!r}")
    if isinstance(value, bool) or not isinstance(value, int):
        raise BadRequest(f"{key!r} must be an integer, got {value!r}")
    if minimum is not None and value < minimum:
        raise BadRequest(f"{key!r} must be >= {minimum}, got {value}")
    return value


def _require_tuple(payload: dict[str, Any], key: str, arity: int) -> tuple[int, ...]:
    value = payload.get(key)
    if not isinstance(value, (list, tuple)):
        raise BadRequest(f"{key!r} must be a list of {arity} integers")
    if len(value) != arity:
        raise BadRequest(
            f"{key!r} has {len(value)} values but the query's arity is {arity}"
        )
    for v in value:
        if isinstance(v, bool) or not isinstance(v, int):
            raise BadRequest(f"{key!r} must contain only integers, got {v!r}")
    return tuple(value)
