"""The stdlib HTTP skin over :class:`~repro.serve.service.QueryService`.

``ThreadingHTTPServer`` gives one thread per connection; every thread
shares one :class:`QueryService` (hence one index cache and one graph
store), which is exactly the concurrency shape the cache was built for.
No dependencies beyond the standard library.

Routes (all JSON)::

    POST /v1/test       {graph spec, "query", "tuple"}       -> {"value": bool}
    POST /v1/next       {graph spec, "query", "tuple"}       -> {"solution": [...]|null}
    POST /v1/enumerate  {graph spec, "query", "cursor"?, "limit"?}
                                                 -> {"items": [...], "next_cursor"}
    POST /v1/count      {graph spec, "query"}                -> {"count": int}
    POST /v1/explain    {"query"}                            -> {"decomposable": ...}
    GET  /metrics       registry dump + cache stats
    GET  /v1/stats      knobs + cache occupancy
    GET  /healthz       liveness

Every response is ``{"ok": true, ...}`` or
``{"ok": false, "error": {"type", "message"}}`` with a matching status
code; input problems are 400/503, never 500s with tracebacks.
"""

from __future__ import annotations

import json
import logging
import socket
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import urlsplit

from repro import __version__
from repro.errors import ReproError
from repro.serve.service import QueryService, ServeError

logger = logging.getLogger("repro.serve")

#: Reject request bodies larger than this (a graph belongs in a file or a
#: generator family, not a megabyte of inline JSON — tune via create_server).
DEFAULT_MAX_BODY_BYTES = 8 * 1024 * 1024

_POST_ROUTES = {
    "/v1/test": "handle_test",
    "/v1/next": "handle_next",
    "/v1/enumerate": "handle_enumerate",
    "/v1/count": "handle_count",
    "/v1/explain": "handle_explain",
}


class RequestHandler(BaseHTTPRequestHandler):
    """One request; the class attributes are filled in by create_server."""

    service: QueryService
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES
    server_version = f"repro-serve/{__version__}"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        path = urlsplit(self.path).path
        if path == "/metrics":
            self._reply(200, self.service.metrics_snapshot())
        elif path == "/v1/stats":
            self._reply(200, self.service.stats())
        elif path in ("/", "/healthz"):
            self._reply(200, {"ok": True, "service": "repro-serve"})
        else:
            self._error(404, "not_found", f"no such route: GET {path}")

    def do_POST(self) -> None:  # noqa: N802 (stdlib naming)
        path = urlsplit(self.path).path
        handler_name = _POST_ROUTES.get(path)
        if handler_name is None:
            self._error(404, "not_found", f"no such route: POST {path}")
            return
        try:
            payload = self._read_json()
        except ServeError as exc:
            self._error(exc.http_status, type(exc).__name__, str(exc))
            return
        try:
            result = getattr(self.service, handler_name)(payload)
        except ServeError as exc:
            self._error(exc.http_status, type(exc).__name__, str(exc))
        except ReproError as exc:
            # any other library-level input error is still the client's fault
            self._error(400, type(exc).__name__, str(exc))
        except Exception:
            logger.exception("internal error handling %s", path)
            self._error(500, "internal_error", "internal server error")
        else:
            self._reply(200, {"ok": True, **result})

    # ------------------------------------------------------------------

    def _read_json(self) -> dict[str, Any]:
        from repro.serve.service import BadRequest

        length_header = self.headers.get("Content-Length")
        try:
            length = int(length_header or "")
        except ValueError:
            raise BadRequest("missing or invalid Content-Length header") from None
        if length > self.max_body_bytes:
            raise BadRequest(
                f"request body of {length} bytes exceeds the "
                f"{self.max_body_bytes}-byte cap"
            )
        body = self.rfile.read(length)
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise BadRequest(f"request body is not valid JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise BadRequest("request body must be a JSON object")
        return payload

    def _reply(self, status: int, payload: dict[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        try:
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):  # client went away
            self.close_connection = True

    def _error(self, status: int, error_type: str, message: str) -> None:
        self._reply(
            status,
            {"ok": False, "error": {"type": error_type, "message": message}},
        )

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        logger.debug("%s - %s", self.address_string(), format % args)


def create_server(
    service: QueryService,
    host: str = "127.0.0.1",
    port: int = 0,
    request_timeout: float = 30.0,
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
) -> ThreadingHTTPServer:
    """A ready-to-run threading server bound to ``host:port``.

    ``port=0`` binds an ephemeral port — read it back from
    ``server.server_address``.  ``request_timeout`` bounds how long a
    connection thread blocks reading a request (slow-loris protection);
    it does not interrupt an index build (bound those with the service's
    ``build_wait_seconds`` / ``max_in_flight_builds`` knobs instead).
    """
    handler = type(
        "BoundRequestHandler",
        (RequestHandler,),
        {
            "service": service,
            "timeout": request_timeout,
            "max_body_bytes": max_body_bytes,
        },
    )
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    return server


def wait_until_ready(
    host: str, port: int, deadline_seconds: float = 10.0
) -> bool:
    """Poll until the server accepts TCP connections (for scripts/tests)."""
    import time

    deadline = time.monotonic() + deadline_seconds
    while time.monotonic() < deadline:
        try:
            with socket.create_connection((host, port), timeout=0.5):
                return True
        except OSError:
            time.sleep(0.05)
    return False
