"""The stdlib HTTP skin over :class:`~repro.serve.service.QueryService`.

``ThreadingHTTPServer`` gives one thread per connection; every thread
shares one :class:`QueryService` (hence one index cache and one graph
store), which is exactly the concurrency shape the cache was built for.
No dependencies beyond the standard library.

Routes (all JSON unless negotiated otherwise)::

    POST /v1/test       {graph spec, "query", "tuple"}       -> {"value": bool}
    POST /v1/next       {graph spec, "query", "tuple"}       -> {"solution": [...]|null}
    POST /v1/enumerate  {graph spec, "query", "cursor"?, "cursor_version"?,
                         "limit"?}   -> {"items": [...], "next_cursor"}
                                        (409 StaleCursor when cursor_version
                                         no longer matches the index)
    POST /v1/count      {graph spec, "query"}                -> {"count": int}
    POST /v1/explain    {"query"}                            -> {"decomposable": ...}
    POST /v1/update     {graph spec, "query", "op": "insert"|"delete",
                         "edge": [u, v]}         -> {"applied", "version"}
    POST /v1/batch      {graph spec, "query", "calls": [{"op", "tuple"} |
                         {"op": "update", "action", "edge"}, ...]}
                                                 -> {"results": [...]}
    GET  /metrics       registry dump + cache stats (JSON), or Prometheus
                        text exposition via ``Accept: text/plain`` /
                        ``?format=prom``
    GET  /v1/traces     recent request traces; ``?trace_id=`` for one tree
    GET  /v1/export     mergeable metrics/watchdog wire format (pool fan-in)
    GET  /v1/profile    sampling-profiler run (``?seconds=&hz=``), collapsed stacks
    GET  /v1/stats      knobs + cache occupancy (+ watchdog state)
    GET  /healthz       liveness

Every response is ``{"ok": true, ...}`` or
``{"ok": false, "error": {"type", "message"}}`` with a matching status
code; input problems are 400/503, never 500s with tracebacks.

**Request tracing.** Every request is assigned a trace id — a valid
inbound ``X-Trace-Id`` header is honored, otherwise one is generated —
and the id is returned on the response.  Span *recording* happens when
the client sent ``X-Trace-Id`` explicitly (an opt-in) or the request won
the ``trace_sample`` coin flip; recorded traces land in the server's
:class:`~repro.trace.buffer.TraceBuffer`, readable at ``/v1/traces``.
A valid ``X-Parent-Span`` header (set by the pool's routing parent)
parents the request's root span under that remote span, so the pool
parent's ``/v1/traces`` can stitch one cross-process tree.
A :class:`~repro.trace.watchdog.Watchdog`, when configured, consumes the
recorded enumeration-step spans live.
"""

from __future__ import annotations

import json
import logging
import random
import re
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
import socket
from typing import Any
from urllib.parse import parse_qs, urlsplit

from repro import __version__
from repro.errors import ReproError
from repro.metrics.prometheus import CONTENT_TYPE as _PROM_CONTENT_TYPE
from repro.metrics.prometheus import flatten_gauges, render_prometheus
from repro.metrics.runtime import active as _metrics_active
from repro.metrics.runtime import observe as _metrics_observe
from repro.serve.service import QueryService, ServeError
from repro.trace.buffer import DEFAULT_CAPACITY, TraceBuffer
from repro.trace.core import new_trace_id
from repro.trace.logging import log_event
from repro.trace.profiler import DEFAULT_HZ, MAX_PROFILE_SECONDS, profile_for
from repro.trace.runtime import annotate as _trace_annotate
from repro.trace.runtime import tracing
from repro.trace.watchdog import Watchdog

logger = logging.getLogger("repro.serve")

#: Accepted inbound ``X-Trace-Id`` values (hex, 8-64 chars).
_TRACE_ID_RE = re.compile(r"^[0-9a-fA-F]{8,64}$")

#: Reject request bodies larger than this (a graph belongs in a file or a
#: generator family, not a megabyte of inline JSON — tune via create_server).
DEFAULT_MAX_BODY_BYTES = 8 * 1024 * 1024

_POST_ROUTES = {
    "/v1/test": "handle_test",
    "/v1/next": "handle_next",
    "/v1/enumerate": "handle_enumerate",
    "/v1/count": "handle_count",
    "/v1/explain": "handle_explain",
    "/v1/update": "handle_update",
    "/v1/batch": "handle_batch",
}


def read_request_body(
    handler: BaseHTTPRequestHandler, max_body_bytes: int
) -> bytes:
    """Read and return one request body, keep-alive-safely.

    Raises :class:`~repro.serve.service.BadRequest` on a missing, invalid,
    negative or oversized ``Content-Length``.  On every path that leaves
    body bytes unread (including a short read from a lying client), the
    connection is marked ``close_connection`` first — replying 400 and
    then reusing the socket would make the parser treat the unread body
    as the next request line, corrupting every later request on that
    connection.  A negative length is rejected outright: ``rfile.read(-5)``
    reads until EOF, pinning the thread until the request timeout.
    """
    from repro.serve.service import BadRequest

    length_header = handler.headers.get("Content-Length")
    try:
        length = int(length_header or "")
    except ValueError:
        handler.close_connection = True
        raise BadRequest("missing or invalid Content-Length header") from None
    if length < 0:
        handler.close_connection = True
        raise BadRequest(
            f"Content-Length must be non-negative, got {length}"
        ) from None
    if length > max_body_bytes:
        handler.close_connection = True
        raise BadRequest(
            f"request body of {length} bytes exceeds the "
            f"{max_body_bytes}-byte cap"
        )
    body = handler.rfile.read(length)
    if len(body) != length:
        # client hung up (or lied about the length) mid-body; the stream
        # position is unknowable, so the connection cannot be reused
        handler.close_connection = True
        raise BadRequest(
            f"request body truncated: Content-Length promised {length} "
            f"bytes, got {len(body)}"
        )
    return body


class RequestHandler(BaseHTTPRequestHandler):
    """One request; the class attributes are filled in by create_server."""

    service: QueryService
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES
    trace_buffer: TraceBuffer | None = None
    trace_sample: float = 0.0
    slow_ms: float | None = None
    watchdog: Watchdog | None = None
    server_version = f"repro-serve/{__version__}"
    protocol_version = "HTTP/1.1"

    #: Per-request trace id, set in do_POST and echoed by _reply.
    _trace_id: str | None = None

    # ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        path = urlsplit(self.path).path
        if path == "/metrics":
            self._get_metrics()
        elif path == "/v1/traces":
            self._get_traces()
        elif path == "/v1/export":
            self._get_export()
        elif path == "/v1/profile":
            self._get_profile()
        elif path == "/v1/stats":
            payload = self.service.stats()
            if self.watchdog is not None:
                payload["watchdog"] = self.watchdog.snapshot()
            self._reply(200, payload)
        elif path in ("/", "/healthz"):
            self._reply(200, {"ok": True, "service": "repro-serve"})
        else:
            self._error(404, "not_found", f"no such route: GET {path}")

    def _get_metrics(self) -> None:
        """``/metrics``: JSON by default, Prometheus text when negotiated."""
        query = parse_qs(urlsplit(self.path).query)
        accept = self.headers.get("Accept", "")
        wants_prom = query.get("format", [""])[0] == "prom" or (
            "text/plain" in accept and "application/json" not in accept
        )
        if not wants_prom:
            self._reply(200, self.service.metrics_snapshot())
            return
        gauges = {"serve.cache": self.service.cache.snapshot_stats()}
        if self.watchdog is not None:
            gauges["watchdog"] = self.watchdog.snapshot()
        if self.trace_buffer is not None:
            gauges["trace.buffered"] = len(self.trace_buffer)
        body = render_prometheus(_metrics_active(), flatten_gauges(gauges))
        self._reply_text(200, body, _PROM_CONTENT_TYPE)

    def _get_export(self) -> None:
        """``/v1/export``: the mergeable observability wire format.

        Everything the pool parent needs to aggregate this process into
        the pool-wide picture: the active registry's exact mergeable
        metrics export, the watchdog snapshot, and gauge-ready local
        stats.  Plain JSON — merging happens on the parent with
        :func:`repro.metrics.core.merge_snapshots`.
        """
        registry = _metrics_active()
        gauges = {"serve.cache": self.service.cache.snapshot_stats()}
        if self.trace_buffer is not None:
            gauges["trace.buffered"] = len(self.trace_buffer)
        self._reply(
            200,
            {
                "ok": True,
                "metrics": registry.export() if registry is not None else None,
                "watchdog": (
                    self.watchdog.snapshot() if self.watchdog is not None else None
                ),
                "gauges": flatten_gauges(gauges),
            },
        )

    def _get_profile(self) -> None:
        """``/v1/profile?seconds=N&hz=H``: sample this process's stacks.

        Blocks the *handler* thread for ``seconds`` (capped) while the
        sampler watches every other thread, so concurrent request work
        shows up.  Returns the collapsed-stack wire payload; the pool
        parent fans this out to all workers and merges the counts.
        """
        query = parse_qs(urlsplit(self.path).query)
        try:
            seconds = float(query.get("seconds", ["1.0"])[0])
            hz = float(query.get("hz", [str(DEFAULT_HZ)])[0])
        except ValueError:
            self._error(400, "BadRequest", "'seconds' and 'hz' must be numbers")
            return
        if not 0.0 < seconds <= MAX_PROFILE_SECONDS:
            self._error(
                400,
                "BadRequest",
                f"'seconds' must be in (0, {MAX_PROFILE_SECONDS:g}], got {seconds:g}",
            )
            return
        if not 1.0 <= hz <= 1000.0:
            self._error(400, "BadRequest", f"'hz' must be in [1, 1000], got {hz:g}")
            return
        self._reply(200, {"ok": True, "profile": profile_for(seconds, hz=hz)})

    def _get_traces(self) -> None:
        """``/v1/traces``: recent summaries, or one full tree by trace id."""
        if self.trace_buffer is None:
            self._error(
                404, "tracing_disabled", "serve started without request tracing"
            )
            return
        query = parse_qs(urlsplit(self.path).query)
        trace_id = query.get("trace_id", [None])[0]
        if trace_id:
            payload = self.trace_buffer.get(trace_id.lower())
            if payload is None:
                self._error(
                    404,
                    "not_found",
                    f"no recorded trace {trace_id!r} (buffer keeps the last "
                    f"{self.trace_buffer.capacity})",
                )
            else:
                self._reply(200, {"ok": True, "trace": payload})
            return
        try:
            limit = int(query.get("limit", ["20"])[0])
        except ValueError:
            self._error(400, "BadRequest", "'limit' must be an integer")
            return
        self._reply(
            200,
            {
                "ok": True,
                "sample_rate": self.trace_sample,
                "capacity": self.trace_buffer.capacity,
                "traces": self.trace_buffer.recent(max(1, limit)),
            },
        )

    def do_POST(self) -> None:  # noqa: N802 (stdlib naming)
        path = urlsplit(self.path).path
        handler_name = _POST_ROUTES.get(path)
        if handler_name is None:
            self._error(404, "not_found", f"no such route: POST {path}")
            return
        inbound = self.headers.get("X-Trace-Id")
        if inbound is not None and _TRACE_ID_RE.match(inbound):
            self._trace_id = inbound.lower()
        else:
            self._trace_id = new_trace_id()
            inbound = None
        # the pool's routing parent names its pool.route span so the
        # worker's request span nests under it when stitched
        parent_span = self.headers.get("X-Parent-Span")
        if parent_span is None or not _TRACE_ID_RE.match(parent_span):
            parent_span = None
        else:
            parent_span = parent_span.lower()
        # record spans when the client opted in (explicit X-Trace-Id) or the
        # request won the sampling coin flip; otherwise the span hooks stay
        # no-ops and the request costs exactly what it did before tracing
        recording = self.trace_buffer is not None and (
            inbound is not None
            or (self.trace_sample > 0 and random.random() < self.trace_sample)
        )
        started = time.perf_counter()
        if recording:
            observers = (
                () if self.watchdog is None else (self.watchdog.on_span,)
            )
            with tracing(
                f"POST {path}",
                trace_id=self._trace_id,
                observers=observers,
                parent_span_id=parent_span,
                endpoint=path,
            ) as tracer:
                info = self._dispatch(path, handler_name)
                index_meta = info.get("index") or {}
                # the current span here is the request's root span
                _trace_annotate(
                    http_status=info.get("status"),
                    cache=index_meta.get("status"),
                    fingerprint=index_meta.get("fingerprint"),
                )
            self.trace_buffer.add(tracer)
        else:
            info = self._dispatch(path, handler_name)
        elapsed_ms = (time.perf_counter() - started) * 1000
        # per-endpoint latency in the mergeable histogram the pool's SLO
        # layer aggregates (no-op without an active registry)
        _metrics_observe(f"serve.request_seconds.{path}", elapsed_ms / 1000)
        if self.slow_ms is not None and elapsed_ms > self.slow_ms:
            index_meta = info.get("index") or {}
            log_event(
                logger,
                "slow request",
                level=logging.WARNING,
                endpoint=path,
                ms=round(elapsed_ms, 3),
                slow_ms=self.slow_ms,
                trace_id=self._trace_id,
                traced=recording,
                status=info.get("status"),
                fingerprint=index_meta.get("fingerprint"),
                cache=index_meta.get("status"),
            )

    def _dispatch(self, path: str, handler_name: str) -> dict[str, Any]:
        """Run one POST handler and send the response; returns outcome info."""
        try:
            payload = self._read_json()
        except ServeError as exc:
            self._error(exc.http_status, type(exc).__name__, str(exc))
            return {"status": exc.http_status}
        try:
            result = getattr(self.service, handler_name)(payload)
        except ServeError as exc:
            self._error(exc.http_status, type(exc).__name__, str(exc))
            return {"status": exc.http_status}
        except ReproError as exc:
            # any other library-level input error is still the client's fault
            self._error(400, type(exc).__name__, str(exc))
            return {"status": 400}
        except Exception:
            logger.exception("internal error handling %s", path)
            self._error(500, "internal_error", "internal server error")
            return {"status": 500}
        self._reply(200, {"ok": True, **result})
        return {"status": 200, "index": result.get("index")}

    # ------------------------------------------------------------------

    def _read_json(self) -> dict[str, Any]:
        from repro.serve.service import BadRequest

        body = read_request_body(self, self.max_body_bytes)
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise BadRequest(f"request body is not valid JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise BadRequest("request body must be a JSON object")
        return payload

    def _reply(self, status: int, payload: dict[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self._send(status, body, "application/json")

    def _reply_text(self, status: int, text: str, content_type: str) -> None:
        self._send(status, text.encode("utf-8"), content_type)

    def _send(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if self._trace_id is not None:
            self.send_header("X-Trace-Id", self._trace_id)
        self.end_headers()
        try:
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):  # client went away
            self.close_connection = True

    def _error(self, status: int, error_type: str, message: str) -> None:
        self._reply(
            status,
            {"ok": False, "error": {"type": error_type, "message": message}},
        )

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        logger.debug("%s - %s", self.address_string(), format % args)


def build_handler(
    service: QueryService,
    request_timeout: float = 30.0,
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
    trace_buffer: TraceBuffer | None = None,
    trace_capacity: int | None = None,
    trace_sample: float = 0.0,
    slow_ms: float | None = None,
    watchdog: Watchdog | None = None,
) -> type[RequestHandler]:
    """A :class:`RequestHandler` subclass bound to one service + knobs.

    :func:`create_server` uses this for the classic single-process server;
    :mod:`repro.serve.pool` uses it directly so each forked worker can
    hang the same handler off a socket it inherited from the parent.
    """
    if not 0.0 <= trace_sample <= 1.0:
        raise ValueError(f"trace_sample must be in [0, 1], got {trace_sample}")
    if trace_buffer is None and trace_capacity != 0:
        trace_buffer = TraceBuffer(trace_capacity or DEFAULT_CAPACITY)
    return type(
        "BoundRequestHandler",
        (RequestHandler,),
        {
            "service": service,
            "timeout": request_timeout,
            "max_body_bytes": max_body_bytes,
            "trace_buffer": trace_buffer,
            "trace_sample": trace_sample,
            "slow_ms": slow_ms,
            "watchdog": watchdog,
        },
    )


def create_server(
    service: QueryService,
    host: str = "127.0.0.1",
    port: int = 0,
    request_timeout: float = 30.0,
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
    trace_buffer: TraceBuffer | None = None,
    trace_capacity: int | None = None,
    trace_sample: float = 0.0,
    slow_ms: float | None = None,
    watchdog: Watchdog | None = None,
) -> ThreadingHTTPServer:
    """A ready-to-run threading server bound to ``host:port``.

    ``port=0`` binds an ephemeral port — read it back from
    ``server.server_address``.  ``request_timeout`` bounds how long a
    connection thread blocks reading a request (slow-loris protection);
    it does not interrupt an index build (bound those with the service's
    ``build_wait_seconds`` / ``max_in_flight_builds`` knobs instead).

    ``trace_buffer`` retains recorded request traces for ``/v1/traces``;
    when omitted, a fresh :class:`TraceBuffer` holding ``trace_capacity``
    traces is created (``trace_capacity=0`` disables request tracing
    entirely).  ``trace_sample`` is the probability an *unsolicited*
    request is recorded — requests carrying an ``X-Trace-Id`` header are
    always recorded.  ``slow_ms`` turns on the structured slow-request
    log.  ``watchdog`` consumes recorded enumeration-step spans live.
    """
    handler = build_handler(
        service,
        request_timeout=request_timeout,
        max_body_bytes=max_body_bytes,
        trace_buffer=trace_buffer,
        trace_capacity=trace_capacity,
        trace_sample=trace_sample,
        slow_ms=slow_ms,
        watchdog=watchdog,
    )
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    return server


def wait_until_ready(
    host: str, port: int, deadline_seconds: float = 10.0
) -> bool:
    """Poll until the server accepts TCP connections (for scripts/tests)."""
    import time

    deadline = time.monotonic() + deadline_seconds
    while time.monotonic() < deadline:
        try:
            with socket.create_connection((host, port), timeout=0.5):
                return True
        except OSError:
            time.sleep(0.05)
    return False
