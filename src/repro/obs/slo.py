"""Pool-wide SLO aggregation: the guarantee block of ``/v1/stats``.

Corollary 2.5's constant-delay promise is checked per worker by the
:class:`~repro.trace.watchdog.Watchdog` (self-calibrated per-step
budget, violation counters).  At pool scale the question becomes *did
the budget hold across all workers*, with enough attribution to find
the one worker that burned it.  :func:`aggregate_guarantee` folds the
per-worker watchdog snapshots into one verdict (``held``), total
violation counts and a **burn rate** (violations per observed step —
the SLO error-budget dial), keeping per-worker budgets so a worker
whose calibration drifted stands out.

:func:`endpoint_latency_summary` reads the merged mergeable-metrics
export and reports p50/p95/p99 per endpoint from the exact log-2 bucket
counts (:func:`repro.metrics.core.percentile_from_buckets` — estimates
within one bucket width, i.e. at most 2x), merged across the pool.
"""

from __future__ import annotations

from typing import Any

from repro.metrics.core import percentile_from_buckets

#: Histogram-name prefix the HTTP layer records request latencies under.
ENDPOINT_PREFIX = "serve.request_seconds."


def aggregate_guarantee(
    worker_watchdogs: dict[str, dict[str, Any] | None],
) -> dict[str, Any]:
    """Fold per-worker watchdog snapshots into one pool-wide verdict.

    ``worker_watchdogs`` maps a worker label to that worker's
    ``/v1/stats`` ``watchdog`` block (or None for a worker running
    without a watchdog / currently unreachable — counted but never
    claimed as "held").
    """
    snapshots = {w: s for w, s in worker_watchdogs.items() if s is not None}
    steps = sum(int(s.get("steps_seen", 0)) for s in snapshots.values())
    delay = sum(int(s.get("violations", {}).get("delay", 0)) for s in snapshots.values())
    ops = sum(int(s.get("violations", {}).get("ops", 0)) for s in snapshots.values())
    budgets = [
        float(s["budget_seconds"])
        for s in snapshots.values()
        if s.get("budget_seconds") is not None
    ]
    return {
        "held": bool(snapshots) and delay == 0 and ops == 0,
        "workers": len(worker_watchdogs),
        "reporting": len(snapshots),
        "calibrated": sum(1 for s in snapshots.values() if s.get("calibrated")),
        "steps_seen": steps,
        "violations": {"delay": delay, "ops": ops},
        "burn_rate": {
            "delay": delay / steps if steps else 0.0,
            "ops": ops / steps if steps else 0.0,
        },
        "budget_seconds": {
            "min": min(budgets) if budgets else None,
            "max": max(budgets) if budgets else None,
        },
        "per_worker": {w: worker_watchdogs[w] for w in sorted(worker_watchdogs)},
    }


def endpoint_latency_summary(
    merged_export: dict[str, Any],
    prefix: str = ENDPOINT_PREFIX,
) -> dict[str, dict[str, float]]:
    """Per-endpoint p50/p95/p99 from a merged mergeable-metrics export.

    Looks for histograms named ``<prefix><endpoint>`` in a
    :func:`repro.metrics.core.merge_snapshots` result and summarizes
    each from its exact bucket counts.  Percentiles are bucket
    upper-edge estimates (within one log-2 bucket width of the true
    value); ``count``/``mean``/``max`` are exact.
    """
    summary: dict[str, dict[str, float]] = {}
    for name, snap in merged_export.get("histograms", {}).items():
        if not name.startswith(prefix):
            continue
        endpoint = name[len(prefix):]
        count = int(snap.get("count", 0))
        summary[endpoint] = {
            "count": float(count),
            "mean": float(snap["total"]) / count if count else 0.0,
            "p50": percentile_from_buckets(snap, 50),
            "p95": percentile_from_buckets(snap, 95),
            "p99": percentile_from_buckets(snap, 99),
            "max": float(snap.get("max", 0.0)),
        }
    return summary
