"""Pool-wide observability plane (``repro.obs``).

PR 5 made the paper's constant-delay guarantee observable *per
process*: a watchdog, a trace buffer and a Prometheus exposition inside
one worker.  Since PR 8 production traffic runs through a pre-fork pool
— so the evidence has to be aggregated, mergeable and attributable
across the whole process family.  This package is the glue:

* :mod:`repro.obs.stitch` — reassemble per-process trace payloads
  (routing parent + workers, each with its own ``perf_counter`` origin)
  into one tree per trace id, Chrome-trace exportable;
* :mod:`repro.obs.slo` — aggregate watchdog budgets, violation burn
  rates and per-endpoint latency percentiles pool-wide into the
  ``guarantee`` block of the parent's ``/v1/stats``.

The mergeable-metrics wire format itself lives in
:mod:`repro.metrics.core` (``MetricsRegistry.export`` /
``merge_snapshots``) and the sampling profiler in
:mod:`repro.trace.profiler`; this package only *combines* — it is never
imported on a hot path and carries no ``@constant_time`` obligations.
"""

from repro.obs.slo import aggregate_guarantee, endpoint_latency_summary
from repro.obs.stitch import stitch_traces, stitched_to_chrome_trace

__all__ = [
    "aggregate_guarantee",
    "endpoint_latency_summary",
    "stitch_traces",
    "stitched_to_chrome_trace",
]
