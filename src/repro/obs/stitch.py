"""Cross-process trace stitching.

Each process traces independently: the pool's routing parent records a
``pool.route`` span, the worker records its request span (parented
under the parent's span via the propagated ``X-Parent-Span`` header)
and every ``enumerate.step`` under that.  Every process serializes its
own :meth:`~repro.trace.core.Tracer.to_dict` payload with timestamps
relative to its *own* ``perf_counter`` origin — two origins from two
processes are not comparable.

:func:`stitch_traces` merges any number of such payloads for one trace
id into a single tree: spans are re-based onto a shared wall-clock
timeline using each payload's ``started_at`` anchor, linked by the
``span_id``/``parent_id`` edges (which *are* valid across processes —
the worker's root span carries the parent's span id), and orphans are
re-rooted rather than dropped.  :func:`stitched_to_chrome_trace` turns
the result into ``chrome://tracing`` events with one row (pid) per
source process.

Wall clocks on one host agree to well under a millisecond, which is
plenty for visualizing a multi-millisecond proxy hop; the stitcher
never *reorders* parent/child edges based on time, so a small clock
skew can only shift bars, not break the tree.
"""

from __future__ import annotations

from typing import Any


def _flatten(nodes: list[dict[str, Any]], out: list[dict[str, Any]]) -> None:
    for node in nodes:
        out.append(node)
        _flatten(node.get("children", []), out)


def stitch_traces(payloads: list[dict[str, Any]]) -> dict[str, Any]:
    """Merge per-process trace payloads into one stitched tree.

    ``payloads`` are :meth:`Tracer.to_dict` shapes (as stored by the
    trace buffer and served by ``/v1/traces``), optionally carrying a
    ``source`` key (``"parent"``, ``"worker:0"``, ...) stamped by the
    fan-in code.  Returns a payload of the same general shape with
    ``stitched: true``, all spans on one ``start_seconds`` timeline
    anchored at the earliest payload's ``started_at``, and every span
    carrying its ``source``.  Payloads for other trace ids are ignored
    (first payload's id wins); an empty input stitches to an empty
    tree.
    """
    if not payloads:
        return {"trace_id": None, "stitched": True, "spans": 0, "tree": []}
    trace_id = payloads[0].get("trace_id")
    relevant = [p for p in payloads if p.get("trace_id") == trace_id]
    base = min(float(p.get("started_at", 0.0)) for p in relevant)

    flat: dict[str, dict[str, Any]] = {}
    order: list[str] = []
    sources: list[str] = []
    dropped = 0
    name = relevant[0].get("name")
    for payload in relevant:
        source = payload.get("source", "local")
        if source not in sources:
            sources.append(source)
        dropped += int(payload.get("dropped", 0))
        if payload.get("parent_span_id") is None and payload.get("name"):
            name = payload["name"]  # the root process labels the whole trace
        offset = float(payload.get("started_at", base)) - base
        nodes: list[dict[str, Any]] = []
        _flatten(payload.get("tree", []), nodes)
        for node in nodes:
            span_id = node.get("span_id")
            if span_id is None or span_id in flat:
                continue  # ids are 64-bit-random; a dup means a resent payload
            copy = {k: v for k, v in node.items() if k != "children"}
            copy["start_seconds"] = float(node.get("start_seconds", 0.0)) + offset
            copy["source"] = source
            copy["children"] = []
            flat[span_id] = copy
            order.append(span_id)

    roots: list[dict[str, Any]] = []
    for span_id in sorted(order, key=lambda sid: flat[sid]["start_seconds"]):
        node = flat[span_id]
        parent = flat.get(node.get("parent_id")) if node.get("parent_id") else None
        if parent is None:
            roots.append(node)  # true root, or orphan re-rooted (never lost)
        else:
            parent["children"].append(node)

    duration = 0.0
    stack = list(roots)
    while stack:
        node = stack.pop()
        end = node["start_seconds"] + float(node.get("duration_seconds", 0.0))
        duration = max(duration, end)
        stack.extend(node["children"])

    return {
        "trace_id": trace_id,
        "name": name,
        "started_at": base,
        "spans": len(flat),
        "dropped": dropped,
        "sources": sources,
        "stitched": True,
        "duration_seconds": duration,
        "tree": roots,
    }


def stitched_to_chrome_trace(stitched: dict[str, Any]) -> dict[str, Any]:
    """A stitched tree as Chrome trace-event JSON (one pid per source).

    Load the result (``json.dump`` it) into ``chrome://tracing`` or
    Perfetto: each source process gets its own row, spans are complete
    events (``ph: "X"``) with microsecond timestamps on the shared
    stitched timeline.
    """
    sources = list(stitched.get("sources", []))
    events: list[dict[str, Any]] = []
    for source in sources:
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": sources.index(source),
                "tid": 0,
                "args": {"name": f"repro {source}"},
            }
        )
    stack = [(node, None) for node in stitched.get("tree", [])]
    while stack:
        node, _ = stack.pop()
        source = node.get("source", "local")
        pid = sources.index(source) if source in sources else 0
        events.append(
            {
                "ph": "X",
                "name": node.get("name", "span"),
                "pid": pid,
                "tid": 0,
                "ts": float(node.get("start_seconds", 0.0)) * 1e6,
                "dur": float(node.get("duration_seconds", 0.0)) * 1e6,
                "args": dict(node.get("attributes", {})),
            }
        )
        stack.extend((child, node) for child in node.get("children", []))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "trace_id": stitched.get("trace_id"),
            "sources": sources,
        },
    }
