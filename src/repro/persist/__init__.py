"""Persistence layer: snapshot a built index, reuse it across processes.

See :mod:`repro.persist.snapshot` for the file format and trust rules
and :mod:`repro.persist.fingerprint` for the cache key.  The CLI surface
is ``repro warm`` (build + snapshot) and ``repro query --cache``
(hit/miss/rebuild transparently).
"""

from repro.persist.fingerprint import (
    FORMAT_VERSION,
    graph_digest,
    index_fingerprint,
)
from repro.persist.snapshot import (
    MAGIC,
    SNAPSHOT_SUFFIX,
    SnapshotCorrupted,
    SnapshotError,
    SnapshotStale,
    SnapshotVersionMismatch,
    cache_path,
    load_index,
    load_or_build,
    read_header,
    save_index,
    warm,
)

__all__ = [
    "FORMAT_VERSION",
    "MAGIC",
    "SNAPSHOT_SUFFIX",
    "SnapshotCorrupted",
    "SnapshotError",
    "SnapshotStale",
    "SnapshotVersionMismatch",
    "cache_path",
    "graph_digest",
    "index_fingerprint",
    "load_index",
    "load_or_build",
    "read_header",
    "save_index",
    "warm",
]
