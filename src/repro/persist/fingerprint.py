"""Snapshot fingerprints: when is an on-disk index still the right one?

Theorem 2.3's preprocessing is a pure function of four inputs — the
graph, the query, the output coordinate order and the engine
configuration.  A snapshot is valid for a request exactly when all four
match, so the fingerprint is a SHA-256 over:

* the graph's canonical edge-list serialization (``dumps_edge_list`` is
  deterministic and sorted, so isomorphic *encodings* of the same graph
  hash equal and any content change — edge, color, vertex count —
  invalidates);
* the parsed query's canonical ``repr`` (whitespace and formatting of
  the textual query do not matter, operator structure does);
* the free-variable order (it fixes the lexicographic output order the
  index is built around);
* the chosen build method (``indexed``/``naive``/``auto`` resolve to
  different implementations);
* every :class:`~repro.core.config.EngineConfig` field **except**
  ``workers`` and ``layout`` — thresholds and exponents shape the built
  structure, but ``workers`` only chooses the build strategy (proven
  output-equivalent by the parallel-equivalence tests) and ``layout``
  only chooses the register representation (proven answer- and
  order-identical by the storage differential suite), so a snapshot
  warmed with ``workers=8, layout="arena"`` serves a
  ``workers=1, layout="object"`` query;
* the snapshot format version, so readers never parse a layout they do
  not understand.
"""

from __future__ import annotations

import hashlib
from collections.abc import Sequence
from dataclasses import fields

from repro.core.config import EngineConfig
from repro.graphs.colored_graph import ColoredGraph
from repro.graphs.io import dumps_edge_list
from repro.logic.parser import parse_formula
from repro.logic.syntax import Formula, Var

#: Bump whenever the on-disk layout or the pickled object graph changes
#: incompatibly; readers reject newer (and differently-fingerprinted
#: older) snapshots and fall back to a rebuild.
#: v2: tries may pickle as flat-arena register files (compressed raw
#: array buffers) and ``StoredFunction`` records its layout.
#: v3: ``QueryIndex`` carries the versioned identity
#: ``(static_fingerprint, version)`` for live edge updates; pre-v3
#: pickles lack those fields.  The fingerprint itself stays the *static*
#: component — an updated index snapshots under its version-0 key, so
#: the whole update lineage shares one snapshot slot and reloading it
#: resumes at the persisted version, not at 0.
FORMAT_VERSION = 3

#: EngineConfig fields that do not affect the built structure.
_BUILD_ONLY_FIELDS = frozenset({"workers", "layout"})


def graph_digest(graph: ColoredGraph) -> str:
    """SHA-256 of the graph's canonical (sorted, deterministic) encoding."""
    return hashlib.sha256(dumps_edge_list(graph).encode()).hexdigest()


def config_token(config: EngineConfig) -> str:
    """The fingerprint-relevant config fields as a stable string."""
    parts = [
        f"{f.name}={getattr(config, f.name)!r}"
        for f in fields(config)
        if f.name not in _BUILD_ONLY_FIELDS
    ]
    return ";".join(parts)


def index_fingerprint(
    graph: ColoredGraph,
    query: Formula | str,
    free_order: Sequence[Var | str] | None = None,
    config: EngineConfig | None = None,
    method: str = "auto",
    graph_digest_hint: str | None = None,
) -> str:
    """The cache key a snapshot of ``build_index(...)`` is stored under.

    ``graph_digest_hint`` lets callers that already computed
    :func:`graph_digest` (e.g. the query service's graph store, which
    digests each graph once at load time) skip the ``O(n)``
    re-serialization; it must be the digest of ``graph``.
    """
    phi = parse_formula(query) if isinstance(query, str) else query
    if free_order is None:
        order_token = "<default>"
    else:
        order_token = ",".join(
            v if isinstance(v, str) else v.name for v in free_order
        )
    config = config or EngineConfig()
    digest = graph_digest_hint if graph_digest_hint is not None else graph_digest(graph)
    blob = "\n".join(
        [
            f"format={FORMAT_VERSION}",
            f"graph={digest}",
            f"query={phi!r}",
            f"order={order_token}",
            f"method={method}",
            f"config={config_token(config)}",
        ]
    )
    return hashlib.sha256(blob.encode()).hexdigest()
