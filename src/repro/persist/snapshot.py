"""Versioned on-disk snapshots of built query indexes.

The paid-once contract of Theorem 2.3 — ``O(n^{1+eps})`` preprocessing,
then O(1) per answer — only holds within one process unless the built
structure survives on disk.  A snapshot file stores one
:class:`~repro.core.engine.QueryIndex` (hence the whole tower:
``NextSolutionIndex``/``NaiveIndex``, ``NeighborhoodCover``, the
``StoredFunction`` tries and the bag-solver tables) as:

* one JSON header line — magic string, format version, the
  :func:`~repro.persist.fingerprint.index_fingerprint` the snapshot was
  built for, a SHA-256 integrity checksum over the payload, and
  human-readable metadata (method, arity, preprocessing seconds);
* the pickled payload.

**Trust rules** (enforced by :func:`load_index`, relied on by
:func:`load_or_build`): a snapshot is served only when the magic and
format version match, the payload checksum verifies, and the fingerprint
equals the one recomputed from the caller's current (graph, query,
order, method, config).  Anything else raises a typed
:class:`SnapshotError`; :func:`load_or_build` logs it and rebuilds —
a stale or corrupted snapshot is never trusted and never fatal.

Payloads are pickles: load snapshots only from directories you would
``import`` from.  The fingerprint/checksum guard against staleness and
corruption, not against malicious files.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import pickle
import time
from collections.abc import Sequence
from pathlib import Path
from typing import Any

from repro.contracts import build_phase
from repro.core.config import DEFAULT_CONFIG, EngineConfig
from repro.core.engine import QueryIndex, build_index
from repro.errors import ReproError
from repro.graphs.colored_graph import ColoredGraph
from repro.logic.syntax import Formula, Var
from repro.metrics.runtime import count as _metrics_count
from repro.metrics.runtime import observe as _metrics_observe
from repro.persist.fingerprint import FORMAT_VERSION, index_fingerprint
from repro.trace.runtime import span as _trace_span

logger = logging.getLogger("repro.persist")

MAGIC = "repro-index-snapshot"

#: File extension used by cache directories (one file per fingerprint).
SNAPSHOT_SUFFIX = ".rpx"


class SnapshotError(ReproError):
    """A snapshot could not be served; the caller should rebuild."""


class SnapshotCorrupted(SnapshotError):
    """Unparseable header, checksum mismatch, or a broken payload."""


class SnapshotVersionMismatch(SnapshotError):
    """The snapshot was written by an incompatible format version."""


class SnapshotStale(SnapshotError):
    """Valid file, but built for a different (graph, query, config)."""


# ----------------------------------------------------------------------
# save / load


def save_index(
    index: QueryIndex, path: str | Path, fingerprint: str
) -> dict[str, Any]:
    """Write ``index`` to ``path`` atomically; returns the header written.

    The write goes through a same-directory temp file and ``os.replace``
    so a concurrent reader never observes a half-written snapshot.
    """
    path = Path(path)
    tick = time.perf_counter()
    with _trace_span("persist.save") as sp:
        payload = pickle.dumps(index, protocol=pickle.HIGHEST_PROTOCOL)
        if sp is not None:
            sp.attributes["bytes"] = len(payload)
        header = {
            "magic": MAGIC,
            "format_version": FORMAT_VERSION,
            "fingerprint": fingerprint,
            "payload_sha256": hashlib.sha256(payload).hexdigest(),
            "payload_bytes": len(payload),
            "method": index.method,
            "arity": index.arity,
            "free_order": [v.name for v in index.free_order],
            "preprocessing_seconds": index.preprocessing_seconds,
            "graph_n": index.graph.n,
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + f".tmp{os.getpid()}")
        try:
            with open(tmp, "wb") as handle:
                handle.write(json.dumps(header, sort_keys=True).encode() + b"\n")
                handle.write(payload)
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)
    _metrics_count("persist.saves")
    _metrics_observe("persist.save_seconds", time.perf_counter() - tick)
    return header


def read_header(path: str | Path) -> dict[str, Any]:
    """Parse and sanity-check only a snapshot's JSON header line."""
    try:
        with open(path, "rb") as handle:
            first = handle.readline()
    except OSError as exc:
        raise SnapshotCorrupted(f"{path}: {exc.strerror or exc}") from None
    try:
        header = json.loads(first.decode())
    except (UnicodeDecodeError, json.JSONDecodeError):
        raise SnapshotCorrupted(f"{path}: unparseable snapshot header") from None
    if not isinstance(header, dict) or header.get("magic") != MAGIC:
        raise SnapshotCorrupted(f"{path}: not a {MAGIC} file")
    version = header.get("format_version")
    if version != FORMAT_VERSION:
        raise SnapshotVersionMismatch(
            f"{path}: format version {version!r}, this reader "
            f"supports {FORMAT_VERSION}"
        )
    return header


def load_index(
    path: str | Path, expected_fingerprint: str | None = None
) -> QueryIndex:
    """Load a snapshot, verifying integrity and (optionally) freshness.

    Raises :class:`SnapshotCorrupted` / :class:`SnapshotVersionMismatch` /
    :class:`SnapshotStale`; never returns an unverified index.
    """
    path = Path(path)
    tick = time.perf_counter()
    with _trace_span("persist.load") as sp:
        header = read_header(path)
        with open(path, "rb") as handle:
            handle.readline()
            payload = handle.read()
        if sp is not None:
            sp.attributes["bytes"] = len(payload)
        digest = hashlib.sha256(payload).hexdigest()
        if digest != header.get("payload_sha256"):
            raise SnapshotCorrupted(
                f"{path}: payload checksum mismatch (file truncated or edited)"
            )
        if (
            expected_fingerprint is not None
            and header.get("fingerprint") != expected_fingerprint
        ):
            raise SnapshotStale(
                f"{path}: fingerprint {str(header.get('fingerprint'))[:12]}... does "
                f"not match the requested (graph, query, order, config) "
                f"{expected_fingerprint[:12]}..."
            )
        try:
            # restoring slotted index classes goes through __setstate__'s
            # setattr loop — that is build-phase work, so the paranoid
            # freeze tripwire must see it as such
            with build_phase():
                index = pickle.loads(payload)
        except Exception as exc:  # pickle raises a zoo of types on bad bytes
            raise SnapshotCorrupted(
                f"{path}: payload does not unpickle: {exc}"
            ) from None
        if not isinstance(index, QueryIndex):
            raise SnapshotCorrupted(
                f"{path}: payload is a {type(index).__name__}, not a QueryIndex"
            )
    _metrics_count("persist.loads")
    _metrics_observe("persist.load_seconds", time.perf_counter() - tick)
    return index


# ----------------------------------------------------------------------
# the cache front end


def cache_path(cache_dir: str | Path, fingerprint: str) -> Path:
    """Where a snapshot with this fingerprint lives inside a cache dir."""
    return Path(cache_dir) / f"{fingerprint}{SNAPSHOT_SUFFIX}"


def load_or_build(
    graph: ColoredGraph,
    query: Formula | str,
    free_order: Sequence[Var | str] | None = None,
    method: str = "auto",
    config: EngineConfig = DEFAULT_CONFIG,
    cache_dir: str | Path = ".repro-cache",
) -> tuple[QueryIndex, str]:
    """Serve from the snapshot cache, rebuilding (and re-caching) on any miss.

    Returns ``(index, status)`` with ``status`` one of:

    * ``"hit"`` — a valid snapshot answered; no preprocessing ran;
    * ``"miss"`` — no snapshot existed; built and saved;
    * ``"rebuilt"`` — a snapshot existed but was corrupted, stale or
      version-mismatched; the problem was logged, the index rebuilt from
      scratch and the snapshot replaced.

    The graceful-rebuild guarantee: this function never raises because of
    a bad cache file, and never serves one.
    """
    fingerprint = index_fingerprint(graph, query, free_order, config, method)
    path = cache_path(cache_dir, fingerprint)
    status = "miss"
    with _trace_span("persist.load_or_build") as sp:
        if path.exists():
            try:
                index = load_index(path, expected_fingerprint=fingerprint)
                _metrics_count("persist.cache_hits")
                if sp is not None:
                    sp.attributes["status"] = "hit"
                return index, "hit"
            except SnapshotError as exc:
                logger.warning("snapshot rejected, rebuilding: %s", exc)
                status = "rebuilt"
        _metrics_count("persist.cache_misses")
        index = build_index(graph, query, free_order, method=method, config=config)
        try:
            save_index(index, path, fingerprint)
        except OSError as exc:  # a read-only cache degrades to cold builds
            logger.warning("could not write snapshot %s: %s", path, exc)
        if sp is not None:
            sp.attributes["status"] = status
    return index, status


def warm(
    graph: ColoredGraph,
    query: Formula | str,
    path: str | Path,
    free_order: Sequence[Var | str] | None = None,
    method: str = "auto",
    config: EngineConfig = DEFAULT_CONFIG,
) -> tuple[QueryIndex, dict[str, Any]]:
    """Build an index and snapshot it to an explicit ``path``.

    The ``repro warm`` command's engine: returns the built index and the
    header that was written (fingerprint, sizes, timings).
    """
    fingerprint = index_fingerprint(graph, query, free_order, config, method)
    index = build_index(graph, query, free_order, method=method, config=config)
    header = save_index(index, path, fingerprint)
    return index, header
