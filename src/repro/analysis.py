"""Scaling analysis helpers for the experiments.

EXPERIMENTS.md claims are about *shapes*: "preprocessing is pseudo-linear",
"lookups are flat in n".  :func:`fit_exponent` turns a measured series
into the exponent ``e`` of the best least-squares fit ``y ~ c * x^e``
(log-log regression), and :func:`flatness` quantifies how constant a
series is.  Pure Python — no numpy dependency in the library proper.
"""

from __future__ import annotations

import math
from collections.abc import Sequence


def fit_exponent(xs: Sequence[float], ys: Sequence[float]) -> tuple[float, float]:
    """Least-squares fit of ``y = c * x^e`` in log-log space.

    Returns ``(e, c)``.  Needs at least two distinct positive x values.
    """
    if len(xs) != len(ys):
        raise ValueError(f"length mismatch: {len(xs)} xs vs {len(ys)} ys")
    points = [(x, y) for x, y in zip(xs, ys) if x > 0 and y > 0]
    if len(points) < 2 or len({x for x, _ in points}) < 2:
        raise ValueError("need at least two distinct positive samples")
    log_x = [math.log(x) for x, _ in points]
    log_y = [math.log(y) for _, y in points]
    n = len(points)
    mean_x = sum(log_x) / n
    mean_y = sum(log_y) / n
    sxx = sum((lx - mean_x) ** 2 for lx in log_x)
    if sxx <= 0.0:
        # distinct floats can share a log (e.g. adjacent values near 1e300)
        raise ValueError("need at least two distinct positive x values")
    sxy = sum((lx - mean_x) * (ly - mean_y) for lx, ly in zip(log_x, log_y))
    exponent = sxy / sxx
    constant = math.exp(mean_y - exponent * mean_x)
    return exponent, constant


def flatness(ys: Sequence[float]) -> float:
    """``max / min`` of a positive series — 1.0 means perfectly constant.

    The experiments call a query-time series "constant in n" when its
    flatness stays within a small factor while n grows 16x.
    """
    positive = [y for y in ys if y > 0]
    if not positive:
        raise ValueError("need at least one positive sample")
    return max(positive) / min(positive)


def is_pseudo_linear(
    xs: Sequence[float], ys: Sequence[float], eps: float = 0.5, slack: float = 0.15
) -> bool:
    """Does the series grow at most like ``x^(1 + eps)`` (plus slack)?"""
    exponent, _ = fit_exponent(xs, ys)
    return exponent <= 1 + eps + slack
