"""(r, 2r)-neighborhood covers (Definition 4.3, Theorem 4.4).

Theorem 4.4 guarantees that nowhere dense classes admit (r, 2r)-covers of
degree ``<= n^eps``, computable in pseudo-linear time.  We use the greedy
ball construction (the same scheme underlying [17, Lemma 6.10]):

* scan the vertices in a degeneracy order;
* whenever a vertex ``c`` is not yet covered, emit the bag ``N_2r(c)``
  with center ``c`` and declare every vertex of ``N_r(c)`` covered, with
  canonical bag ``X(a) = X_c``.

Properties (asserted by :meth:`NeighborhoodCover.check_properties`):

* every ``a`` has ``N_r(a) ⊆ X(a)`` — because ``a ∈ N_r(c)`` implies
  ``N_r(a) ⊆ N_2r(c)``;
* every bag is inside ``N_2r(c_X)`` by construction;
* centers are pairwise at distance ``> r``, which is what keeps the degree
  small on sparse graphs.  The degree is *measured*, not assumed; it is
  the quantity experiment E4 reports against the paper's ``n^eps`` bound.

Bag membership, canonical-bag assignment and per-bag vertex lists are
retrievable in constant time; ordered membership ("smallest member of bag
X that is >= b") is served by a Theorem 3.1 :class:`StoredFunction` keyed
``(bag, vertex)``, exactly the paper's ``f_X`` encoding (Section 4.1).
"""

from __future__ import annotations

import threading
from collections.abc import Sequence

from repro.contracts import (
    amortized,
    constant_time,
    frozen_after_build,
    pseudo_linear,
    read_only,
)
from repro.graphs.colored_graph import ColoredGraph
from repro.graphs.neighborhoods import bounded_bfs
from repro.graphs.sparsity import degeneracy_order
from repro.metrics.runtime import count as _metrics_count
from repro.storage.function_store import StoredFunction
from repro.trace.runtime import span as _trace_span


@frozen_after_build(cells={"_membership_store": "_memo_lock"})
class NeighborhoodCover:
    """An (r, s)-neighborhood cover of a colored graph.

    Built via :func:`build_cover`; not meant to be constructed directly.
    """

    #: Store lock for the lazily-built membership structure; class-level
    #: so covers stay picklable.
    _memo_lock = threading.Lock()

    @pseudo_linear(note="membership sets + per-bag assignment lists")
    def __init__(
        self,
        graph: ColoredGraph,
        radius: int,
        bag_radius: int,
        bags: list[list[int]],
        centers: list[int],
        assignment: list[int],
        eps: float,
        layout: str | None = None,
    ) -> None:
        self.graph = graph
        self.radius = radius
        self.bag_radius = bag_radius
        self.bags = bags  # bag id -> sorted vertex list
        self.centers = centers  # bag id -> center c_X
        self.assignment = assignment  # vertex -> canonical bag id X(a)
        self.eps = eps
        self.layout = layout
        # per-bag list of b with X(b) = X (Step 3 of Section 5.2.1)
        self.assigned: list[list[int]] = [[] for _ in bags]
        for vertex, bag_id in enumerate(assignment):
            if not 0 <= bag_id < len(bags):
                raise ValueError(
                    f"vertex {vertex} has invalid canonical bag id {bag_id} "
                    f"(expected 0..{len(bags) - 1}); the scan order did not "
                    "cover every vertex"
                )
            self.assigned[bag_id].append(vertex)
        # membership sets for O(1) "a in X" tests
        self._member_sets = [set(bag) for bag in bags]
        # ordered membership via the Storing Theorem (f_X of Section 4.1);
        # built lazily: only consumers of ordered queries pay for it
        self._membership_store: StoredFunction | None = None

    # ------------------------------------------------------------------
    @property
    @read_only
    def num_bags(self) -> int:
        """``|X|`` — the number of bags."""
        return len(self.bags)

    @constant_time(note="one array read")
    @read_only
    def bag_of(self, vertex: int) -> int:
        """The canonical bag id ``X(a)`` (fixed arbitrarily, as in the paper)."""
        return self.assignment[vertex]

    @constant_time
    @read_only
    def center(self, bag_id: int) -> int:
        """``c_X``: a vertex with ``X ⊆ N_{2r}(c_X)``."""
        return self.centers[bag_id]

    @constant_time(note="one hash-set probe")
    @read_only
    def contains(self, bag_id: int, vertex: int) -> bool:
        """Constant-time bag membership."""
        return vertex in self._member_sets[bag_id]

    @property
    @read_only
    def _membership(self) -> StoredFunction:
        if self._membership_store is None:
            universe = max(self.graph.n, len(self.bags), 1)
            store = StoredFunction(
                universe,
                2,
                eps=self.eps,
                items=(
                    ((bag_id, vertex), True)
                    for bag_id, bag in enumerate(self.bags)
                    for vertex in bag
                ),
                layout=self.layout,
            )
            with self._memo_lock:
                if self._membership_store is None:
                    self._membership_store = store
        return self._membership_store

    @amortized("O(1)", note="f_X store built lazily on first ordered query")
    @read_only
    def next_member(self, bag_id: int, vertex: int, strict: bool = False) -> int | None:
        """Smallest member of the bag that is ``>= vertex`` (``>`` if strict).

        Constant time via the Storing Theorem structure, as promised after
        Theorem 4.4 in the paper (the structure is built on first use).
        """
        _metrics_count("cover.next_member")
        key = self._membership.successor((bag_id, vertex), strict=strict)
        if key is None or key[0] != bag_id:
            return None
        return key[1]

    @read_only
    def degree(self) -> int:
        """``δ(X)``: the maximum number of bags meeting at one vertex."""
        counts = [0] * self.graph.n
        for bag in self.bags:
            for vertex in bag:
                counts[vertex] += 1
        return max(counts, default=0)

    @read_only
    def total_bag_size(self) -> int:
        """``Σ_X |X|`` — bounded by ``n^{1+eps}`` when the degree is ``n^eps``."""
        return sum(len(bag) for bag in self.bags)

    # ------------------------------------------------------------------
    @read_only
    def check_properties(self) -> None:
        """Verify Definition 4.3 (tests only; costs a BFS per vertex)."""
        for a in self.graph.vertices():
            bag = self._member_sets[self.assignment[a]]
            ball = bounded_bfs(self.graph, [a], self.radius)
            missing = set(ball) - bag
            if missing:
                raise AssertionError(
                    f"N_{self.radius}({a}) not inside its bag; missing {sorted(missing)[:5]}"
                )
        for bag_id, bag in enumerate(self.bags):
            ball = bounded_bfs(self.graph, [self.centers[bag_id]], self.bag_radius)
            outside = set(bag) - set(ball)
            if outside:
                raise AssertionError(
                    f"bag {bag_id} leaves N_{self.bag_radius}(center); extra {sorted(outside)[:5]}"
                )

    @read_only
    def __repr__(self) -> str:
        return (
            f"NeighborhoodCover(r={self.radius}, s={self.bag_radius}, "
            f"bags={len(self.bags)}, degree={self.degree()})"
        )


def _validated_order(graph: ColoredGraph, order: Sequence[int]) -> list[int]:
    """Check a custom scan order and extend it to cover every vertex.

    Entries must be in-range, non-duplicated vertices (``ValueError``
    otherwise).  A *partial* order is legal: the greedy scan continues
    over the remaining vertices in ascending order, so every vertex ends
    up with a canonical bag — previously a partial order silently
    corrupted the last bag via ``assignment[a] == -1``.
    """
    seen: set[int] = set()
    scan: list[int] = []
    for c in order:
        if not isinstance(c, int) or not 0 <= c < graph.n:
            raise ValueError(
                f"scan order entry {c!r} is not a vertex of a graph on "
                f"[0, {graph.n})"
            )
        if c in seen:
            raise ValueError(f"scan order lists vertex {c} twice")
        seen.add(c)
        scan.append(c)
    if len(scan) < graph.n:
        scan.extend(v for v in graph.vertices() if v not in seen)
    return scan


def _scan_sequential(
    graph: ColoredGraph,
    radius: int,
    order: Sequence[int],
    assignment: list[int],
    bags: list[list[int]],
    centers: list[int],
) -> None:
    for c in order:
        if assignment[c] != -1:
            continue
        big_ball = bounded_bfs(graph, [c], 2 * radius)
        _commit_ball(radius, c, big_ball, assignment, bags, centers)


def _scan_parallel(
    graph: ColoredGraph,
    radius: int,
    order: Sequence[int],
    assignment: list[int],
    bags: list[list[int]],
    centers: list[int],
    workers: int,
) -> None:
    """Speculative BFS fan-out: identical output to the sequential scan.

    Candidates still uncovered are taken in scan order in batches; their
    ``N_2r`` balls are computed concurrently (the expensive, independent
    step), then committed strictly in scan order, skipping candidates a
    same-batch predecessor covered.  Whether a vertex becomes a center
    depends only on earlier commits, so the greedy result is reproduced
    exactly; the only waste is the discarded speculative balls.
    """
    from concurrent.futures import ThreadPoolExecutor

    scan = list(order)
    batch = max(4 * workers, 16)
    with ThreadPoolExecutor(max_workers=workers) as pool:
        pos = 0
        while pos < len(scan):
            candidates: list[int] = []
            while pos < len(scan) and len(candidates) < batch:
                c = scan[pos]
                pos += 1
                if assignment[c] == -1:
                    candidates.append(c)
            if not candidates:
                continue
            balls = pool.map(
                lambda c: bounded_bfs(graph, [c], 2 * radius), candidates
            )
            for c, big_ball in zip(candidates, balls):
                if assignment[c] != -1:
                    continue
                _commit_ball(radius, c, big_ball, assignment, bags, centers)


def _commit_ball(
    radius: int,
    center: int,
    big_ball: dict[int, int],
    assignment: list[int],
    bags: list[list[int]],
    centers: list[int],
) -> None:
    bag_id = len(bags)
    bags.append(sorted(big_ball))
    centers.append(center)
    for a, dist in big_ball.items():
        if dist <= radius and assignment[a] == -1:
            assignment[a] = bag_id


@pseudo_linear(note="Theorem 4.4 greedy ball construction")
def build_cover(
    graph: ColoredGraph,
    radius: int,
    eps: float = 0.5,
    order: Sequence[int] | None = None,
    workers: int = 1,
    layout: str | None = None,
) -> NeighborhoodCover:
    """Build an (r, 2r)-neighborhood cover greedily (Theorem 4.4).

    Parameters
    ----------
    graph:
        The input colored graph.
    radius:
        The cover radius ``r``.
    eps:
        Storing-structure exponent for the membership index.
    order:
        Scan order for choosing centers; defaults to a degeneracy order,
        which empirically keeps the degree small on sparse classes.  A
        partial order is completed with the remaining vertices in
        ascending order; invalid entries raise ``ValueError``.
    workers:
        Thread count for the speculative BFS fan-out; ``1`` runs the
        plain sequential scan.  Both paths produce the identical cover.
    layout:
        Register layout for the membership index (see
        :class:`~repro.core.config.EngineConfig`).
    """
    if radius < 0:
        raise ValueError(f"radius must be non-negative, got {radius}")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    with _trace_span("cover.build", radius=radius, n=graph.n, workers=workers) as sp:
        n = graph.n
        if order is None:
            order = degeneracy_order(graph)
        else:
            order = _validated_order(graph, order)
        assignment = [-1] * n
        bags: list[list[int]] = []
        centers: list[int] = []
        if workers > 1:
            _scan_parallel(graph, radius, order, assignment, bags, centers, workers)
        else:
            _scan_sequential(graph, radius, order, assignment, bags, centers)
        _metrics_count("cover.builds")
        _metrics_count("cover.bags", len(bags))
        if sp is not None:
            sp.attributes["bags"] = len(bags)
        return NeighborhoodCover(
            graph, radius, 2 * radius, bags, centers, assignment, eps, layout
        )
