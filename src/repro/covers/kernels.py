"""Kernels of cover bags (Definition 5.6, Lemma 5.7).

The ``p``-kernel of a bag ``X`` is ``K_p(X) = {a ∈ V : N_p(a) ⊆ X}``.
Lemma 5.7 computes it in ``O(p * ||G[X]||)``: a vertex fails the kernel
exactly when it is within distance ``p`` of the *boundary* of ``X``
(a vertex of ``X`` with a neighbor outside ``X``) or at distance ``< p``
of the outside directly.  We run a multi-source BFS, seeded with the
members of ``X`` adjacent to non-members at distance 1, entirely inside
``G[X]``.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Collection

from repro.contracts import pseudo_linear
from repro.graphs.colored_graph import ColoredGraph
from repro.trace.runtime import span as _trace_span


@pseudo_linear(note="Lemma 5.7: O(p * ||G[X]||) multi-source BFS")
def kernel_of_bag(graph: ColoredGraph, bag: Collection[int], p: int) -> set[int]:
    """``K_p(X)`` for ``X = bag`` (Lemma 5.7).

    Runs in ``O(p * ||G[X]||)`` like the lemma: only edges inside the bag
    are traversed, plus one scan of the bag's adjacency lists to find the
    boundary.
    """
    if p < 0:
        raise ValueError(f"kernel radius must be non-negative, got {p}")
    with _trace_span("kernel.compute", p=p, bag_size=len(bag)) as sp:
        members = set(bag)
        if p == 0:
            return members
        # distance-to-outside, computed inside G[X]; boundary members start at 1
        dist: dict[int, int] = {}
        queue: deque[int] = deque()
        for v in members:
            if any(w not in members for w in graph.neighbors(v)):
                dist[v] = 1
                queue.append(v)
        while queue:
            u = queue.popleft()
            du = dist[u]
            if du == p:
                continue
            for w in graph.neighbors(u):
                if w in members and w not in dist:
                    dist[w] = du + 1
                    queue.append(w)
        kernel = {v for v in members if dist.get(v, p + 1) > p}
        if sp is not None:
            sp.attributes["size"] = len(kernel)
        return kernel
