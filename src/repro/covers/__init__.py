"""Neighborhood covers and kernels (Definitions 4.3 / 5.6).

The cover is the paper's central locality tool: instead of precomputing
all ``r``-neighborhoods (too large), Theorem 4.4 selects a representative
family of *bags* such that every vertex's ``r``-ball lies in some bag, and
every bag lies in some ``2r``-ball.  Kernels (Lemma 5.7) refine bags to
the vertices whose own ``p``-ball stays inside.
"""

from repro.covers.kernels import kernel_of_bag
from repro.covers.neighborhood_cover import NeighborhoodCover, build_cover

__all__ = ["NeighborhoodCover", "build_cover", "kernel_of_bag"]
