"""Hierarchical span tracing for the preprocessing and query pipelines.

The paper's claims are per-operation time bounds; :mod:`repro.metrics`
counts and times them in aggregate, and this package answers the other
production question — *where did this particular run spend its time* —
with the same zero-cost-when-off discipline:

* :func:`~repro.trace.runtime.span` — the hook threaded through the
  pipelines (cover/kernel/trie builds, splitter games, distance index,
  next-solution tower, persistence, serve request handling).  Outside a
  :func:`~repro.trace.runtime.tracing` context it is one
  context-variable read.
* :mod:`~repro.trace.export` — JSONL, Chrome ``chrome://tracing``
  trace-event files, ASCII trees, per-stage totals (``repro trace``).
* :mod:`~repro.trace.logging` — structured JSON logs with
  trace/span-id correlation.
* :class:`~repro.trace.watchdog.Watchdog` — the live guarantee checker
  turning Corollary 2.5's constant delay into a runtime SLO.
* :class:`~repro.trace.buffer.TraceBuffer` — the ring of recent traces
  behind ``GET /v1/traces``.

Quick start::

    from repro import trace
    from repro.core.engine import build_index

    with trace.tracing("experiment") as tracer:
        index = build_index(graph, "E(x, y)")
        list(index.enumerate())

    print(trace.render_tree(tracer))
    trace.write_chrome_trace(tracer, "trace.json")
"""

from repro.trace.buffer import TraceBuffer
from repro.trace.core import DEFAULT_MAX_SPANS, Span, Tracer, new_span_id, new_trace_id
from repro.trace.export import (
    render_stage_totals,
    render_tree,
    stage_totals,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.trace.logging import JsonFormatter, configure, log_event
from repro.trace.profiler import (
    SamplingProfiler,
    flamegraph_text,
    merge_collapsed,
    merge_profiles,
    profile_for,
)
from repro.trace.runtime import (
    active_tracer,
    annotate,
    current_span,
    current_trace_id,
    span,
    tracing,
)
from repro.trace.watchdog import (
    DELAY_VIOLATION,
    OPS_VIOLATION,
    STEP_SPAN,
    STEPS_OBSERVED,
    Watchdog,
)

__all__ = [
    "DEFAULT_MAX_SPANS",
    "DELAY_VIOLATION",
    "JsonFormatter",
    "OPS_VIOLATION",
    "STEPS_OBSERVED",
    "STEP_SPAN",
    "SamplingProfiler",
    "Span",
    "TraceBuffer",
    "Tracer",
    "Watchdog",
    "active_tracer",
    "annotate",
    "configure",
    "current_span",
    "current_trace_id",
    "flamegraph_text",
    "log_event",
    "merge_collapsed",
    "merge_profiles",
    "new_span_id",
    "new_trace_id",
    "profile_for",
    "render_stage_totals",
    "render_tree",
    "span",
    "stage_totals",
    "to_chrome_trace",
    "to_jsonl",
    "tracing",
    "write_chrome_trace",
    "write_jsonl",
]
