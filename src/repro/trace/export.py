"""Trace exporters: JSONL, Chrome trace-event format, ASCII trees.

Three consumers, three shapes:

* :func:`to_jsonl` — one JSON object per span per line, for grep/jq and
  log shipping;
* :func:`to_chrome_trace` — the ``chrome://tracing`` / Perfetto
  trace-event format (complete ``"ph": "X"`` events, microsecond
  timestamps), so a ``repro trace -o trace.json`` file drops straight
  into a flame-graph viewer;
* :func:`render_tree` — a human-readable span tree with durations and
  attributes, what ``repro trace`` prints.

:func:`stage_totals` aggregates spans by name into per-stage totals —
the table behind ``repro trace``'s summary and the ``explain --graph``
per-stage timings.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.trace.core import Span, Tracer


def to_jsonl(tracer: Tracer) -> str:
    """One JSON object per span, ordered by start time."""
    spans = sorted(tracer.spans, key=lambda s: s.start)
    return "\n".join(
        json.dumps(s.to_dict(tracer.origin), sort_keys=True) for s in spans
    )


def to_chrome_trace(tracer: Tracer) -> dict[str, Any]:
    """The trace as a Chrome trace-event document (JSON-ready dict).

    Every span becomes one complete event (``"ph": "X"``) with
    microsecond ``ts``/``dur`` relative to the trace origin; span
    attributes ride along in ``args``.  Thread ids map to tracks, so the
    parallel preprocessing fan-out is visible as parallel lanes.
    """
    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": f"repro trace {tracer.trace_id[:12]}"},
        }
    ]
    for span in sorted(tracer.spans, key=lambda s: s.start):
        events.append(
            {
                "name": span.name,
                "cat": "repro",
                "ph": "X",
                "ts": (span.start - tracer.origin) * 1e6,
                "dur": span.duration * 1e6,
                "pid": 1,
                "tid": span.thread_id % 1_000_000,
                "args": {
                    "trace_id": span.trace_id,
                    "span_id": span.span_id,
                    "status": span.status,
                    **span.attributes,
                },
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer: Tracer, path: str | Path) -> None:
    """Write :func:`to_chrome_trace` output to ``path``."""
    Path(path).write_text(json.dumps(to_chrome_trace(tracer)) + "\n")


def write_jsonl(tracer: Tracer, path: str | Path) -> None:
    """Write :func:`to_jsonl` output to ``path``."""
    Path(path).write_text(to_jsonl(tracer) + "\n")


def _format_attributes(attributes: dict[str, Any]) -> str:
    if not attributes:
        return ""
    parts = []
    for key in sorted(attributes):
        value = attributes[key]
        if isinstance(value, float):
            value = f"{value:.4g}"
        parts.append(f"{key}={value}")
    return "  [" + " ".join(parts) + "]"


def render_tree(tracer: Tracer, max_children: int = 40) -> str:
    """An ASCII span tree with per-span durations and attributes.

    Sibling runs longer than ``max_children`` are elided with a count
    (a traced enumeration can have thousands of identical step spans).
    """
    lines = [
        f"trace {tracer.trace_id}  ({tracer.name}, "
        f"{len(tracer.spans)} spans"
        + (f", {tracer.dropped} dropped" if tracer.dropped else "")
        + ")"
    ]

    def walk(node: dict[str, Any], prefix: str, is_last: bool) -> None:
        connector = "`-- " if is_last else "|-- "
        mark = "" if node["status"] == "ok" else f" !{node['status']}"
        lines.append(
            f"{prefix}{connector}{node['name']}  "
            f"{node['duration_seconds'] * 1000:.3f} ms{mark}"
            f"{_format_attributes(node['attributes'])}"
        )
        child_prefix = prefix + ("    " if is_last else "|   ")
        children = node["children"]
        shown = children[:max_children]
        for i, child in enumerate(shown):
            last = i == len(shown) - 1 and len(children) <= max_children
            walk(child, child_prefix, last)
        if len(children) > max_children:
            lines.append(
                f"{child_prefix}`-- ... {len(children) - max_children} more"
            )

    roots = tracer.tree()
    for i, root in enumerate(roots):
        walk(root, "", i == len(roots) - 1)
    return "\n".join(lines)


def stage_totals(spans: list[Span]) -> dict[str, dict[str, float]]:
    """Aggregate spans by name: count, total/max seconds per stage.

    Keyed by span name, ordered by descending total time — the
    "where did this run spend its time" table.
    """
    totals: dict[str, dict[str, float]] = {}
    for span in spans:
        entry = totals.setdefault(
            span.name, {"count": 0.0, "total_seconds": 0.0, "max_seconds": 0.0}
        )
        entry["count"] += 1
        entry["total_seconds"] += span.duration
        entry["max_seconds"] = max(entry["max_seconds"], span.duration)
    return dict(
        sorted(totals.items(), key=lambda kv: kv[1]["total_seconds"], reverse=True)
    )


def render_stage_totals(spans: list[Span]) -> str:
    """The :func:`stage_totals` table as aligned text."""
    totals = stage_totals(spans)
    if not totals:
        return "(no spans recorded)"
    width = max(len(name) for name in totals)
    lines = [f"{'stage'.ljust(width)}  {'count':>7}  {'total':>10}  {'max':>10}"]
    for name, entry in totals.items():
        lines.append(
            f"{name.ljust(width)}  {int(entry['count']):>7}  "
            f"{entry['total_seconds'] * 1000:>8.2f}ms  "
            f"{entry['max_seconds'] * 1000:>8.2f}ms"
        )
    return "\n".join(lines)
