"""A bounded ring buffer of recently finished traces.

``repro serve`` keeps one :class:`TraceBuffer` and pushes every sampled
request's tracer into it after the response is sent; ``GET /v1/traces``
reads it back.  Payloads are serialized to plain dicts at insert time,
so readers never race a live tracer and evicted traces release their
spans immediately.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any

from repro.contracts import guarded_by
from repro.trace.core import Tracer

#: Default number of traces retained.
DEFAULT_CAPACITY = 64


@guarded_by("_lock", "_traces")
class TraceBuffer:
    """The last ``capacity`` traces, newest first, keyed by trace id."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._traces: OrderedDict[str, dict[str, Any]] = OrderedDict()

    def add(self, tracer: Tracer) -> None:
        """Serialize and retain one finished trace (evicting the oldest)."""
        payload = tracer.to_dict()
        with self._lock:
            self._traces[tracer.trace_id] = payload
            self._traces.move_to_end(tracer.trace_id)
            while len(self._traces) > self.capacity:
                self._traces.popitem(last=False)

    def get(self, trace_id: str) -> dict[str, Any] | None:
        """The full payload (span tree included) for one trace id."""
        with self._lock:
            return self._traces.get(trace_id)

    def recent(self, limit: int = 20) -> list[dict[str, Any]]:
        """Summaries of the newest traces, newest first (no span trees)."""
        with self._lock:
            payloads = list(self._traces.values())[-limit:]
        return [
            {key: value for key, value in payload.items() if key != "tree"}
            for payload in reversed(payloads)
        ]

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)
