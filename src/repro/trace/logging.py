"""Structured JSON logging with trace/span correlation.

:class:`JsonFormatter` renders every log record as one JSON object per
line and injects the active ``trace_id``/``span_id`` from
:mod:`repro.trace.runtime` — so a slow-request warning, a watchdog
violation and the spans of the request that caused them all share one
correlation key.

Extra structured fields ride on the stdlib ``extra`` mechanism under a
single ``fields`` key, keeping call sites short::

    logger.warning("slow request", extra={"fields": {"endpoint": path,
                                                     "ms": elapsed_ms}})

:func:`configure` installs the formatter on the ``repro`` logger tree
(idempotently), which is what ``repro serve`` does at startup.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import Any, TextIO

from repro.trace.runtime import current_span, current_trace_id

#: Marker attribute so configure() can recognize (and replace) its handler.
_HANDLER_TAG = "_repro_json_handler"


class JsonFormatter(logging.Formatter):
    """One JSON object per record: timestamp, level, logger, message,
    trace/span ids (when tracing), and any ``extra={"fields": {...}}``."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, Any] = {
            "ts": time.strftime(
                "%Y-%m-%dT%H:%M:%S", time.gmtime(record.created)
            )
            + f".{int(record.msecs):03d}Z",
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        trace_id = current_trace_id()
        if trace_id is not None:
            payload["trace_id"] = trace_id
            span = current_span()
            if span is not None:
                payload["span_id"] = span.span_id
        fields = getattr(record, "fields", None)
        if isinstance(fields, dict):
            payload.update(fields)
        if record.exc_info and record.exc_info[0] is not None:
            payload["exception"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True, default=str)


def configure(
    level: int = logging.INFO,
    stream: TextIO | None = None,
    logger_name: str = "repro",
) -> logging.Logger:
    """Install a JSON handler on the ``repro`` logger tree (idempotent).

    Replaces any handler a previous :func:`configure` call installed,
    so tests can reconfigure the stream freely; handlers installed by
    the application are left alone.
    """
    logger = logging.getLogger(logger_name)
    for handler in list(logger.handlers):
        if getattr(handler, _HANDLER_TAG, False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(JsonFormatter())
    setattr(handler, _HANDLER_TAG, True)
    logger.addHandler(handler)
    logger.setLevel(level)
    logger.propagate = False
    return logger


def log_event(
    logger: logging.Logger,
    message: str,
    level: int = logging.INFO,
    **fields: Any,
) -> None:
    """Emit one structured record with ``fields`` (and trace correlation)."""
    logger.log(level, message, extra={"fields": fields})
