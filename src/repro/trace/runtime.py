"""The active-trace plumbing: zero-cost span hooks for the hot paths.

Same pattern as :mod:`repro.metrics.runtime`: the preprocessing and
query pipelines call :func:`span` unconditionally, and outside a
:func:`tracing` context the call is a single context-variable read
returning a shared no-op context manager — the paper's constant-time
guarantees are unaffected, which is why the hooks carry
``@constant_time`` contracts of their own.

Inside ``with tracing() as tracer:`` every ``with span("name", k=v):``
block records one :class:`~repro.trace.core.Span` with the correct
parent (nesting follows the dynamic call structure), and the state lives
in a :class:`contextvars.ContextVar` — so concurrent server threads each
see only their own trace, with no cross-request leakage (verified by
``tests/trace/test_concurrency.py``).  Worker threads spawned *inside* a
traced block (the parallel preprocessing fan-outs) start with no active
trace: their spans are simply not recorded rather than mis-parented.
"""

from __future__ import annotations

import time
from collections.abc import Iterator
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any

from repro.contracts import constant_time
from repro.trace.core import DEFAULT_MAX_SPANS, Span, Tracer, new_span_id

#: (tracer, current span) for this context, or None (the zero-cost case).
_STATE: ContextVar[tuple[Tracer, Span | None] | None] = ContextVar(
    "repro_trace_state", default=None
)


class _NoopSpan:
    """The shared do-nothing context manager handed out when not tracing."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NOOP = _NoopSpan()


class _SpanHandle:
    """A live span context: opens on enter, records into the tracer on exit."""

    __slots__ = ("_tracer", "_name", "_attributes", "_span", "_token")

    def __init__(self, tracer: Tracer, name: str, attributes: dict[str, Any]) -> None:
        self._tracer = tracer
        self._name = name
        self._attributes = attributes
        self._span: Span | None = None

    def __enter__(self) -> Span:
        state = _STATE.get()
        parent = state[1] if state is not None else None
        if parent is not None:
            parent_id = parent.span_id
        else:
            # Root span of this tracer: parent under a *remote* span when
            # the pool's routing parent propagated one (X-Parent-Span).
            parent_id = self._tracer.parent_span_id
        self._span = Span(
            trace_id=self._tracer.trace_id,
            span_id=new_span_id(),
            parent_id=parent_id,
            name=self._name,
            start=time.perf_counter(),
            attributes=self._attributes,
        )
        self._token = _STATE.set((self._tracer, self._span))
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self._span
        assert span is not None
        span.end = time.perf_counter()
        if exc_type is not None:
            span.status = "error"
            span.attributes.setdefault("error", exc_type.__name__)
        _STATE.reset(self._token)
        self._tracer.add(span)
        return False


@constant_time(note="one context-var read; span bookkeeping only when tracing")
def span(name: str, **attributes: Any):
    """A context manager timing one named block (no-op outside tracing).

    ``with span("cover.build", radius=r) as s:`` records a span with the
    given attributes; ``s`` is the live :class:`Span` (or None when not
    tracing) so the block can attach result attributes::

        with span("cover.build", radius=r) as s:
            cover = ...
            if s is not None:
                s.attributes["bags"] = cover.num_bags
    """
    state = _STATE.get()
    if state is None:
        return _NOOP
    return _SpanHandle(state[0], name, attributes)


@constant_time(note="one context-var read + dict update when tracing")
def annotate(**attributes: Any) -> None:
    """Merge attributes into the current span, if any."""
    state = _STATE.get()
    if state is not None and state[1] is not None:
        state[1].attributes.update(attributes)


@constant_time(note="one context-var read")
def active_tracer() -> Tracer | None:
    """The tracer currently collecting, or None outside :func:`tracing`."""
    state = _STATE.get()
    return None if state is None else state[0]


@constant_time(note="one context-var read")
def current_span() -> Span | None:
    """The innermost open span, or None."""
    state = _STATE.get()
    return None if state is None else state[1]


@constant_time(note="one context-var read")
def current_trace_id() -> str | None:
    """The active trace id, or None (what the log formatter injects)."""
    state = _STATE.get()
    return None if state is None else state[0].trace_id


@contextmanager
def tracing(
    name: str = "trace",
    trace_id: str | None = None,
    max_spans: int = DEFAULT_MAX_SPANS,
    observers: tuple = (),
    parent_span_id: str | None = None,
    **attributes: Any,
) -> Iterator[Tracer]:
    """Collect spans from everything that runs inside the context.

    Opens a root span named ``name`` covering the whole block, yields the
    :class:`Tracer`, and restores the previous state on exit (contexts
    nest; an inner ``tracing`` shadows the outer one, as the request
    handler relies on).  ``parent_span_id`` parents the root span under a
    remote span from another process (cross-process stitching).
    """
    tracer = Tracer(
        name=name,
        trace_id=trace_id,
        max_spans=max_spans,
        observers=observers,
        parent_span_id=parent_span_id,
    )
    token = _STATE.set((tracer, None))
    try:
        with span(name, **attributes):
            yield tracer
    finally:
        _STATE.reset(token)
