"""Span primitives: the value types behind :mod:`repro.trace`.

A :class:`Span` is one timed operation — a name, monotonic start/end
stamps, free-form attributes, and the ``trace_id``/``span_id``/
``parent_id`` triple that links it into a per-request tree.  A
:class:`Tracer` is one trace's worth of finished spans: a thread-safe
collector with a hard span cap (long enumerations drop, never grow
unboundedly) and an observer list through which the guarantee watchdog
(:mod:`repro.trace.watchdog`) sees every span as it finishes.

Everything here is plain data; the context-variable plumbing that makes
``span("cover.build")`` a near-zero-cost hook on the hot paths lives in
:mod:`repro.trace.runtime`.
"""

from __future__ import annotations

import threading
import time
import uuid
from typing import Any

from repro.contracts import guarded_by

#: Default cap on spans kept per trace; beyond it spans are counted as
#: dropped instead of stored (bounds a traced full enumeration).
DEFAULT_MAX_SPANS = 10_000


def new_trace_id() -> str:
    """A fresh 32-hex-digit trace id."""
    return uuid.uuid4().hex


def new_span_id() -> str:
    """A fresh 16-hex-digit span id."""
    return uuid.uuid4().hex[:16]


class Span:
    """One timed operation inside a trace.

    ``start``/``end`` are ``time.perf_counter()`` stamps (monotonic,
    relative to the tracer's ``origin``); ``status`` is ``"ok"`` unless
    the block raised, and the watchdog may stamp violation markers into
    ``attributes`` after the span finishes.
    """

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "start",
        "end",
        "attributes",
        "status",
        "thread_id",
    )

    def __init__(
        self,
        trace_id: str,
        span_id: str,
        parent_id: str | None,
        name: str,
        start: float,
        attributes: dict[str, Any] | None = None,
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end: float | None = None
        self.attributes: dict[str, Any] = attributes if attributes else {}
        self.status = "ok"
        self.thread_id = threading.get_ident()

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        """Seconds from start to end (0.0 while unfinished)."""
        return 0.0 if self.end is None else self.end - self.start

    def to_dict(self, origin: float = 0.0) -> dict[str, Any]:
        """A JSON-ready view; timings become offsets from ``origin``."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_seconds": self.start - origin,
            "duration_seconds": self.duration,
            "status": self.status,
            "attributes": dict(self.attributes),
        }

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, id={self.span_id}, "
            f"duration={self.duration * 1000:.3f}ms)"
        )


@guarded_by("_lock", "_spans", "dropped")
class Tracer:
    """One trace: a thread-safe collector of finished spans.

    Parameters
    ----------
    name:
        A human label for the whole trace (e.g. the request path).
    trace_id:
        Externally supplied id (an inbound ``X-Trace-Id``) or None for a
        fresh one.
    parent_span_id:
        Span id of a *remote* parent (an inbound ``X-Parent-Span`` from
        the pool's routing parent).  The root span of this tracer is
        parented under it, so cross-process stitching
        (:mod:`repro.obs.stitch`) reassembles one tree.
    max_spans:
        Hard cap on stored spans; excess spans are counted in
        ``dropped`` so truncation is visible, never silent.
    observers:
        Callables invoked as ``observer(span)`` for every finished span
        (the watchdog's hook).  Observer exceptions are swallowed — a
        broken observer must never take down the traced operation.
    """

    def __init__(
        self,
        name: str = "trace",
        trace_id: str | None = None,
        max_spans: int = DEFAULT_MAX_SPANS,
        observers: tuple = (),
        parent_span_id: str | None = None,
    ) -> None:
        self.name = name
        self.trace_id = trace_id or new_trace_id()
        self.parent_span_id = parent_span_id
        self.max_spans = max_spans
        self.observers = tuple(observers)
        self.started_at = time.time()  # wall-clock anchor for exports
        self.origin = time.perf_counter()
        self.dropped = 0
        self._lock = threading.Lock()
        self._spans: list[Span] = []

    def add(self, span: Span) -> None:
        """Record one finished span (thread-safe) and notify observers."""
        with self._lock:
            if len(self._spans) < self.max_spans:
                self._spans.append(span)
            else:
                self.dropped += 1
        for observer in self.observers:
            try:
                observer(span)
            except Exception:  # noqa: BLE001 - observers must never break tracing
                pass

    @property
    def spans(self) -> list[Span]:
        """A snapshot copy of the finished spans (start order not guaranteed)."""
        with self._lock:
            return list(self._spans)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    # ------------------------------------------------------------------
    def tree(self) -> list[dict[str, Any]]:
        """The span forest as nested dicts (children sorted by start time).

        Spans whose parent was dropped by the ``max_spans`` cap are
        re-rooted at the top level rather than lost.
        """
        spans = sorted(self.spans, key=lambda s: s.start)
        nodes: dict[str, dict[str, Any]] = {}
        for span in spans:
            node = span.to_dict(self.origin)
            node["children"] = []
            nodes[span.span_id] = node
        roots: list[dict[str, Any]] = []
        for span in spans:
            node = nodes[span.span_id]
            parent = nodes.get(span.parent_id) if span.parent_id else None
            if parent is None:
                roots.append(node)
            else:
                parent["children"].append(node)
        return roots

    def to_dict(self) -> dict[str, Any]:
        """The whole trace as one JSON-ready payload (used by ``/v1/traces``)."""
        spans = self.spans
        return {
            "trace_id": self.trace_id,
            "name": self.name,
            "started_at": self.started_at,
            "parent_span_id": self.parent_span_id,
            "spans": len(spans),
            "dropped": self.dropped,
            "duration_seconds": max(
                (s.end - self.origin for s in spans if s.end is not None),
                default=0.0,
            ),
            "tree": self.tree(),
        }

    def __repr__(self) -> str:
        return f"Tracer({self.name!r}, id={self.trace_id}, spans={len(self)})"
