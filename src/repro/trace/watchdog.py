"""The guarantee watchdog: the paper's theorems as runtime-checkable SLOs.

Corollary 2.5 promises **constant delay** between enumerated answers and
Theorem 3.1 promises a **flat number of register operations** per
lookup.  The bench suite asserts both offline; this module watches them
*live*: attached as a span observer (see
:class:`~repro.trace.core.Tracer`), it consumes every
``enumerate.step`` span a traced request produces and flags any step
that exceeds a configurable multiple of the calibrated constant-delay
budget.

Calibration: with no explicit ``budget_seconds``, the first
``calibration_samples`` steps establish the budget as their median
duration (clamped up to ``min_budget_seconds`` so timer noise on
microsecond steps cannot produce a zero budget).  A step then violates
when ``duration > budget * multiple``.  Steps that carry an ``ops``
attribute (primitive-operation counts, recorded when a metrics registry
is collecting) are held to the same scheme with ``ops_multiple`` — the
machine-independent check.

On violation the watchdog bumps the ``guarantee.delay_violation`` /
``guarantee.ops_violation`` metrics counters (visible in ``/metrics``),
emits one structured warning with the trace id, and stamps the offending
span's attributes — so the violation is findable from the logs, the
metrics, and the trace tree alike.
"""

from __future__ import annotations

import logging
import threading
from statistics import median
from typing import Any

from repro.contracts import guarded_by
from repro.metrics.runtime import count as _metrics_count
from repro.trace.core import Span
from repro.trace.logging import log_event

logger = logging.getLogger("repro.trace.watchdog")

#: Metrics counter names bumped on violations.
DELAY_VIOLATION = "guarantee.delay_violation"
OPS_VIOLATION = "guarantee.ops_violation"

#: Metrics counter bumped once per observed step — the burn-rate
#: denominator, so a scraper computes ``rate(violations)/rate(steps)``.
STEPS_OBSERVED = "guarantee.steps"

#: Span name the watchdog consumes (what the enumeration loops emit).
STEP_SPAN = "enumerate.step"


@guarded_by("_lock", "steps_seen", "violations", "_delay_samples", "_ops_samples", "budget_seconds", "ops_budget")
class Watchdog:
    """Consumes enumeration-step spans; raises violation counters.

    Parameters
    ----------
    budget_seconds:
        The constant-delay budget per step.  ``None`` (default)
        self-calibrates from the first ``calibration_samples`` steps.
    multiple:
        A step violates when its duration exceeds ``budget * multiple``.
    ops_budget:
        Per-step primitive-operation budget; ``None`` self-calibrates
        from steps carrying an ``ops`` attribute.
    ops_multiple:
        Ops analogue of ``multiple``.
    calibration_samples:
        Steps consumed before the self-calibrated budgets are fixed.
    min_budget_seconds:
        Floor for the self-calibrated delay budget (timer-noise guard).
    """

    def __init__(
        self,
        budget_seconds: float | None = None,
        multiple: float = 20.0,
        ops_budget: float | None = None,
        ops_multiple: float = 4.0,
        calibration_samples: int = 64,
        min_budget_seconds: float = 1e-4,
        span_name: str = STEP_SPAN,
    ) -> None:
        if multiple <= 0:
            raise ValueError(f"multiple must be positive, got {multiple}")
        if ops_multiple <= 0:
            raise ValueError(f"ops_multiple must be positive, got {ops_multiple}")
        if calibration_samples < 1:
            raise ValueError(
                f"calibration_samples must be >= 1, got {calibration_samples}"
            )
        self.budget_seconds = budget_seconds
        self.multiple = multiple
        self.ops_budget = ops_budget
        self.ops_multiple = ops_multiple
        self.calibration_samples = calibration_samples
        self.min_budget_seconds = min_budget_seconds
        self.span_name = span_name
        self.steps_seen = 0
        self.violations = {"delay": 0, "ops": 0}
        self._lock = threading.Lock()
        self._delay_samples: list[float] = []
        self._ops_samples: list[float] = []

    # ------------------------------------------------------------------
    @property
    def calibrated(self) -> bool:
        """Is the delay budget fixed (explicitly or by calibration)?"""
        return self.budget_seconds is not None

    def on_span(self, span: Span) -> None:
        """Observer entry point: feed one finished span (any name)."""
        if span.name != self.span_name:
            return
        ops = span.attributes.get("ops")
        self.observe_step(
            span.duration,
            ops=float(ops) if isinstance(ops, (int, float)) else None,
            trace_id=span.trace_id,
            span=span,
        )

    def observe_step(
        self,
        duration: float,
        ops: float | None = None,
        trace_id: str | None = None,
        span: Span | None = None,
    ) -> None:
        """Check one enumeration step against the budgets (thread-safe)."""
        _metrics_count(STEPS_OBSERVED)
        with self._lock:
            self.steps_seen += 1
            delay_budget = self.budget_seconds
            if delay_budget is None:
                self._delay_samples.append(duration)
                if len(self._delay_samples) >= self.calibration_samples:
                    self.budget_seconds = max(
                        median(self._delay_samples), self.min_budget_seconds
                    )
                    self._delay_samples = []
                return  # still calibrating: never flag calibration steps
            ops_budget = self.ops_budget
            if ops is not None and ops_budget is None:
                self._ops_samples.append(ops)
                if len(self._ops_samples) >= self.calibration_samples:
                    self.ops_budget = max(median(self._ops_samples), 1.0)
                    self._ops_samples = []
                ops_budget = None  # don't judge ops until their budget exists
        if duration > delay_budget * self.multiple:
            self._flag(
                "delay",
                DELAY_VIOLATION,
                trace_id,
                span,
                duration_ms=duration * 1000,
                budget_ms=delay_budget * 1000,
                multiple=self.multiple,
            )
        if ops is not None and ops_budget is not None:
            if ops > ops_budget * self.ops_multiple:
                self._flag(
                    "ops",
                    OPS_VIOLATION,
                    trace_id,
                    span,
                    ops=ops,
                    ops_budget=ops_budget,
                    multiple=self.ops_multiple,
                )

    def _flag(
        self,
        kind: str,
        counter: str,
        trace_id: str | None,
        span: Span | None,
        **fields: Any,
    ) -> None:
        with self._lock:
            self.violations[kind] += 1
        _metrics_count(counter)
        if span is not None:
            span.attributes["guarantee.violation"] = kind
        log_event(
            logger,
            f"constant-{'delay' if kind == 'delay' else 'ops'} guarantee violated",
            level=logging.WARNING,
            kind=kind,
            trace_id=trace_id,
            **fields,
        )

    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """JSON-ready state for ``/v1/stats`` and the CLI summary."""
        with self._lock:
            steps = self.steps_seen
            violations = dict(self.violations)
            return {
                "steps_seen": steps,
                "budget_seconds": self.budget_seconds,
                "multiple": self.multiple,
                "ops_budget": self.ops_budget,
                "ops_multiple": self.ops_multiple,
                "calibrated": self.budget_seconds is not None,
                "violations": violations,
                # violations per observed step: the SLO error-budget dial
                "burn_rate": {
                    kind: (n / steps if steps else 0.0)
                    for kind, n in violations.items()
                },
            }

    def __repr__(self) -> str:
        return (
            f"Watchdog(budget={self.budget_seconds}, multiple={self.multiple}, "
            f"violations={self.violations})"
        )
