"""A low-overhead sampling profiler (``repro.trace.profiler``).

Spans answer *where inside the instrumented pipeline* a request's time
went; the profiler answers *where in the Python code* it went — without
instrumenting anything.  A background thread wakes ``hz`` times per
second, snapshots every thread's current stack via
``sys._current_frames()``, and counts collapsed stacks
(``module.func;module.func;...``).  No ``sys.setprofile`` /
``sys.settrace`` hook is ever installed, so the *profiled* threads run
at full speed between samples — the only cost is the GIL time the
sampler spends walking frames, bounded by ``hz`` (default 97 Hz, a
prime, so sampling never phase-locks with periodic work).  The E18
bench gate holds enumerate-page throughput under profiling to within
5% of baseline.

Output is the collapsed-stack format Brendan Gregg's ``flamegraph.pl``
and speedscope consume directly: one ``stack count`` line per distinct
stack (:meth:`SamplingProfiler.flamegraph_lines`).  Collapsed counts
from different processes merge by addition (:func:`merge_collapsed`),
which is how the pool parent fans ``GET /v1/profile`` in across
workers.

Usage::

    from repro.trace.profiler import SamplingProfiler

    with SamplingProfiler(hz=97) as prof:
        run_workload()
    print("\\n".join(prof.flamegraph_lines()))

or over HTTP: ``GET /v1/profile?seconds=2&hz=97`` on a worker or the
pool parent, or ``repro profile graph.json "E(x, y)"`` from the shell.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Any

from repro.contracts import guarded_by

#: Default sampling rate (prime, to avoid phase-locking periodic work).
DEFAULT_HZ = 97.0

#: Frames deeper than this are truncated (keeps collapsed keys bounded).
MAX_STACK_DEPTH = 64

#: Hard cap on one HTTP-triggered profiling run (``/v1/profile``).
MAX_PROFILE_SECONDS = 30.0


def _frame_label(frame: Any) -> str:
    """``module.qualname`` for one frame (cheap: two attribute reads)."""
    module = frame.f_globals.get("__name__", "?")
    code = frame.f_code
    # co_qualname is 3.11+; fall back to the bare name on 3.10.
    return f"{module}.{getattr(code, 'co_qualname', None) or code.co_name}"


@guarded_by("_lock", "_counts", "_samples")
class SamplingProfiler:
    """Samples all threads' stacks at ``hz`` and counts collapsed stacks.

    ``start()`` spawns a daemon sampler thread; ``stop()`` joins it.
    ``stop()``/``start()`` pairs accumulate into the same counts.
    The sampler excludes itself from the collected stacks.  Counts are
    read through :meth:`collapsed` (a snapshot copy) at any time — a
    live ``/v1/profile`` run reads them once after ``stop()``.
    """

    def __init__(self, hz: float = DEFAULT_HZ, max_depth: int = MAX_STACK_DEPTH):
        if hz <= 0:
            raise ValueError(f"hz must be > 0, got {hz}")
        self.hz = float(hz)
        self.max_depth = max_depth
        self._counts: dict[str, int] = {}
        self._samples = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join()
        self._thread = None

    def __enter__(self) -> SamplingProfiler:
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def _run(self) -> None:
        interval = 1.0 / self.hz
        own_id = threading.get_ident()
        # Resume from the published state so stop()/start() accumulates.
        with self._lock:
            counts = dict(self._counts)
            taken = self._samples
        while not self._stop.wait(interval):
            frames = sys._current_frames()
            for thread_id, frame in frames.items():
                if thread_id == own_id:
                    continue
                stack: list[str] = []
                depth = 0
                while frame is not None and depth < self.max_depth:
                    stack.append(_frame_label(frame))
                    frame = frame.f_back
                    depth += 1
                if not stack:
                    continue
                stack.reverse()  # root -> leaf, the collapsed convention
                key = ";".join(stack)
                counts[key] = counts.get(key, 0) + 1
                taken += 1
            # Publish incrementally so a concurrent reader sees progress.
            with self._lock:
                self._counts = counts.copy()
                self._samples = taken

    # ------------------------------------------------------------------
    @property
    def samples(self) -> int:
        """Total thread-stack samples taken so far."""
        return self._samples

    def collapsed(self) -> dict[str, int]:
        """Snapshot of ``collapsed stack -> sample count``."""
        with self._lock:
            return dict(self._counts)

    def flamegraph_lines(self) -> list[str]:
        """``stack count`` lines, heaviest first (flamegraph.pl input)."""
        counts = self.collapsed()
        return [
            f"{stack} {n}"
            for stack, n in sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        ]

    def to_payload(self, seconds: float | None = None) -> dict[str, Any]:
        """The ``/v1/profile`` wire format (JSON-safe, mergeable)."""
        return {
            "hz": self.hz,
            "seconds": seconds,
            "samples": self.samples,
            "stacks": self.collapsed(),
        }


def merge_collapsed(parts: list[dict[str, int]]) -> dict[str, int]:
    """Add collapsed-stack counts from several profilers/processes."""
    merged: dict[str, int] = {}
    for part in parts:
        for stack, n in part.items():
            merged[stack] = merged.get(stack, 0) + int(n)
    return dict(sorted(merged.items(), key=lambda kv: (-kv[1], kv[0])))


def merge_profiles(payloads: list[dict[str, Any]]) -> dict[str, Any]:
    """Merge :meth:`SamplingProfiler.to_payload` dicts (pool fan-in)."""
    return {
        "hz": payloads[0]["hz"] if payloads else DEFAULT_HZ,
        "seconds": max((p.get("seconds") or 0.0 for p in payloads), default=0.0),
        "samples": sum(int(p.get("samples", 0)) for p in payloads),
        "stacks": merge_collapsed([p.get("stacks", {}) for p in payloads]),
    }


def profile_for(seconds: float, hz: float = DEFAULT_HZ) -> dict[str, Any]:
    """Sample every thread for ``seconds`` and return the wire payload.

    The blocking convenience behind ``GET /v1/profile?seconds=N`` —
    runs in the handler thread while the server keeps answering on its
    other threads, so the profile shows real request work.
    """
    seconds = min(float(seconds), MAX_PROFILE_SECONDS)
    profiler = SamplingProfiler(hz=hz)
    with profiler:
        time.sleep(seconds)
    return profiler.to_payload(seconds=seconds)


def flamegraph_text(stacks: dict[str, int]) -> str:
    """Collapsed counts as flamegraph.pl input text."""
    lines = [
        f"{stack} {n}"
        for stack, n in sorted(stacks.items(), key=lambda kv: (-kv[1], kv[0]))
    ]
    return "\n".join(lines) + "\n" if lines else ""
