"""The bench-suite result schema (``repro-bench-suite-v1``) and validator.

``repro bench-suite`` writes a single JSON document; this module is the
one place its shape is defined.  The layout is a superset of what
:mod:`repro.reporting` consumes (``benchmarks[*].fullname/name/stats/
extra_info`` match pytest-benchmark's layout), so every existing
reporting path renders suite output unchanged.

Top level::

    {
      "suite_version": 1,
      "schema": "repro-bench-suite-v1",
      "created": "2026-01-01T00:00:00",         # ISO timestamp
      "profile": "quick" | "full",
      "machine_info": {"python": ..., "platform": ..., ...},
      "experiments": ["E1", "E3", ...],
      "benchmarks": [
        {
          "experiment": "E1",
          "group": "bench_storing",              # the bench_* file stem
          "fullname": "benchmarks/bench_storing.py::test_lookup[1024]",
          "name": "test_lookup[1024]",
          "params": {"n": 1024},
          "stats": {"mean": 1.2e-3, "min": ..., "max": ..., "stddev": ...,
                    "rounds": 3},
          "extra_info": {"per_lookup_batch": 128, ...}
        },
        ...
      ]
    }

Validation is hand-rolled (the library has no third-party dependencies);
:func:`validate_results` returns a list of human-readable problems, empty
when the document conforms.
"""

from __future__ import annotations

from typing import Any

SUITE_VERSION = 1
SCHEMA_NAME = "repro-bench-suite-v1"

_SCALAR = (str, int, float, bool, type(None))

#: Required keys of the top-level document and their types.
_TOP_LEVEL = {
    "suite_version": int,
    "schema": str,
    "created": str,
    "profile": str,
    "machine_info": dict,
    "experiments": list,
    "benchmarks": list,
}

#: Required keys of each benchmark record and their types.
_RECORD = {
    "experiment": str,
    "group": str,
    "fullname": str,
    "name": str,
    "params": dict,
    "stats": dict,
    "extra_info": dict,
}

#: Required keys of each record's ``stats`` and their types.
_STATS = {
    "mean": (int, float),
    "min": (int, float),
    "max": (int, float),
    "stddev": (int, float),
    "rounds": int,
}


def _check_mapping(
    value: Any, spec: dict[str, Any], where: str, problems: list[str]
) -> bool:
    if not isinstance(value, dict):
        problems.append(f"{where}: expected an object, got {type(value).__name__}")
        return False
    for key, expected in spec.items():
        if key not in value:
            problems.append(f"{where}.{key}: missing")
        elif not isinstance(value[key], expected):
            expected_name = (
                expected.__name__
                if isinstance(expected, type)
                else "/".join(t.__name__ for t in expected)
            )
            problems.append(
                f"{where}.{key}: expected {expected_name}, "
                f"got {type(value[key]).__name__}"
            )
    return True


def validate_results(payload: Any) -> list[str]:
    """Problems with a bench-suite document; empty means it conforms."""
    problems: list[str] = []
    if not _check_mapping(payload, _TOP_LEVEL, "$", problems):
        return problems
    if isinstance(payload.get("suite_version"), int) and payload[
        "suite_version"
    ] > SUITE_VERSION:
        problems.append(
            f"$.suite_version: {payload['suite_version']} is newer than this "
            f"reader (max {SUITE_VERSION})"
        )
    for index, record in enumerate(payload.get("benchmarks") or []):
        where = f"$.benchmarks[{index}]"
        if not _check_mapping(record, _RECORD, where, problems):
            continue
        stats = record.get("stats")
        if isinstance(stats, dict):
            _check_mapping(stats, _STATS, f"{where}.stats", problems)
            mean = stats.get("mean")
            if isinstance(mean, (int, float)) and mean < 0:
                problems.append(f"{where}.stats.mean: negative ({mean})")
        extra = record.get("extra_info")
        if isinstance(extra, dict):
            for key, value in extra.items():
                if not isinstance(value, _SCALAR):
                    problems.append(
                        f"{where}.extra_info.{key}: expected a JSON scalar, "
                        f"got {type(value).__name__}"
                    )
        params = record.get("params")
        if isinstance(params, dict):
            for key, value in params.items():
                if not isinstance(value, _SCALAR):
                    problems.append(
                        f"{where}.params.{key}: expected a JSON scalar, "
                        f"got {type(value).__name__}"
                    )
    return problems
